#!/usr/bin/env python3
"""Entity resolution with the pD*-style OWL extension.

Two catalogues describe overlapping artists under different identifiers.
Inverse-functional properties (a shared VIAF id) make the reasoner
derive ``sameAs`` links; the substitution rules then consolidate every
fact onto each alias, and the core removes the redundancy that
consolidation creates.

Run:  python examples/entity_resolution.py
"""

from repro.core import RDFGraph, URI, triple
from repro.core.vocabulary import SC, TYPE
from repro.minimize import core
from repro.semantics import owl_closure, owl_entails, same_as_classes
from repro.semantics.owl_horst import INVERSE_FUNCTIONAL, INVERSE_OF, SAME_AS


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    catalogue_a = RDFGraph(
        [
            triple("fk", TYPE, "painter"),
            triple("fk", "viaf", "id-36322"),
            triple("fk", "paints", "the-two-fridas"),
        ]
    )
    catalogue_b = RDFGraph(
        [
            triple("frida-kahlo", "viaf", "id-36322"),
            triple("frida-kahlo", "bornIn", "coyoacan"),
            triple("the-two-fridas", "paintedBy", "frida-kahlo"),
        ]
    )
    ontology = RDFGraph(
        [
            triple("viaf", TYPE, INVERSE_FUNCTIONAL),
            triple("paints", INVERSE_OF, "paintedBy"),
            triple("painter", SC, "artist"),
        ]
    )

    merged = ontology + catalogue_a + catalogue_b
    banner("Merged catalogues")
    print(f"  {len(merged)} triples from 2 sources + ontology")

    banner("sameAs discovery (inverse-functional viaf)")
    closed = owl_closure(merged)
    for group in same_as_classes(merged):
        if len(group) > 1:
            print(f"  aliases: {', '.join(str(t) for t in group)}")

    banner("Consolidated facts (substitution through sameAs)")
    for probe in [
        triple("frida-kahlo", TYPE, "artist"),     # typing crossed sources
        triple("fk", "bornIn", "coyoacan"),        # fact crossed aliases
        triple("frida-kahlo", "paints", "the-two-fridas"),  # via inverseOf
    ]:
        print(f"  {probe}: {owl_entails(merged, RDFGraph([probe]))}")

    banner("Redundancy check")
    print(f"  closure size: {len(closed)} triples")
    reduced = core(closed)
    print(f"  core of closure: {len(reduced)} triples "
          f"(closure is ground here, so nothing collapses; the pay-off "
          f"comes with blank-node aliases)")

    # A blank-node alias: an anonymous record with the same viaf id.
    from repro.core import BNode

    anon = BNode("rec")
    with_anon = merged + RDFGraph(
        [triple(anon, "viaf", "id-36322"), triple(anon, "bornIn", "coyoacan")]
    )
    closed_anon = owl_closure(with_anon)
    reduced_anon = core(closed_anon)
    banner("With an anonymous duplicate record")
    print(f"  closure: {len(closed_anon)} triples; core: {len(reduced_anon)}")
    survivors = {t for t in reduced_anon if not t.is_ground()}
    print(f"  blank triples surviving the core: {len(survivors)} "
          f"(the anonymous record folds into the named one)")


if __name__ == "__main__":
    main()
