#!/usr/bin/env python3
"""Integrating RDF metadata from several sources, the paper's way.

Scenario: three web sources publish partial metadata about the same
museum collection, each with its own blank nodes and redundancies.  We:

1. parse each source (N-Triples-style concrete syntax);
2. *merge* them (``G1 + G2``: blank nodes kept apart — Section 2.1);
3. eliminate redundancy with the core (Theorem 3.10);
4. normalize to the unique, syntax-independent normal form
   (Theorem 3.19) so equivalent sources compare equal;
5. query the integrated graph under both answer semantics, showing why
   union semantics preserves blank "bridges" (Section 4.1).

Run:  python examples/metadata_integration.py
"""

from repro import RDFGraph, core, equivalent, normal_form
from repro.core import BNode
from repro.minimize import is_lean
from repro.query import answer_merge, answer_union, head_body_query
from repro.rdfio import parse_ntriples, serialize_ntriples

# Source A: a curator's export — uses a blank for an unidentified donor.
SOURCE_A = """
# curator export
louvre type museum .
monalisa exhibited louvre .
monalisa donatedBy _:donor .
_:donor memberOf patrons .
"""

# Source B: a crawler's export — same facts plus a redundant blank copy
# of the exhibited triple (a weaker statement it also scraped).
SOURCE_B = """
# crawler export
monalisa exhibited louvre .
monalisa exhibited _:somewhere .
davinci paints monalisa .
"""

# Source C: an aggregator — states the donor facts with its own blank,
# entirely subsumed by source A's.
SOURCE_C = """
monalisa donatedBy _:x .
"""


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    a = parse_ntriples(SOURCE_A)
    b = parse_ntriples(SOURCE_B)
    c = parse_ntriples(SOURCE_C)

    banner("Merging sources (G_A + G_B + G_C)")
    merged = a + b + c
    print(f"  sizes: A={len(a)}, B={len(b)}, C={len(c)}, merged={len(merged)}")
    print(f"  merged is lean? {is_lean(merged)}")

    banner("Redundancy elimination: the core (unique, Theorem 3.10)")
    reduced = core(merged)
    print(f"  core has {len(reduced)} triples "
          f"(dropped {len(merged) - len(reduced)} redundant):")
    print("  " + serialize_ntriples(reduced).replace("\n", "\n  "))
    print(f"  core ≡ merged? {equivalent(reduced, merged)}")

    banner("Normal form: syntax-independent comparison (Theorem 3.19)")
    # A fourth source states the same content differently.
    restated = parse_ntriples(
        """
        louvre type museum .
        monalisa exhibited louvre .
        monalisa donatedBy _:benefactor .
        _:benefactor memberOf patrons .
        davinci paints monalisa .
        """
    )
    same = equivalent(reduced, restated)
    print(f"  reduced graph ≡ restated source? {same}")
    from repro.core import isomorphic

    print(
        "  nf(reduced) ≅ nf(restated)? "
        f"{isomorphic(normal_form(reduced), normal_form(restated))}"
    )

    banner("Querying: union vs merge semantics (Section 4.1)")
    q = head_body_query(
        head=[("?E", "feature", "?V")],
        body=[("?E", "?P", "?V")],
    )
    union_ans = answer_union(q, reduced)
    merge_ans = answer_merge(q, reduced)
    print(f"  ans∪ blanks: {sorted(n.value for n in union_ans.bnodes())}")
    print(f"  ans+ blanks: {sorted(n.value for n in merge_ans.bnodes())}")
    print(
        "  union semantics keeps the donor blank bridging its two\n"
        "  features; merge semantics splits it into separate blanks."
    )

    banner("Who donated the Mona Lisa? (existential answer)")
    donor_q = head_body_query(
        head=[("monalisa", "donatedBy", "?D"), ("?D", "memberOf", "?G")],
        body=[("monalisa", "donatedBy", "?D"), ("?D", "memberOf", "?G")],
    )
    print(f"  {answer_union(donor_q, reduced)}")


if __name__ == "__main__":
    main()
