#!/usr/bin/env python3
"""A guided tour of the paper's complexity landscape, executably.

Each stop runs a small instance of the construction behind one
complexity theorem and prints what happens:

1. Theorem 2.9 — graph 3-colorability decided by RDF entailment;
2. Section 2.4 — the polynomial special case: blank-acyclic entailment
   through Yannakakis' algorithm;
3. Theorem 3.12 — graph cores via RDF leanness;
4. Theorem 6.1 — 3SAT decided by query-answer non-emptiness;
5. Theorems 6.2/6.3 — redundancy elimination: coNP (union) vs
   polynomial (merge).

Run:  python examples/complexity_tour.py
"""

import time

from repro import RDFGraph, triple
from repro.core import BNode
from repro.generators import blank_chain, random_digraph, random_simple_rdf_graph
from repro.minimize import is_lean
from repro.query import (
    answer_union,
    head_body_query,
    merge_answer_is_lean,
    pre_answers,
    union_answer_is_lean,
)
from repro.reductions import (
    DiGraph,
    encode_graph,
    graph_core_via_rdf,
    is_3_colorable_via_rdf,
    random_3sat,
    brute_force_satisfiable,
    satisfiable_via_rdf_query,
)
from repro.relational import simple_entails_acyclic
from repro.semantics import simple_entails


def stop(n: int, title: str) -> None:
    print(f"\n--- Stop {n}: {title} ---")


def main() -> None:
    print("A tour of 'Foundations of Semantic Web Databases' complexity results")

    stop(1, "3-colorability as RDF entailment (Theorem 2.9)")
    for name, graph in [
        ("C5 (odd cycle)", DiGraph.cycle(5)),
        ("K4 (clique)", DiGraph.complete(4)),
        ("Petersen-ish random", random_digraph(7, 12, seed=3)),
    ]:
        verdict = is_3_colorable_via_rdf(graph)
        print(f"  {name:22s} 3-colorable? {verdict}")
    print("  (each check is one simple-entailment test enc(K3)-ward)")

    stop(2, "blank-acyclic entailment is polynomial (Section 2.4)")
    target = random_simple_rdf_graph(120, 30, num_predicates=1, seed=7)
    pattern = blank_chain(10)
    t0 = time.perf_counter()
    fast = simple_entails_acyclic(target, pattern)
    t_fast = time.perf_counter() - t0
    t0 = time.perf_counter()
    slow = simple_entails(target, pattern)
    t_slow = time.perf_counter() - t0
    print(f"  chain(10) into random(120 triples): {fast} "
          f"[Yannakakis {t_fast * 1e3:.2f} ms, backtracking {t_slow * 1e3:.2f} ms]")
    assert fast == slow

    stop(3, "graph cores via RDF leanness (Theorem 3.12)")
    for name, graph in [
        ("C6 (even cycle)", DiGraph.cycle(6)),
        ("C5 (odd cycle)", DiGraph.cycle(5)),
    ]:
        rdf = encode_graph(graph)
        core_graph = graph_core_via_rdf(graph)
        print(
            f"  {name:18s} enc lean? {is_lean(rdf)!s:5s}  "
            f"core edges: {len(graph.edges)} → {len(core_graph.edges)}"
        )

    stop(4, "3SAT as query emptiness (Theorem 6.1)")
    for seed in (0, 1):
        formula = random_3sat(5, 15, seed=seed)
        expected = brute_force_satisfiable(formula)
        via_query = satisfiable_via_rdf_query(formula)
        print(f"  φ(5 vars, 15 clauses, seed {seed}): "
              f"brute-force {expected}, via RDF query {via_query}")
        assert expected == via_query

    stop(5, "redundancy elimination: union (coNP) vs merge (poly)")
    X, Y = BNode("X"), BNode("Y")
    d = RDFGraph(
        [
            triple("a", "p", X),
            triple("a", "p", Y),
            triple(X, "q", Y),
            triple(Y, "r", "b"),
        ]
    )
    q = head_body_query(head=[("?Z", "p", "?U")], body=[("?Z", "p", "?U")])
    print(f"  database lean? {is_lean(d)}")
    print(f"  ans∪ lean? {union_answer_is_lean(q, d)}  (general coNP check)")
    print(f"  ans+ lean? {merge_answer_is_lean(q, d)}  (Theorem 6.3 poly check)")
    print(f"  |pre-answers| = {len(pre_answers(q, d))}, "
          f"|ans∪| = {len(answer_union(q, d))}")

    print("\nTour complete: every construction above is also exercised,")
    print("at scale, by the benchmark suite (see benchmarks/).")


if __name__ == "__main__":
    main()
