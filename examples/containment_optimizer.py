#!/usr/bin/env python3
"""Query-containment analysis, as a cache/optimizer would use it.

Scenario: a query front-end keeps a library of answered queries and,
given a new query, wants to know which cached answers *subsume* it.
Containment (Section 5) is the right tool — in its two flavours:

* standard containment ``⊑p`` — the cached pre-answers literally
  include the new query's pre-answers (safe to reuse rows as-is);
* entailment containment ``⊑m`` — the cached answer *implies* the new
  answer (safe to reuse after deduction).

The example also demonstrates premise elimination (Proposition 5.9):
a query with a premise is decomposed into its Ω-members before testing.

Run:  python examples/containment_optimizer.py
"""

from repro import RDFGraph, triple
from repro.core import Variable
from repro.query import (
    contained_entailment,
    contained_standard,
    head_body_query,
    premise_elimination,
)


def show(label: str, verdict: bool) -> None:
    print(f"  {label:58s} {'YES' if verdict else 'no'}")


def main() -> None:
    # The cached queries (already answered, answers stored).
    cache = {
        "all-paint-edges": head_body_query(
            head=[("?X", "paints", "?Y")], body=[("?X", "paints", "?Y")]
        ),
        "painters-of-exhibited-works": head_body_query(
            head=[("?X", "paints", "?Y")],
            body=[("?X", "paints", "?Y"), ("?Y", "exhibited", "?M")],
        ),
        "ground-painters-only": head_body_query(
            head=[("?X", "paints", "?Y")],
            body=[("?X", "paints", "?Y")],
            constraints=[Variable("X")],
        ),
    }

    print("=== New query 1: paintings exhibited at the Uffizi ===")
    q1 = head_body_query(
        head=[("?X", "paints", "?Y")],
        body=[("?X", "paints", "?Y"), ("?Y", "exhibited", "Uffizi")],
    )
    print(f"  {q1}\n")
    for name, cached in cache.items():
        show(f"q1 ⊑p {name}?", contained_standard(q1, cached))
    print()
    for name, cached in cache.items():
        show(f"q1 ⊑m {name}?", contained_entailment(q1, cached))
    print(
        "\n  → the optimizer may answer q1 by filtering the cached\n"
        "    'all-paint-edges' or 'painters-of-exhibited-works' rows.\n"
    )

    print("=== New query 2: same, but with must-bind painter ===")
    q2 = head_body_query(
        head=[("?X", "paints", "?Y")],
        body=[("?X", "paints", "?Y"), ("?Y", "exhibited", "Uffizi")],
        constraints=[Variable("X")],
    )
    show("q2 ⊑p ground-painters-only?", contained_standard(q2, cache["ground-painters-only"]))
    show("q1 ⊑p ground-painters-only?", contained_standard(q1, cache["ground-painters-only"]))
    print(
        "  → constraints matter: the unconstrained q1 may return blank\n"
        "    painters the constrained cache entry never stored.\n"
    )

    print("=== New query 3: with a premise (hypothetical schema) ===")
    q3 = head_body_query(
        head=[("?X", "depicts", "?S")],
        body=[("?X", "depicts", "?S"), ("?S", "kind", "historical")],
        premise=RDFGraph(
            [
                triple("guernica-bombing", "kind", "historical"),
                triple("last-supper", "kind", "historical"),
            ]
        ),
    )
    print(f"  {q3}\n")
    print("  Ω-members (Proposition 5.9):")
    members = premise_elimination(q3)
    for member in members:
        print(f"    {member.tableau}")
    wide = head_body_query(
        head=[("?X", "depicts", "?S")], body=[("?X", "depicts", "?S")]
    )
    show("\n  q3 ⊑p all-depicts-edges?", contained_standard(q3, wide))
    narrow = head_body_query(
        head=[("?X", "depicts", "?S")],
        body=[("?X", "depicts", "?S"), ("?S", "kind", "historical")],
    )
    show("  q3 ⊑p depicts-historical (no premise)?", contained_standard(q3, narrow))
    print(
        "\n  → the premise widened q3 (it answers for the two premise\n"
        "    subjects even when the database lacks their kind-triples),\n"
        "    so only the *wider* cached query subsumes it."
    )


if __name__ == "__main__":
    main()
