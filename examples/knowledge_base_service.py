#!/usr/bin/env python3
"""A small knowledge-base service built on the paper's theory.

Puts the extension modules to work together, the way a downstream
application would:

* :class:`repro.store.TripleStore` — named graphs, transactions, and
  incrementally maintained RDFS closure;
* :mod:`repro.navigation` — path queries over the inferred graph;
* :mod:`repro.query.views` — derived graphs and query composition;
* tableau queries with premises for what-if analysis.

Scenario: a museum consortium's catalogue — an ontology graph, per-museum
data graphs loaded with blank-node isolation, and an API of views.

Run:  python examples/knowledge_base_service.py
"""

from repro.core import RDFGraph, URI, triple
from repro.core.vocabulary import DOM, RANGE, SC, SP, TYPE
from repro.navigation import parse_path, reachable_from
from repro.query import View, ViewCatalog, head_body_query
from repro.rdfio import parse_ntriples
from repro.store import TripleStore

ONTOLOGY = [
    triple("painter", SC, "artist"),
    triple("sculptor", SC, "artist"),
    triple("oilPainting", SC, "painting"),
    triple("painting", SC, "artifact"),
    triple("sculpture", SC, "artifact"),
    triple("paints", SP, "creates"),
    triple("sculpts", SP, "creates"),
    triple("paints", DOM, "painter"),
    triple("paints", RANGE, "painting"),
    triple("sculpts", DOM, "sculptor"),
    triple("sculpts", RANGE, "sculpture"),
    triple("exhibited", RANGE, "museum"),
]

MUSEUM_A = """
# Museo Nacional
frida paints lasdoscaras .
lasdoscaras type oilPainting .
lasdoscaras exhibited museoNacional .
_:anon sculpts piedra .
"""

MUSEUM_B = """
# Galleria Moderna
boccioni sculpts forme .
forme exhibited galleriaModerna .
_:anon paints bozzetto .
"""


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    store = TripleStore()

    banner("Loading the ontology and two museum feeds")
    store.add_all(ONTOLOGY, graph="ontology")
    # load_graph keeps each feed's blank nodes apart (merge, §2.1) —
    # both feeds use the label _:anon for different unknown artists.
    store.load_graph(parse_ntriples(MUSEUM_A), graph="museoNacional")
    store.load_graph(parse_ntriples(MUSEUM_B), graph="galleriaModerna")
    print(f"  graphs: {store.graph_names()}")
    print(f"  triples: {len(store)}, blank nodes kept apart: "
          f"{sorted(n.value for n in store.dataset().bnodes())}")

    banner("Inference (incrementally maintained closure)")
    for probe in [
        triple("frida", TYPE, "artist"),
        triple("lasdoscaras", TYPE, "artifact"),
        triple("boccioni", TYPE, "sculptor"),
        triple("museoNacional", TYPE, "museum"),
    ]:
        print(f"  {probe}: {store.entails(probe)}")

    banner("Transactional update with rollback")
    try:
        with store.transaction():
            store.add(triple("vandal", "paints", "forgery"))
            raise RuntimeError("validation failed: vandal is not accredited")
    except RuntimeError as err:
        print(f"  rolled back ({err})")
    print(f"  vandal known as painter? "
          f"{store.entails(triple('vandal', TYPE, 'painter'))}")
    with store.transaction():
        store.add(triple("remedios", "paints", "creacion"))
    print(f"  remedios committed as painter? "
          f"{store.entails(triple('remedios', TYPE, 'painter'))}")
    print(f"  closure maintenance stats: {store.stats}")

    banner("Path queries over the inferred graph")
    dataset = store.dataset()
    up = parse_path("type/sc*")
    print("  every classification of lasdoscaras:")
    for node in sorted(
        reachable_from(up, dataset, URI("lasdoscaras"), rdfs=True), key=str
    ):
        print(f"    {node}")
    provenance = parse_path("^exhibited/^creates")
    print("  who has work at museoNacional (via ^exhibited/^creates, RDFS):")
    for node in sorted(
        reachable_from(provenance, dataset, URI("museoNacional"), rdfs=True), key=str
    ):
        print(f"    {node}")

    banner("Views: a public API over the raw catalogue")
    catalog = ViewCatalog(
        [
            View(
                name="public_works",
                query=head_body_query(
                    head=[("?W", "status", "onDisplay"), ("?W", "venue", "?M")],
                    body=[("?W", "exhibited", "?M")],
                ),
            ),
            View(
                name="attributions",
                query=head_body_query(
                    head=[("?W", "attributedTo", "?A")],
                    body=[("?A", "creates", "?W")],
                ),
            ),
        ]
    )
    # Views see the closure so `creates` includes inferred edges.
    closed = store.closure()
    api_query = head_body_query(
        head=[("?A", "showsAt", "?M")],
        body=[("?W", "attributedTo", "?A"), ("?W", "venue", "?M")],
    )
    print("  who shows where (composed through two views):")
    result = catalog.query(api_query, closed)
    for t in result.sorted_triples():
        print(f"    {t}")

    banner("What-if analysis (premise query)")
    whatif = head_body_query(
        head=[("?X", TYPE, "artist")],
        body=[("?X", TYPE, "artist")],
        premise=RDFGraph([triple("banksy", "paints", "wall")]),
    )
    print("  artists if banksy painted a wall:")
    for t in store.query(whatif).sorted_triples():
        print(f"    {t}")


if __name__ == "__main__":
    main()
