#!/usr/bin/env python3
"""Quickstart: the paper's Fig. 1 art schema, end to end.

Builds the running example, computes its closure and normal form,
checks entailments (including the ones the figure's caption calls out),
and runs a tableau query with a premise.

Run:  python examples/quickstart.py
"""

from repro import RDFGraph, closure, entails, normal_form, triple
from repro.core import BNode
from repro.core.vocabulary import TYPE
from repro.generators import art_schema
from repro.query import answer_union, head_body_query
from repro.rdfio import serialize_ntriples


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The data: schema and instances at the same level (Fig. 1).
    # ------------------------------------------------------------------
    graph = art_schema()
    print("=== Fig. 1 art schema ===")
    print(serialize_ntriples(graph))

    # ------------------------------------------------------------------
    # 2. Entailment: what does the schema let us conclude?
    # ------------------------------------------------------------------
    conclusions = [
        triple("Picasso", "creates", "Guernica"),   # paints ⊑ creates
        triple("Picasso", TYPE, "painter"),          # dom(paints)
        triple("Picasso", TYPE, "artist"),           # painter ⊑ artist
        triple("Guernica", TYPE, "painting"),        # range(paints)
        triple("Guernica", TYPE, "artifact"),        # painting ⊑ artifact
    ]
    print("=== Entailments (Theorem 2.8: map into the closure) ===")
    for t in conclusions:
        verdict = entails(graph, RDFGraph([t]))
        print(f"  {t}  :  {'entailed' if verdict else 'NOT entailed'}")
    not_entailed = triple("Picasso", TYPE, "sculptor")
    print(f"  {not_entailed}  :  "
          f"{'entailed' if entails(graph, RDFGraph([not_entailed])) else 'NOT entailed'}")

    # ------------------------------------------------------------------
    # 3. Representations: closure (maximal) and normal form.
    # ------------------------------------------------------------------
    cl = closure(graph)
    nf = normal_form(graph)
    print("\n=== Representations ===")
    print(f"  graph size        : {len(graph):3d} triples")
    print(f"  closure cl(G)     : {len(cl):3d} triples (maximal, Theorem 3.6)")
    print(f"  normal form nf(G) : {len(nf):3d} triples (unique + syntax-free, Theorem 3.19)")

    # ------------------------------------------------------------------
    # 4. Querying: tableau query with a hypothetical premise.
    # ------------------------------------------------------------------
    print("\n=== Query: who creates what? ===")
    q = head_body_query(
        head=[("?A", "made", "?W")],
        body=[("?A", TYPE, "artist"), ("?A", "creates", "?W")],
    )
    print(f"  {q}")
    print(f"  answer: {answer_union(q, graph)}")

    print("\n=== Hypothetical query (premise, Section 4.2) ===")
    hypothetical = head_body_query(
        head=[("?X", TYPE, "artist")],
        body=[("?X", TYPE, "artist")],
        premise=RDFGraph([triple("Rodin", "sculpts", "TheThinker")]),
    )
    print("  premise: suppose (Rodin, sculpts, TheThinker)")
    print(f"  artists then: {answer_union(hypothetical, graph)}")

    # ------------------------------------------------------------------
    # 5. Blank nodes: existential answers via Skolemized head blanks.
    # ------------------------------------------------------------------
    print("\n=== Existential head (blank node in H) ===")
    existential = head_body_query(
        head=[(BNode("N"), "exemplifies", "?C")],
        body=[("?X", TYPE, "?C"), ("?X", "creates", "?W")],
    )
    print(f"  answer: {answer_union(existential, graph)}")


if __name__ == "__main__":
    main()
