"""Union queries (Propositions 5.9/5.11 made first-class).

Premise elimination already produces unions of queries; this module
gives them a proper type with answers and *exact* containment tests:

* ``⋃ q_i ⊑ q′``  ⟺  every ``q_i ⊑ q′``  (Proposition 5.11, both
  flavours);
* ``q ⊑p ⋃ q_i``  ⟺  some ``q_i`` standard-contains ``q``
  (the canonical-database argument of Theorem 5.5's "only if" picks a
  single member);
* ``q ⊑m ⋃ q_i``  — substitutions may be drawn from *different*
  members (their substituted heads union up before the entailment
  check), so the test pools certificates across members.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..core.graph import RDFGraph
from ..semantics.entailment import entails
from .answers import answers as single_answers
from .containment import (
    _apply_substitution,
    _constraint_condition,
    _freeze_pattern,
    _freeze_triples,
    _standard_target,
    body_substitutions,
    contained_entailment,
    contained_standard,
    premise_elimination,
)
from .tableau import Query

__all__ = ["UnionQuery", "union_contained_standard", "union_contained_entailment"]


@dataclass(frozen=True)
class UnionQuery:
    """A finite union of queries, answered member-wise."""

    members: Tuple[Query, ...]

    def __post_init__(self):
        if not self.members:
            raise ValueError("a union query needs at least one member")

    @classmethod
    def of(cls, *queries: Query) -> "UnionQuery":
        return cls(members=tuple(queries))

    @classmethod
    def from_premise_query(cls, query: Query) -> "UnionQuery":
        """The Ω_q expansion as a union query (Proposition 5.9)."""
        return cls(members=tuple(premise_elimination(query)))

    def answers(self, database: RDFGraph, semantics: str = "union") -> RDFGraph:
        out = RDFGraph()
        for member in self.members:
            out = out.union(single_answers(member, database, semantics=semantics))
        return out

    def __len__(self):
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    def __str__(self):
        return " ∪ ".join(f"({m.tableau})" for m in self.members)


def union_contained_standard(q, q2) -> bool:
    """``q ⊑p q2`` where either side may be a :class:`UnionQuery`."""
    if isinstance(q, UnionQuery):
        return all(union_contained_standard(member, q2) for member in q)
    if isinstance(q2, UnionQuery):
        return any(contained_standard(q, member) for member in q2)
    return contained_standard(q, q2)


def union_contained_entailment(q, q2) -> bool:
    """``q ⊑m q2`` where either side may be a :class:`UnionQuery`.

    For a union on the right, certificates pool: the substituted heads
    of *all* members' valid substitutions union up before the final
    entailment check — strictly more complete than testing members
    separately.
    """
    if isinstance(q, UnionQuery):
        return all(union_contained_entailment(member, q2) for member in q)
    if not isinstance(q2, UnionQuery):
        return contained_entailment(q, q2)
    if q.premise:
        return all(
            union_contained_entailment(member, q2)
            for member in premise_elimination(q)
        )
    target = _standard_target(q)
    pooled = RDFGraph()
    found_any = False
    for member in q2.members:
        if member.premise:
            raise NotImplementedError(
                "premises inside right-hand union members are not supported; "
                "expand them with UnionQuery.from_premise_query first"
            )
        for theta in body_substitutions(member, target, q):
            if not _constraint_condition(
                theta, member.constraints, q.constraints, strict=False
            ):
                continue
            found_any = True
            pooled = pooled.union(
                _freeze_triples(_apply_substitution(theta, member.head))
            )
    if not found_any:
        return False
    return entails(pooled, _freeze_pattern(q.head))
