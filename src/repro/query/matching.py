"""Matchings of query bodies into databases (Section 4.1).

A *valuation* is a function ``v : V → UB``; it *satisfies* a constraint
set ``C`` if ``v(x)`` is non-blank for every ``x ∈ C``.  A *matching* of
the body ``B`` in database ``D`` is a valuation with
``v(B) ⊆ nf(D + P)`` — the normal form, not the raw database, so that
answers are invariant under equivalence of databases (Note 4.4 explains
why a closure alone would not do, and why the laxer condition
``D ⊨ v(B)`` would yield infinitely many answers).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..core.graph import RDFGraph
from ..core.homomorphism import iter_assignments
from ..core.planner import MatchPlan, explain
from ..core.terms import BNode, Term, Variable
from ..minimize.normal_form import normal_form
from .tableau import Query

__all__ = [
    "Valuation",
    "satisfies_constraints",
    "iter_matchings",
    "matching_target",
    "matching_plan",
]

#: A valuation: total on the body's variables once produced by matching.
Valuation = Dict[Variable, Term]


def satisfies_constraints(valuation: Valuation, constraints) -> bool:
    """``v ⊨ C``: every constrained variable bound to a non-blank term."""
    return all(not isinstance(valuation.get(x), BNode) for x in constraints)


def matching_target(database: RDFGraph, premise: RDFGraph) -> RDFGraph:
    """``nf(D + P)``: the graph bodies are matched against.

    The premise is *merged* (not unioned) into the database — its blank
    nodes are hypothetical and must not capture the database's
    (Section 4.2) — and the normal form is taken per Definition 4.3.
    """
    combined = database + premise if premise else database
    return normal_form(combined)


def iter_matchings(
    query: Query,
    database: RDFGraph,
    target: Optional[RDFGraph] = None,
) -> Iterator[Valuation]:
    """All matchings of the query body in the database, constraints applied.

    ``target`` lets callers precompute/carry ``nf(D + P)`` (e.g. the
    answer builder needs the same graph); by default it is computed
    here.  Valuations are yielded in a deterministic order.
    """
    if target is None:
        target = matching_target(database, query.premise)
    body = list(query.body)
    for assignment in iter_assignments(body, target):
        valuation: Valuation = {
            v: t for v, t in assignment.items() if isinstance(v, Variable)
        }
        if satisfies_constraints(valuation, query.constraints):
            yield valuation


def matching_plan(
    query: Query,
    database: RDFGraph,
    target: Optional[RDFGraph] = None,
) -> MatchPlan:
    """The planner's :class:`~repro.core.planner.MatchPlan` for the body.

    Shows how the body decomposes into connected components against
    ``nf(D + P)`` and which strategy each component gets — useful for
    understanding why a query is cheap (all ``semijoin``) or potentially
    expensive (a ``backtrack`` component with large domains).
    """
    if target is None:
        target = matching_target(database, query.premise)
    return explain(list(query.body), target)
