"""Tableau queries (Definition 4.1).

A *tableau* is a pair ``(H, B)`` of pattern graphs (triples over
``UB ∪ V``) where the body ``B`` has no blank nodes and every variable
of the head ``H`` occurs in ``B``.  A *query* is a tableau plus a
premise graph ``P`` (over ``UB``, no variables) and a constraint set
``C`` of variables that must bind to non-blank terms (the paper's
analogue of SQL's ``IS NOT NULL``; DQL's "must-bind" variables).

Blank nodes are allowed in the head (they become Skolemized existentials
in answers, Section 4.1) but are pointless in the body, where a variable
plays the same role (Note 4.2); bodies therefore reject them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Tuple

from ..core.graph import RDFGraph
from ..core.terms import BNode, Literal, Triple, URI, Variable

__all__ = ["PatternGraph", "Tableau", "Query", "pattern", "head_body_query"]


def pattern(s, p, o) -> Triple:
    """Build a pattern triple; strings prefixed ``?`` become variables.

    Other strings become URIs; pass explicit :class:`BNode` /
    :class:`Literal` instances for those kinds.
    """

    def coerce(t):
        if isinstance(t, str):
            return Variable(t[1:]) if t.startswith("?") else URI(t)
        return t

    t = Triple(coerce(s), coerce(p), coerce(o))
    if not t.is_valid_pattern():
        raise ValueError(f"not a well-formed pattern triple: {t}")
    return t


class PatternGraph:
    """An RDF graph with some positions replaced by variables.

    A thin, immutable container used for tableau heads and bodies; the
    matching machinery works on its triples directly.
    """

    __slots__ = ("_triples",)

    def __init__(self, triples: Iterable):
        items = []
        for t in triples:
            if not isinstance(t, Triple):
                t = pattern(*t)
            if not t.is_valid_pattern():
                raise ValueError(f"not a well-formed pattern triple: {t}")
            items.append(t)
        self._triples: Tuple[Triple, ...] = tuple(
            sorted(set(items), key=lambda t: (str(t.s), str(t.p), str(t.o)))
        )

    @property
    def triples(self) -> Tuple[Triple, ...]:
        return self._triples

    def variables(self) -> FrozenSet[Variable]:
        out = set()
        for t in self._triples:
            out |= t.variables()
        return frozenset(out)

    def bnodes(self) -> FrozenSet[BNode]:
        out = set()
        for t in self._triples:
            out |= t.bnodes()
        return frozenset(out)

    def is_variable_free(self) -> bool:
        return not self.variables()

    def to_graph(self) -> RDFGraph:
        """Convert to an :class:`RDFGraph`; fails if variables remain."""
        return RDFGraph(self._triples)

    def __iter__(self):
        return iter(self._triples)

    def __len__(self):
        return len(self._triples)

    def __eq__(self, other):
        if not isinstance(other, PatternGraph):
            return NotImplemented
        return set(self._triples) == set(other._triples)

    def __hash__(self):
        return hash(frozenset(self._triples))

    def __str__(self):
        return ", ".join(str(t) for t in self._triples)

    def __repr__(self):
        return f"PatternGraph([{self}])"


@dataclass(frozen=True)
class Tableau:
    """``H ← B``: a head and a body (Section 4)."""

    head: PatternGraph
    body: PatternGraph

    def __post_init__(self):
        if self.body.bnodes():
            raise ValueError(
                "tableau bodies may not contain blank nodes (Note 4.2); "
                "use variables instead"
            )
        missing = self.head.variables() - self.body.variables()
        if missing:
            raise ValueError(
                f"head variables not bound by the body: "
                f"{sorted(v.value for v in missing)}"
            )

    def __str__(self):
        return f"{self.head} ← {self.body}"


@dataclass(frozen=True)
class Query:
    """A query ``(H, B, P, C)`` (Definition 4.1).

    ``premise`` defaults to the empty graph and ``constraints`` to the
    empty set, matching the paper's notational conventions.
    """

    tableau: Tableau
    premise: RDFGraph = field(default_factory=RDFGraph)
    constraints: FrozenSet[Variable] = frozenset()

    def __post_init__(self):
        object.__setattr__(self, "constraints", frozenset(self.constraints))
        if self.premise.voc() and not isinstance(self.premise, RDFGraph):
            raise TypeError("premise must be an RDFGraph")
        stray = self.constraints - self.head.variables()
        if stray:
            raise ValueError(
                "constraints must be variables occurring in the head: "
                f"stray {sorted(v.value for v in stray)}"
            )

    @property
    def head(self) -> PatternGraph:
        return self.tableau.head

    @property
    def body(self) -> PatternGraph:
        return self.tableau.body

    def is_simple(self) -> bool:
        """No RDFS vocabulary anywhere (the class of Section 5.4)."""
        from ..core.vocabulary import RDFS_VOCABULARY

        used = set()
        for t in tuple(self.head) + tuple(self.body):
            used.update(x for x in t if isinstance(x, URI))
        used |= set(self.premise.voc())
        return not (used & RDFS_VOCABULARY)

    def __str__(self):
        parts = [str(self.tableau)]
        if self.premise:
            parts.append(f"premise {self.premise}")
        if self.constraints:
            names = ", ".join(sorted(v.value for v in self.constraints))
            parts.append(f"constraints {{{names}}}")
        return "; ".join(parts)


def head_body_query(
    head: Iterable,
    body: Iterable,
    premise: Optional[RDFGraph] = None,
    constraints: Iterable[Variable] = (),
) -> Query:
    """Convenience constructor from raw head/body triple iterables."""
    return Query(
        tableau=Tableau(head=PatternGraph(head), body=PatternGraph(body)),
        premise=premise if premise is not None else RDFGraph(),
        constraints=frozenset(constraints),
    )
