"""Query containment (Section 5).

Two containment notions (Definition 5.1):

* **standard** ``q ⊑p q′`` — every pre-answer of ``q`` appears (up to
  isomorphism) among the pre-answers of ``q′``, on every database;
* **entailment-based** ``q ⊑m q′`` — ``ans(q′, D) ⊨ ans(q, D)`` for
  every database.

``⊑p`` implies ``⊑m`` (Proposition 5.2) but not conversely
(Example 5.3).  Both are decided via the certificate characterizations:

* Theorem 5.5 (no premises): substitutions θ of ``q′``'s body variables
  with ``θ(B′) ⊆ nf(B)`` (body variables of ``q`` frozen as constants),
  plus a head condition — isomorphism for ``⊑p``; a *union* of
  substituted heads entailing ``H`` for ``⊑m``;
* Theorem 5.7: the same with the constraint condition ``θ(C′) ⊆ C``;
* Theorem 5.8 (premise on the right, simple queries): ``θ(B′) ⊆ P′ + B``;
* Proposition 5.9 + 5.11 (premise on the left, simple queries):
  eliminate the premise into the finite union ``Ω_q`` and test each
  member.

Complexity: NP-complete without premises (Theorem 5.6); NP-hard and in
Π2P with premises (Theorem 5.12).

The substitution search (θ with ``θ(B′) ⊆ nf(B)``) runs on the matching
planner: ``q``'s body variables are frozen as constants, ``q′``'s stay
free, and the planner prunes candidate domains per variable before
enumerating — so containment checks benefit from the same component
decomposition and arc consistency as entailment.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from ..core.graph import RDFGraph
from ..core.homomorphism import iter_assignments
from ..core.isomorphism import isomorphic
from ..core.terms import BNode, Literal, Term, Triple, URI, Variable
from ..minimize.normal_form import normal_form
from ..semantics.entailment import entails
from .tableau import PatternGraph, Query, Tableau

__all__ = [
    "contained_standard",
    "contained_entailment",
    "premise_elimination",
    "body_substitutions",
]

#: Reserved URI prefix for frozen query variables.
_FROZEN_PREFIX = "urn:frozen-var:"


def _escape_term(term: Term) -> Term:
    """Alpha-rename user URIs that collide with the frozen namespace.

    A user constant ``urn:frozen-var:x`` would otherwise thaw into the
    query variable ``?x``; escaping it to ``urn:frozen-var:u!...`` keeps
    the frozen namespace private.  The renaming is injective (``u!`` vs
    the ``v!`` marker used for genuinely frozen variables) and applied
    uniformly to every graph entering frozen space, so homomorphism,
    isomorphism and core computations are unaffected.
    """
    if isinstance(term, URI) and term.value.startswith(_FROZEN_PREFIX):
        return URI(_FROZEN_PREFIX + "u!" + term.value)
    return term


def _freeze_term(term: Term) -> Term:
    if isinstance(term, Variable):
        return URI(_FROZEN_PREFIX + "v!" + term.value)
    return _escape_term(term)


def _thaw_term(term: Term) -> Term:
    if isinstance(term, URI) and term.value.startswith(_FROZEN_PREFIX):
        marked = term.value[len(_FROZEN_PREFIX):]
        if marked.startswith("v!"):
            return Variable(marked[2:])
        if marked.startswith("u!"):
            return URI(marked[2:])
    return term


def _freeze_pattern(pattern: PatternGraph) -> RDFGraph:
    """Variables → reserved URIs, giving a plain RDF graph."""
    return RDFGraph(
        Triple(_freeze_term(t.s), _freeze_term(t.p), _freeze_term(t.o))
        for t in pattern
    )


def _freeze_triples(triples) -> RDFGraph:
    return RDFGraph(
        Triple(_freeze_term(t.s), _freeze_term(t.p), _freeze_term(t.o))
        for t in triples
    )


def _apply_substitution(theta: Dict[Variable, Term], pattern: PatternGraph):
    """θ applied to a pattern graph; unbound variables stay variables."""
    out = []
    for t in pattern:
        out.append(
            Triple(
                theta.get(t.s, t.s) if isinstance(t.s, Variable) else t.s,
                theta.get(t.p, t.p) if isinstance(t.p, Variable) else t.p,
                theta.get(t.o, t.o) if isinstance(t.o, Variable) else t.o,
            )
        )
    return out


def body_substitutions(
    container: Query, containee_body_target: RDFGraph, contained: Query
) -> Iterator[Dict[Variable, Term]]:
    """All substitutions θ with ``θ(B_container) ⊆ target``.

    ``target`` is ``nf(B)`` (Theorem 5.5) or ``P′ + B`` (Theorem 5.8)
    with the *contained* query's body variables frozen; θ's images are
    thawed back so frozen variables reappear as :class:`Variable`.

    The container body's *constants* get the same collision escaping as
    the target (see :func:`_escape_term`), so a user URI inside the
    frozen namespace still matches its escaped image.
    """
    body = [
        Triple(
            t.s if isinstance(t.s, Variable) else _escape_term(t.s),
            t.p if isinstance(t.p, Variable) else _escape_term(t.p),
            t.o if isinstance(t.o, Variable) else _escape_term(t.o),
        )
        for t in container.body
    ]
    for assignment in iter_assignments(body, containee_body_target):
        yield {
            v: _thaw_term(t)
            for v, t in assignment.items()
            if isinstance(v, Variable)
        }


def _constraint_condition(
    theta: Dict[Variable, Term],
    container_constraints: FrozenSet[Variable],
    contained_constraints: FrozenSet[Variable],
    strict: bool,
) -> bool:
    """Condition (c) of Theorem 5.7: ``θ(C′) ⊆ C``.

    With ``strict=False`` (the default used by the public functions) a
    constrained variable may also land on a *constant*, which is always
    non-blank and therefore semantically safe — the literal statement of
    the theorem only allows constrained variables of the contained
    query, which is the reading ``strict=True`` enforces.
    """
    for x in container_constraints:
        image = theta.get(x, x)
        if isinstance(image, Variable):
            if image not in contained_constraints:
                return False
        elif isinstance(image, (URI, Literal)):
            if strict:
                return False
        else:  # a blank node: never guaranteed non-blank
            return False
    return True


def _head_iso(theta: Dict[Variable, Term], container: Query, contained: Query) -> bool:
    """Condition (b) for ⊑p: ``θ(H′) ≅ H`` (variables frozen, blanks free)."""
    substituted = _apply_substitution(theta, container.head)
    return isomorphic(
        _freeze_triples(substituted), _freeze_pattern(contained.head)
    )


def _heads_union_entails(
    thetas: List[Dict[Variable, Term]], container: Query, contained: Query
) -> bool:
    """Condition (b) for ⊑m: ``⋃_j θ_j(H′) ⊨ H`` (variables frozen).

    Using *all* valid substitutions is sound and complete: entailment is
    monotone in the left-hand graph, so if some subset of substituted
    heads entails ``H`` then the full union does.
    """
    union = RDFGraph()
    for theta in thetas:
        union = union.union(_freeze_triples(_apply_substitution(theta, container.head)))
    return entails(union, _freeze_pattern(contained.head))


def _standard_target(contained: Query) -> RDFGraph:
    """``nf(B)`` with the body's variables frozen (Theorem 5.5)."""
    return normal_form(_freeze_pattern(contained.body))


def _premise_target(contained: Query, container: Query) -> RDFGraph:
    """``P′ + B`` with B's variables frozen (Theorem 5.8, simple queries).

    The premise passes through :func:`_freeze_triples` too — it has no
    variables, but its URIs need the same collision escaping as the rest
    of the frozen target.
    """
    return _freeze_pattern(contained.body) + _freeze_triples(container.premise)


def premise_elimination(query: Query) -> List[Query]:
    """``Ω_q``: rewrite a simple query with premise into premise-free ones.

    Proposition 5.9: ``q ≡ ⋃ q_μ`` over all ``q_μ = (μ(H), μ(B − R), ∅)``
    where ``R ⊆ B`` and ``μ : R → P`` is a matching of the sub-body R
    into the premise such that ``μ(B − R)`` has no blank nodes.
    Exponential in ``|B|`` (the source of the Π2P upper bound of
    Theorem 5.12).
    """
    if not query.premise:
        return [query]
    body = list(query.body)
    results: List[Query] = []
    seen: Set[Tuple] = set()
    indices = range(len(body))
    for r in range(len(body) + 1):
        for chosen in itertools.combinations(indices, r):
            r_triples = [body[i] for i in chosen]
            rest = [body[i] for i in indices if i not in chosen]
            if not r_triples:
                candidates: List[Dict[Variable, Term]] = [{}]
            else:
                candidates = [
                    {v: t for v, t in a.items() if isinstance(v, Variable)}
                    for a in iter_assignments(r_triples, query.premise)
                ]
            for mu in candidates:
                new_body = _apply_substitution(mu, PatternGraph(rest))
                if any(
                    isinstance(term, BNode) for t in new_body for term in t
                ):
                    continue  # μ(B − R) must be blank-free
                # Constraints on variables μ already bound: a binding to
                # a blank of P violates the must-bind condition (drop
                # the member); otherwise the constraint is discharged.
                if any(
                    isinstance(mu.get(x), BNode) for x in query.constraints
                ):
                    continue
                remaining_constraints = frozenset(
                    x for x in query.constraints if x not in mu
                )
                new_head = _apply_substitution(mu, query.head)
                key = (frozenset(new_head), frozenset(new_body), remaining_constraints)
                if key in seen:
                    continue
                seen.add(key)
                results.append(
                    Query(
                        tableau=Tableau(
                            head=PatternGraph(new_head),
                            body=PatternGraph(new_body),
                        ),
                        premise=RDFGraph(),
                        constraints=remaining_constraints,
                    )
                )
    return results


def _check_premise_support(q: Query, q2: Query):
    if (q.premise or q2.premise) and not (q.is_simple() and q2.is_simple()):
        raise NotImplementedError(
            "containment with premises is characterized only for simple "
            "queries (Section 5.4); rdfs vocabulary would need the open "
            "extension the paper leaves for future work"
        )
    if q2.premise and (q.constraints or q2.constraints):
        # The paper omits this combination ("for the sake of simplicity");
        # a left-side premise composes fine (Ω_q adjusts the constraint
        # set per member), but Theorem 5.8's P′ + B target has no
        # constraint story.
        raise NotImplementedError(
            "containment with a premise on the containing side plus "
            "constraints is omitted in the paper (Section 5.4); "
            "eliminate one of the two first"
        )


def _contained_standard_no_left_premise(
    q: Query, q2: Query, strict_constraints: bool
) -> bool:
    """q ⊑p q2 where q has no premise (Theorems 5.5/5.7/5.8)."""
    if q2.premise:
        target = _premise_target(q, q2)
    else:
        target = _standard_target(q)
    for theta in body_substitutions(q2, target, q):
        if not _constraint_condition(
            theta, q2.constraints, q.constraints, strict_constraints
        ):
            continue
        if _head_iso(theta, q2, q):
            return True
    return False


def _contained_entailment_no_left_premise(
    q: Query, q2: Query, strict_constraints: bool
) -> bool:
    """q ⊑m q2 where q has no premise (Theorems 5.5/5.7/5.8)."""
    if q2.premise:
        target = _premise_target(q, q2)
    else:
        target = _standard_target(q)
    thetas = [
        theta
        for theta in body_substitutions(q2, target, q)
        if _constraint_condition(
            theta, q2.constraints, q.constraints, strict_constraints
        )
    ]
    if not thetas:
        return False
    return _heads_union_entails(thetas, q2, q)


def contained_standard(q: Query, q2: Query, strict_constraints: bool = False) -> bool:
    """Standard containment ``q ⊑p q2`` (Definition 5.1.1).

    NP-complete without premises (Theorem 5.6.1); NP-hard / in Π2P with
    premises (Theorem 5.12.1).  ``strict_constraints`` selects the
    literal reading of Theorem 5.7's condition (c) — see
    :func:`_constraint_condition`.
    """
    _check_premise_support(q, q2)
    if q.premise:
        return all(
            _contained_standard_no_left_premise(qm, q2, strict_constraints)
            for qm in premise_elimination(q)
        )
    return _contained_standard_no_left_premise(q, q2, strict_constraints)


def contained_entailment(q: Query, q2: Query, strict_constraints: bool = False) -> bool:
    """Entailment-based containment ``q ⊑m q2`` (Definition 5.1.2).

    NP-complete without premises (Theorem 5.6.2); NP-hard / in Π2P with
    premises (Theorem 5.12.2).
    """
    _check_premise_support(q, q2)
    if q.premise:
        return all(
            _contained_entailment_no_left_premise(qm, q2, strict_constraints)
            for qm in premise_elimination(q)
        )
    return _contained_entailment_no_left_premise(q, q2, strict_constraints)
