"""Tableau queries with path expressions in predicate position.

The nSPARQL direction from the paper's conclusions: body atoms may
navigate, not just match.  A :class:`PathQuery` is a tableau whose body
atoms are either ordinary pattern triples or *path atoms*
``(s, e, o)`` with ``e`` a :class:`~repro.navigation.PathExpression`;
the semantics extends Definition 4.3 by letting a path atom match any
pair in ``⟦e⟧`` over ``nf(D + P)``.

Evaluation reduces to the ordinary machinery: each path atom's pair
relation is materialized under a reserved virtual predicate, the
augmented graph is matched with the shared homomorphism solver, and the
head is instantiated exactly as for plain queries (Skolemized blanks
included).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Tuple

from ..core.graph import RDFGraph
from ..core.homomorphism import iter_assignments
from ..core.terms import BNode, Literal, Term, Triple, URI, Variable
from ..navigation.paths import PathExpression, evaluate_path
from .answers import single_answer
from .matching import matching_target, satisfies_constraints
from .tableau import PatternGraph, Query, Tableau

__all__ = ["PathAtom", "PathQuery", "path_atom"]

#: Reserved prefix for materialized path relations.
_VIRTUAL_PREFIX = "urn:path-atom:"


@dataclass(frozen=True)
class PathAtom:
    """A body atom ``(s, e, o)`` whose predicate is a path expression."""

    s: Term
    path: PathExpression
    o: Term

    def __post_init__(self):
        for position in (self.s, self.o):
            if not isinstance(position, (URI, BNode, Literal, Variable)):
                raise TypeError(f"bad path-atom endpoint: {position!r}")
        if isinstance(self.s, BNode) or isinstance(self.o, BNode):
            raise ValueError("path atoms, like bodies, use variables not blanks")

    def variables(self) -> FrozenSet[Variable]:
        return frozenset(
            t for t in (self.s, self.o) if isinstance(t, Variable)
        )

    def __str__(self):
        return f"({self.s}, {self.path}, {self.o})"


def path_atom(s, path, o) -> PathAtom:
    """Convenience constructor; accepts ``?var`` strings and path text."""
    from ..navigation.parser import parse_path
    from .tableau import pattern

    def coerce(t):
        if isinstance(t, str):
            return Variable(t[1:]) if t.startswith("?") else URI(t)
        return t

    if isinstance(path, str):
        path = parse_path(path)
    return PathAtom(s=coerce(s), path=path, o=coerce(o))


@dataclass(frozen=True)
class PathQuery:
    """A tableau query whose body may contain path atoms.

    ``head`` is an ordinary pattern graph (blanks allowed, Skolemized in
    answers); every head variable must occur in some body atom.
    """

    head: PatternGraph
    plain_body: PatternGraph
    path_atoms: Tuple[PathAtom, ...]
    premise: RDFGraph = field(default_factory=RDFGraph)
    constraints: FrozenSet[Variable] = frozenset()

    def __post_init__(self):
        body_vars = set(self.plain_body.variables())
        for atom in self.path_atoms:
            body_vars |= atom.variables()
        missing = self.head.variables() - body_vars
        if missing:
            raise ValueError(
                f"head variables not bound by the body: "
                f"{sorted(v.value for v in missing)}"
            )
        stray = set(self.constraints) - self.head.variables()
        if stray:
            raise ValueError("constraints must be head variables")

    # -- evaluation ------------------------------------------------------

    def _augmented(self, database: RDFGraph) -> Tuple[RDFGraph, List[Triple]]:
        """Materialize path relations; return (graph, full body patterns)."""
        target = matching_target(database, self.premise)
        work = target
        body = list(self.plain_body)
        for index, atom in enumerate(self.path_atoms):
            predicate = URI(f"{_VIRTUAL_PREFIX}{index}")
            pairs = evaluate_path(atom.path, target)
            triples = []
            for x, y in pairs:
                candidate = Triple(x, predicate, y)
                if candidate.is_valid_rdf():
                    triples.append(candidate)
            work = work.union(RDFGraph(triples))
            body.append(Triple(atom.s, predicate, atom.o))
        return work, body

    def pre_answers(self, database: RDFGraph) -> List[RDFGraph]:
        """Single answers, extending Definition 4.3 to path atoms."""
        work, body = self._augmented(database)
        # Reuse the plain-query head instantiation via a shim Query whose
        # body variable set matches (for Skolem argument ordering).
        variables = set()
        for t in body:
            variables |= t.variables()
        shim_body = PatternGraph(
            [Triple(v, URI("urn:shim"), v) for v in sorted(variables, key=str)]
        )
        shim = Query(
            tableau=Tableau(head=self.head, body=shim_body),
            premise=RDFGraph(),
            constraints=self.constraints,
        )
        seen = set()
        out: List[RDFGraph] = []
        for assignment in iter_assignments(body, work):
            valuation = {
                v: t for v, t in assignment.items() if isinstance(v, Variable)
            }
            if not satisfies_constraints(valuation, self.constraints):
                continue
            answer = single_answer(shim, valuation)
            if answer is None or answer.triples in seen:
                continue
            seen.add(answer.triples)
            out.append(answer)
        out.sort(key=lambda g: tuple(str(t) for t in g.sorted_triples()))
        return out

    def answer_union(self, database: RDFGraph) -> RDFGraph:
        out = RDFGraph()
        for answer in self.pre_answers(database):
            out = out.union(answer)
        return out

    def __str__(self):
        atoms = ", ".join(
            [str(t) for t in self.plain_body] + [str(a) for a in self.path_atoms]
        )
        return f"{self.head} ← {atoms}"


def build_path_query(
    head: Iterable,
    plain_body: Iterable = (),
    path_atoms: Iterable[PathAtom] = (),
    premise: Optional[RDFGraph] = None,
    constraints: Iterable[Variable] = (),
) -> PathQuery:
    """Convenience constructor mirroring :func:`head_body_query`."""
    return PathQuery(
        head=PatternGraph(head),
        plain_body=PatternGraph(plain_body),
        path_atoms=tuple(path_atoms),
        premise=premise if premise is not None else RDFGraph(),
        constraints=frozenset(constraints),
    )
