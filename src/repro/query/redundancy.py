"""Redundancy elimination in answers (Section 6.2).

Answers of RDF queries routinely contain redundancies even when the
database is lean and the query's head and body are lean (the paper's
``G1``/``G2`` example).  The cost of eliminating them depends on the
answer semantics:

* **union semantics** — deciding whether ``ans∪(q, D)`` is lean is
  coNP-complete in ``|D|`` (Theorem 6.2): blanks of different single
  answers may interact arbitrarily, so only the general leanness check
  applies;
* **merge semantics** — polynomial (Theorem 6.3): single answers have
  pairwise-disjoint blanks, so every endomorphism of the merged answer
  decomposes into *single maps* (one per single answer), and a proper
  endomorphism exists iff some single answer maps into the merged
  answer while avoiding one of its own non-ground triples.
"""

from __future__ import annotations

from typing import List

from ..core.graph import RDFGraph
from ..core.homomorphism import find_assignment
from ..core.terms import BNode
from ..minimize.core_graph import core
from ..minimize.lean import is_lean
from .answers import answer_merge, answer_union, pre_answers
from .tableau import Query

__all__ = [
    "union_answer_is_lean",
    "merge_answer_is_lean",
    "merge_is_lean_given_answers",
    "reduced_answer",
]


def union_answer_is_lean(query: Query, database: RDFGraph) -> bool:
    """Is ``ans∪(q, D)`` lean?  coNP-complete in |D| (Theorem 6.2)."""
    return is_lean(answer_union(query, database))


def merge_is_lean_given_answers(single_answers: List[RDFGraph]) -> bool:
    """Theorem 6.3's polynomial algorithm, on pre-merged single answers.

    The merged answer ``A`` is non-lean iff some single answer ``G_k``
    admits a map into ``A − {t}`` for one of its own non-ground triples
    ``t``:

    * (⇐) extend the map by the identity on every other single answer
      (blanks are disjoint, so the union of single maps is a function);
      the union misses ``t`` (no other answer contains ``t``, as ``t``
      holds blanks owned by ``G_k``), hence is proper.
    * (⇒) a proper endomorphism of ``A`` misses some non-ground
      ``t ∈ G_k``; its restriction to ``G_k`` is the wanted single map.

    Each search is a homomorphism test from a *query-sized* graph, so
    for a fixed query the whole procedure is polynomial in ``|D|``.
    """
    merged = RDFGraph()
    relabelled: List[RDFGraph] = []
    for index, answer in enumerate(single_answers):
        renaming = {n: BNode(f"a{index}_{n.value}") for n in answer.bnodes()}
        renamed = answer.rename_bnodes(renaming)
        relabelled.append(renamed)
        merged = merged.union(renamed)
    for single in relabelled:
        for t in single.sorted_triples():
            if t.is_ground():
                continue
            target = merged - {t}
            if find_assignment(list(single), target) is not None:
                return False
    return True


def merge_answer_is_lean(query: Query, database: RDFGraph) -> bool:
    """Is ``ans+(q, D)`` lean?  Polynomial in |D| (Theorem 6.3)."""
    return merge_is_lean_given_answers(pre_answers(query, database))


def reduced_answer(
    query: Query, database: RDFGraph, semantics: str = "union"
) -> RDFGraph:
    """The answer with redundancy eliminated: its core.

    This is the paper's "naive approach" — compute the answer, then a
    lean equivalent — which Theorem 6.2 shows is worst-case optimal for
    union semantics.
    """
    if semantics == "union":
        return core(answer_union(query, database))
    if semantics == "merge":
        return core(answer_merge(query, database))
    raise ValueError(f"unknown semantics {semantics!r}; use 'union' or 'merge'")
