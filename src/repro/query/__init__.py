"""The tableau query language for RDF (Sections 4–6 of the paper).

Queries ``(H, B, P, C)``, matchings against ``nf(D + P)``, union/merge
answer semantics, standard and entailment-based containment, and
redundancy elimination.
"""

from .answers import (
    answer_merge,
    answer_union,
    answers,
    answers_from_valuations,
    identity_query,
    pre_answers,
    pre_answers_from_valuations,
    single_answer,
    skolem_term,
)
from .cache import QueryCache, canonical_body
from .containment import (
    body_substitutions,
    contained_entailment,
    contained_standard,
    premise_elimination,
)
from .matching import (
    iter_matchings,
    matching_plan,
    matching_target,
    satisfies_constraints,
)
from .redundancy import (
    merge_answer_is_lean,
    merge_is_lean_given_answers,
    reduced_answer,
    union_answer_is_lean,
)
from .path_queries import PathAtom, PathQuery, build_path_query, path_atom
from .tableau import PatternGraph, Query, Tableau, head_body_query, pattern
from .unions import UnionQuery, union_contained_entailment, union_contained_standard
from .views import View, ViewCatalog, unfold_query

__all__ = [
    "PathAtom",
    "PathQuery",
    "UnionQuery",
    "build_path_query",
    "path_atom",
    "View",
    "ViewCatalog",
    "unfold_query",
    "union_contained_entailment",
    "union_contained_standard",
    "PatternGraph",
    "Query",
    "QueryCache",
    "Tableau",
    "answer_merge",
    "answer_union",
    "answers",
    "answers_from_valuations",
    "canonical_body",
    "pre_answers_from_valuations",
    "body_substitutions",
    "contained_entailment",
    "contained_standard",
    "head_body_query",
    "identity_query",
    "iter_matchings",
    "matching_plan",
    "matching_target",
    "merge_answer_is_lean",
    "merge_is_lean_given_answers",
    "pattern",
    "pre_answers",
    "premise_elimination",
    "reduced_answer",
    "satisfies_constraints",
    "single_answer",
    "skolem_term",
    "union_answer_is_lean",
]
