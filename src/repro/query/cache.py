"""Two-tier query cache: prepared plans + semantic answers (Section 5 applied).

Serving layer for :meth:`repro.store.TripleStore.query`.  Two tiers:

* **Tier 1 — plan cache.**  Query bodies are canonicalized into a
  *shape key* (body triples sorted by constant/variable template,
  variables renamed ``V0, V1, ...`` by first occurrence, constants
  parameterized out into a tuple), so repeated traffic — including
  alpha-variant restatements of the same query — reuses the
  :func:`repro.core.planner.prepare_match` planner state instead of
  re-running candidate collection and arc consistency.

* **Tier 2 — semantic answer cache.**  Each evaluated body caches its
  full *unfiltered* valuation set (every matching ``v`` with
  ``v(B) ⊆ nf(D)``, before the constraint filter).  An incoming query
  is admitted against a cached entry by a Theorem 5.5/5.7-style
  certificate: a substitution σ of the entry body ``B′``'s variables
  with ``σ(B′) = B`` *exactly* (as triple sets; σ may merge variables
  or bind them to constants).  This is the fragment of the theorem's
  ``θ(B′) ⊆ nf(B)`` condition under which cached valuations can be
  *completely* re-targeted: for any matching ``w`` of ``B′``,
  ``w ∘ σ`` restricted consistently is a matching of ``B``, and
  conversely every matching ``v`` of ``B`` arises as ``v ∘ σ`` — so
  filtering the cached valuation list yields exactly the matchings of
  ``B``, a scan instead of a search.  The incoming query's *own* head,
  constraints and Skolem functions are then applied via
  :func:`repro.query.answers.answers_from_valuations`, making cached
  answers byte-identical to uncached ones.

The certificate search reuses the containment module's frozen-variable
machinery (``B``'s variables frozen as reserved URIs, ``B′`` matched
into the frozen graph by the planner), collision-escaped exactly like
:func:`repro.query.containment.body_substitutions`.

**Invalidation is exact, not TTL-based.**  The store's DRed commit
pipeline reports each batched delta's *net closure row changes*
(insertions from ``extend_fixpoint_into``, surviving deletions from
``retract_fixpoint_into``).  For a ground dataset ``nf = cl`` (a ground
graph is its own core), so an entry's valuations can only change when a
changed closure row *matches one of its body patterns* — constants must
equal the row's interned IDs, variables match anything.  Entries and
plans whose patterns overlap no changed row survive the delta; the rest
are dropped.  Datasets containing blank nodes get a conservative full
flush (core folding can propagate a delta across predicates), as do
oversized deltas and recovery paths.  A monotonic store version guards
every read as a belt-and-braces check.

Eviction: LRU over answer entries under a byte budget (valuations and
memoized answer graphs are size-estimated) and an entry cap; plans have
their own LRU cap.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..core.graph import RDFGraph
from ..core.planner import prepare_match
from ..core.homomorphism import iter_assignments
from ..core.terms import Term, Triple, Variable
from .answers import answers_from_valuations
from .containment import _escape_term, _freeze_pattern, _thaw_term
from .matching import Valuation
from .tableau import PatternGraph, Query

__all__ = ["QueryCache", "canonical_body"]

#: Counter names (declared at zero in repro.obs.STANDARD_COUNTERS).
HITS = "query.cache.hits"
MISSES = "query.cache.misses"
CONTAINMENT_HITS = "query.cache.containment_hits"
PLAN_HITS = "query.cache.plan_hits"
INVALIDATIONS = "query.cache.invalidations"
EVICTIONS = "query.cache.evictions"

#: Certificate search: assignments examined per candidate entry before
#: giving up (bounds pathological automorphism-rich bodies).
_CERTIFICATE_BUDGET = 200

#: Deltas larger than this flush the whole cache instead of testing
#: overlap row by row.
_MAX_SELECTIVE_ROWS = 512

_ABSENT = object()


def canonical_body(body: PatternGraph):
    """Shape key of a body: ``(shape, constants, names)``.

    ``shape`` is a tuple of triple templates over canonical variable
    names (``"V0"``, by first occurrence) and constant *indices* into
    the ``constants`` tuple (parameterized out, also by first
    occurrence).  Alpha-variant bodies map to the same ``(shape,
    constants)`` pair whenever the template sort orders their triples
    compatibly; an automorphic body that sorts differently just misses
    the plan cache — never a correctness issue.  ``names`` maps each
    body variable to its canonical name (the translation hook for
    reusing a plan across alpha-variants).
    """
    def template(t: Triple):
        out = []
        for x in (t.s, t.p, t.o):
            if isinstance(x, Variable):
                out.append((1, "", ""))
            else:
                out.append((0, x.__class__.__name__, x.value))
        return tuple(out)

    ordered = sorted(body, key=template)
    names: Dict[Variable, str] = {}
    constants: List[Term] = []
    const_index: Dict[Term, int] = {}
    shape: List[Tuple] = []
    for t in ordered:
        row = []
        for x in (t.s, t.p, t.o):
            if isinstance(x, Variable):
                name = names.get(x)
                if name is None:
                    name = names[x] = f"V{len(names)}"
                row.append(name)
            else:
                i = const_index.get(x)
                if i is None:
                    i = const_index[x] = len(constants)
                    constants.append(x)
                row.append(i)
        shape.append(tuple(row))
    return tuple(shape), tuple(constants), names


def _body_patterns(body: PatternGraph) -> Tuple[Tuple[Optional[Term], ...], ...]:
    """Invalidation view of a body: constants kept, variables → None."""
    return tuple(
        tuple(None if isinstance(x, Variable) else x for x in (t.s, t.p, t.o))
        for t in body
    )


def _overlaps(patterns, rows, resolve, memo) -> bool:
    """Can any pattern triple match any changed closure row?

    ``resolve`` maps a constant term to its interned ID (None when the
    store has never seen the term — then no existing row can mention
    it).  A variable position matches any ID; a constant position must
    equal the row's ID exactly.
    """
    for pattern in patterns:
        ids = []
        resolvable = True
        for term in pattern:
            if term is None:
                ids.append(None)
                continue
            i = memo.get(term, _ABSENT)
            if i is _ABSENT:
                i = resolve(term)
                memo[term] = i
            if i is None:
                resolvable = False
                break
            ids.append(i)
        if not resolvable:
            continue
        s, p, o = ids
        for row in rows:
            if (
                (s is None or s == row[0])
                and (p is None or p == row[1])
                and (o is None or o == row[2])
            ):
                return True
    return False


class _PlanEntry:
    __slots__ = ("prepared", "names", "patterns", "version")

    def __init__(self, prepared, names, patterns, version):
        self.prepared = prepared
        #: Build-time variable → canonical name (for alpha translation).
        self.names = names
        self.patterns = patterns
        self.version = version


class _CacheEntry:
    __slots__ = (
        "body",
        "variables",
        "valuations",
        "patterns",
        "answers",
        "bytes",
        "version",
    )

    def __init__(self, body: PatternGraph, valuations: List[Valuation], version: int):
        self.body = body
        self.variables: FrozenSet[Variable] = frozenset(body.variables())
        #: Every matching of the body into nf(D), *unfiltered* by any
        #: constraint set — so differently-constrained queries over the
        #: same (or a subsuming) body can all be served from it.
        self.valuations = valuations
        self.patterns = _body_patterns(body)
        #: Memoized final graphs keyed by (query, semantics).
        self.answers: Dict[Tuple[Query, str], RDFGraph] = {}
        self.version = version
        self.bytes = 256 + sum(
            48 + 56 * len(v) for v in valuations
        )


def _answer_bytes(graph: RDFGraph) -> int:
    return 64 + 120 * len(graph)


class QueryCache:
    """LRU two-tier cache; see the module docstring for semantics.

    ``count`` is the owning store's counter hook (metric name, amount);
    all ``query.cache.*`` counters flow through it so ``repro stats``
    and the obs registry see them.
    """

    def __init__(
        self,
        max_bytes: int = 32 << 20,
        max_entries: int = 256,
        max_plans: int = 128,
        answer_cache: bool = True,
        count: Optional[Callable] = None,
    ):
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.max_plans = max_plans
        #: With the answer tier off the cache degrades to tier 1 only:
        #: every query re-enumerates, reusing prepared plans (the
        #: benchmark's plan-isolation mode).
        self.answer_cache = answer_cache
        self._count = count if count is not None else (lambda name, amount=1: None)
        self._entries: "OrderedDict[PatternGraph, _CacheEntry]" = OrderedDict()
        self._by_query: Dict[Tuple[Query, str], PatternGraph] = {}
        self._plans: "OrderedDict[Tuple, _PlanEntry]" = OrderedDict()
        self._bytes = 0

    # -- introspection -------------------------------------------------

    def info(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "plans": len(self._plans),
            "bytes": self._bytes,
            "max_bytes": self.max_bytes,
        }

    def __len__(self) -> int:
        return len(self._entries)

    # -- serving -------------------------------------------------------

    def answer(
        self, query: Query, semantics: str, target: RDFGraph, version: int
    ) -> RDFGraph:
        """Serve ``ans(query, D)`` where ``target = nf(D)`` at *version*.

        Premise-free queries only (the store routes premised queries
        around the cache: their matching target ``nf(D + P)`` is not
        the store's normal form).
        """
        if self.answer_cache:
            served = self._serve_cached(query, semantics, version)
            if served is not None:
                return served
        self._count(MISSES)
        valuations = self._evaluate(query, target, version)
        graph = answers_from_valuations(query, valuations, semantics)
        if self.answer_cache:
            entry = self._entries.get(query.body)
            if entry is None or entry.version != version:
                entry = _CacheEntry(query.body, valuations, version)
                self._store_entry(entry)
            self._memoize(entry, (query, semantics), graph)
            self._evict()
        return graph

    def _serve_cached(
        self, query: Query, semantics: str, version: int
    ) -> Optional[RDFGraph]:
        key = (query, semantics)
        body = self._by_query.get(key)
        if body is not None:
            entry = self._entries.get(body)
            if entry is not None and entry.version == version:
                self._entries.move_to_end(body)
                self._count(HITS)
                return entry.answers[key]
            # Stale index row (version guard tripped): drop it.
            self._drop_entry(body)

        # Identity certificate: an entry over this exact body serves
        # any head/constraint/semantics variant by re-instantiation.
        entry = self._entries.get(query.body)
        if entry is not None and entry.version == version:
            self._entries.move_to_end(query.body)
            self._count(CONTAINMENT_HITS)
            graph = answers_from_valuations(query, entry.valuations, semantics)
            self._memoize(entry, key, graph)
            self._evict()
            return graph

        found = self._find_certificate(query, version)
        if found is None:
            return None
        entry, sigma = found
        self._entries.move_to_end(entry.body)
        self._count(CONTAINMENT_HITS)
        valuations = self._retarget(entry, sigma, query)
        graph = answers_from_valuations(query, valuations, semantics)
        self._memoize(entry, key, graph)
        self._evict()
        return graph

    def _find_certificate(self, query: Query, version: int):
        """MRU-first scan for an entry with ``σ(B′) = B``."""
        body = query.body
        body_set = frozenset(body)
        body_len = len(body_set)
        body_constants = frozenset(
            x for t in body for x in (t.s, t.p, t.o) if not isinstance(x, Variable)
        )
        frozen_body: Optional[RDFGraph] = None
        for entry in reversed(self._entries.values()):
            if entry.version != version or entry.body == body:
                continue
            if len(entry.body) < body_len:
                continue  # σ maps B′ onto B, so |B′| ≥ |B|
            if not self._entry_constants(entry) <= body_constants:
                continue  # σ fixes constants, so each must appear in B
            if frozen_body is None:
                frozen_body = _freeze_pattern(body)
            sigma = self._certificate(entry, body_set, frozen_body)
            if sigma is not None:
                return entry, sigma
        return None

    @staticmethod
    def _entry_constants(entry: _CacheEntry) -> FrozenSet[Term]:
        return frozenset(
            term for pattern in entry.patterns for term in pattern
            if term is not None
        )

    @staticmethod
    def _certificate(entry, body_set, frozen_body):
        """A substitution σ of the entry's body variables with
        ``σ(B′) = body`` exactly, or None.  Runs the planner against the
        frozen incoming body, the same way the containment decision
        procedure does (collision escaping included)."""
        pattern = [
            Triple(
                t.s if isinstance(t.s, Variable) else _escape_term(t.s),
                t.p if isinstance(t.p, Variable) else _escape_term(t.p),
                t.o if isinstance(t.o, Variable) else _escape_term(t.o),
            )
            for t in entry.body
        ]
        examined = 0
        for assignment in iter_assignments(pattern, frozen_body):
            sigma = {
                v: _thaw_term(term)
                for v, term in assignment.items()
                if isinstance(v, Variable)
            }
            applied = set()
            for t in entry.body:
                applied.add(
                    Triple(
                        sigma.get(t.s, t.s) if isinstance(t.s, Variable) else t.s,
                        sigma.get(t.p, t.p) if isinstance(t.p, Variable) else t.p,
                        sigma.get(t.o, t.o) if isinstance(t.o, Variable) else t.o,
                    )
                )
            if applied == body_set:
                return sigma
            examined += 1
            if examined >= _CERTIFICATE_BUDGET:
                break
        return None

    @staticmethod
    def _retarget(
        entry: _CacheEntry, sigma: Dict[Variable, Term], query: Query
    ) -> List[Valuation]:
        """Filter/substitute cached valuations through σ.

        ``w ↦ v`` with ``v(x) = w(y)`` for ``σ(y) = x``; a valuation is
        dropped when σ binds ``y`` to a constant ``w`` disagrees with,
        or merges variables ``w`` binds apart.  Complete because every
        matching ``v`` of the incoming body induces the cached matching
        ``v ∘ σ`` (see module docstring).
        """
        pairs = [(y, sigma[y]) for y in entry.variables]
        out: List[Valuation] = []
        for w in entry.valuations:
            v: Valuation = {}
            ok = True
            for y, image in pairs:
                wy = w[y]
                if isinstance(image, Variable):
                    current = v.get(image, _ABSENT)
                    if current is _ABSENT:
                        v[image] = wy
                    elif current != wy:
                        ok = False
                        break
                elif wy != image:
                    ok = False
                    break
            if ok:
                out.append(v)
        return out

    # -- evaluation (tier 1) -------------------------------------------

    def _evaluate(
        self, query: Query, target: RDFGraph, version: int
    ) -> List[Valuation]:
        """All matchings of the body into *target*, via the plan cache."""
        shape, constants, names = canonical_body(query.body)
        plan_key = (shape, constants)
        plan = self._plans.get(plan_key)
        if plan is not None and plan.version == version:
            self._plans.move_to_end(plan_key)
            self._count(PLAN_HITS)
            if plan.names == names:
                translate = None
            else:
                inverse = {name: var for var, name in names.items()}
                translate = {
                    built: inverse[name] for built, name in plan.names.items()
                }
            valuations: List[Valuation] = []
            for assignment in plan.prepared.assignments():
                if translate is None:
                    v = {
                        x: t
                        for x, t in assignment.items()
                        if isinstance(x, Variable)
                    }
                else:
                    v = {
                        translate[x]: t
                        for x, t in assignment.items()
                        if isinstance(x, Variable)
                    }
                valuations.append(v)
            return valuations
        prepared = prepare_match(list(query.body), target)
        patterns = tuple(
            tuple(
                None if isinstance(x, str) else constants[x] for x in row
            )
            for row in shape
        )
        self._plans[plan_key] = _PlanEntry(prepared, names, patterns, version)
        self._plans.move_to_end(plan_key)
        while len(self._plans) > self.max_plans:
            self._plans.popitem(last=False)
            self._count(EVICTIONS)
        return [
            {x: t for x, t in assignment.items() if isinstance(x, Variable)}
            for assignment in prepared.assignments()
        ]

    # -- admission / eviction ------------------------------------------

    def _store_entry(self, entry: _CacheEntry) -> None:
        old = self._entries.pop(entry.body, None)
        if old is not None:
            self._forget_bytes(old)
        self._entries[entry.body] = entry
        self._bytes += entry.bytes

    def _memoize(self, entry: _CacheEntry, key, graph: RDFGraph) -> None:
        if key not in entry.answers:
            entry.answers[key] = graph
            cost = _answer_bytes(graph)
            entry.bytes += cost
            self._bytes += cost
            self._by_query[key] = entry.body

    def _forget_bytes(self, entry: _CacheEntry) -> None:
        self._bytes -= entry.bytes
        for key in entry.answers:
            self._by_query.pop(key, None)

    def _drop_entry(self, body: PatternGraph) -> None:
        entry = self._entries.pop(body, None)
        if entry is not None:
            self._forget_bytes(entry)

    def _evict(self) -> None:
        while self._entries and (
            self._bytes > self.max_bytes or len(self._entries) > self.max_entries
        ):
            _, entry = self._entries.popitem(last=False)
            self._forget_bytes(entry)
            self._count(EVICTIONS)

    # -- invalidation --------------------------------------------------

    def invalidate_all(self) -> None:
        """Drop every entry and plan (conservative paths: blank-node
        datasets, oversized deltas, lazy-closure writes, recovery)."""
        dropped = len(self._entries) + len(self._plans)
        if dropped:
            self._count(INVALIDATIONS, dropped)
        self._entries.clear()
        self._by_query.clear()
        self._plans.clear()
        self._bytes = 0

    def invalidate_delta(
        self,
        rows: Iterable[Tuple[int, int, int]],
        resolve: Callable[[Term], Optional[int]],
        version: int,
    ) -> None:
        """Exact DRed-delta invalidation (ground datasets).

        *rows* are the net closure-row changes of one flushed delta
        (interned, already skolem-free for a ground dataset); entries
        and plans whose body patterns overlap any of them are dropped,
        all survivors advance to the post-delta *version*.
        """
        rows = list(rows)
        if not rows:
            for entry in self._entries.values():
                entry.version = version
            for plan in self._plans.values():
                plan.version = version
            return
        if len(rows) > _MAX_SELECTIVE_ROWS:
            self.invalidate_all()
            return
        memo: Dict[Term, Optional[int]] = {}
        dead_bodies = [
            body
            for body, entry in self._entries.items()
            if _overlaps(entry.patterns, rows, resolve, memo)
        ]
        for body in dead_bodies:
            self._drop_entry(body)
        dead_plans = [
            key
            for key, plan in self._plans.items()
            if _overlaps(plan.patterns, rows, resolve, memo)
        ]
        for key in dead_plans:
            del self._plans[key]
        dropped = len(dead_bodies) + len(dead_plans)
        if dropped:
            self._count(INVALIDATIONS, dropped)
        for entry in self._entries.values():
            entry.version = version
        for plan in self._plans.values():
            plan.version = version
