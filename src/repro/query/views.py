"""Views and query composition over RDF databases.

The paper's compositionality requirement (Section 4.1 — "we need to
output results in the same format as input data") is exactly what makes
views work: a query's answer is an RDF graph, so it can serve as (part
of) the database of the next query.  This module packages that:

* :class:`View` — a named query; :meth:`View.materialize` computes its
  answer graph over a database;
* :class:`ViewCatalog` — a set of views; ``extended_database`` merges
  every materialized view into the base data (blank-safe), after which
  downstream queries may match view-produced triples — composition /
  subquerying from the paper's future-work list;
* view-aware containment: a query over the extended database is a
  query with the views' *definitions* folded in, so `q1 ⊑ q2 given V`
  reduces to plain containment of the unfolded queries when the view
  heads are disjoint from base predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..core.graph import RDFGraph
from ..core.terms import Triple, URI, Variable
from .answers import answers
from .tableau import PatternGraph, Query, Tableau

__all__ = ["View", "ViewCatalog", "unfold_query"]


@dataclass(frozen=True)
class View:
    """A named query whose answer acts as a derived graph."""

    name: str
    query: Query

    def materialize(self, database: RDFGraph, semantics: str = "union") -> RDFGraph:
        """The view's extension over *database*."""
        return answers(self.query, database, semantics=semantics)

    def head_predicates(self) -> frozenset:
        """The URIs the view produces in predicate position."""
        return frozenset(
            t.p for t in self.query.head if isinstance(t.p, URI)
        )

    def __str__(self):
        return f"view {self.name}: {self.query.tableau}"


class ViewCatalog:
    """A collection of views over one base vocabulary."""

    def __init__(self, views: Iterable[View] = ()):
        self._views: Dict[str, View] = {}
        for view in views:
            self.add(view)

    def add(self, view: View) -> None:
        if view.name in self._views:
            raise ValueError(f"duplicate view name {view.name!r}")
        self._views[view.name] = view

    def __getitem__(self, name: str) -> View:
        return self._views[name]

    def __iter__(self):
        return iter(sorted(self._views.values(), key=lambda v: v.name))

    def __len__(self):
        return len(self._views)

    def extended_database(
        self, database: RDFGraph, semantics: str = "union"
    ) -> RDFGraph:
        """Base data merged with every materialized view.

        Views are materialized against the *base* database (no
        view-over-view recursion; compose catalogs explicitly for
        layering) and merged in, keeping any Skolem blanks apart from
        the base blanks.
        """
        extended = database
        for view in self:
            extension = view.materialize(database, semantics=semantics)
            extended = extended + extension
        return extended

    def query(
        self, q: Query, database: RDFGraph, semantics: str = "union"
    ) -> RDFGraph:
        """Answer *q* over the base plus all views."""
        return answers(q, self.extended_database(database), semantics=semantics)


def _rename_apart(query: Query, suffix: str) -> Tuple[List[Triple], List[Triple]]:
    """The query's head/body with variables renamed by *suffix*."""

    def rn(term):
        return Variable(f"{term.value}_{suffix}") if isinstance(term, Variable) else term

    head = [Triple(rn(t.s), rn(t.p), rn(t.o)) for t in query.head]
    body = [Triple(rn(t.s), rn(t.p), rn(t.o)) for t in query.body]
    return head, body


def unfold_query(q: Query, catalog: ViewCatalog) -> Query:
    """Replace view-predicate body atoms by the views' definitions.

    Standard conjunctive-query view unfolding: a body triple whose
    predicate is produced by exactly one single-triple-headed view is
    unified with that view's head and replaced by the view's body
    (variables renamed apart).  Triples over base predicates pass
    through.  Raises :class:`ValueError` for ambiguous or non-atomic
    view heads — the catalog author should keep view heads single-triple
    for unfolding to be well-defined.
    """
    producers: Dict[URI, View] = {}
    for view in catalog:
        for p in view.head_predicates():
            if p in producers:
                raise ValueError(f"predicate {p} produced by multiple views")
            producers[p] = view

    new_body: List[Triple] = []
    counter = 0
    for t in q.body:
        view = producers.get(t.p) if isinstance(t.p, URI) else None
        if view is None:
            new_body.append(t)
            continue
        head_triples = list(view.query.head)
        if len(head_triples) != 1:
            raise ValueError(
                f"view {view.name!r} has a non-atomic head; cannot unfold"
            )
        counter += 1
        v_head, v_body = _rename_apart(view.query, f"u{counter}")
        (head_triple,) = v_head
        # Unify the body atom (t.s, _, t.o) with the view head.
        substitution: Dict[Variable, object] = {}

        def unify(view_term, query_term):
            if isinstance(view_term, Variable):
                existing = substitution.get(view_term)
                if existing is not None and existing != query_term:
                    raise ValueError(
                        f"cannot unfold: conflicting bindings for {view_term}"
                    )
                substitution[view_term] = query_term
            elif view_term != query_term:
                raise ValueError(
                    f"cannot unfold: head constant {view_term} ≠ {query_term}"
                )

        unify(head_triple.s, t.s)
        unify(head_triple.o, t.o)
        for bt in v_body:
            new_body.append(
                Triple(
                    substitution.get(bt.s, bt.s),
                    substitution.get(bt.p, bt.p),
                    substitution.get(bt.o, bt.o),
                )
            )
    return Query(
        tableau=Tableau(head=q.tableau.head, body=PatternGraph(new_body)),
        premise=q.premise,
        constraints=q.constraints,
    )
