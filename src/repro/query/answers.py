"""Answers to queries: pre-answers, union and merge semantics (Section 4.1).

For a query ``q = (H, B, P, C)`` and database ``D``:

* :func:`pre_answers` — the set ``preans(q, D)`` of *single answers*
  ``v(H)``, over all matchings ``v`` of ``B`` in ``nf(D + P)``
  satisfying ``C`` and yielding well-formed graphs (Definition 4.3).
  Blank nodes in the head are replaced by Skolem terms
  ``f_N(v(?X1), ..., v(?Xk))`` over *all* body variables, implemented
  as deterministic hashed blank labels — the same valuation always
  produces the same blank, across databases, as Proposition 4.5
  requires.
* :func:`answer_union` — ``ans∪(q, D)``: the union of single answers.
  The more intuitive semantics: it admits an identity query (Note 4.7)
  and preserves blank-node "bridges" between single answers.
* :func:`answer_merge` — ``ans+(q, D)``: the merge (blanks of distinct
  single answers renamed apart), useful when combining several sources,
  at the cost of not having a data-independent identity query.

Matchings are enumerated by the matching planner (via
:func:`repro.query.matching.iter_matchings`); use
:func:`repro.query.matching.matching_plan` to see how a body decomposes
and which per-component strategy evaluation will use.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional

from ..core.graph import RDFGraph
from ..core.terms import BNode, Term, Triple, Variable
from .matching import (
    Valuation,
    iter_matchings,
    matching_target,
    satisfies_constraints,
)
from .tableau import Query

__all__ = [
    "skolem_term",
    "single_answer",
    "pre_answers",
    "pre_answers_from_valuations",
    "answers_from_valuations",
    "answer_union",
    "answer_merge",
    "answers",
    "identity_query",
]

#: Label prefix of Skolem blank nodes — a namespace disjoint (by
#: construction) from user blank labels in queries and databases.
SKOLEM_BLANK_PREFIX = "sk!"


def skolem_term(head_blank: BNode, valuation: Valuation, body_variables) -> BNode:
    """``f_N(v(?X1), ..., v(?Xk))`` as a deterministic blank node.

    The Skolem function for head blank ``N`` is realized as a collision-
    resistant hash of ``N`` and the values of all body variables in
    sorted variable order.  Determinism across calls and databases is
    exactly the hypothesis of Proposition 4.5 ("the same Skolem function
    is used for every blank node in H when querying any database").
    """
    ordered = sorted(body_variables, key=lambda v: v.value)
    payload = repr((head_blank.value, tuple((v.value, repr(valuation.get(v))) for v in ordered)))
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
    return BNode(f"{SKOLEM_BLANK_PREFIX}{head_blank.value}!{digest}")


def single_answer(query: Query, valuation: Valuation) -> Optional[RDFGraph]:
    """``v(H)``: instantiate the head, Skolemizing its blank nodes.

    Returns None when the instantiated head is not a well-formed RDF
    graph (e.g. a variable in subject position bound to a literal),
    which Definition 4.3 excludes from the pre-answer set.
    """
    body_vars = query.body.variables()

    def image(term: Term) -> Term:
        if isinstance(term, Variable):
            return valuation[term]
        if isinstance(term, BNode):
            return skolem_term(term, valuation, body_vars)
        return term

    triples = []
    for t in query.head:
        candidate = Triple(image(t.s), image(t.p), image(t.o))
        if not candidate.is_valid_rdf():
            return None
        triples.append(candidate)
    return RDFGraph(triples)


def pre_answers_from_valuations(query: Query, valuations) -> List[RDFGraph]:
    """Single answers built from an explicit valuation stream.

    The shared tail of both the direct evaluation path and the query
    cache's filtered-serving path: constraint filtering, head
    instantiation, deduplication and the deterministic sort all happen
    here, so a cached answer is byte-identical to an uncached one.
    Valuations must be total on the body's variables; they may come
    unfiltered (the cache stores them that way so differently-
    constrained queries can share an entry).
    """
    seen = set()
    out: List[RDFGraph] = []
    for valuation in valuations:
        if not satisfies_constraints(valuation, query.constraints):
            continue
        answer = single_answer(query, valuation)
        if answer is None or answer.triples in seen:
            continue
        seen.add(answer.triples)
        out.append(answer)
    out.sort(key=lambda g: tuple(str(t) for t in g.sorted_triples()))
    return out


def _combine(pre: List[RDFGraph], semantics: str) -> RDFGraph:
    """Fold a pre-answer list under one of the two answer semantics."""
    if semantics == "union":
        result = RDFGraph()
        for answer in pre:
            result = result.union(answer)
        return result
    if semantics == "merge":
        result = RDFGraph()
        for index, answer in enumerate(pre):
            renaming = {
                n: BNode(f"a{index}_{n.value}")
                for n in answer.bnodes()
            }
            result = result.union(answer.rename_bnodes(renaming))
        return result
    raise ValueError(f"unknown semantics {semantics!r}; use 'union' or 'merge'")


def answers_from_valuations(
    query: Query, valuations, semantics: str = "union"
) -> RDFGraph:
    """``ans(q, D)`` from an explicit valuation stream (see above)."""
    return _combine(pre_answers_from_valuations(query, valuations), semantics)


def pre_answers(
    query: Query, database: RDFGraph, target: Optional[RDFGraph] = None
) -> List[RDFGraph]:
    """``preans(q, D)``: the set of single answers (Definition 4.3).

    Returned as a deduplicated, deterministically-ordered list.
    ``target`` lets callers supply a precomputed ``nf(D + P)`` (e.g. a
    store's cached normal form for premise-free queries).
    """
    if target is None:
        target = matching_target(database, query.premise)
    return pre_answers_from_valuations(
        query, iter_matchings(query, database, target=target)
    )


def answer_union(
    query: Query, database: RDFGraph, target: Optional[RDFGraph] = None
) -> RDFGraph:
    """``ans∪(q, D)``: union of all single answers (shared blanks kept)."""
    return _combine(pre_answers(query, database, target=target), "union")


def answer_merge(
    query: Query, database: RDFGraph, target: Optional[RDFGraph] = None
) -> RDFGraph:
    """``ans+(q, D)``: merge of all single answers (blanks renamed apart).

    Unique up to isomorphism; this implementation renames the blanks of
    the i-th single answer with an ``a{i}_`` prefix, deterministically.
    """
    return _combine(pre_answers(query, database, target=target), "merge")


def answers(
    query: Query,
    database: RDFGraph,
    semantics: str = "union",
    target: Optional[RDFGraph] = None,
) -> RDFGraph:
    """Dispatch between the two answer semantics (default: union).

    The paper adopts union semantics "unless stated otherwise"
    (Section 4.1); so do we.
    """
    if semantics not in ("union", "merge"):
        raise ValueError(
            f"unknown semantics {semantics!r}; use 'union' or 'merge'"
        )
    return _combine(pre_answers(query, database, target=target), semantics)


def identity_query() -> Query:
    """The identity query ``(?X, ?Y, ?Z) ← (?X, ?Y, ?Z)`` (Note 4.7).

    Under union semantics ``ans∪(q, D) ≡ D`` for every database; under
    merge semantics this fails whenever a blank bridges two triples.
    """
    from .tableau import head_body_query

    t = [("?X", "?Y", "?Z")]
    return head_body_query(head=t, body=t)
