"""Structured graph families with known entailment/core behaviour.

These families are the building blocks of the benchmark sweeps: their
closures, cores and homomorphism structure are known in closed form, so
the measured curves can be checked against predictions.
"""

from __future__ import annotations


from ..core.graph import RDFGraph
from ..core.terms import BNode, Triple, URI
from ..core.vocabulary import DOM, RANGE, SC, SP, TYPE

__all__ = [
    "sp_chain",
    "sc_chain",
    "sc_chain_with_instance",
    "blank_chain",
    "blank_star",
    "property_fanout",
    "redundant_blank_fan",
    "dom_range_ladder",
]


def sp_chain(length: int, prefix: str = "p") -> RDFGraph:
    """``p0 sp p1 sp ... sp p_length``: closure gains Θ(length²) triples."""
    return RDFGraph(
        Triple(URI(f"{prefix}{i}"), SP, URI(f"{prefix}{i + 1}"))
        for i in range(length)
    )


def sc_chain(length: int, prefix: str = "c") -> RDFGraph:
    """``c0 sc c1 sc ... sc c_length``."""
    return RDFGraph(
        Triple(URI(f"{prefix}{i}"), SC, URI(f"{prefix}{i + 1}"))
        for i in range(length)
    )


def sc_chain_with_instance(length: int, prefix: str = "c") -> RDFGraph:
    """An sc chain plus one typed instance at the bottom.

    The closure types the instance with every class in the chain — the
    canonical quadratic-ish growth workload for E8.
    """
    chain = sc_chain(length, prefix)
    return chain.union(
        RDFGraph([Triple(URI("item"), TYPE, URI(f"{prefix}0"))])
    )


def blank_chain(length: int, predicate: str = "p") -> RDFGraph:
    """``X0 -p-> X1 -p-> ... -p-> X_length`` with all-blank nodes.

    Blank-acyclic (it is a path), so entailment *into* it stays
    polynomial via the acyclic pipeline.
    """
    p = URI(predicate)
    return RDFGraph(
        Triple(BNode(f"X{i}"), p, BNode(f"X{i + 1}")) for i in range(length)
    )


def blank_star(rays: int, predicate: str = "p") -> RDFGraph:
    """A ground centre with *rays* blank successors — maximally non-lean.

    Its core is a single triple, and every proper endomorphism collapses
    blanks, making it the canonical core-computation workload.
    """
    p = URI(predicate)
    return RDFGraph(
        Triple(URI("centre"), p, BNode(f"X{i}")) for i in range(rays)
    )


def property_fanout(num_properties: int, num_uses: int) -> RDFGraph:
    """Many properties under one super-property, each used many times.

    Closure size: every use is lifted to the super-property, giving the
    ``|uses| × |sp-ancestors|`` quadratic term of Theorem 3.6.3.
    """
    top = URI("top")
    triples = []
    for i in range(num_properties):
        p = URI(f"q{i}")
        triples.append(Triple(p, SP, top))
        for j in range(num_uses):
            triples.append(Triple(URI(f"s{i}_{j}"), p, URI(f"o{i}_{j}")))
    return RDFGraph(triples)


def redundant_blank_fan(width: int, predicate: str = "p") -> RDFGraph:
    """``(a, p, X1), ..., (a, p, Xw), (a, p, b)``: core is ``(a, p, b)``.

    Example 3.8's ``G1`` scaled up; every blank triple is redundant.
    """
    p = URI(predicate)
    triples = [Triple(URI("a"), p, BNode(f"X{i}")) for i in range(width)]
    triples.append(Triple(URI("a"), p, URI("b")))
    return RDFGraph(triples)


def dom_range_ladder(height: int) -> RDFGraph:
    """Properties with dom/range axioms over an sc ladder, plus uses.

    Exercises rules (5)–(7) together: each use of ``r_i`` types its
    subject/object through the class ladder above level ``i``.
    """
    triples = []
    for i in range(height):
        triples.append(Triple(URI(f"c{i}"), SC, URI(f"c{i + 1}")))
        triples.append(Triple(URI(f"r{i}"), DOM, URI(f"c{i}")))
        triples.append(Triple(URI(f"r{i}"), RANGE, URI(f"c{i}")))
        triples.append(Triple(URI(f"u{i}"), URI(f"r{i}"), URI(f"w{i}")))
    return RDFGraph(triples)
