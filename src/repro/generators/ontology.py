"""A deterministic synthetic ontology at the million-triple scale.

The ingest benchmark (ROADMAP item 3) needs a workload that (a) is
large — the point is the 10⁶-triple load-and-close path — and (b) has a
**near-linear closure**, unlike the sp-chain family whose Θ(n²) closure
(Theorem 3.6.3) makes million-triple inputs infeasible by construction.
This family holds the schema at a *fixed* size while the instance level
grows, so every closure rule contributes at most a constant factor:

* a binary ``sc`` tree over ``classes`` classes (depth ≈ log₂ classes),
  rooted at ``thing``;
* a depth-2 ``sp`` forest over ``properties`` properties (leaf
  properties under group properties under one root ``related``), so
  rule (3) lifts each instance triple to exactly its ≤ 2 ancestors;
* ``dom``/``range`` axioms on the root property only, typing every
  subject/object with the root class (no further ``sc`` lift);
* instance triples with *fresh* subjects (``e0, e1, …``): every eighth
  is a ``type`` triple at a leaf class (lifted along the ``sc`` branch
  to the root), the rest use a leaf property and the previous entity as
  object.

The closure is therefore ≈ 4–5× the input for any size — the "predicted
closure shape" the growth curve in ``BENCH_ingest.json`` checks.
Everything is a bare-name URI and generation is pure arithmetic on the
triple index, so the same ``n_triples`` always produces byte-identical
output, streamed line by line without materializing a graph.
"""

from __future__ import annotations

from typing import Iterator

from ..core.graph import RDFGraph
from ..core.terms import Triple, URI
from ..core.vocabulary import DOM, RANGE, SC, SP, TYPE

__all__ = [
    "synthetic_ontology_lines",
    "synthetic_ontology_graph",
    "write_synthetic_ontology",
]

#: Fixed schema shape: a 255-node class tree is 8 levels deep, giving
#: type triples a bounded (≤ 8) sc-lift; 63 leaf + 15 group properties
#: keep the sp forest at depth 2.
DEFAULT_CLASSES = 255
DEFAULT_PROPERTIES = 63
_GROUPS = 15


def synthetic_ontology_lines(
    n_triples: int,
    classes: int = DEFAULT_CLASSES,
    properties: int = DEFAULT_PROPERTIES,
) -> Iterator[str]:
    """Yield exactly *n_triples* N-Triples lines (schema first).

    Deterministic in all arguments; all triples are pairwise distinct
    (instance subjects are fresh per triple).  *n_triples* must cover
    at least the schema (``classes + properties + 2·groups + 1``
    triples).
    """
    if classes < 3 or properties < 3:
        raise ValueError("need at least 3 classes and 3 properties")
    schema = (classes - 1) + _GROUPS + properties + 2
    if n_triples < schema:
        raise ValueError(
            f"n_triples={n_triples} cannot hold the {schema}-triple schema"
        )
    # Class tree: c1..c{classes-1} under binary parents, c0 = thing.
    yield from (
        f"c{i} {SC.value} c{(i - 1) // 2} ." for i in range(1, classes)
    )
    # Property forest: groups under the root, leaves under groups.
    yield from (f"g{j} {SP.value} related ." for j in range(_GROUPS))
    yield from (
        f"p{i} {SP.value} g{i % _GROUPS} ." for i in range(properties)
    )
    # Root-property typing axioms (root class: no further sc lift).
    yield f"related {DOM.value} c0 ."
    yield f"related {RANGE.value} c0 ."
    # Instance level: fresh subject per triple, previous entity as
    # object, every 8th triple a leaf-class membership.
    leaf_base = (classes - 1) // 2  # first leaf index in the class tree
    n_leaves = classes - leaf_base
    type_ = TYPE.value
    for k in range(n_triples - schema):
        if k % 8 == 0:
            yield f"e{k} {type_} c{leaf_base + k % n_leaves} ."
        else:
            yield f"e{k} p{k % properties} e{k - 1} ."


def synthetic_ontology_graph(n_triples: int, **kwargs) -> RDFGraph:
    """The same family as a boxed graph (small sizes and tests only)."""
    vocab = {
        SC.value: SC, SP.value: SP, TYPE.value: TYPE,
        DOM.value: DOM, RANGE.value: RANGE,
    }
    triples = []
    for line in synthetic_ontology_lines(n_triples, **kwargs):
        s, p, o, _dot = line.split()
        triples.append(
            Triple(URI(s), vocab.get(p, URI(p)), URI(o))
        )
    return RDFGraph(triples)


def write_synthetic_ontology(path: str, n_triples: int, **kwargs) -> int:
    """Stream the family to *path*; returns the number of lines written."""
    count = 0
    with open(path, "w", encoding="utf-8") as f:
        write = f.write
        for line in synthetic_ontology_lines(n_triples, **kwargs):
            write(line)
            write("\n")
            count += 1
    return count
