"""Random graph workloads for tests and benchmarks.

All generators take an explicit ``seed`` and are deterministic given
it; benchmark series are therefore reproducible.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.graph import RDFGraph
from ..core.terms import BNode, Triple, URI
from ..reductions.standard_graphs import DiGraph

__all__ = ["random_digraph", "random_simple_rdf_graph", "random_ground_graph"]


def random_digraph(
    num_vertices: int, num_edges: int, seed: Optional[int] = None
) -> DiGraph:
    """G(n, m): *num_edges* distinct directed edges, no self-loops."""
    rng = random.Random(seed)
    graph = DiGraph(range(num_vertices))
    possible = num_vertices * (num_vertices - 1)
    target = min(num_edges, possible)
    edges = set()
    while len(edges) < target:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u != v:
            edges.add((u, v))
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


def random_simple_rdf_graph(
    num_triples: int,
    num_nodes: int,
    num_predicates: int = 3,
    blank_probability: float = 0.4,
    seed: Optional[int] = None,
) -> RDFGraph:
    """A random simple RDF graph with controllable blank-node density.

    Each subject/object position independently becomes a blank node with
    probability *blank_probability* (drawn from a shared pool so blanks
    repeat, which is what creates non-trivial homomorphism structure).
    """
    rng = random.Random(seed)
    uris = [URI(f"n{i}") for i in range(num_nodes)]
    blanks = [BNode(f"N{i}") for i in range(max(1, num_nodes // 2))]
    predicates = [URI(f"p{i}") for i in range(num_predicates)]

    def node():
        if rng.random() < blank_probability:
            return rng.choice(blanks)
        return rng.choice(uris)

    triples = set()
    attempts = 0
    while len(triples) < num_triples and attempts < num_triples * 20:
        attempts += 1
        triples.add(Triple(node(), rng.choice(predicates), node()))
    return RDFGraph(triples)


def random_ground_graph(
    num_triples: int,
    num_nodes: int,
    num_predicates: int = 3,
    seed: Optional[int] = None,
) -> RDFGraph:
    """A random ground (blank-free) simple RDF graph."""
    return random_simple_rdf_graph(
        num_triples,
        num_nodes,
        num_predicates=num_predicates,
        blank_probability=0.0,
        seed=seed,
    )
