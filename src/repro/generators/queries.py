"""Random tableau queries over generated data.

Used by the query-answering and containment benchmarks: bodies are
random connected patterns extracted from a data graph (so they have
matches), with a controllable fraction of positions turned into
variables.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.graph import RDFGraph
from ..core.terms import BNode, Term, Triple, URI, Variable
from ..query.tableau import PatternGraph, Query, Tableau

__all__ = ["random_query_from_graph", "chain_query", "star_query"]


def random_query_from_graph(
    graph: RDFGraph,
    num_triples: int,
    variable_probability: float = 0.6,
    seed: Optional[int] = None,
) -> Query:
    """A query whose body generalizes a random connected subgraph.

    Walks the data graph collecting *num_triples* connected triples,
    then abstracts subject/object terms into variables with the given
    probability (consistently: the same term always becomes the same
    variable).  The head repeats the body, so the query is a "select
    the matched subgraph" query.
    """
    rng = random.Random(seed)
    all_triples = graph.sorted_triples()
    if not all_triples:
        raise ValueError("cannot build a query over an empty graph")
    start = rng.choice(all_triples)
    chosen = [start]
    frontier_terms = {start.s, start.o}
    while len(chosen) < num_triples:
        candidates = [
            t
            for term in frontier_terms
            for t in list(graph.match(s=term)) + list(graph.match(o=term))
            if t not in chosen
        ]
        if not candidates:
            break
        nxt = rng.choice(sorted(candidates, key=str))
        chosen.append(nxt)
        frontier_terms |= {nxt.s, nxt.o}

    var_of = {}

    def abstract(term: Term) -> Term:
        if term in var_of:
            return var_of[term]
        if isinstance(term, BNode) or rng.random() < variable_probability:
            var = Variable(f"V{len(var_of)}")
            var_of[term] = var
            return var
        return term

    body = [Triple(abstract(t.s), t.p, abstract(t.o)) for t in chosen]
    return Query(tableau=Tableau(head=PatternGraph(body), body=PatternGraph(body)))


def chain_query(length: int, predicate: str = "p") -> Query:
    """``(?X0, p, ?X1), ..., (?X_{n-1}, p, ?Xn)`` — an acyclic body."""
    p = URI(predicate)
    body = [
        Triple(Variable(f"X{i}"), p, Variable(f"X{i + 1}")) for i in range(length)
    ]
    return Query(tableau=Tableau(head=PatternGraph(body), body=PatternGraph(body)))


def star_query(rays: int, predicate: str = "p") -> Query:
    """``(?C, p, ?X1), ..., (?C, p, ?Xn)`` — a star-shaped body."""
    p = URI(predicate)
    body = [Triple(Variable("C"), p, Variable(f"X{i}")) for i in range(rays)]
    return Query(tableau=Tableau(head=PatternGraph(body), body=PatternGraph(body)))
