"""Workload generators for tests, examples and benchmarks."""

from .random_graphs import random_digraph, random_ground_graph, random_simple_rdf_graph
from .ontology import (
    synthetic_ontology_graph,
    synthetic_ontology_lines,
    write_synthetic_ontology,
)
from .queries import chain_query, random_query_from_graph, star_query
from .schemas import art_schema, random_schema_with_instances
from .structured import (
    blank_chain,
    blank_star,
    dom_range_ladder,
    property_fanout,
    redundant_blank_fan,
    sc_chain,
    sc_chain_with_instance,
    sp_chain,
)

__all__ = [
    "art_schema",
    "blank_chain",
    "blank_star",
    "chain_query",
    "dom_range_ladder",
    "property_fanout",
    "random_digraph",
    "random_ground_graph",
    "random_query_from_graph",
    "random_schema_with_instances",
    "random_simple_rdf_graph",
    "redundant_blank_fan",
    "sc_chain",
    "sc_chain_with_instance",
    "sp_chain",
    "star_query",
    "synthetic_ontology_graph",
    "synthetic_ontology_lines",
    "write_synthetic_ontology",
]
