"""RDFS schema generators, including the paper's Fig. 1 art example.

:func:`art_schema` is a faithful transcription of Fig. 1 — the running
example describing art resources, where schema (sc/sp/dom/range
triples) and data (Picasso paints Guernica) live at the same level.
:func:`random_schema_with_instances` generalizes its shape into a
parameterized workload: a class DAG, a property forest with dom/range
axioms, and typed instance data underneath.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..core.graph import RDFGraph
from ..core.terms import BNode, Triple, URI
from ..core.vocabulary import DOM, RANGE, SC, SP, TYPE

__all__ = ["art_schema", "random_schema_with_instances"]


def art_schema() -> RDFGraph:
    """The Fig. 1 RDF graph: a schema for describing art resources.

    Relations: ``sculptor`` and ``painter`` are subclasses of
    ``artist``; ``sculpts`` and ``paints`` are subproperties of
    ``creates`` with the appropriate domains and ranges; ``sculpture``
    and ``painting`` are subclasses of ``artifact``; artifacts are
    ``exhibited`` in museums; and at the data level, Picasso paints
    Guernica.  (The figure notes some arcs are omitted to avoid
    crowding; this transcription includes the arcs it depicts plus the
    dom/range arcs the caption describes.)
    """
    return RDFGraph(
        [
            # Class hierarchy.
            Triple(URI("sculptor"), SC, URI("artist")),
            Triple(URI("painter"), SC, URI("artist")),
            Triple(URI("sculpture"), SC, URI("artifact")),
            Triple(URI("painting"), SC, URI("artifact")),
            # Property hierarchy.
            Triple(URI("sculpts"), SP, URI("creates")),
            Triple(URI("paints"), SP, URI("creates")),
            # Domains and ranges.
            Triple(URI("creates"), DOM, URI("artist")),
            Triple(URI("creates"), RANGE, URI("artifact")),
            Triple(URI("sculpts"), DOM, URI("sculptor")),
            Triple(URI("sculpts"), RANGE, URI("sculpture")),
            Triple(URI("paints"), DOM, URI("painter")),
            Triple(URI("paints"), RANGE, URI("painting")),
            Triple(URI("exhibited"), DOM, URI("artifact")),
            Triple(URI("exhibited"), RANGE, URI("museum")),
            # Data: schema and instances at the same level.
            Triple(URI("Picasso"), URI("paints"), URI("Guernica")),
        ]
    )


def random_schema_with_instances(
    num_classes: int,
    num_properties: int,
    num_instances: int,
    num_uses: int,
    blank_probability: float = 0.2,
    seed: Optional[int] = None,
) -> RDFGraph:
    """A random RDFS ontology in the shape of Fig. 1.

    * a random class forest (each class gets an ``sc`` edge to a random
      earlier class — always acyclic);
    * a random property forest via ``sp`` likewise;
    * each property receives ``dom``/``range`` axioms pointing at random
      classes;
    * *num_instances* typed individuals and *num_uses* property
      assertions between individuals, with subjects/objects optionally
      blank.
    """
    rng = random.Random(seed)
    classes = [URI(f"class{i}") for i in range(num_classes)]
    properties = [URI(f"prop{i}") for i in range(num_properties)]
    individuals: List = [URI(f"ind{i}") for i in range(num_instances)]
    blanks = [BNode(f"B{i}") for i in range(max(1, num_instances // 3))]

    triples = []
    for i in range(1, num_classes):
        parent = classes[rng.randrange(i)]
        triples.append(Triple(classes[i], SC, parent))
    for i in range(1, num_properties):
        parent = properties[rng.randrange(i)]
        triples.append(Triple(properties[i], SP, parent))
    for p in properties:
        triples.append(Triple(p, DOM, rng.choice(classes)))
        triples.append(Triple(p, RANGE, rng.choice(classes)))

    def node():
        if rng.random() < blank_probability:
            return rng.choice(blanks)
        return rng.choice(individuals)

    for ind in individuals:
        triples.append(Triple(ind, TYPE, rng.choice(classes)))
    for _ in range(num_uses):
        triples.append(Triple(node(), rng.choice(properties), node()))
    return RDFGraph(set(triples))
