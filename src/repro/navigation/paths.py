"""Path expressions over RDF graphs (the paper's future-work list).

The conclusions of the paper name "connectedness, reachability, paths,
recursion" as the extensions the model was built to support; this
module implements the regular-path core that later work (nSPARQL [35],
SPARQL 1.1 property paths) standardized:

* ``Pred(p)`` — one ``p``-step forward;
* ``Inv(e)`` — reverse traversal;
* ``Seq(e1, e2)``, ``Alt(e1, e2)`` — concatenation and alternation;
* ``Star(e)`` / ``Plus(e)`` / ``Opt(e)`` — reflexive-transitive,
  transitive, and optional closure.

Evaluation is over the *pairs semantics*: ``eval(e, G) ⊆ UB × UB``.
With ``rdfs=True`` the graph is first closed, so e.g. ``Pred(sc)+``
navigates the inferred hierarchy — the "inclusion of RDFS vocabulary"
item from the paper's open-issues list.  Reachability is computed by
BFS on demand, so single-source queries do not materialize the full
relation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set, Tuple

from ..core.graph import RDFGraph
from ..core.terms import Term, URI
from ..semantics.closure import closure as rdfs_closure_of

__all__ = [
    "PathExpression",
    "Pred",
    "Inv",
    "Seq",
    "Alt",
    "Star",
    "Plus",
    "Opt",
    "evaluate_path",
    "reachable_from",
    "path_exists",
]


class PathExpression:
    """Base class for path expressions; composable via operators.

    ``a / b`` is sequence, ``a | b`` alternation, ``~a`` inversion;
    ``a.star()``, ``a.plus()``, ``a.opt()`` are the closures.
    """

    def __truediv__(self, other: "PathExpression") -> "Seq":
        return Seq(self, _coerce(other))

    def __or__(self, other: "PathExpression") -> "Alt":
        return Alt(self, _coerce(other))

    def __invert__(self) -> "Inv":
        return Inv(self)

    def star(self) -> "Star":
        return Star(self)

    def plus(self) -> "Plus":
        return Plus(self)

    def opt(self) -> "Opt":
        return Opt(self)


def _coerce(value) -> PathExpression:
    if isinstance(value, PathExpression):
        return value
    if isinstance(value, URI):
        return Pred(value)
    if isinstance(value, str):
        return Pred(URI(value))
    raise TypeError(f"not a path expression: {value!r}")


@dataclass(frozen=True)
class Pred(PathExpression):
    """One forward step along predicate ``p``."""

    predicate: URI

    def __post_init__(self):
        if isinstance(self.predicate, str):
            object.__setattr__(self, "predicate", URI(self.predicate))

    def __str__(self):
        return self.predicate.value


@dataclass(frozen=True)
class Inv(PathExpression):
    """Reverse traversal of the inner expression."""

    inner: PathExpression

    def __str__(self):
        return f"^({self.inner})"


@dataclass(frozen=True)
class Seq(PathExpression):
    """Concatenation ``left / right``."""

    left: PathExpression
    right: PathExpression

    def __str__(self):
        return f"({self.left}/{self.right})"


@dataclass(frozen=True)
class Alt(PathExpression):
    """Alternation ``left | right``."""

    left: PathExpression
    right: PathExpression

    def __str__(self):
        return f"({self.left}|{self.right})"


@dataclass(frozen=True)
class Star(PathExpression):
    """Reflexive-transitive closure ``e*``."""

    inner: PathExpression

    def __str__(self):
        return f"({self.inner})*"


@dataclass(frozen=True)
class Plus(PathExpression):
    """Transitive closure ``e+``."""

    inner: PathExpression

    def __str__(self):
        return f"({self.inner})+"


@dataclass(frozen=True)
class Opt(PathExpression):
    """Zero-or-one ``e?``."""

    inner: PathExpression

    def __str__(self):
        return f"({self.inner})?"


def _prepare(graph: RDFGraph, rdfs: bool) -> RDFGraph:
    return rdfs_closure_of(graph) if rdfs else graph


def _pairs(expr: PathExpression, graph: RDFGraph) -> Set[Tuple[Term, Term]]:
    if isinstance(expr, Pred):
        return {(t.s, t.o) for t in graph.match(p=expr.predicate)}
    if isinstance(expr, Inv):
        return {(y, x) for x, y in _pairs(expr.inner, graph)}
    if isinstance(expr, Seq):
        left = _pairs(expr.left, graph)
        right = _pairs(expr.right, graph)
        by_source: Dict[Term, Set[Term]] = {}
        for x, y in right:
            by_source.setdefault(x, set()).add(y)
        return {
            (x, z) for x, y in left for z in by_source.get(y, ())
        }
    if isinstance(expr, Alt):
        return _pairs(expr.left, graph) | _pairs(expr.right, graph)
    if isinstance(expr, Plus):
        base = _pairs(expr.inner, graph)
        succ: Dict[Term, Set[Term]] = {}
        for x, y in base:
            succ.setdefault(x, set()).add(y)
        out: Set[Tuple[Term, Term]] = set()
        for start in succ:
            seen: Set[Term] = set()
            stack = list(succ[start])
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(succ.get(node, ()))
            out.update((start, node) for node in seen)
        return out
    if isinstance(expr, Star):
        out = _pairs(Plus(expr.inner), graph)
        for node in graph.universe():
            out.add((node, node))
        return out
    if isinstance(expr, Opt):
        out = set(_pairs(expr.inner, graph))
        for node in graph.universe():
            out.add((node, node))
        return out
    raise TypeError(f"unknown path expression: {expr!r}")


def evaluate_path(
    expr: PathExpression, graph: RDFGraph, rdfs: bool = False
) -> FrozenSet[Tuple[Term, Term]]:
    """All pairs ``(x, y)`` connected by the path in ``G`` (or ``cl(G)``)."""
    return frozenset(_pairs(_coerce(expr), _prepare(graph, rdfs)))


def reachable_from(
    expr: PathExpression, graph: RDFGraph, start: Term, rdfs: bool = False
) -> FrozenSet[Term]:
    """Single-source variant: ``{y : (start, y) ∈ ⟦e⟧}`` via BFS.

    For ``Plus``/``Star`` of simple steps this avoids materializing the
    quadratic pair relation.
    """
    expr = _coerce(expr)
    graph = _prepare(graph, rdfs)

    def step_targets(e: PathExpression, sources: Set[Term]) -> Set[Term]:
        if isinstance(e, Pred):
            out: Set[Term] = set()
            for s in sources:
                out.update(t.o for t in graph.match(s=s, p=e.predicate))
            return out
        if isinstance(e, Inv) and isinstance(e.inner, Pred):
            out = set()
            for s in sources:
                out.update(t.s for t in graph.match(p=e.inner.predicate, o=s))
            return out
        if isinstance(e, Seq):
            return step_targets(e.right, step_targets(e.left, sources))
        if isinstance(e, Alt):
            return step_targets(e.left, sources) | step_targets(e.right, sources)
        if isinstance(e, Opt):
            return sources | step_targets(e.inner, sources)
        if isinstance(e, (Star, Plus)):
            frontier = set(sources)
            seen = set(sources) if isinstance(e, Star) else set()
            current = set(sources)
            while True:
                nxt = step_targets(e.inner, current) - seen
                if isinstance(e, Plus):
                    nxt -= seen
                if not nxt:
                    return seen
                seen |= nxt
                current = nxt
        # General inverse: fall back to the pair semantics.
        pairs = _pairs(e, graph)
        return {y for x, y in pairs if x in sources}

    return frozenset(step_targets(expr, {start}))


def path_exists(
    expr: PathExpression,
    graph: RDFGraph,
    start: Term,
    end: Term,
    rdfs: bool = False,
) -> bool:
    """Is there an ``e``-path from *start* to *end*?"""
    return end in reachable_from(expr, graph, start, rdfs=rdfs)
