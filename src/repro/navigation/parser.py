"""A small concrete syntax for path expressions.

Grammar (SPARQL-property-path flavoured)::

    path     := alt
    alt      := seq ('|' seq)*
    seq      := postfix ('/' postfix)*
    postfix  := primary ('*' | '+' | '?')*
    primary  := '^' postfix | '(' path ')' | name | '<' uri '>'

Examples: ``paints/exhibited``, ``(sc)+``, ``^creates``, ``a|b``,
``(knows|^knows)*``.
"""

from __future__ import annotations

import re
from typing import List

from ..core.terms import URI
from .paths import Alt, Inv, Opt, PathExpression, Plus, Pred, Seq, Star

__all__ = ["parse_path", "PathSyntaxError"]


class PathSyntaxError(ValueError):
    """A syntax error in a path expression."""


_TOKEN = re.compile(
    r"\s*(\^|\(|\)|\||/|\*|\+|\?|<[^<>\s]+>|[A-Za-z_][\w.:#-]*)"
)


def _tokenize(text: str) -> List[str]:
    tokens = []
    position = 0
    while position < len(text):
        if text[position:].strip() == "":
            break
        match = _TOKEN.match(text, position)
        if match is None:
            raise PathSyntaxError(f"cannot tokenize at: {text[position:]!r}")
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[str]):
        self.tokens = tokens
        self.position = 0

    def peek(self):
        return self.tokens[self.position] if self.position < len(self.tokens) else None

    def take(self):
        token = self.peek()
        self.position += 1
        return token

    def expect(self, token: str):
        got = self.take()
        if got != token:
            raise PathSyntaxError(f"expected {token!r}, got {got!r}")

    def parse_alt(self) -> PathExpression:
        left = self.parse_seq()
        while self.peek() == "|":
            self.take()
            left = Alt(left, self.parse_seq())
        return left

    def parse_seq(self) -> PathExpression:
        left = self.parse_postfix()
        while self.peek() == "/":
            self.take()
            left = Seq(left, self.parse_postfix())
        return left

    def parse_postfix(self) -> PathExpression:
        expr = self.parse_primary()
        while self.peek() in ("*", "+", "?"):
            token = self.take()
            if token == "*":
                expr = Star(expr)
            elif token == "+":
                expr = Plus(expr)
            else:
                expr = Opt(expr)
        return expr

    def parse_primary(self) -> PathExpression:
        token = self.peek()
        if token is None:
            raise PathSyntaxError("unexpected end of expression")
        if token == "^":
            self.take()
            return Inv(self.parse_postfix())
        if token == "(":
            self.take()
            inner = self.parse_alt()
            self.expect(")")
            return inner
        if token in (")", "|", "/", "*", "+", "?"):
            raise PathSyntaxError(f"unexpected {token!r}")
        self.take()
        if token.startswith("<") and token.endswith(">"):
            return Pred(URI(token[1:-1]))
        return Pred(URI(token))


def parse_path(text: str) -> PathExpression:
    """Parse a path expression from its concrete syntax."""
    tokens = _tokenize(text)
    if not tokens:
        raise PathSyntaxError("empty path expression")
    parser = _Parser(tokens)
    expr = parser.parse_alt()
    if parser.peek() is not None:
        raise PathSyntaxError(f"trailing tokens: {parser.tokens[parser.position:]}")
    return expr
