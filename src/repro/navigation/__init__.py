"""Navigational (path) queries — the paper's future-work extensions.

Regular path expressions over RDF graphs, optionally interpreted over
the RDFS closure, with both all-pairs and single-source evaluation and
a SPARQL-property-path-flavoured concrete syntax.
"""

from .parser import PathSyntaxError, parse_path
from .paths import (
    Alt,
    Inv,
    Opt,
    PathExpression,
    Plus,
    Pred,
    Seq,
    Star,
    evaluate_path,
    path_exists,
    reachable_from,
)

__all__ = [
    "Alt",
    "Inv",
    "Opt",
    "PathExpression",
    "PathSyntaxError",
    "Plus",
    "Pred",
    "Seq",
    "Star",
    "evaluate_path",
    "parse_path",
    "path_exists",
    "reachable_from",
]
