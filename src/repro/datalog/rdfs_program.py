"""The deductive system of Section 2.3.2 as a Datalog program.

After Skolemization, RDF graphs are sets of ground facts ``t(s, p, o)``
and rules (2)–(13) are plain positive Datalog rules — the paper's
observation that RDFS inference is (unlike premise queries, Section
4.2) Datalog-expressible.  ``closure_via_datalog`` is therefore a third
independent implementation of ``RDFS-cl``, cross-validated against the
rule engine and the staged algorithm in the tests, and raced against
them in the ablation benchmark.
"""

from __future__ import annotations


from ..core.graph import RDFGraph
from ..core.interning import DOM_ID, RANGE_ID, SC_ID, SP_ID, TYPE_ID
from ..core.terms import Triple
from ..core.vocabulary import DOM, RANGE, SC, SP, TYPE
from .engine import DatalogAtom, DatalogProgram, DatalogRule, DVar, evaluate_program

__all__ = [
    "rdfs_datalog_program",
    "rdfs_datalog_program_encoded",
    "closure_via_datalog",
    "TRIPLE_RELATION",
]

#: The single relation holding all triples.
TRIPLE_RELATION = "t"

_A, _B, _C = DVar("A"), DVar("B"), DVar("C")
_X, _Y = DVar("X"), DVar("Y")


def _t(s, p, o) -> DatalogAtom:
    return DatalogAtom(relation=TRIPLE_RELATION, terms=(s, p, o))


def rdfs_datalog_program() -> DatalogProgram:
    """Rules (2)–(13) compiled to Datalog over ``t/3``.

    In the Skolemized (all-ground) world every instantiation is
    well-formed, so the paper's side condition disappears and the
    compilation is direct.  Rule numbers appear in order.
    """
    return _build_program(SP, SC, TYPE, DOM, RANGE)


_ENCODED_PROGRAM = None


def rdfs_datalog_program_encoded() -> DatalogProgram:
    """The same rules with the rdfsV keywords as their pinned term IDs.

    The Datalog engine is generic over hashable constants, so running
    it over ``(int, int, int)`` rows from a vocabulary-seeded
    :class:`~repro.core.interning.TermDict` needs nothing but a program
    whose constants are the matching IDs (``SP_ID`` … ``RANGE_ID``).
    The IDs are pinned per construction, so one shared program instance
    serves every store.
    """
    global _ENCODED_PROGRAM
    if _ENCODED_PROGRAM is None:
        _ENCODED_PROGRAM = _build_program(SP_ID, SC_ID, TYPE_ID, DOM_ID, RANGE_ID)
    return _ENCODED_PROGRAM


def _build_program(sp, sc, type_, dom, range_) -> DatalogProgram:
    SP, SC, TYPE, DOM, RANGE = sp, sc, type_, dom, range_
    rules = [
        # (2) subproperty transitivity
        DatalogRule(head=_t(_A, SP, _C), body=(_t(_A, SP, _B), _t(_B, SP, _C))),
        # (3) subproperty inheritance
        DatalogRule(head=_t(_X, _B, _Y), body=(_t(_A, SP, _B), _t(_X, _A, _Y))),
        # (4) subclass transitivity
        DatalogRule(head=_t(_A, SC, _C), body=(_t(_A, SC, _B), _t(_B, SC, _C))),
        # (5) type lifting
        DatalogRule(head=_t(_X, TYPE, _B), body=(_t(_A, SC, _B), _t(_X, TYPE, _A))),
        # (6) domain typing (through sp, Marin's fix)
        DatalogRule(
            head=_t(_X, TYPE, _B),
            body=(_t(_A, DOM, _B), _t(_C, SP, _A), _t(_X, _C, _Y)),
        ),
        # (7) range typing
        DatalogRule(
            head=_t(_Y, TYPE, _B),
            body=(_t(_A, RANGE, _B), _t(_C, SP, _A), _t(_X, _C, _Y)),
        ),
        # (8) predicate sp-reflexivity
        DatalogRule(head=_t(_A, SP, _A), body=(_t(_X, _A, _Y),)),
    ]
    # (9) reserved-word axioms, as body-less rules (fixed rdfsV order).
    for p in (SP, SC, TYPE, DOM, RANGE):
        rules.append(DatalogRule(head=_t(p, SP, p), body=()))
    # (10) dom/range subject sp-reflexivity
    for p in (DOM, RANGE):
        rules.append(DatalogRule(head=_t(_A, SP, _A), body=(_t(_A, p, _X),)))
    # (11) sp endpoint reflexivity
    rules.append(DatalogRule(head=_t(_A, SP, _A), body=(_t(_A, SP, _B),)))
    rules.append(DatalogRule(head=_t(_B, SP, _B), body=(_t(_A, SP, _B),)))
    # (12) class positions sc-reflexivity
    for p in (DOM, RANGE, TYPE):
        rules.append(DatalogRule(head=_t(_A, SC, _A), body=(_t(_X, p, _A),)))
    # (13) sc endpoint reflexivity
    rules.append(DatalogRule(head=_t(_A, SC, _A), body=(_t(_A, SC, _B),)))
    rules.append(DatalogRule(head=_t(_B, SC, _B), body=(_t(_A, SC, _B),)))
    return DatalogProgram(rules=tuple(rules))


def closure_via_datalog(graph: RDFGraph) -> RDFGraph:
    """``RDFS-cl(G)`` computed by semi-naive Datalog evaluation.

    Pipeline: Skolemize, run the program over the ground facts,
    un-Skolemize (dropping blank-predicate triples) — exactly the
    ``cl(G) = (cl(G*))_*`` recipe of Definition 3.5.
    """
    skolemized, inverse = graph.skolemize()
    facts = [(TRIPLE_RELATION, (t.s, t.p, t.o)) for t in skolemized]
    result = evaluate_program(rdfs_datalog_program(), facts)
    triples = []
    for s, p, o in result.get(TRIPLE_RELATION, ()):
        triples.append(Triple(s, p, o))
    closed = RDFGraph(t for t in triples if t.is_valid_rdf())
    return RDFGraph.unskolemize(closed, inverse)
