"""Positive Datalog: the engine and the RDFS rules as a program.

Supports the paper's two Datalog touchpoints: Section 2.3.2's deductive
system is Datalog-expressible (``closure_via_datalog``); Section 4.2's
premise queries are not (see ``tests/test_datalog.py`` for the
executable contrast).
"""

from .engine import (
    DVar,
    DatalogAtom,
    DatalogProgram,
    DatalogRule,
    evaluate_program,
    extend_fixpoint,
    retract_fixpoint,
)
from .rdfs_program import TRIPLE_RELATION, closure_via_datalog, rdfs_datalog_program

__all__ = [
    "DVar",
    "DatalogAtom",
    "DatalogProgram",
    "DatalogRule",
    "TRIPLE_RELATION",
    "closure_via_datalog",
    "evaluate_program",
    "extend_fixpoint",
    "retract_fixpoint",
    "rdfs_datalog_program",
]
