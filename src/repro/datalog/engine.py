"""A positive Datalog engine with semi-naive evaluation.

Section 4.2 of the paper contrasts premise queries with Datalog; the
deductive system of Section 2.3.2 *is* (after Skolemization) a Datalog
program over a ternary ``t`` relation.  This engine makes both
statements executable:

* :mod:`repro.datalog.rdfs_program` compiles rules (2)–(13) into a
  program whose fixpoint is exactly ``RDFS-cl`` — a third,
  independently-derived closure implementation used for
  cross-validation and ablation benchmarks;
* :mod:`repro.navigation` compiles path expressions to recursive rules.

The engine supports plain positive Datalog: Horn rules without
negation, evaluated bottom-up by semi-naive iteration with per-round
deltas and join ordering by bound-ness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

__all__ = [
    "DVar",
    "DatalogAtom",
    "DatalogRule",
    "DatalogProgram",
    "evaluate_program",
    "extend_fixpoint",
]


@dataclass(frozen=True, order=True)
class DVar:
    """A Datalog variable."""

    name: str

    def __str__(self):
        return f"?{self.name}"


DTerm = Hashable  # DVar or any hashable constant
Fact = Tuple[str, Tuple[Hashable, ...]]


@dataclass(frozen=True)
class DatalogAtom:
    """``R(t1, ..., tk)`` with variables and constants."""

    relation: str
    terms: Tuple[DTerm, ...]

    def variables(self) -> FrozenSet[DVar]:
        return frozenset(t for t in self.terms if isinstance(t, DVar))

    def __str__(self):
        inner = ", ".join(str(t) for t in self.terms)
        return f"{self.relation}({inner})"


@dataclass(frozen=True)
class DatalogRule:
    """``head :- body``.  Range-restricted: head vars ⊆ body vars."""

    head: DatalogAtom
    body: Tuple[DatalogAtom, ...]

    def __post_init__(self):
        body_vars = set()
        for atom in self.body:
            body_vars |= atom.variables()
        free = self.head.variables() - body_vars
        if free:
            raise ValueError(
                f"rule is not range-restricted; free head variables: "
                f"{sorted(v.name for v in free)}"
            )

    def __str__(self):
        if not self.body:
            return f"{self.head}."
        return f"{self.head} :- " + ", ".join(str(a) for a in self.body)


@dataclass(frozen=True)
class DatalogProgram:
    """A set of rules plus extensional facts."""

    rules: Tuple[DatalogRule, ...]

    def idb_relations(self) -> FrozenSet[str]:
        return frozenset(r.head.relation for r in self.rules)

    def __str__(self):
        return "\n".join(str(r) for r in self.rules)


class _FactStore:
    """Facts indexed by relation and by (relation, position, value)."""

    def __init__(self):
        self.by_relation: Dict[str, Set[Tuple]] = {}
        self.index: Dict[Tuple[str, int, Hashable], Set[Tuple]] = {}

    def __contains__(self, fact: Fact) -> bool:
        relation, row = fact
        return row in self.by_relation.get(relation, ())

    def add(self, relation: str, row: Tuple) -> bool:
        """Insert; returns True when the fact is new."""
        rows = self.by_relation.setdefault(relation, set())
        if row in rows:
            return False
        rows.add(row)
        for position, value in enumerate(row):
            self.index.setdefault((relation, position, value), set()).add(row)
        return True

    def rows(self, relation: str) -> Set[Tuple]:
        return self.by_relation.get(relation, set())

    def candidates(self, atom: DatalogAtom, binding: Dict[DVar, Hashable]):
        """Rows matching the atom under the current partial binding."""
        best: Optional[Set[Tuple]] = None
        for position, term in enumerate(atom.terms):
            value = binding.get(term) if isinstance(term, DVar) else term
            if value is None:
                continue
            found = self.index.get((atom.relation, position, value), set())
            if best is None or len(found) < len(best):
                best = found
            if best is not None and not best:
                return ()
        if best is None:
            best = self.rows(atom.relation)
        # Final filter for consistency (repeated variables, remaining
        # constants).
        out = []
        for row in best:
            if len(row) != len(atom.terms):
                continue
            local: Dict[DVar, Hashable] = {}
            ok = True
            for term, value in zip(atom.terms, row):
                if isinstance(term, DVar):
                    want = binding.get(term, local.get(term))
                    if want is None:
                        local[term] = value
                    elif want != value:
                        ok = False
                        break
                elif term != value:
                    ok = False
                    break
            if ok:
                out.append(row)
        return out


def _match_rule(
    rule: DatalogRule,
    store: _FactStore,
    delta: Optional[_FactStore],
    delta_position: Optional[int],
) -> Iterator[Tuple]:
    """Head instantiations; if *delta_position* is set, that body atom
    must match a fact from the delta (semi-naive restriction)."""

    body = list(rule.body)

    def backtrack(i: int, binding: Dict[DVar, Hashable]) -> Iterator[Tuple]:
        if i == len(body):
            yield tuple(
                binding[t] if isinstance(t, DVar) else t for t in rule.head.terms
            )
            return
        atom = body[i]
        source = delta if (delta is not None and i == delta_position) else store
        for row in source.candidates(atom, binding):
            bound: List[DVar] = []
            ok = True
            for term, value in zip(atom.terms, row):
                if isinstance(term, DVar):
                    seen = binding.get(term)
                    if seen is None:
                        binding[term] = value
                        bound.append(term)
                    elif seen != value:
                        ok = False
                        break
            if ok:
                yield from backtrack(i + 1, binding)
            for v in bound:
                del binding[v]

    yield from backtrack(0, {})


def evaluate_program(
    program: DatalogProgram, facts: Iterable[Fact]
) -> Dict[str, FrozenSet[Tuple]]:
    """Least fixpoint of the program over the given extensional facts.

    Semi-naive: after the first round, each rule fires only on
    instantiations that use at least one fact derived in the previous
    round (tried at every body position).
    """
    store = _FactStore()
    for relation, row in facts:
        store.add(relation, tuple(row))

    # Round 0: facts from body-less rules plus one naive pass.
    delta = _FactStore()
    for rule in program.rules:
        if not rule.body:
            row = tuple(rule.head.terms)
            if any(isinstance(t, DVar) for t in row):
                raise ValueError(f"fact rule with variables: {rule}")
            if store.add(rule.head.relation, row):
                delta.add(rule.head.relation, row)
    for rule in program.rules:
        if rule.body:
            for row in _match_rule(rule, store, None, None):
                if store.add(rule.head.relation, row):
                    delta.add(rule.head.relation, row)

    _semi_naive_rounds(program, store, delta)
    return {rel: frozenset(rows) for rel, rows in store.by_relation.items()}


def _semi_naive_rounds(program: DatalogProgram, store: _FactStore, delta: _FactStore):
    """Iterate delta rounds until no rule produces a new fact."""
    while delta.by_relation:
        new_delta = _FactStore()
        for rule in program.rules:
            if not rule.body:
                continue
            relevant = any(
                atom.relation in delta.by_relation for atom in rule.body
            )
            if not relevant:
                continue
            for position, atom in enumerate(rule.body):
                if atom.relation not in delta.by_relation:
                    continue
                for row in _match_rule(rule, store, delta, position):
                    if store.add(rule.head.relation, row):
                        new_delta.add(rule.head.relation, row)
        delta = new_delta


def extend_fixpoint(
    program: DatalogProgram,
    closed_facts: Iterable[Fact],
    new_facts: Iterable[Fact],
) -> Dict[str, FrozenSet[Tuple]]:
    """Incrementally extend an existing fixpoint with new facts.

    *closed_facts* must already be a fixpoint of the program (e.g. a
    previously materialized closure); *new_facts* are the insertions.
    Because positive Datalog is monotone, seeding the semi-naive loop
    with just the insertions as the first delta recomputes exactly the
    consequences that involve them — the incremental-maintenance
    strategy used by :class:`repro.store.TripleStore`.
    """
    store = _FactStore()
    for relation, row in closed_facts:
        store.add(relation, tuple(row))
    delta = _FactStore()
    for relation, row in new_facts:
        row = tuple(row)
        if store.add(relation, row):
            delta.add(relation, row)
    _semi_naive_rounds(program, store, delta)
    return {rel: frozenset(rows) for rel, rows in store.by_relation.items()}
