"""A positive Datalog engine with semi-naive evaluation.

Section 4.2 of the paper contrasts premise queries with Datalog; the
deductive system of Section 2.3.2 *is* (after Skolemization) a Datalog
program over a ternary ``t`` relation.  This engine makes both
statements executable:

* :mod:`repro.datalog.rdfs_program` compiles rules (2)–(13) into a
  program whose fixpoint is exactly ``RDFS-cl`` — a third,
  independently-derived closure implementation used for
  cross-validation and ablation benchmarks;
* :mod:`repro.navigation` compiles path expressions to recursive rules.

The engine supports plain positive Datalog: Horn rules without
negation, evaluated bottom-up by semi-naive iteration with per-round
deltas and join ordering by bound-ness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from ..core.columns import dedup_sorted
from ..obs import OBS
from ..obs.progress import current_progress
from ..robustness.faultinject import FAULTS
from ..robustness.guard import current_guard

__all__ = [
    "DVar",
    "DatalogAtom",
    "DatalogRule",
    "DatalogProgram",
    "FactStore",
    "evaluate_program",
    "materialize_fixpoint",
    "extend_fixpoint",
    "extend_fixpoint_into",
    "retract_fixpoint",
    "retract_fixpoint_into",
]


@dataclass(frozen=True, order=True)
class DVar:
    """A Datalog variable."""

    name: str

    def __str__(self):
        return f"?{self.name}"


DTerm = Hashable  # DVar or any hashable constant
Fact = Tuple[str, Tuple[Hashable, ...]]


@dataclass(frozen=True)
class DatalogAtom:
    """``R(t1, ..., tk)`` with variables and constants."""

    relation: str
    terms: Tuple[DTerm, ...]

    def variables(self) -> FrozenSet[DVar]:
        return frozenset(t for t in self.terms if isinstance(t, DVar))

    def __str__(self):
        inner = ", ".join(str(t) for t in self.terms)
        return f"{self.relation}({inner})"


@dataclass(frozen=True)
class DatalogRule:
    """``head :- body``.  Range-restricted: head vars ⊆ body vars."""

    head: DatalogAtom
    body: Tuple[DatalogAtom, ...]

    def __post_init__(self):
        body_vars = set()
        for atom in self.body:
            body_vars |= atom.variables()
        free = self.head.variables() - body_vars
        if free:
            raise ValueError(
                f"rule is not range-restricted; free head variables: "
                f"{sorted(v.name for v in free)}"
            )

    def __str__(self):
        if not self.body:
            return f"{self.head}."
        return f"{self.head} :- " + ", ".join(str(a) for a in self.body)


@dataclass(frozen=True)
class DatalogProgram:
    """A set of rules plus extensional facts."""

    rules: Tuple[DatalogRule, ...]

    def idb_relations(self) -> FrozenSet[str]:
        return frozenset(r.head.relation for r in self.rules)

    def __str__(self):
        return "\n".join(str(r) for r in self.rules)


class FactStore:
    """Facts indexed by relation and by (relation, position, value).

    Mutable and cheap to update in place — the persistent substrate for
    incrementally maintained fixpoints (see :func:`materialize_fixpoint`
    / :func:`extend_fixpoint_into` / :func:`retract_fixpoint_into`).
    """

    def __init__(self):
        self.by_relation: Dict[str, Set[Tuple]] = {}
        self.index: Dict[Tuple[str, int, Hashable], Set[Tuple]] = {}

    def __contains__(self, fact: Fact) -> bool:
        relation, row = fact
        return row in self.by_relation.get(relation, ())

    def add(self, relation: str, row: Tuple) -> bool:
        """Insert; returns True when the fact is new."""
        rows = self.by_relation.setdefault(relation, set())
        if row in rows:
            return False
        rows.add(row)
        for position, value in enumerate(row):
            self.index.setdefault((relation, position, value), set()).add(row)
        return True

    def discard(self, relation: str, row: Tuple) -> bool:
        """Remove; returns True when the fact was present."""
        rows = self.by_relation.get(relation)
        if rows is None or row not in rows:
            return False
        rows.remove(row)
        if not rows:
            del self.by_relation[relation]
        for position, value in enumerate(row):
            key = (relation, position, value)
            indexed = self.index.get(key)
            if indexed is not None:
                indexed.discard(row)
                if not indexed:
                    del self.index[key]
        return True

    def rows(self, relation: str) -> Set[Tuple]:
        return self.by_relation.get(relation, set())

    def candidates(self, atom: DatalogAtom, binding: Dict[DVar, Hashable]):
        """Rows matching the atom under the current partial binding."""
        best: Optional[Set[Tuple]] = None
        for position, term in enumerate(atom.terms):
            value = binding.get(term) if isinstance(term, DVar) else term
            if value is None:
                continue
            found = self.index.get((atom.relation, position, value), set())
            if best is None or len(found) < len(best):
                best = found
            if best is not None and not best:
                return ()
        if best is None:
            best = self.rows(atom.relation)
        # Final filter for consistency (repeated variables, remaining
        # constants).
        out = []
        for row in best:
            if len(row) != len(atom.terms):
                continue
            local: Dict[DVar, Hashable] = {}
            ok = True
            for term, value in zip(atom.terms, row):
                if isinstance(term, DVar):
                    want = binding.get(term, local.get(term))
                    if want is None:
                        local[term] = value
                    elif want != value:
                        ok = False
                        break
                elif term != value:
                    ok = False
                    break
            if ok:
                out.append(row)
        return out


def _match_rule(
    rule: DatalogRule,
    store: FactStore,
    delta: Optional[FactStore],
    delta_position: Optional[int],
) -> Iterator[Tuple]:
    """Head instantiations; if *delta_position* is set, that body atom
    must match a fact from the delta (semi-naive restriction)."""

    body = list(rule.body)

    def backtrack(i: int, binding: Dict[DVar, Hashable]) -> Iterator[Tuple]:
        if i == len(body):
            yield tuple(
                binding[t] if isinstance(t, DVar) else t for t in rule.head.terms
            )
            return
        atom = body[i]
        source = delta if (delta is not None and i == delta_position) else store
        for row in source.candidates(atom, binding):
            bound: List[DVar] = []
            ok = True
            for term, value in zip(atom.terms, row):
                if isinstance(term, DVar):
                    seen = binding.get(term)
                    if seen is None:
                        binding[term] = value
                        bound.append(term)
                    elif seen != value:
                        ok = False
                        break
            if ok:
                yield from backtrack(i + 1, binding)
            for v in bound:
                del binding[v]

    yield from backtrack(0, {})


def materialize_fixpoint(program: DatalogProgram, facts: Iterable[Fact]) -> FactStore:
    """Least fixpoint of the program as a mutable :class:`FactStore`.

    Semi-naive: after the first round, each rule fires only on
    instantiations that use at least one fact derived in the previous
    round (tried at every body position).  The returned store can be
    maintained in place with :func:`extend_fixpoint_into` and
    :func:`retract_fixpoint_into`.
    """
    store = FactStore()
    for relation, row in facts:
        store.add(relation, tuple(row))

    with OBS.span("datalog.fixpoint") as span:
        # Round 0: facts from body-less rules plus one naive pass.
        delta = FactStore()
        for rule in program.rules:
            if not rule.body:
                row = tuple(rule.head.terms)
                if any(isinstance(t, DVar) for t in row):
                    raise ValueError(f"fact rule with variables: {rule}")
                if store.add(rule.head.relation, row):
                    delta.add(rule.head.relation, row)
        guard = current_guard()
        for index, rule in enumerate(program.rules):
            if rule.body:
                derived = 0
                for row in _match_rule(rule, store, None, None):
                    if guard is not None:
                        guard.tick()
                    if store.add(rule.head.relation, row):
                        delta.add(rule.head.relation, row)
                        derived += 1
                if derived and OBS.enabled:
                    _report_rule_derivations(index, rule, derived)

        _semi_naive_rounds(program, store, delta)
        if OBS.enabled:
            span.annotate(
                facts=sum(len(r) for r in store.by_relation.values())
            )
    return store


def evaluate_program(
    program: DatalogProgram, facts: Iterable[Fact]
) -> Dict[str, FrozenSet[Tuple]]:
    """Least fixpoint of the program over the given extensional facts."""
    store = materialize_fixpoint(program, facts)
    return {rel: frozenset(rows) for rel, rows in store.by_relation.items()}


def _report_rule_derivations(index: int, rule: DatalogRule, derived: int) -> None:
    """Per-rule derivation counters (rules keyed by program position)."""
    reg = OBS.registry
    reg.inc("datalog.derived", derived)
    reg.inc(f"datalog.derived.r{index}.{rule.head.relation}", derived)


def _semi_naive_rounds(
    program: DatalogProgram,
    store: FactStore,
    delta: FactStore,
    added: Optional[FactStore] = None,
):
    """Iterate delta rounds until no rule produces a new fact.

    Each rule's head instantiations are collected as one **batch** per
    round and deduplicated by a single sort plus adjacent-duplicate
    drop before touching the store — the same sorted-run trajectory as
    the arrays closure kernel — so a rule that re-derives the same head
    many times (transitive rules do, combinatorially) pays one set
    probe per *distinct* row instead of one per emission.  The ambient
    execution guard is charged at the batch boundary, once per unique
    row, mirroring the closure kernel's per-delta accounting.

    When *added* is given, every fact inserted by the loop is recorded
    there too (the insertion delta reported by the ``_into`` variants).
    """
    round_no = 0
    guard = current_guard()
    # Ambient only: the engine's public signatures stay fact-shaped;
    # callers opt into heartbeats with obs.progress_scope(...).
    progress = current_progress()
    total_derived = 0
    while delta.by_relation:
        round_no += 1
        if FAULTS.enabled:
            FAULTS.hit("engine.round")
        if guard is not None:
            guard.tick()
        span = OBS.span("datalog.round", round=round_no)
        round_derived = 0
        with span:
            new_delta = FactStore()
            for index, rule in enumerate(program.rules):
                if not rule.body:
                    continue
                relevant = any(
                    atom.relation in delta.by_relation for atom in rule.body
                )
                if not relevant:
                    continue
                emitted: List[Tuple] = []
                for position, atom in enumerate(rule.body):
                    if atom.relation not in delta.by_relation:
                        continue
                    emitted.extend(_match_rule(rule, store, delta, position))
                if not emitted:
                    continue
                try:
                    emitted.sort()
                    batch = dedup_sorted(emitted)
                except TypeError:
                    # Rows mixing un-orderable value types: keep the
                    # emission order, dedup by first occurrence.
                    batch = list(dict.fromkeys(emitted))
                if guard is not None:
                    guard.tick(len(batch))
                derived = 0
                relation = rule.head.relation
                for row in batch:
                    if store.add(relation, row):
                        new_delta.add(relation, row)
                        derived += 1
                        if added is not None:
                            added.add(relation, row)
                if OBS.enabled:
                    OBS.registry.inc("datalog.batch_rows", len(batch))
                round_derived += derived
                if derived and OBS.enabled:
                    _report_rule_derivations(index, rule, derived)
            if OBS.enabled:
                OBS.registry.inc("datalog.rounds")
                span.annotate(derived=round_derived)
        total_derived += round_derived
        if progress is not None:
            progress.report(
                "datalog",
                round=round_no,
                derived=total_derived,
                delta=sum(
                    len(rows) for rows in new_delta.by_relation.values()
                ),
                guard_steps=guard.steps if guard is not None else 0,
            )
        delta = new_delta


def _rederivable(rule: DatalogRule, store: FactStore, row: Tuple) -> bool:
    """Can *rule* derive the head instance *row* from facts in *store*?

    Goal-directed: the head binding is fixed up front, so the body
    search only explores instantiations that produce exactly this fact —
    the per-fact rederivation step of delete–rederive maintenance.
    """
    binding: Dict[DVar, Hashable] = {}
    for term, value in zip(rule.head.terms, row):
        if isinstance(term, DVar):
            seen = binding.get(term)
            if seen is None:
                binding[term] = value
            elif seen != value:
                return False
        elif term != value:
            return False

    body = list(rule.body)

    def backtrack(i: int) -> bool:
        if i == len(body):
            return True
        atom = body[i]
        for candidate in store.candidates(atom, binding):
            bound: List[DVar] = []
            ok = True
            for term, value in zip(atom.terms, candidate):
                if isinstance(term, DVar):
                    seen = binding.get(term)
                    if seen is None:
                        binding[term] = value
                        bound.append(term)
                    elif seen != value:
                        ok = False
                        break
            if ok and backtrack(i + 1):
                return True
            for v in bound:
                del binding[v]
        return False

    return backtrack(0)


def retract_fixpoint_into(
    program: DatalogProgram,
    store: FactStore,
    base: FactStore,
    removed_facts: Iterable[Fact],
) -> Dict[str, FrozenSet[Tuple]]:
    """Delete–rederive (DRed) maintenance of a fixpoint, in place.

    *store* must hold a fixpoint of the program over some extensional
    database; *base* is that database **after** the *removed_facts*
    have been taken out.  Mutates *store* into the fixpoint over the
    reduced database and returns the net deletions per relation (facts
    present before, absent after).  Three phases instead of a
    from-scratch run:

    1. **Overdelete** — starting from the removals, delete every fact
       some derivation of which uses a deleted fact (semi-naive over the
       deletion delta, remaining body atoms matched in the old closure).
    2. **Rederive seeds** — each overdeleted fact that is still in the
       base, or has an alternate derivation entirely within the
       surviving facts, is put back (head-bound body search per fact).
    3. **Propagate** — the rederived seeds feed the ordinary semi-naive
       insertion loop, restoring their surviving consequences.

    Deleting a fact with few consequences therefore costs time
    proportional to its derivation cone, not to the whole closure.
    """
    axioms = {
        (rule.head.relation, tuple(rule.head.terms))
        for rule in program.rules
        if not rule.body
    }
    rules_by_head: Dict[str, List[DatalogRule]] = {}
    for rule in program.rules:
        rules_by_head.setdefault(rule.head.relation, []).append(rule)

    # A fact is *stably supported* when it is in the base, is an axiom,
    # or has a derivation using base facts only — none of which a
    # deletion can ever invalidate.  Pruning the overdeletion wave at
    # stably supported facts is what keeps the deletion cone small:
    # without it, one lost support for a reflexivity fact like
    # ``(c, sc, c)`` overdeletes (and then rederives) the entire
    # transitive neighbourhood of ``c``.
    stable_memo: Dict[Fact, bool] = {}

    def stably_supported(relation: str, row: Tuple) -> bool:
        head = (relation, row)
        if head in base or head in axioms:
            return True
        cached = stable_memo.get(head)
        if cached is None:
            cached = any(
                rule.body and _rederivable(rule, base, row)
                for rule in rules_by_head.get(relation, ())
            )
            stable_memo[head] = cached
        return cached

    # Phase 1: overdeletion.  ``store`` stays the *old* closure while the
    # deletion delta saturates, so every body atom can still be matched.
    # A ``with`` block (not hand-called __enter__/__exit__): a
    # BudgetExceeded from guard.tick() or an injected fault must still
    # close the span, or it never gets an end time and the tracer's
    # nesting stack is left pointing at a dead span.
    with OBS.span("datalog.dred.overdelete") as overdelete_span:
        guard = current_guard()
        overdeleted = FactStore()
        delta = FactStore()
        for relation, row in removed_facts:
            row = tuple(row)
            if (relation, row) in store and overdeleted.add(relation, row):
                delta.add(relation, row)
        while delta.by_relation:
            if FAULTS.enabled:
                FAULTS.hit("engine.dred.overdelete")
            if guard is not None:
                guard.tick()
            new_delta = FactStore()
            for rule in program.rules:
                if not rule.body:
                    continue
                if not any(atom.relation in delta.by_relation for atom in rule.body):
                    continue
                for position, atom in enumerate(rule.body):
                    if atom.relation not in delta.by_relation:
                        continue
                    for row in _match_rule(rule, store, delta, position):
                        if guard is not None:
                            guard.tick()
                        head = (rule.head.relation, row)
                        if head not in store or head in overdeleted:
                            continue
                        if stably_supported(*head):
                            continue  # prune: no deletion can falsify it
                        overdeleted.add(rule.head.relation, row)
                        new_delta.add(rule.head.relation, row)
            delta = new_delta
        overdelete_span.annotate(
            overdeleted=sum(len(r) for r in overdeleted.by_relation.values())
        )

    # Shrink the store to the surviving facts.
    for relation, rows in overdeleted.by_relation.items():
        for row in rows:
            store.discard(relation, row)

    # Phase 2: rederivation seeds — an alternate derivation entirely
    # within the surviving facts (the removed facts themselves may also
    # turn out stably supported when removed_facts ⊄ old base).
    if FAULTS.enabled:
        FAULTS.hit("engine.dred.rederive")
    delta = FactStore()
    for relation, rows in overdeleted.by_relation.items():
        for row in rows:
            if guard is not None:
                guard.tick()
            alive = stably_supported(relation, row) or any(
                rule.body and _rederivable(rule, store, row)
                for rule in rules_by_head.get(relation, ())
            )
            if alive and store.add(relation, row):
                delta.add(relation, row)

    if OBS.enabled:
        # The two cone sizes DRed's cost is proportional to
        # (overdeletion wave, then revived seeds).
        overdeleted_n = sum(
            len(rows) for rows in overdeleted.by_relation.values()
        )
        rederived_n = sum(len(rows) for rows in delta.by_relation.values())
        reg = OBS.registry
        reg.inc("datalog.dred.overdeleted", overdeleted_n)
        reg.inc("datalog.dred.rederived", rederived_n)
        reg.observe("datalog.dred.cone_size", overdeleted_n)

    # Phase 3: propagate the rederived seeds like ordinary insertions.
    with OBS.span("datalog.dred.propagate"):
        _semi_naive_rounds(program, store, delta)

    # Net deletions: overdeleted facts that rederivation did not revive.
    gone: Dict[str, FrozenSet[Tuple]] = {}
    for relation, rows in overdeleted.by_relation.items():
        lost = frozenset(
            row for row in rows if (relation, row) not in store
        )
        if lost:
            gone[relation] = lost
    return gone


def retract_fixpoint(
    program: DatalogProgram,
    closed_facts: Iterable[Fact],
    base_facts: Iterable[Fact],
    removed_facts: Iterable[Fact],
) -> Dict[str, FrozenSet[Tuple]]:
    """DRed maintenance of an existing fixpoint (functional wrapper).

    Builds fresh stores from *closed_facts* / *base_facts*, runs
    :func:`retract_fixpoint_into`, and returns the whole reduced
    fixpoint.  *base_facts* is the extensional database **after** the
    *removed_facts* have been taken out.
    """
    store = FactStore()
    for relation, row in closed_facts:
        store.add(relation, tuple(row))
    base = FactStore()
    for relation, row in base_facts:
        base.add(relation, tuple(row))
    retract_fixpoint_into(program, store, base, removed_facts)
    return {rel: frozenset(rows) for rel, rows in store.by_relation.items()}


def extend_fixpoint_into(
    program: DatalogProgram,
    store: FactStore,
    new_facts: Iterable[Fact],
) -> Dict[str, FrozenSet[Tuple]]:
    """Incrementally extend a fixpoint held in *store*, in place.

    Because positive Datalog is monotone, seeding the semi-naive loop
    with just the insertions as the first delta recomputes exactly the
    consequences that involve them.  Returns the net additions per
    relation (facts absent before, present after).
    """
    delta = FactStore()
    added = FactStore()
    for relation, row in new_facts:
        row = tuple(row)
        if store.add(relation, row):
            delta.add(relation, row)
            added.add(relation, row)
    _semi_naive_rounds(program, store, delta, added=added)
    return {
        rel: frozenset(rows) for rel, rows in added.by_relation.items()
    }


def extend_fixpoint(
    program: DatalogProgram,
    closed_facts: Iterable[Fact],
    new_facts: Iterable[Fact],
) -> Dict[str, FrozenSet[Tuple]]:
    """Incrementally extend an existing fixpoint (functional wrapper).

    *closed_facts* must already be a fixpoint of the program (e.g. a
    previously materialized closure); *new_facts* are the insertions.
    """
    store = FactStore()
    for relation, row in closed_facts:
        store.add(relation, tuple(row))
    extend_fixpoint_into(program, store, new_facts)
    return {rel: frozenset(rows) for rel, rows in store.by_relation.items()}
