"""Graphviz DOT export, in the paper's drawing style.

Fig. 1 and the worked examples draw each triple ``(s, p, o)`` as an arc
``s --p--> o``; this module reproduces that rendering (blank nodes as
unfilled circles) so generated graphs can be inspected visually.
"""

from __future__ import annotations

from typing import Dict

from ..core.graph import RDFGraph
from ..core.terms import BNode, Literal, Term

__all__ = ["to_dot"]


def _node_id(term: Term, ids: Dict[Term, str]) -> str:
    if term not in ids:
        ids[term] = f"n{len(ids)}"
    return ids[term]


def _label(term: Term) -> str:
    text = str(term).replace("\\", "\\\\").replace('"', '\\"')
    return text


def to_dot(graph: RDFGraph, name: str = "G") -> str:
    """The DOT source for *graph* (arc labels = predicates)."""
    ids: Dict[Term, str] = {}
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    nodes = sorted(
        {t.s for t in graph} | {t.o for t in graph}, key=str
    )
    for term in nodes:
        node = _node_id(term, ids)
        if isinstance(term, BNode):
            shape = 'shape=circle, label="", xlabel="{}"'.format(_label(term))
        elif isinstance(term, Literal):
            shape = f'shape=box, label="{_label(term)}"'
        else:
            shape = f'shape=ellipse, label="{_label(term)}"'
        lines.append(f"  {node} [{shape}];")
    for t in graph.sorted_triples():
        s = _node_id(t.s, ids)
        o = _node_id(t.o, ids)
        lines.append(f'  {s} -> {o} [label="{_label(t.p)}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"
