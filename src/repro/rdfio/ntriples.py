"""A minimal N-Triples-style reader/writer for the abstract fragment.

The concrete syntax is a simplification of W3C N-Triples adapted to the
paper's abstract model (short URIs without angle brackets are allowed):

* ``<http://...>`` or a bare name — a URI;
* ``_:label`` — a blank node;
* ``"text"`` — a plain literal (object position only);
* one triple per line, terminated by an optional ``.``;
* ``#`` starts a comment.

Round-tripping is exact: ``parse(serialize(G)) == G``.

Two error modes: the default ``strict=True`` raises :class:`ParseError`
on the first malformed line; ``strict=False`` skips malformed lines and
returns a :class:`ParseReport` pairing the graph of well-formed triples
with a per-line error list — the right mode for scraping real-world
dumps where one bad byte must not discard a million good lines.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from ..core.graph import RDFGraph
from ..core.terms import BNode, Literal, Term, Triple, URI

__all__ = [
    "ParseError",
    "ParseIssue",
    "ParseReport",
    "iter_ntriples",
    "parse_ntriples",
    "serialize_ntriples",
]


class ParseError(ValueError):
    """A syntax error in the N-Triples-style input, with line context."""

    def __init__(self, message: str, line_number: int, line: str):
        super().__init__(f"line {line_number}: {message}: {line.strip()!r}")
        self.reason = message
        self.line_number = line_number
        self.line = line

    def __reduce__(self):
        # Default exception pickling would replay __init__ with the
        # already-formatted message as the only argument; the parallel
        # ingest workers ship ParseErrors across process boundaries, so
        # reconstruct from the original three fields instead.
        return (ParseError, (self.reason, self.line_number, self.line))


@dataclass(frozen=True)
class ParseIssue:
    """One malformed line skipped by a tolerant parse."""

    line_number: int
    reason: str
    line: str


@dataclass(frozen=True)
class ParseReport:
    """The result of a tolerant (``strict=False``) parse."""

    graph: RDFGraph
    errors: Tuple[ParseIssue, ...]

    @property
    def ok(self) -> bool:
        """True when no line was skipped."""
        return not self.errors

    def __repr__(self) -> str:
        return (
            f"ParseReport({len(self.graph)} triples, "
            f"{len(self.errors)} skipped lines)"
        )


_TOKEN = re.compile(
    r"""
    \s*(
        <[^<>\s]*>            # angle-bracketed URI
      | _:[A-Za-z0-9_.!\-]+   # blank node
      | "(?:[^"\\]|\\.)*"     # literal with escapes
      | [^\s"<>]+             # bare name (short URI) or the final dot
    )
    """,
    re.VERBOSE,
)


_UNESCAPE_RE = re.compile(r"\\(u[0-9A-Fa-f]{4}|.)")
_NAMED_ESCAPES = {"n": "\n", "r": "\r", "t": "\t", '"': '"', "\\": "\\"}
#: Characters that must be \u-escaped: everything str.splitlines treats
#: as a line boundary (which would break the line-oriented syntax).
_LINE_BREAKERS = "\x0b\x0c\x1c\x1d\x1e\x85\u2028\u2029"

#: A line tail that carries no further tokens: optional whitespace, then
#: end-of-line or a comment.  ``_REST.match(line, pos)`` is the
#: tokenizer's stop test, evaluated in C instead of slicing the line
#: and stripping it per token.
_REST = re.compile(r"\s*(?:\#.*\s*)?$")


def _substitute_escape(match: "re.Match") -> str:
    token = match.group(1)
    if token.startswith("u"):
        return chr(int(token[1:], 16))
    return _NAMED_ESCAPES.get(token, token)


def _unescape(text: str) -> str:
    return _UNESCAPE_RE.sub(_substitute_escape, text)


def _escape(text: str) -> str:
    out = (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\r", "\\r")
        .replace("\t", "\\t")
    )
    for ch in _LINE_BREAKERS:
        out = out.replace(ch, f"\\u{ord(ch):04X}")
    return out


def _parse_term(token: str) -> Term:
    if token.startswith("<") and token.endswith(">"):
        return URI(token[1:-1])
    if token.startswith("_:"):
        return BNode(token[2:])
    if token.startswith('"') and token.endswith('"'):
        return Literal(_unescape(token[1:-1]))
    return URI(token)


def _tokenize(line: str, line_number: int) -> List[str]:
    """All tokens of *line* as a list (error paths and tests only).

    The hot path (:func:`_parse_line`) consumes tokens as they are
    matched instead of materializing this list.
    """
    tokens = []
    position = 0
    while not _REST.match(line, position):
        match = _TOKEN.match(line, position)
        if match is None:
            raise ParseError("cannot tokenize", line_number, line)
        tokens.append(match.group(1))
        position = match.end()
    return tokens


def _parse_line(line: str, line_number: int) -> Triple:
    """One well-formed triple from *line*, or :class:`ParseError`.

    Tokens are matched and consumed in one pass — no intermediate token
    list, no per-token line slicing.  The first three tokens become
    terms; a fourth is only legal when it is the terminating ``.``.
    """
    token_match = _TOKEN.match
    stop = _REST.match
    s = p = o = token = None
    count = 0
    position = 0
    while not stop(line, position):
        match = token_match(line, position)
        if match is None:
            raise ParseError("cannot tokenize", line_number, line)
        token = match.group(1)
        position = match.end()
        if count == 0:
            s = token
        elif count == 1:
            p = token
        elif count == 2:
            o = token
        count += 1
    if count and token == ".":
        count -= 1  # drop the terminating dot (never a term)
    if count != 3:
        raise ParseError(
            f"expected 3 terms, found {count}", line_number, line
        )
    try:
        t = Triple(_parse_term(s), _parse_term(p), _parse_term(o))
    except ParseError:
        raise
    except ValueError as err:  # e.g. the empty URI "<>"
        raise ParseError(str(err), line_number, line) from err
    if not t.is_valid_rdf():
        raise ParseError("ill-formed triple", line_number, line)
    return t


def iter_ntriples(
    source: Union[str, Iterable[str]],
    strict: bool = True,
    issues: Optional[List[ParseIssue]] = None,
    start: int = 1,
) -> Iterator[Triple]:
    """Stream triples from N-Triples-style text, one line at a time.

    *source* is either a complete text (split on line boundaries) or
    any iterable of lines — a file object, an ``islice`` of one, a list
    of chunk lines.  Nothing is buffered beyond the current line, so a
    million-triple file parses in constant memory; this generator is
    the substrate of both :func:`parse_ntriples` and the streaming bulk
    loader (:mod:`repro.ingest`).

    With ``strict=True`` the first malformed line raises
    :class:`ParseError`.  With ``strict=False`` malformed lines are
    skipped; pass an *issues* list to collect one :class:`ParseIssue`
    per skipped line.  *start* offsets the reported line numbers (the
    parallel loader parses chunks whose first line is deep in the
    file).
    """
    lines = source.splitlines() if isinstance(source, str) else source
    skip = _REST.match
    for line_number, line in enumerate(lines, start=start):
        if skip(line):
            continue
        try:
            yield _parse_line(line, line_number)
        except ParseError as err:
            if strict:
                raise
            if issues is not None:
                issues.append(ParseIssue(line_number, err.reason, line))


def parse_ntriples(
    text: str, strict: bool = True
) -> Union[RDFGraph, ParseReport]:
    """Parse a graph from the N-Triples-style concrete syntax.

    With ``strict=True`` (the default) the first malformed line raises
    :class:`ParseError` and returns an :class:`RDFGraph` otherwise.
    With ``strict=False`` malformed lines are *skipped* and the return
    value is a :class:`ParseReport`: ``report.graph`` holds every
    well-formed triple, ``report.errors`` lists one
    :class:`ParseIssue` (line number, reason, raw line) per skipped
    line, in input order.

    Both modes delegate to the streaming :func:`iter_ntriples`, so the
    one-shot path shares the no-intermediate-token-list fast parse.
    """
    if strict:
        return RDFGraph(iter_ntriples(text))
    issues: List[ParseIssue] = []
    triples = list(iter_ntriples(text, strict=False, issues=issues))
    return ParseReport(graph=RDFGraph(triples), errors=tuple(issues))


def _serialize_term(term: Term) -> str:
    if isinstance(term, URI):
        # Bare names need angle brackets only when they could be
        # mis-tokenized (contain quotes/brackets — excluded by URI rules
        # here — or start like a blank/literal or equal the dot).
        if term.value == "." or term.value.startswith("_:"):
            return f"<{term.value}>"
        if any(ch.isspace() for ch in term.value):
            return f"<{term.value}>"
        if "#" in term.value:
            # A bare name with a fragment marker would collide with the
            # comment syntax of the query surface grammar; the angle
            # form is unambiguous in both grammars.
            return f"<{term.value}>"
        return term.value
    if isinstance(term, BNode):
        return f"_:{term.value}"
    if isinstance(term, Literal):
        return f'"{_escape(term.value)}"'
    raise TypeError(f"cannot serialize {term!r}")


def serialize_ntriples(graph: RDFGraph) -> str:
    """Serialize a graph, one triple per line, deterministically ordered."""
    lines = [
        f"{_serialize_term(t.s)} {_serialize_term(t.p)} {_serialize_term(t.o)} ."
        for t in graph.sorted_triples()
    ]
    return "\n".join(lines) + ("\n" if lines else "")
