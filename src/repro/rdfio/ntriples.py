"""A minimal N-Triples-style reader/writer for the abstract fragment.

The concrete syntax is a simplification of W3C N-Triples adapted to the
paper's abstract model (short URIs without angle brackets are allowed):

* ``<http://...>`` or a bare name — a URI;
* ``_:label`` — a blank node;
* ``"text"`` — a plain literal (object position only);
* one triple per line, terminated by an optional ``.``;
* ``#`` starts a comment.

Round-tripping is exact: ``parse(serialize(G)) == G``.

Two error modes: the default ``strict=True`` raises :class:`ParseError`
on the first malformed line; ``strict=False`` skips malformed lines and
returns a :class:`ParseReport` pairing the graph of well-formed triples
with a per-line error list — the right mode for scraping real-world
dumps where one bad byte must not discard a million good lines.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Tuple, Union

from ..core.graph import RDFGraph
from ..core.terms import BNode, Literal, Term, Triple, URI

__all__ = [
    "ParseError",
    "ParseIssue",
    "ParseReport",
    "parse_ntriples",
    "serialize_ntriples",
]


class ParseError(ValueError):
    """A syntax error in the N-Triples-style input, with line context."""

    def __init__(self, message: str, line_number: int, line: str):
        super().__init__(f"line {line_number}: {message}: {line.strip()!r}")
        self.reason = message
        self.line_number = line_number
        self.line = line


@dataclass(frozen=True)
class ParseIssue:
    """One malformed line skipped by a tolerant parse."""

    line_number: int
    reason: str
    line: str


@dataclass(frozen=True)
class ParseReport:
    """The result of a tolerant (``strict=False``) parse."""

    graph: RDFGraph
    errors: Tuple[ParseIssue, ...]

    @property
    def ok(self) -> bool:
        """True when no line was skipped."""
        return not self.errors

    def __repr__(self) -> str:
        return (
            f"ParseReport({len(self.graph)} triples, "
            f"{len(self.errors)} skipped lines)"
        )


_TOKEN = re.compile(
    r"""
    \s*(
        <[^<>\s]*>            # angle-bracketed URI
      | _:[A-Za-z0-9_.!\-]+   # blank node
      | "(?:[^"\\]|\\.)*"     # literal with escapes
      | [^\s"<>]+             # bare name (short URI) or the final dot
    )
    """,
    re.VERBOSE,
)


_UNESCAPE_RE = re.compile(r"\\(u[0-9A-Fa-f]{4}|.)")
_NAMED_ESCAPES = {"n": "\n", "r": "\r", "t": "\t", '"': '"', "\\": "\\"}
#: Characters that must be \u-escaped: everything str.splitlines treats
#: as a line boundary (which would break the line-oriented syntax).
_LINE_BREAKERS = "\x0b\x0c\x1c\x1d\x1e\x85\u2028\u2029"


def _unescape(text: str) -> str:
    def substitute(match: "re.Match") -> str:
        token = match.group(1)
        if token.startswith("u"):
            return chr(int(token[1:], 16))
        return _NAMED_ESCAPES.get(token, token)

    return _UNESCAPE_RE.sub(substitute, text)


def _escape(text: str) -> str:
    out = (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\r", "\\r")
        .replace("\t", "\\t")
    )
    for ch in _LINE_BREAKERS:
        out = out.replace(ch, f"\\u{ord(ch):04X}")
    return out


def _parse_term(token: str) -> Term:
    if token.startswith("<") and token.endswith(">"):
        return URI(token[1:-1])
    if token.startswith("_:"):
        return BNode(token[2:])
    if token.startswith('"') and token.endswith('"'):
        return Literal(_unescape(token[1:-1]))
    return URI(token)


def _tokenize(line: str, line_number: int) -> List[str]:
    tokens = []
    position = 0
    while position < len(line):
        remainder = line[position:]
        if remainder.strip() == "" or remainder.lstrip().startswith("#"):
            break
        match = _TOKEN.match(line, position)
        if match is None:
            raise ParseError("cannot tokenize", line_number, line)
        tokens.append(match.group(1))
        position = match.end()
    return tokens


def _parse_line(line: str, line_number: int) -> Triple:
    """One well-formed triple from *line*, or :class:`ParseError`."""
    tokens = _tokenize(line, line_number)
    if tokens and tokens[-1] == ".":
        tokens = tokens[:-1]
    if len(tokens) != 3:
        raise ParseError(
            f"expected 3 terms, found {len(tokens)}", line_number, line
        )
    try:
        s, p, o = (_parse_term(t) for t in tokens)
    except ParseError:
        raise
    except ValueError as err:  # e.g. the empty URI "<>"
        raise ParseError(str(err), line_number, line) from err
    t = Triple(s, p, o)
    if not t.is_valid_rdf():
        raise ParseError("ill-formed triple", line_number, line)
    return t


def parse_ntriples(
    text: str, strict: bool = True
) -> Union[RDFGraph, ParseReport]:
    """Parse a graph from the N-Triples-style concrete syntax.

    With ``strict=True`` (the default) the first malformed line raises
    :class:`ParseError` and returns an :class:`RDFGraph` otherwise.
    With ``strict=False`` malformed lines are *skipped* and the return
    value is a :class:`ParseReport`: ``report.graph`` holds every
    well-formed triple, ``report.errors`` lists one
    :class:`ParseIssue` (line number, reason, raw line) per skipped
    line, in input order.
    """
    triples = []
    issues: List[ParseIssue] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            triples.append(_parse_line(line, line_number))
        except ParseError as err:
            if strict:
                raise
            issues.append(ParseIssue(line_number, err.reason, line))
    if strict:
        return RDFGraph(triples)
    return ParseReport(graph=RDFGraph(triples), errors=tuple(issues))


def _serialize_term(term: Term) -> str:
    if isinstance(term, URI):
        # Bare names need angle brackets only when they could be
        # mis-tokenized (contain quotes/brackets — excluded by URI rules
        # here — or start like a blank/literal or equal the dot).
        if term.value == "." or term.value.startswith("_:"):
            return f"<{term.value}>"
        if any(ch.isspace() for ch in term.value):
            return f"<{term.value}>"
        return term.value
    if isinstance(term, BNode):
        return f"_:{term.value}"
    if isinstance(term, Literal):
        return f'"{_escape(term.value)}"'
    raise TypeError(f"cannot serialize {term!r}")


def serialize_ntriples(graph: RDFGraph) -> str:
    """Serialize a graph, one triple per line, deterministically ordered."""
    lines = [
        f"{_serialize_term(t.s)} {_serialize_term(t.p)} {_serialize_term(t.o)} ."
        for t in graph.sorted_triples()
    ]
    return "\n".join(lines) + ("\n" if lines else "")
