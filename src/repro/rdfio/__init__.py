"""Concrete syntax: N-Triples-style parsing/serialization and DOT export."""

from .dot import to_dot
from .ntriples import ParseError, parse_ntriples, serialize_ntriples

__all__ = ["ParseError", "parse_ntriples", "serialize_ntriples", "to_dot"]
