"""A textual surface syntax for tableau queries.

The paper writes queries as ``H ← B`` tableaux with premise and
constraint annotations; this module provides a parseable rendition so
queries can live in files and be fed to the CLI::

    CONSTRUCT { ?A creates ?Y . }
    WHERE     { ?A type Flemish . ?A paints ?Y . }
    PREMISE   { son sp relative . }
    BOUND     ?A

* ``CONSTRUCT { ... }`` — the head ``H`` (triples; blank nodes allowed);
* ``WHERE { ... }`` — the body ``B`` (no blank nodes, Note 4.2);
* ``PREMISE { ... }`` — the premise graph ``P`` (optional);
* ``BOUND ?X, ?Y`` — the must-bind constraint set ``C`` (optional).

Terms follow the N-Triples-style syntax of
:mod:`repro.rdfio.ntriples`, extended with ``?var`` variables.

Realistic query files additionally get:

* ``# ...`` comment lines (stripped anywhere outside a quoted literal);
* SPARQL-style ``PREFIX name: <iri>`` declarations in the prologue
  (before ``CONSTRUCT``).  A bare name ``name:local`` whose prefix was
  declared expands to ``<iri + local>``; undeclared colon names stay
  plain URIs (so ``urn:x`` keeps working), and the last declaration of
  a prefix wins.  :func:`serialize_query` always emits full URIs, so
  ``parse_query(serialize_query(q)) == q`` holds exactly.
"""

from __future__ import annotations

import re
from typing import Dict, List

from ..core.graph import RDFGraph
from ..core.terms import BNode, Literal, Term, Triple, URI, Variable
from ..query.tableau import PatternGraph, Query, Tableau

__all__ = ["parse_query", "serialize_query", "QuerySyntaxError"]


class QuerySyntaxError(ValueError):
    """A syntax error in the query surface syntax."""


_SECTION = re.compile(
    r"(CONSTRUCT|WHERE|PREMISE|BOUND)\s*", re.IGNORECASE
)
_PREFIX_DECL = re.compile(
    r"\s*PREFIX\s+([A-Za-z_][A-Za-z0-9_\-]*)?:\s*<([^<>\s]*)>",
    re.IGNORECASE,
)
_TERM = re.compile(
    r"""
    \s*(
        \?[A-Za-z_][A-Za-z0-9_]*   # variable
      | <[^<>\s]*>                 # angle URI
      | _:[A-Za-z0-9_.!\-]+        # blank node
      | "(?:[^"\\]|\\.)*"          # literal
      | \.                         # triple terminator
      | [^\s"<>{}?]+               # bare name
    )
    """,
    re.VERBOSE,
)


def _strip_comments(text: str) -> str:
    lines = []
    for line in text.splitlines():
        # Remove '#' comments, respecting quoted literals and angle
        # URIs (fragment URIs like <ns#local> are everywhere once
        # PREFIX declarations exist).  An angle URI cannot contain
        # whitespace, so a stray '<' stops absorbing at the next space.
        out = []
        in_string = False
        in_uri = False
        i = 0
        while i < len(line):
            ch = line[i]
            if not in_string:
                if ch == "<":
                    in_uri = True
                elif in_uri and (ch == ">" or ch.isspace()):
                    in_uri = False
            if not in_uri and ch == '"' and (i == 0 or line[i - 1] != "\\"):
                in_string = not in_string
            if ch == "#" and not in_string and not in_uri:
                break
            out.append(ch)
            i += 1
        lines.append("".join(out))
    return "\n".join(lines)


def _extract_prefixes(text: str):
    """Consume prologue ``PREFIX name: <iri>`` declarations.

    Declarations live before the first section keyword (SPARQL's
    prologue position); the last declaration of a name wins.  Returns
    the mapping and the remaining text.
    """
    prefixes: Dict[str, str] = {}
    position = 0
    while True:
        match = _PREFIX_DECL.match(text, position)
        if match is None:
            break
        prefixes[match.group(1) or ""] = match.group(2)
        position = match.end()
    return prefixes, text[position:]


def _parse_term(token: str, prefixes: Dict[str, str]) -> Term:
    if token.startswith("?"):
        return Variable(token[1:])
    if token.startswith("<") and token.endswith(">"):
        return URI(token[1:-1])
    if token.startswith("_:"):
        return BNode(token[2:])
    if token.startswith('"') and token.endswith('"'):
        from .ntriples import _unescape

        return Literal(_unescape(token[1:-1]))
    if prefixes and ":" in token:
        name, local = token.split(":", 1)
        base = prefixes.get(name)
        if base is not None:
            return URI(base + local)
    return URI(token)


def _parse_triple_block(
    block: str, allow_variables: bool, prefixes: Dict[str, str]
) -> List[Triple]:
    tokens: List[str] = []
    position = 0
    while position < len(block):
        if block[position:].strip() == "":
            break
        match = _TERM.match(block, position)
        if match is None:
            raise QuerySyntaxError(f"cannot tokenize: {block[position:position+30]!r}")
        tokens.append(match.group(1))
        position = match.end()
    # Split into triples on '.' terminators.
    def build(parts: List[str]) -> Triple:
        if len(parts) != 3:
            raise QuerySyntaxError(f"expected 3 terms per triple, got {parts}")
        try:
            return Triple(*(_parse_term(t, prefixes) for t in parts))
        except ValueError as err:  # e.g. the empty URI "<>"
            raise QuerySyntaxError(str(err)) from err

    triples: List[Triple] = []
    current: List[str] = []
    for token in tokens:
        if token == ".":
            if current:
                triples.append(build(current))
                current = []
        else:
            current.append(token)
    if current:
        triples.append(build(current))
    for t in triples:
        if not t.is_valid_pattern():
            raise QuerySyntaxError(f"ill-formed pattern triple: {t}")
        if not allow_variables and t.variables():
            raise QuerySyntaxError(f"variables not allowed here: {t}")
    return triples


def _extract_sections(text: str) -> Dict[str, str]:
    """Split the input into its keyword sections."""
    sections: Dict[str, str] = {}
    matches = list(_SECTION.finditer(text))
    if not matches:
        raise QuerySyntaxError("expected a CONSTRUCT { ... } WHERE { ... } query")
    for i, match in enumerate(matches):
        keyword = match.group(1).upper()
        end = matches[i + 1].start() if i + 1 < len(matches) else len(text)
        body = text[match.end():end].strip()
        if keyword in sections:
            raise QuerySyntaxError(f"duplicate {keyword} section")
        sections[keyword] = body
    return sections


def _braced(body: str, keyword: str) -> str:
    body = body.strip()
    if not (body.startswith("{") and body.endswith("}")):
        raise QuerySyntaxError(f"{keyword} expects a {{ ... }} block")
    return body[1:-1]


def parse_query(text: str) -> Query:
    """Parse the surface syntax into a :class:`repro.query.Query`."""
    text = _strip_comments(text)
    prefixes, text = _extract_prefixes(text)
    sections = _extract_sections(text)
    if "CONSTRUCT" not in sections or "WHERE" not in sections:
        raise QuerySyntaxError("both CONSTRUCT and WHERE sections are required")

    head = _parse_triple_block(
        _braced(sections["CONSTRUCT"], "CONSTRUCT"), True, prefixes
    )
    body = _parse_triple_block(_braced(sections["WHERE"], "WHERE"), True, prefixes)

    premise = RDFGraph()
    if "PREMISE" in sections:
        triples = _parse_triple_block(
            _braced(sections["PREMISE"], "PREMISE"), False, prefixes
        )
        premise = RDFGraph(triples)

    constraints = frozenset()
    if "BOUND" in sections:
        names = [
            token.strip()
            for token in sections["BOUND"].replace(",", " ").split()
            if token.strip()
        ]
        parsed = []
        for name in names:
            if not name.startswith("?"):
                raise QuerySyntaxError(f"BOUND expects variables, got {name!r}")
            parsed.append(Variable(name[1:]))
        constraints = frozenset(parsed)

    try:
        return Query(
            tableau=Tableau(head=PatternGraph(head), body=PatternGraph(body)),
            premise=premise,
            constraints=constraints,
        )
    except ValueError as err:
        raise QuerySyntaxError(str(err)) from err


def _serialize_term(term: Term) -> str:
    if isinstance(term, Variable):
        return f"?{term.value}"
    from .ntriples import _serialize_term as nt_term

    return nt_term(term)


def _serialize_block(triples) -> str:
    inner = " ".join(
        f"{_serialize_term(t.s)} {_serialize_term(t.p)} {_serialize_term(t.o)} ."
        for t in triples
    )
    return "{ " + inner + " }"


def serialize_query(query: Query) -> str:
    """Render a query back into the surface syntax (round-trips)."""
    parts = [
        "CONSTRUCT " + _serialize_block(query.head),
        "WHERE " + _serialize_block(query.body),
    ]
    if query.premise:
        parts.append(
            "PREMISE " + _serialize_block(query.premise.sorted_triples())
        )
    if query.constraints:
        names = ", ".join(
            f"?{v.value}" for v in sorted(query.constraints, key=lambda v: v.value)
        )
        parts.append("BOUND " + names)
    return "\n".join(parts) + "\n"
