"""The reflexivity-free (ρdf-style) deductive system of Muñoz et al. [31].

The paper's deductive system carries two reflexivity groups (E and F)
whose only job is to pad closures with ``(x, sp, x)`` / ``(x, sc, x)``
triples.  The companion work it builds on — "Minimal deductive systems
for RDF" [31] — shows that dropping them yields a smaller, *minimal*
system that agrees with the full semantics on all non-reflexive
conclusions.  This module implements that fragment:

* :func:`rho_closure` — the fixpoint of the reflexivity-free rules:
  sp/sc transitivity, sp inheritance, type lifting, and dom/range
  typing in both the direct and the through-sp (Marin) forms (the
  direct forms are special cases of rules (6)/(7) in the full system,
  reachable there only through reflexivity);
* :func:`rho_entails` — entailment relative to the minimal system;
* :func:`reflexivity_padding` — exactly the triples the full system
  adds on top (tested: ``RDFS-cl(G) = ρ-cl(G) ∪ padding(G)``).

The practical payoff is size: ρ-closures skip the ``Θ(|voc|)`` padding,
which for schema-light data is most of the closure.
"""

from __future__ import annotations

from typing import Set

from ..core.graph import RDFGraph
from ..core.homomorphism import find_map
from ..core.terms import BNode, Literal, Term, Triple, URI
from ..core.vocabulary import DOM, RANGE, RDFS_VOCABULARY, SC, SP, TYPE
from .closure import _transitive_pairs

__all__ = [
    "rho_closure",
    "rho_entails",
    "rho_equivalent",
    "reflexivity_padding",
    "is_reflexivity_free",
]


def _rho_round(triples: Set[Triple]) -> Set[Triple]:
    """One bulk emission of the reflexivity-free rule consequences."""
    new: Set[Triple] = set()

    sp_edges = {(t.s, t.o) for t in triples if t.p == SP}
    sc_edges = {(t.s, t.o) for t in triples if t.p == SC}
    sp_closure = _transitive_pairs(sp_edges)
    sc_closure = _transitive_pairs(sc_edges)

    # sp / sc transitivity.
    for a, b in sp_closure:
        new.add(Triple(a, SP, b))
    for a, b in sc_closure:
        if isinstance(a, (URI, BNode)) and isinstance(b, (URI, BNode)):
            new.add(Triple(a, SC, b))

    # sp inheritance.
    sp_super = {}
    for a, b in sp_closure:
        sp_super.setdefault(a, set()).add(b)
    for t in triples:
        for b in sp_super.get(t.p, ()):
            if isinstance(b, URI):
                new.add(Triple(t.s, b, t.o))

    # type lifting along sc.
    sc_super = {}
    for a, b in sc_closure:
        sc_super.setdefault(a, set()).add(b)
    for t in triples:
        if t.p != TYPE:
            continue
        for b in sc_super.get(t.o, ()):
            if isinstance(b, (URI, BNode)):
                new.add(Triple(t.s, TYPE, b))

    # dom/range typing: direct and through sp.
    sp_sub = {}
    for a, b in sp_closure:
        sp_sub.setdefault(b, set()).add(a)
    by_predicate = {}
    for t in triples:
        by_predicate.setdefault(t.p, []).append(t)
    for axiom in triples:
        if axiom.p not in (DOM, RANGE):
            continue
        if isinstance(axiom.o, Literal):
            continue
        properties = {axiom.s} | sp_sub.get(axiom.s, set())
        for c in properties:
            for used in by_predicate.get(c, ()):
                if axiom.p == DOM:
                    new.add(Triple(used.s, TYPE, axiom.o))
                elif isinstance(used.o, (URI, BNode)):
                    new.add(Triple(used.o, TYPE, axiom.o))

    return new - triples


def rho_closure(graph: RDFGraph) -> RDFGraph:
    """The reflexivity-free closure (the minimal system's fixpoint)."""
    triples: Set[Triple] = set(graph.triples)
    while True:
        new = _rho_round(triples)
        if not new:
            return RDFGraph(triples)
        triples |= new


def is_reflexivity_free(graph: RDFGraph) -> bool:
    """The class on which ρ-entailment is complete for full RDFS.

    No ``(x, sp, x)`` / ``(x, sc, x)`` triples, and no *blank node* in
    an sp/sc triple: a blank there acts as an existential that a
    reflexive closure triple could witness (e.g. ``(b, sp, X)`` is
    entailed by any graph mentioning ``b`` as an sp endpoint, through
    rule (11)'s ``(b, sp, b)``), which the minimal system deliberately
    cannot see.
    """
    for t in graph:
        if t.p in (SP, SC):
            if t.s == t.o:
                return False
            if isinstance(t.s, BNode) or isinstance(t.o, BNode):
                return False
    return True


def reflexivity_padding(graph: RDFGraph) -> RDFGraph:
    """The triples groups E/F add on top of the ρ-closure.

    Computed over the ρ-closure (reflexivity rules fire on derived
    triples too): rule (8) for every predicate, rule (9) for the
    reserved words, rule (10) for dom/range subjects, rules (11)/(13)
    for sp/sc endpoints, rule (12) for dom/range/type objects.
    """
    closed = rho_closure(graph)
    padding: Set[Triple] = set()
    sp_reflexive: Set[Term] = set(RDFS_VOCABULARY)
    sc_reflexive: Set[Term] = set()
    for t in closed:
        sp_reflexive.add(t.p)
        if t.p in (DOM, RANGE):
            sp_reflexive.add(t.s)
            sc_reflexive.add(t.o)
        if t.p == TYPE:
            sc_reflexive.add(t.o)
        if t.p == SP:
            sp_reflexive.add(t.s)
            sp_reflexive.add(t.o)
        if t.p == SC:
            sc_reflexive.add(t.s)
            sc_reflexive.add(t.o)
    for a in sp_reflexive:
        if not isinstance(a, Literal):
            padding.add(Triple(a, SP, a))
    for a in sc_reflexive:
        if isinstance(a, (URI, BNode)):
            padding.add(Triple(a, SC, a))
    return RDFGraph(padding)


def rho_entails(g1: RDFGraph, g2: RDFGraph) -> bool:
    """Entailment in the minimal system: a map ``G2 → ρ-cl(G1)``.

    Sound for the full semantics; complete whenever ``G2`` is
    reflexivity-free (tested against :func:`repro.semantics.entails` on
    random reflexivity-free conclusions).
    """
    if g2.issubgraph(g1):
        return True
    return find_map(g2, rho_closure(g1)) is not None


def rho_equivalent(g1: RDFGraph, g2: RDFGraph) -> bool:
    """Equivalence in the minimal system."""
    return rho_entails(g1, g2) and rho_entails(g2, g1)
