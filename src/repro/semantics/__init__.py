"""Semantics of RDF graphs: model theory, deduction, closure, entailment.

Implements Sections 2.3–2.4 of the paper: interpretations and models,
the 13-rule deductive system (sound and complete, Theorem 2.6), the two
equivalent closure notions, and the map-based entailment procedures.
"""

from .closure import (
    ClosureOracle,
    KERNEL_DISPATCH,
    active_closure_kernel,
    closure,
    closure_delta,
    rdfs_closure,
    rdfs_closure_arrays,
    rdfs_closure_by_rules,
    rdfs_closure_boxed,
    rdfs_closure_encoded,
    rdfs_closure_partitioned,
)
from .entailment import (
    entailment_plan,
    entailment_witness,
    entails,
    equivalent,
    simple_entails,
    simple_equivalent,
)
from .herbrand import canonical_model, entails_by_model, find_countermodel
from .interpretation import Interpretation, models, satisfies_simple
from .owl_horst import (
    OWL_VOCABULARY,
    owl_closure,
    owl_entails,
    same_as_classes,
)
from .minimal_fragment import (
    is_reflexivity_free,
    reflexivity_padding,
    rho_closure,
    rho_entails,
    rho_equivalent,
)
from .proof import ExistentialStep, Proof, RuleStep, construct_proof
from .rules import ALL_RULES, RULES_BY_NAME, Rule, RuleInstantiation

__all__ = [
    "ALL_RULES",
    "ClosureOracle",
    "KERNEL_DISPATCH",
    "active_closure_kernel",
    "ExistentialStep",
    "Interpretation",
    "Proof",
    "RULES_BY_NAME",
    "Rule",
    "RuleInstantiation",
    "RuleStep",
    "canonical_model",
    "closure",
    "closure_delta",
    "construct_proof",
    "entailment_plan",
    "entailment_witness",
    "entails",
    "entails_by_model",
    "equivalent",
    "find_countermodel",
    "is_reflexivity_free",
    "reflexivity_padding",
    "rho_closure",
    "rho_entails",
    "rho_equivalent",
    "models",
    "OWL_VOCABULARY",
    "owl_closure",
    "owl_entails",
    "same_as_classes",
    "rdfs_closure",
    "rdfs_closure_arrays",
    "rdfs_closure_boxed",
    "rdfs_closure_by_rules",
    "rdfs_closure_encoded",
    "rdfs_closure_partitioned",
    "satisfies_simple",
    "simple_entails",
    "simple_equivalent",
]
