"""Proof objects for the deductive system (Definition 2.5).

A proof of ``H`` from ``G`` is a sequence of graphs ``P1, ..., Pk`` with
``P1 = G``, ``Pk = H``, and each step either

* an *existential* step (rule (1), Group A): there is a map
  ``μ : Pj → Pj−1``; or
* a *rule* step: an instantiation ``R/R′`` of one of rules (2)–(13) with
  ``R ⊆ Pj−1`` and ``Pj = Pj−1 ∪ R′``.

:class:`Proof` stores the step sequence; :meth:`Proof.verify` checks it
in polynomial time, which is exactly the NP witness used in the proof of
Theorem 2.10.  :func:`construct_proof` builds a proof for any valid
entailment (completeness, Theorem 2.6): it replays the rule engine's
derivation trace up to the closure and finishes with one existential
step mapping ``H`` into it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from ..core.graph import RDFGraph
from ..core.homomorphism import find_map
from ..core.maps import Map
from .rules import RuleInstantiation, apply_rules_to_fixpoint

__all__ = ["RuleStep", "ExistentialStep", "Proof", "construct_proof"]


@dataclass(frozen=True)
class RuleStep:
    """Apply a rule instantiation: ``Pj = Pj−1 ∪ conclusions``."""

    instantiation: RuleInstantiation

    def apply(self, previous: RDFGraph) -> Optional[RDFGraph]:
        """The next graph, or None if the step is invalid here."""
        if not self.instantiation.is_well_formed():
            return None
        premises = self.instantiation.premise_triples()
        if any(t not in previous for t in premises):
            return None
        return previous.union(RDFGraph(self.instantiation.conclusion_triples()))

    def __str__(self):
        return f"rule {self.instantiation}"


@dataclass(frozen=True)
class ExistentialStep:
    """Rule (1): pass to any graph that maps into the previous one."""

    result: RDFGraph
    witness: Map

    def apply(self, previous: RDFGraph) -> Optional[RDFGraph]:
        """The next graph, or None if the witness map is invalid."""
        try:
            image = self.witness.apply_graph(self.result)
        except ValueError:
            return None
        if not image.issubgraph(previous):
            return None
        return self.result

    def __str__(self):
        return f"existential step via {self.witness}"


Step = Union[RuleStep, ExistentialStep]


@dataclass(frozen=True)
class Proof:
    """A proof of ``conclusion`` from ``premise`` (Definition 2.5)."""

    premise: RDFGraph
    conclusion: RDFGraph
    steps: Tuple[Step, ...]

    def verify(self) -> bool:
        """Check every step; polynomial in the proof size."""
        current = self.premise
        for step in self.steps:
            current = step.apply(current)
            if current is None:
                return False
        return current == self.conclusion

    def __len__(self):
        return len(self.steps)

    def __str__(self):
        lines = [f"proof of {self.conclusion} from {self.premise}:"]
        lines.extend(f"  {i + 1}. {s}" for i, s in enumerate(self.steps))
        return "\n".join(lines)


def construct_proof(premise: RDFGraph, conclusion: RDFGraph) -> Optional[Proof]:
    """A proof of ``conclusion`` from ``premise``, or None if no entailment.

    Implements the completeness direction of Theorem 2.6: derive
    ``RDFS-cl(premise)`` step by step using the rule engine's trace, then
    finish with one existential step, witnessed by a map
    ``conclusion → RDFS-cl(premise)`` (Theorem 2.8).  The constructed
    proof has polynomially many steps (the closure is at most cubic in
    ``|premise|``; in fact quadratic, Theorem 3.6.3).
    """
    skolemized, inverse = premise.skolemize()
    closed_sk, trace = apply_rules_to_fixpoint(skolemized)
    closed = RDFGraph.unskolemize(closed_sk, inverse)

    witness = find_map(conclusion, closed)
    if witness is None:
        return None

    steps: List[Step] = []
    # Replay the derivation, un-Skolemizing each instantiation.  An
    # instantiation whose triples mention Skolem constants corresponds,
    # after un-Skolemization, to the same rule applied with the blank
    # nodes themselves; skip steps whose conclusions do not survive
    # (blank-predicate triples dropped by un-Skolemization).
    from ..core.terms import URI

    def unsk_term(term):
        return inverse.get(term, term) if isinstance(term, URI) else term

    for _t, inst in trace:
        new_assignment = tuple(
            (v, unsk_term(x)) for v, x in inst.assignment
        )
        new_inst = RuleInstantiation(rule=inst.rule, assignment=new_assignment)
        if new_inst.is_well_formed():
            steps.append(RuleStep(new_inst))
    steps.append(ExistentialStep(result=conclusion, witness=witness))

    proof = Proof(premise=premise, conclusion=conclusion, steps=tuple(steps))
    # The replay can in rare pathological cases (blank properties) leave
    # a premise unsatisfied mid-sequence; fall back to re-deriving from
    # the un-Skolemized side, which the engine also supports.
    if proof.verify():
        return proof
    _closed_direct, direct_trace = apply_rules_to_fixpoint(premise)
    steps = [RuleStep(inst) for _t, inst in direct_trace]
    steps.append(ExistentialStep(result=conclusion, witness=witness))
    proof = Proof(premise=premise, conclusion=conclusion, steps=tuple(steps))
    return proof if proof.verify() else None
