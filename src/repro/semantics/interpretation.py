"""RDF model theory (Section 2.3.1).

An RDF interpretation is a tuple ``I = (Res, Prop, Class, PExt, CExt,
Int)``.  This module provides a finite, executable rendition: the
carrier sets are finite Python sets (sufficient for checking entailment
over finite graphs via canonical models, see
:mod:`repro.semantics.herbrand`), and :func:`models` implements the full
definition of ``I ⊨ G``, including the existential search for a blank
assignment ``A : B → Res``.

The definition's conditions are factored into two parts:

* :meth:`Interpretation.is_rdfs_interpretation` — the structural
  conditions on ``I`` alone (properties-and-classes, subproperty,
  subclass, typing);
* :func:`satisfies_simple` — the *simple interpretation* condition,
  which is the only one referring to the graph.

As the paper notes (Note 2.3), resources may serve simultaneously as
predicates and as individuals — ``Prop`` need not be disjoint from
``Res`` — which is why the structure is not a standard FO model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Optional, Set, Tuple

from ..core.graph import RDFGraph
from ..core.terms import BNode, Literal, Term, URI
from ..core.vocabulary import DOM, RANGE, SC, SP, TYPE

__all__ = ["Interpretation", "satisfies_simple", "models", "find_blank_assignment"]

#: Resources are arbitrary hashable Python values.
Resource = Hashable


@dataclass
class Interpretation:
    """An RDF interpretation ``I = (Res, Prop, Class, PExt, CExt, Int)``.

    Parameters mirror the paper exactly:

    * ``res`` — non-empty set of resources (the domain);
    * ``prop`` — set of property names (not necessarily ⊆ or ⊇ ``res``);
    * ``klass`` — distinguished subset of ``res`` denoting classes;
    * ``pext`` — extension of each property name: ``Prop → 2^(Res×Res)``;
    * ``cext`` — extension of each class: ``Class → 2^Res``;
    * ``int_map`` — interpretation of URIs: ``U → Res ∪ Prop`` (partial
      in practice; URIs outside its domain make satisfaction fail).
    """

    res: Set[Resource]
    prop: Set[Resource]
    klass: Set[Resource]
    pext: Dict[Resource, Set[Tuple[Resource, Resource]]]
    cext: Dict[Resource, Set[Resource]]
    int_map: Dict[URI, Resource]

    def __post_init__(self):
        if not self.res:
            raise ValueError("Res must be non-empty")

    # -- basic access -----------------------------------------------------

    def interpret(self, term: Term) -> Optional[Resource]:
        """``Int`` on URIs and literals; None when undefined."""
        if isinstance(term, URI):
            return self.int_map.get(term)
        if isinstance(term, Literal):
            # Literals denote themselves; they must be resources to occur.
            return term if term in self.res else None
        return None

    def property_extension(self, resource: Resource) -> Set[Tuple[Resource, Resource]]:
        return self.pext.get(resource, set())

    def class_extension(self, resource: Resource) -> Set[Resource]:
        return self.cext.get(resource, set())

    # -- structural RDFS conditions (Section 2.3.1) ----------------------

    def structural_violations(self) -> list:
        """Every violated structural condition, as human-readable strings.

        Empty list ⇔ ``I`` satisfies the properties-and-classes,
        subproperty, subclass and typing conditions.
        """
        problems = []
        interpreted = {v: self.int_map.get(v) for v in (SP, SC, TYPE, DOM, RANGE)}

        # Properties and classes.
        for name, value in interpreted.items():
            if value is None or value not in self.prop:
                problems.append(f"Int({name}) must be in Prop")
        i_sp = interpreted[SP]
        i_sc = interpreted[SC]
        i_type = interpreted[TYPE]
        i_dom = interpreted[DOM]
        i_range = interpreted[RANGE]

        dom_pairs = self.property_extension(i_dom) if i_dom is not None else set()
        range_pairs = self.property_extension(i_range) if i_range is not None else set()
        for x, y in dom_pairs | range_pairs:
            if x not in self.prop:
                problems.append(f"dom/range subject {x!r} not in Prop")
            if y not in self.klass:
                problems.append(f"dom/range object {y!r} not in Class")

        # Subproperty: transitive and reflexive over Prop; inclusion.
        sp_pairs = self.property_extension(i_sp) if i_sp is not None else set()
        for p in self.prop:
            if (p, p) not in sp_pairs:
                problems.append(f"PExt(sp) not reflexive at {p!r}")
        for (x, y) in sp_pairs:
            for (y2, z) in sp_pairs:
                if y2 == y and (x, z) not in sp_pairs:
                    problems.append(f"PExt(sp) not transitive at {x!r},{y!r},{z!r}")
            if x not in self.prop or y not in self.prop:
                problems.append(f"sp pair ({x!r},{y!r}) outside Prop")
            elif not self.property_extension(x) <= self.property_extension(y):
                problems.append(f"PExt({x!r}) ⊄ PExt({y!r}) despite sp")

        # Subclass: transitive and reflexive over Class; inclusion.
        sc_pairs = self.property_extension(i_sc) if i_sc is not None else set()
        for c in self.klass:
            if (c, c) not in sc_pairs:
                problems.append(f"PExt(sc) not reflexive at {c!r}")
        for (x, y) in sc_pairs:
            for (y2, z) in sc_pairs:
                if y2 == y and (x, z) not in sc_pairs:
                    problems.append(f"PExt(sc) not transitive at {x!r},{y!r},{z!r}")
            if x not in self.klass or y not in self.klass:
                problems.append(f"sc pair ({x!r},{y!r}) outside Class")
            elif not self.class_extension(x) <= self.class_extension(y):
                problems.append(f"CExt({x!r}) ⊄ CExt({y!r}) despite sc")

        # Typing.
        type_pairs = self.property_extension(i_type) if i_type is not None else set()
        for (x, y) in type_pairs:
            if y not in self.klass or x not in self.class_extension(y):
                problems.append(f"type pair ({x!r},{y!r}) violates typing iff")
        for y in self.klass:
            for x in self.class_extension(y):
                if (x, y) not in type_pairs:
                    problems.append(f"CExt witness ({x!r},{y!r}) missing from type")
        for (x, y) in dom_pairs:
            for (u, _v) in self.property_extension(x):
                if u not in self.class_extension(y):
                    problems.append(f"dom violated: {u!r} ∉ CExt({y!r})")
        for (x, y) in range_pairs:
            for (_u, v) in self.property_extension(x):
                if v not in self.class_extension(y):
                    problems.append(f"range violated: {v!r} ∉ CExt({y!r})")
        return problems

    def is_rdfs_interpretation(self) -> bool:
        """True iff all structural conditions hold."""
        return not self.structural_violations()


def _extended_interpret(
    interpretation: Interpretation,
    assignment: Mapping[BNode, Resource],
    term: Term,
) -> Optional[Resource]:
    """``Int_A``: the extension of Int by a blank assignment A."""
    if isinstance(term, BNode):
        return assignment.get(term)
    return interpretation.interpret(term)


def find_blank_assignment(
    interpretation: Interpretation, graph: RDFGraph
) -> Optional[Dict[BNode, Resource]]:
    """A function ``A : B → Res`` witnessing the simple condition, or None.

    Backtracking over the graph's blank nodes; candidates per blank are
    narrowed by the triples it participates in.  Exponential in the
    number of blanks in the worst case — fine for the finite canonical
    models this module is used with.
    """
    blanks = sorted(graph.bnodes(), key=lambda n: n.value)

    # Pre-check ground positions and collect per-triple constraints.
    constraints = []
    for t in graph:
        p_res = interpretation.interpret(t.p)
        if p_res is None or p_res not in interpretation.prop:
            if not isinstance(t.p, BNode):
                return None
        constraints.append(t)

    def backtrack(i: int, assignment: Dict[BNode, Resource]):
        if i == len(blanks):
            for t in constraints:
                p_res = _extended_interpret(interpretation, assignment, t.p)
                s_res = _extended_interpret(interpretation, assignment, t.s)
                o_res = _extended_interpret(interpretation, assignment, t.o)
                if p_res is None or s_res is None or o_res is None:
                    return None
                if p_res not in interpretation.prop:
                    return None
                if (s_res, o_res) not in interpretation.property_extension(p_res):
                    return None
            return dict(assignment)
        node = blanks[i]
        for candidate in sorted(interpretation.res, key=repr):
            assignment[node] = candidate
            # Quick local check: every fully-instantiated triple holds.
            ok = True
            for t in graph.match(s=node):
                s_res = candidate
                p_res = _extended_interpret(interpretation, assignment, t.p)
                o_res = _extended_interpret(interpretation, assignment, t.o)
                if p_res is not None and o_res is not None:
                    if (s_res, o_res) not in interpretation.property_extension(p_res):
                        ok = False
                        break
            if ok:
                for t in graph.match(o=node):
                    o_res = candidate
                    p_res = _extended_interpret(interpretation, assignment, t.p)
                    s_res = _extended_interpret(interpretation, assignment, t.s)
                    if p_res is not None and s_res is not None:
                        if (s_res, o_res) not in interpretation.property_extension(p_res):
                            ok = False
                            break
            if ok:
                result = backtrack(i + 1, assignment)
                if result is not None:
                    return result
            del assignment[node]
        return None

    return backtrack(0, {})


def satisfies_simple(interpretation: Interpretation, graph: RDFGraph) -> bool:
    """The *simple interpretation* condition: ∃A making every triple true."""
    return find_blank_assignment(interpretation, graph) is not None


def models(interpretation: Interpretation, graph: RDFGraph) -> bool:
    """``I ⊨ G``: I is an RDFS interpretation satisfying G simply."""
    return interpretation.is_rdfs_interpretation() and satisfies_simple(
        interpretation, graph
    )
