"""Entailment between RDF graphs (Sections 2.3–2.4).

The map-based characterizations of Theorem 2.8 are the production
decision procedures:

* :func:`simple_entails` — ``G1 ⊨ G2`` for simple graphs: a map
  ``G2 → G1`` (Theorem 2.8.2);
* :func:`entails` — full RDFS entailment: a map ``G2 → cl(G1)``
  (Theorem 2.8.1);
* :func:`equivalent` — ``G1 ≡ G2``: entailment both ways.

Both NP-hard directions route through the matching planner
(:mod:`repro.core.planner` via :mod:`repro.core.homomorphism`), so the
hardness benchmarks (Theorem 2.9) measure this exact code path:
component decomposition, arc-consistent candidate domains, then
semijoin or backtracking search per component.
:func:`entailment_plan` exposes the plan the solver would run.
"""

from __future__ import annotations

from typing import Optional

from ..core.graph import RDFGraph
from ..core.homomorphism import find_map
from ..core.maps import Map
from ..core.planner import MatchPlan, explain
from .closure import closure

__all__ = [
    "simple_entails",
    "entails",
    "equivalent",
    "simple_equivalent",
    "entailment_witness",
    "entailment_plan",
]


def simple_entails(g1: RDFGraph, g2: RDFGraph) -> bool:
    """``G1 ⊨ G2`` under simple semantics: ∃ map ``G2 → G1``.

    Correct (sound and complete) whenever both graphs are simple
    (Definition 2.2).  Callers that want RDFS vocabulary handled must
    use :func:`entails`.  Also used deliberately on vocabulary-bearing
    graphs by Section 5.4 ("simple queries": rdfs graphs treated as
    simple graphs wherever they appear).
    """
    return find_map(g2, g1) is not None


def entailment_plan(
    g1: RDFGraph, g2: RDFGraph, rdfs: bool = False
) -> MatchPlan:
    """The :class:`~repro.core.planner.MatchPlan` behind ``G1 ⊨ G2``.

    Introspection only — shows how the planner decomposes ``G2`` and
    which strategy (semijoin vs backtracking) each component would get
    against ``G1`` (or ``cl(G1)`` when *rdfs* is set).  Benchmarks use
    this to report which code path a measurement actually exercised.
    """
    target = closure(g1) if rdfs else g1
    return explain(list(g2), target)


def entailment_witness(g1: RDFGraph, g2: RDFGraph) -> Optional[Map]:
    """The map ``G2 → cl(G1)`` witnessing ``G1 ⊨ G2``, or None."""
    return find_map(g2, closure(g1))


def entails(g1: RDFGraph, g2: RDFGraph) -> bool:
    """RDFS entailment ``G1 ⊨ G2`` (Theorem 2.8.1).

    NP-complete in general (Theorem 2.10); the witness is the closure
    derivation plus the map, see :func:`repro.semantics.proof.construct_proof`.
    """
    if g2.issubgraph(g1):
        return True
    return entailment_witness(g1, g2) is not None


def equivalent(g1: RDFGraph, g2: RDFGraph) -> bool:
    """``G1 ≡ G2``: each entails the other."""
    return entails(g1, g2) and entails(g2, g1)


def simple_equivalent(g1: RDFGraph, g2: RDFGraph) -> bool:
    """Equivalence under simple semantics (maps both ways).

    NP-complete (Theorem 2.9.2).
    """
    return simple_entails(g1, g2) and simple_entails(g2, g1)
