"""A pD*-style OWL property vocabulary, after ter Horst [26].

The paper's related work singles out ter Horst's extension of the RDFS
deductive machinery "to some vocabulary of OWL" with the same
completeness/complexity profile.  This module implements the
property-centric core of that extension (the fragment that keeps the
closure polynomial and entailment characterized by closure + map):

* ``owl:inverseOf``   — ``(p, inv, q), (x, p, y) ⟹ (y, q, x)`` (and
  symmetrically, since ``inv`` is itself symmetric);
* ``owl:SymmetricProperty``  — ``(p, type, Sym), (x, p, y) ⟹ (y, p, x)``;
* ``owl:TransitiveProperty`` — ``(p, type, Trans), (x, p, y), (y, p, z)
  ⟹ (x, p, z)``;
* ``owl:FunctionalProperty`` / ``owl:InverseFunctionalProperty`` —
  produce ``owl:sameAs`` conclusions;
* ``owl:sameAs`` — an equivalence relation substitutable in subject and
  object positions (pD*'s rules rdfp6/7/11; predicate substitution is
  deliberately excluded, as in pD*).

``owl_closure`` layers these rules on top of the RDFS closure to a
joint fixpoint; ``owl_entails`` is closure + map, exactly the
Theorem 2.8 recipe.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from ..core.graph import RDFGraph
from ..core.homomorphism import find_map
from ..core.terms import Literal, Term, Triple, URI
from ..core.vocabulary import TYPE
from .closure import rdfs_closure

__all__ = [
    "INVERSE_OF",
    "SYMMETRIC",
    "TRANSITIVE",
    "FUNCTIONAL",
    "INVERSE_FUNCTIONAL",
    "SAME_AS",
    "OWL_VOCABULARY",
    "owl_closure",
    "owl_entails",
    "same_as_classes",
]

INVERSE_OF = URI("inverseOf")
SYMMETRIC = URI("SymmetricProperty")
TRANSITIVE = URI("TransitiveProperty")
FUNCTIONAL = URI("FunctionalProperty")
INVERSE_FUNCTIONAL = URI("InverseFunctionalProperty")
SAME_AS = URI("sameAs")

OWL_VOCABULARY = frozenset(
    {INVERSE_OF, SYMMETRIC, TRANSITIVE, FUNCTIONAL, INVERSE_FUNCTIONAL, SAME_AS}
)


def _owl_round(triples: Set[Triple]) -> Set[Triple]:
    """One bulk emission of the pD*-lite property rules."""
    new: Set[Triple] = set()

    inverse_pairs: Set[Tuple[Term, Term]] = set()
    symmetric: Set[Term] = set()
    transitive: Set[Term] = set()
    functional: Set[Term] = set()
    inverse_functional: Set[Term] = set()
    for t in triples:
        if t.p == INVERSE_OF:
            inverse_pairs.add((t.s, t.o))
            inverse_pairs.add((t.o, t.s))  # inverseOf is symmetric
        elif t.p == TYPE:
            if t.o == SYMMETRIC:
                symmetric.add(t.s)
            elif t.o == TRANSITIVE:
                transitive.add(t.s)
            elif t.o == FUNCTIONAL:
                functional.add(t.s)
            elif t.o == INVERSE_FUNCTIONAL:
                inverse_functional.add(t.s)

    by_predicate: Dict[Term, list] = {}
    for t in triples:
        by_predicate.setdefault(t.p, []).append(t)

    def emit(s, p, o):
        candidate = Triple(s, p, o)
        if candidate.is_valid_rdf():
            new.add(candidate)

    # inverseOf (rdfp8ax/bx).
    for p, q in inverse_pairs:
        for t in by_predicate.get(p, ()):
            if not isinstance(t.o, Literal) and isinstance(q, URI):
                emit(t.o, q, t.s)

    # SymmetricProperty (rdfp3).
    for p in symmetric:
        for t in by_predicate.get(p, ()):
            if not isinstance(t.o, Literal) and isinstance(p, URI):
                emit(t.o, p, t.s)

    # TransitiveProperty (rdfp4).
    for p in transitive:
        successors: Dict[Term, Set[Term]] = {}
        for t in by_predicate.get(p, ()):
            successors.setdefault(t.s, set()).add(t.o)
        for x, mids in successors.items():
            for y in mids:
                for z in successors.get(y, ()):
                    emit(x, p, z)

    # FunctionalProperty (rdfp1): same subject ⇒ objects sameAs.
    for p in functional:
        by_subject: Dict[Term, Set[Term]] = {}
        for t in by_predicate.get(p, ()):
            by_subject.setdefault(t.s, set()).add(t.o)
        for values in by_subject.values():
            values = sorted(values, key=str)
            for i, a in enumerate(values):
                for b in values[i + 1 :]:
                    if not isinstance(a, Literal) and not isinstance(b, Literal):
                        emit(a, SAME_AS, b)

    # InverseFunctionalProperty (rdfp2): same object ⇒ subjects sameAs.
    for p in inverse_functional:
        by_object: Dict[Term, Set[Term]] = {}
        for t in by_predicate.get(p, ()):
            by_object.setdefault(t.o, set()).add(t.s)
        for values in by_object.values():
            values = sorted(values, key=str)
            for i, a in enumerate(values):
                for b in values[i + 1 :]:
                    emit(a, SAME_AS, b)

    # sameAs: symmetric + transitive (rdfp6/7)...
    same_pairs = {(t.s, t.o) for t in triples if t.p == SAME_AS}
    for a, b in list(same_pairs):
        emit(b, SAME_AS, a)
        same_pairs.add((b, a))
    changed = True
    while changed:
        changed = False
        for a, b in list(same_pairs):
            for c, d in list(same_pairs):
                if b == c and (a, d) not in same_pairs:
                    same_pairs.add((a, d))
                    emit(a, SAME_AS, d)
                    changed = True
    # ... and substitution in subject/object positions (rdfp11).
    same_map: Dict[Term, Set[Term]] = {}
    for a, b in same_pairs:
        same_map.setdefault(a, set()).add(b)
    for t in triples:
        for s2 in same_map.get(t.s, ()):
            emit(s2, t.p, t.o)
        for o2 in same_map.get(t.o, ()):
            emit(t.s, t.p, o2)

    return new - triples


def owl_closure(graph: RDFGraph) -> RDFGraph:
    """Joint fixpoint of the RDFS rules and the pD*-lite OWL rules."""
    current: Set[Triple] = set(graph.triples)
    while True:
        after_rdfs = set(rdfs_closure(RDFGraph(current)).triples)
        produced = _owl_round(after_rdfs)
        if not produced and after_rdfs == current:
            return RDFGraph(current)
        current = after_rdfs | produced


def owl_entails(g1: RDFGraph, g2: RDFGraph) -> bool:
    """Entailment under RDFS + pD*-lite: a map ``G2 → owl_closure(G1)``."""
    if g2.issubgraph(g1):
        return True
    return find_map(g2, owl_closure(g1)) is not None


def same_as_classes(graph: RDFGraph):
    """The sameAs equivalence classes of the closure (sorted lists)."""
    closed = owl_closure(graph)
    parent: Dict[Term, Term] = {}

    def find(x):
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a, b):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for t in closed:
        if t.p == SAME_AS:
            union(t.s, t.o)
    groups: Dict[Term, list] = {}
    for x in list(parent):
        groups.setdefault(find(x), []).append(x)
    return sorted(
        (sorted(members, key=str) for members in groups.values()),
        key=lambda g: str(g[0]),
    )
