"""Canonical (Herbrand-style) models built from closures (Section 3.1).

The Skolemization idea of Section 3.1 yields, for every RDF graph ``G``,
a canonical interpretation whose resources are the terms of the
Skolemized closure and whose extensions read the closure triples off
directly.  Its two key properties, verified by the test suite:

* it *is* an RDFS interpretation (all structural conditions hold,
  because the closure is closed under rules (2)–(13));
* it is a *minimal* model: ``canonical_model(G1) ⊨ G2`` iff
  ``G1 ⊨ G2`` — which gives a second, model-theoretic decision
  procedure for entailment, cross-validating the map-based one of
  Theorem 2.8.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from ..core.graph import RDFGraph
from ..core.terms import Term, URI
from ..core.vocabulary import RDFS_VOCABULARY, SC, SP, TYPE
from .closure import rdfs_closure
from .interpretation import Interpretation

__all__ = ["canonical_model", "entails_by_model", "find_countermodel"]


def canonical_model(graph: RDFGraph) -> Interpretation:
    """The canonical interpretation of ``G``, built from ``cl(G*)``.

    Resources are the terms of the Skolemized closure (plus the reserved
    vocabulary); ``Int`` is the identity on URIs; ``Prop`` / ``Class`` /
    ``PExt`` / ``CExt`` are read off the closure triples:

    * ``Prop  = {p : (p, sp, p) ∈ cl}`` (every property is sp-reflexive
      in a closure, by rules (8)–(11));
    * ``Class = {c : (c, sc, c) ∈ cl}`` (rules (12)–(13));
    * ``PExt(p) = {(s, o) : (s, p, o) ∈ cl}``;
    * ``CExt(c) = {x : (x, type, c) ∈ cl}``.
    """
    skolemized, _inverse = graph.skolemize()
    closed = rdfs_closure(skolemized)

    res: Set[Term] = set(closed.universe()) | set(RDFS_VOCABULARY)
    prop: Set[Term] = set()
    klass: Set[Term] = set()
    pext: Dict[Term, Set[Tuple[Term, Term]]] = {}
    cext: Dict[Term, Set[Term]] = {}

    for t in closed:
        pext.setdefault(t.p, set()).add((t.s, t.o))
        if t.p == SP and t.s == t.o:
            prop.add(t.s)
        if t.p == SC and t.s == t.o:
            klass.add(t.s)
        if t.p == TYPE:
            cext.setdefault(t.o, set()).add(t.s)

    # Every reserved word is a property even over the empty graph
    # (rule 9 puts (p, sp, p) in every closure).
    prop |= set(RDFS_VOCABULARY)
    for p in RDFS_VOCABULARY:
        pext.setdefault(p, set())
    for p in prop:
        pext.setdefault(SP, set()).add((p, p))
    for c in klass:
        pext.setdefault(SC, set()).add((c, c))
        cext.setdefault(c, set())

    int_map: Dict[URI, Term] = {u: u for u in res if isinstance(u, URI)}
    for u in RDFS_VOCABULARY:
        int_map.setdefault(u, u)

    return Interpretation(
        res=res,
        prop=prop,
        klass=klass,
        pext=pext,
        cext=cext,
        int_map=int_map,
    )


def entails_by_model(g1: RDFGraph, g2: RDFGraph) -> bool:
    """Model-theoretic entailment check via the canonical model.

    ``G1 ⊨ G2`` iff the canonical model of ``G1`` satisfies ``G2``
    (soundness: the canonical model is a model of ``G1``; completeness:
    it is minimal).  Exponential in the blanks of ``G2`` — used for
    cross-validation on small graphs, not production entailment (use
    :func:`repro.semantics.entailment.entails`).
    """
    from .interpretation import satisfies_simple

    model = canonical_model(g1)
    return satisfies_simple(model, g2)


def find_countermodel(g1: RDFGraph, g2: RDFGraph):
    """An interpretation witnessing ``G1 ⊭ G2``, or None if entailed.

    The canonical model of ``G1`` is minimal, so whenever the
    entailment fails it is itself a countermodel: it satisfies ``G1``
    (and all of ``G1``'s consequences) but not ``G2``.  This makes
    non-entailment *semantically auditable* — the returned
    interpretation can be checked independently with
    :func:`repro.semantics.models`.
    """
    from .interpretation import satisfies_simple

    model = canonical_model(g1)
    if satisfies_simple(model, g2):
        return None
    return model
