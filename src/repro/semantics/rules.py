"""The deductive system for RDFS entailment (Section 2.3.2).

Thirteen rules in six groups.  Group A (rule 1, the existential rule) is
a map application and lives in :mod:`repro.semantics.proof`; rules
(2)–(13) are triple-production rules represented here as
:class:`Rule` objects with premise patterns, conclusion patterns and an
optional parameter ranging over reserved vocabulary (rules 9, 10, 12).

An *instantiation* of a rule uniformly replaces its variables by
elements of ``UB`` such that all resulting triples are well-formed (in
particular, no blank node lands in a predicate position) — this is
exactly the paper's side condition.

The :func:`apply_rules_to_fixpoint` engine computes
``RDFS-cl(G)`` (Definition 2.7) directly from the rules.  It is the
*reference* implementation: slow but literally the paper's definition.
The optimized algorithm in :mod:`repro.semantics.closure` is validated
against it in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from ..core.graph import RDFGraph
from ..core.homomorphism import iter_assignments
from ..core.maps import apply_assignment
from ..core.terms import Term, Triple, Variable
from ..core.vocabulary import DOM, RANGE, RDFS_VOCABULARY, SC, SP, TYPE

__all__ = [
    "Rule",
    "RuleInstantiation",
    "ALL_RULES",
    "RULES_BY_NAME",
    "iter_rule_instantiations",
    "apply_rules_once",
    "apply_rules_to_fixpoint",
]

# Rule variables (capital letters, as in the paper).
_A = Variable("A")
_B = Variable("B")
_C = Variable("C")
_X = Variable("X")
_Y = Variable("Y")


@dataclass(frozen=True)
class Rule:
    """One deductive rule: premises / conclusions, with rule variables."""

    name: str
    group: str
    premises: Tuple[Triple, ...]
    conclusions: Tuple[Triple, ...]

    def variables(self) -> frozenset:
        out = set()
        for t in self.premises + self.conclusions:
            out |= t.variables()
        return frozenset(out)

    def __str__(self):
        prem = " ".join(str(t) for t in self.premises) or "⊤"
        conc = " ".join(str(t) for t in self.conclusions)
        return f"[{self.name}] {prem} / {conc}"


@dataclass(frozen=True)
class RuleInstantiation:
    """A rule together with a variable assignment; a single proof step."""

    rule: Rule
    assignment: Tuple[Tuple[Variable, Term], ...]

    @property
    def assignment_dict(self) -> Dict[Variable, Term]:
        return dict(self.assignment)

    def premise_triples(self) -> Tuple[Triple, ...]:
        a = self.assignment_dict
        return tuple(apply_assignment(a, t) for t in self.rule.premises)

    def conclusion_triples(self) -> Tuple[Triple, ...]:
        a = self.assignment_dict
        return tuple(apply_assignment(a, t) for t in self.rule.conclusions)

    def is_well_formed(self) -> bool:
        """The paper's instantiation condition: all triples well-formed."""
        return all(
            t.is_valid_rdf()
            for t in self.premise_triples() + self.conclusion_triples()
        )

    def __str__(self):
        binding = ", ".join(f"{v}={x}" for v, x in self.assignment)
        return f"{self.rule.name}{{{binding}}}"


def _rule(name, group, premises, conclusions) -> Rule:
    return Rule(
        name=name,
        group=group,
        premises=tuple(Triple(*t) for t in premises),
        conclusions=tuple(Triple(*t) for t in conclusions),
    )


# GROUP B (Subproperty).
RULE_2 = _rule("(2)", "B", [(_A, SP, _B), (_B, SP, _C)], [(_A, SP, _C)])
RULE_3 = _rule("(3)", "B", [(_A, SP, _B), (_X, _A, _Y)], [(_X, _B, _Y)])

# GROUP C (Subclass).
RULE_4 = _rule("(4)", "C", [(_A, SC, _B), (_B, SC, _C)], [(_A, SC, _C)])

# GROUP D (Typing).
RULE_5 = _rule("(5)", "D", [(_A, SC, _B), (_X, TYPE, _A)], [(_X, TYPE, _B)])
RULE_6 = _rule(
    "(6)", "D", [(_A, DOM, _B), (_C, SP, _A), (_X, _C, _Y)], [(_X, TYPE, _B)]
)
RULE_7 = _rule(
    "(7)", "D", [(_A, RANGE, _B), (_C, SP, _A), (_X, _C, _Y)], [(_Y, TYPE, _B)]
)

# GROUP E (Subproperty reflexivity).
RULE_8 = _rule("(8)", "E", [(_X, _A, _Y)], [(_A, SP, _A)])
# Rule (9) is premise-free with p ranging over rdfsV; one Rule per p.
RULES_9 = tuple(
    _rule(f"(9:{p.value})", "E", [], [(p, SP, p)])
    for p in sorted(RDFS_VOCABULARY, key=lambda u: u.value)
)
RULES_10 = tuple(
    _rule(f"(10:{p.value})", "E", [(_A, p, _X)], [(_A, SP, _A)])
    for p in (DOM, RANGE)
)
RULE_11 = _rule("(11)", "E", [(_A, SP, _B)], [(_A, SP, _A), (_B, SP, _B)])

# GROUP F (Subclass reflexivity).
RULES_12 = tuple(
    _rule(f"(12:{p.value})", "F", [(_X, p, _A)], [(_A, SC, _A)])
    for p in (DOM, RANGE, TYPE)
)
RULE_13 = _rule("(13)", "F", [(_A, SC, _B)], [(_A, SC, _A), (_B, SC, _B)])

#: All triple-production rules (2)–(13), in the paper's order.
ALL_RULES: Tuple[Rule, ...] = (
    (RULE_2, RULE_3, RULE_4, RULE_5, RULE_6, RULE_7, RULE_8)
    + RULES_9
    + RULES_10
    + (RULE_11,)
    + RULES_12
    + (RULE_13,)
)

RULES_BY_NAME: Dict[str, Rule] = {r.name: r for r in ALL_RULES}


def iter_rule_instantiations(
    rule: Rule, graph: RDFGraph
) -> Iterator[RuleInstantiation]:
    """All well-formed instantiations of *rule* whose premises hold in *graph*.

    Premise matching reuses the homomorphism solver (rule variables are
    the free terms); the well-formedness filter then drops instantiations
    that would put a blank node in a predicate position of a conclusion.
    """
    if not rule.premises:
        inst = RuleInstantiation(rule=rule, assignment=())
        if inst.is_well_formed():
            yield inst
        return
    for assignment in iter_assignments(rule.premises, graph):
        pairs = tuple(
            sorted(assignment.items(), key=lambda kv: kv[0].value)
        )
        inst = RuleInstantiation(rule=rule, assignment=pairs)
        if inst.is_well_formed():
            yield inst


def apply_rules_once(
    graph: RDFGraph, rules: Sequence[Rule] = ALL_RULES
) -> Dict[Triple, RuleInstantiation]:
    """One round: every conclusion derivable by one rule application.

    Returns a mapping from each *new* triple to one instantiation that
    produces it (the first in deterministic order), which the proof
    generator uses to justify each step.
    """
    produced: Dict[Triple, RuleInstantiation] = {}
    for rule in rules:
        for inst in iter_rule_instantiations(rule, graph):
            for t in inst.conclusion_triples():
                if t not in graph and t not in produced:
                    produced[t] = inst
    return produced


def apply_rules_to_fixpoint(
    graph: RDFGraph, rules: Sequence[Rule] = ALL_RULES
) -> Tuple[RDFGraph, List[Tuple[Triple, RuleInstantiation]]]:
    """Iterate rules (2)–(13) to fixpoint: the closure ``RDFS-cl(G)``.

    Returns the closed graph and a derivation trace: for each derived
    triple (in derivation order) one rule instantiation justifying it.
    The trace is a valid proof skeleton in the sense of Definition 2.5.
    """
    current = graph
    trace: List[Tuple[Triple, RuleInstantiation]] = []
    while True:
        produced = apply_rules_once(current, rules)
        if not produced:
            return current, trace
        for t in sorted(produced, key=lambda t: str(t)):
            trace.append((t, produced[t]))
        current = current.union(RDFGraph(produced.keys()))
