"""Closures of RDF graphs (Definitions 2.7 and 3.5, Theorem 3.6).

Two closure notions coincide on every graph (Theorem 3.6.2):

* ``RDFS-cl(G)`` — the triples deducible from ``G`` by rules (2)–(13)
  (Definition 2.7).  :func:`rdfs_closure_by_rules` computes it literally
  with the rule engine; :func:`rdfs_closure` computes the same set with
  a staged algorithm (transitive closures + bulk rule emission) that is
  what the paper's ``O(|G|²)`` size bound suggests.
* ``cl(G)`` — the semantic closure of Definition 3.5, defined through
  Skolemization for non-ground graphs.  :func:`closure` implements that
  definition verbatim (Skolemize, close, un-Skolemize); the equality
  ``cl(G) = RDFS-cl(G)`` (via Lemma 3.4) is asserted by the test suite.

:class:`ClosureOracle` decides ``t ∈ cl(G)`` without materializing the
quadratic closure, following the ``O(|G| log |G|)`` membership result of
Theorem 3.6.4: each rule group reduces membership to a reachability
query over the sp/sc edge relations.
"""

from __future__ import annotations

import heapq
import os
import shutil
import tempfile
from itertools import groupby
from typing import Dict, List, Optional, Set, Tuple

from ..core.columns import SortedRuns, merge_union_many, merge_union_sorted
from ..core.graph import RDFGraph
from ..core.interning import (
    BNODE_BASE,
    DOM_ID,
    LITERAL_BASE,
    RANGE_ID,
    Row,
    SC_ID,
    SP_ID,
    TYPE_ID,
    TermDict,
    VOCAB_SIZE,
)
from ..core.terms import BNode, Literal, Term, Triple, URI
from ..core.vocabulary import DOM, RANGE, RDFS_VOCABULARY, SC, SP, TYPE
from ..obs import OBS, MetricsRegistry
from ..obs.progress import ProgressReporter, current_progress
from ..robustness.faultinject import FAULTS
from ..robustness.guard import current_guard
from .rules import apply_rules_to_fixpoint

__all__ = [
    "rdfs_closure",
    "rdfs_closure_arrays",
    "rdfs_closure_boxed",
    "rdfs_closure_encoded",
    "rdfs_closure_partitioned",
    "rdfs_closure_partitioned_rows",
    "rdfs_closure_by_rules",
    "closure",
    "ClosureOracle",
    "closure_delta",
    "active_closure_kernel",
    "KERNEL_DISPATCH",
]

#: Always-on per-process dispatch tallies (``repro stats`` reads these;
#: the obs registry gets the same counts when instrumentation is on).
KERNEL_DISPATCH: Dict[str, int] = {
    "arrays": 0,
    "encoded": 0,
    "boxed": 0,
    "partitioned": 0,
}


def active_closure_kernel() -> str:
    """The kernel :func:`rdfs_closure` would dispatch to right now.

    Resolves ``REPRO_CLOSURE_KERNEL`` (default ``arrays``); unknown
    values fall back to the default, exactly as dispatch does.
    """
    mode = os.environ.get("REPRO_CLOSURE_KERNEL", "arrays")
    return mode if mode in KERNEL_DISPATCH else "arrays"


def rdfs_closure_by_rules(graph: RDFGraph) -> RDFGraph:
    """``RDFS-cl(G)`` computed by iterating rules (2)–(13) to fixpoint.

    Reference implementation (Definition 2.7); use :func:`rdfs_closure`
    for anything performance-sensitive.
    """
    closed, _trace = apply_rules_to_fixpoint(graph)
    return closed


def _transitive_pairs(edges: Set[Tuple[Term, Term]]) -> Set[Tuple[Term, Term]]:
    """All pairs (a, b) with a path a → ... → b of length ≥ 1."""
    successors: Dict[Term, Set[Term]] = {}
    for a, b in edges:
        successors.setdefault(a, set()).add(b)
    reach: Set[Tuple[Term, Term]] = set()
    guard = current_guard()
    for start in successors:
        if guard is not None:
            guard.tick()  # one DFS from this start node
        seen: Set[Term] = set()
        stack = list(successors[start])
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(successors.get(node, ()))
        reach.update((start, node) for node in seen)
    return reach


def _closure_round(triples: Set[Triple]) -> Set[Triple]:
    """One staged emission of all rule-group consequences of *triples*.

    Each stage emits, in bulk, everything the corresponding rule group
    can derive from the *current* triple set.  Iterated to fixpoint by
    :func:`rdfs_closure` (a second round is only needed when reserved
    vocabulary occurs in subject/object positions, e.g. a subproperty of
    ``sp`` itself).
    """
    new: Set[Triple] = set()

    # Per-rule-group emission counters (first-emitter attribution for
    # triples several groups would derive).  ``checkpoint`` is a no-op
    # closure while instrumentation is off.
    checkpoint = _make_checkpoint(new)

    sp_edges = {(t.s, t.o) for t in triples if t.p == SP}
    sc_edges = {(t.s, t.o) for t in triples if t.p == SC}

    # GROUP E: sp reflexivity — rules (8), (9), (10), (11).
    sp_reflexive: Set[Term] = set(RDFS_VOCABULARY)
    for t in triples:
        sp_reflexive.add(t.p)  # rule (8)
        if t.p in (DOM, RANGE):
            sp_reflexive.add(t.s)  # rule (10)
    for a, b in sp_edges:
        sp_reflexive.add(a)  # rule (11)
        sp_reflexive.add(b)
    for a in sp_reflexive:
        if not isinstance(a, Literal):
            new.add(Triple(a, SP, a))
    checkpoint("rule8_11_sp_reflexivity")

    # GROUP F: sc reflexivity — rules (12), (13).
    sc_reflexive: Set[Term] = set()
    for t in triples:
        if t.p in (DOM, RANGE, TYPE):
            sc_reflexive.add(t.o)  # rule (12)
    for a, b in sc_edges:
        sc_reflexive.add(a)  # rule (13)
        sc_reflexive.add(b)
    for a in sc_reflexive:
        if isinstance(a, (URI, BNode)):
            new.add(Triple(a, SC, a))
    checkpoint("rule12_13_sc_reflexivity")

    # The sp/sc transitive closures feed rules (2)/(3)/(6)/(7) and
    # (4)/(5) respectively; compute each once per round.
    sp_pairs = _transitive_pairs(sp_edges)
    sc_pairs = _transitive_pairs(sc_edges)

    # GROUP B, rule (2): sp transitivity.
    for a, b in sp_pairs:
        new.add(Triple(a, SP, b))
    checkpoint("rule2_sp_transitivity")

    # GROUP C, rule (4): sc transitivity.
    for a, b in sc_pairs:
        if isinstance(a, (URI, BNode)) and isinstance(b, (URI, BNode)):
            new.add(Triple(a, SC, b))
    checkpoint("rule4_sc_transitivity")

    # GROUP B, rule (3): lift every triple along sp.  Superproperties of
    # each predicate, through the (already emitted) transitive pairs.
    sp_super: Dict[Term, Set[Term]] = {}
    for a, b in sp_pairs:
        sp_super.setdefault(a, set()).add(b)
    for t in triples:
        for b in sp_super.get(t.p, ()):
            if isinstance(b, URI):  # no blank predicates
                new.add(Triple(t.s, b, t.o))
    checkpoint("rule3_sp_lift")

    # GROUP D, rule (5): lift type along sc.
    sc_super: Dict[Term, Set[Term]] = {}
    for a, b in sc_pairs:
        sc_super.setdefault(a, set()).add(b)
    type_triples = [t for t in triples if t.p == TYPE]
    for t in type_triples:
        for b in sc_super.get(t.o, ()):
            if isinstance(b, (URI, BNode)):
                new.add(Triple(t.s, TYPE, b))
    checkpoint("rule5_sc_type_lift")

    # GROUP D, rules (6)/(7): dom/range typing through sp (Marin's fix:
    # the property A may be a blank standing for a property).
    # (A,dom,B), (C,sp,A), (X,C,Y) ⟹ (X,type,B); C ranges over the
    # sp-ancestors of A *including A itself* (reflexivity gives (A,sp,A)
    # whenever A is the subject of a dom/range triple, rule (10)).
    sp_sub: Dict[Term, Set[Term]] = {}
    for a, b in sp_pairs:
        sp_sub.setdefault(b, set()).add(a)
    by_predicate: Dict[Term, List[Triple]] = {}
    for t in triples:
        by_predicate.setdefault(t.p, []).append(t)
    for t in triples:
        if t.p not in (DOM, RANGE):
            continue
        klass = t.o
        if isinstance(klass, Literal):
            continue
        properties = {t.s} | sp_sub.get(t.s, set())
        for c in properties:
            for used in by_predicate.get(c, ()):
                if t.p == DOM:
                    subject = used.s
                    new.add(Triple(subject, TYPE, klass))
                else:
                    target = used.o
                    if isinstance(target, (URI, BNode)):
                        new.add(Triple(target, TYPE, klass))
    checkpoint("rule6_7_dom_range")

    return new - triples


def _make_checkpoint(new):
    """Per-rule-group emission counter closure (no-op while obs is off)."""
    if OBS.enabled:
        _emitted = [0]
        _registry = OBS.registry

        def checkpoint(group: str) -> None:
            now = len(new)
            delta = now - _emitted[0]
            _emitted[0] = now
            if delta:
                _registry.inc(f"closure.emitted.{group}", delta)
    else:
        def checkpoint(group: str) -> None:
            return None
    return checkpoint


def _closure_round_ids(rows: Set[Row]) -> Set[Row]:
    """ID-space twin of :func:`_closure_round`.

    Same staged emission over ``(int, int, int)`` rows from a
    vocabulary-seeded :class:`TermDict`, so the boxed version's
    ``isinstance`` / keyword-equality tests become int comparisons:
    ``p == SP`` is ``p == SP_ID`` (= 0), "not a literal" is
    ``i < LITERAL_BASE``, "is a URI" is ``i < BNODE_BASE``.  All set
    operations run over plain int tuples, which hash and compare in C.
    """
    new: Set[Row] = set()
    checkpoint = _make_checkpoint(new)

    sp_edges = {(s, o) for s, p, o in rows if p == SP_ID}
    sc_edges = {(s, o) for s, p, o in rows if p == SC_ID}

    # GROUP E: sp reflexivity — rules (8), (9), (10), (11).
    sp_reflexive: Set[int] = set(range(VOCAB_SIZE))
    for s, p, _o in rows:
        sp_reflexive.add(p)  # rule (8)
        if p == DOM_ID or p == RANGE_ID:
            sp_reflexive.add(s)  # rule (10)
    for a, b in sp_edges:
        sp_reflexive.add(a)  # rule (11)
        sp_reflexive.add(b)
    for a in sp_reflexive:
        if a < LITERAL_BASE:
            new.add((a, SP_ID, a))
    checkpoint("rule8_11_sp_reflexivity")

    # GROUP F: sc reflexivity — rules (12), (13).
    sc_reflexive: Set[int] = set()
    for _s, p, o in rows:
        if p == DOM_ID or p == RANGE_ID or p == TYPE_ID:
            sc_reflexive.add(o)  # rule (12)
    for a, b in sc_edges:
        sc_reflexive.add(a)  # rule (13)
        sc_reflexive.add(b)
    for a in sc_reflexive:
        if a < LITERAL_BASE:
            new.add((a, SC_ID, a))
    checkpoint("rule12_13_sc_reflexivity")

    sp_pairs = _transitive_pairs(sp_edges)
    sc_pairs = _transitive_pairs(sc_edges)

    # GROUP B, rule (2): sp transitivity.
    for a, b in sp_pairs:
        new.add((a, SP_ID, b))
    checkpoint("rule2_sp_transitivity")

    # GROUP C, rule (4): sc transitivity.
    for a, b in sc_pairs:
        if a < LITERAL_BASE and b < LITERAL_BASE:
            new.add((a, SC_ID, b))
    checkpoint("rule4_sc_transitivity")

    # GROUP B, rule (3): lift every triple along sp.
    sp_super: Dict[int, Set[int]] = {}
    for a, b in sp_pairs:
        sp_super.setdefault(a, set()).add(b)
    if sp_super:
        for s, p, o in rows:
            supers = sp_super.get(p)
            if supers:
                for b in supers:
                    if b < BNODE_BASE:  # no blank predicates
                        new.add((s, b, o))
    checkpoint("rule3_sp_lift")

    # GROUP D, rules (6)/(7): dom/range typing through sp (Marin's fix).
    # Ordered BEFORE rule (5) — unlike the boxed round — so the type
    # triples derived here get sc-lifted within the same round; that is
    # what makes a single round complete on vocabulary-clean input (see
    # :func:`rdfs_closure_encoded`).
    sp_sub: Dict[int, Set[int]] = {}
    for a, b in sp_pairs:
        sp_sub.setdefault(b, set()).add(a)
    by_predicate: Dict[int, List[Row]] = {}
    for row in rows:
        by_predicate.setdefault(row[1], []).append(row)
    typed_pairs: Set[Tuple[int, int]] = set()  # (instance, class)
    for s, p, o in rows:
        if p != DOM_ID and p != RANGE_ID:
            continue
        if o >= LITERAL_BASE:
            continue
        properties = {s} | sp_sub.get(s, set())
        if p == DOM_ID:
            for c in properties:
                for used in by_predicate.get(c, ()):
                    typed_pairs.add((used[0], o))
        else:
            for c in properties:
                for used in by_predicate.get(c, ()):
                    target = used[2]
                    if target < LITERAL_BASE:
                        typed_pairs.add((target, o))
    for x, klass in typed_pairs:
        new.add((x, TYPE_ID, klass))
    checkpoint("rule6_7_dom_range")

    # GROUP D, rule (5): lift type along sc — over the input's type
    # triples and the dom/range typings derived just above.
    sc_super: Dict[int, Set[int]] = {}
    for a, b in sc_pairs:
        sc_super.setdefault(a, set()).add(b)
    if sc_super:
        for s, p, o in rows:
            if p == TYPE_ID:
                supers = sc_super.get(o)
                if supers:
                    for b in supers:
                        if b < LITERAL_BASE:
                            new.add((s, TYPE_ID, b))
        for x, klass in typed_pairs:
            supers = sc_super.get(klass)
            if supers:
                for b in supers:
                    if b < LITERAL_BASE:
                        new.add((x, TYPE_ID, b))
    checkpoint("rule5_sc_type_lift")

    return new - rows


def _fixpoint_rounds(state, round_fn, input_size):
    """Shared fixpoint loop with obs spans; mutates *state* in place."""
    guard = current_guard()
    with OBS.span("closure.fixpoint", input=input_size) as span:
        rounds = 0
        while True:
            rounds += 1
            if FAULTS.enabled:
                FAULTS.hit("closure.round")
            with OBS.span("closure.round", round=rounds) as round_span:
                new = round_fn(state)
                round_span.annotate(new=len(new))
            if guard is not None:
                # One step per round plus one per derived triple: the
                # quadratic blowup of Theorem 3.6.3 is what a budget
                # must be able to interrupt.
                guard.tick(1 + len(new))
            if not new:
                break
            state |= new
        if OBS.enabled:
            OBS.registry.inc("closure.rounds", rounds)
            OBS.registry.inc(
                "closure.derived_triples", len(state) - input_size
            )
            span.annotate(rounds=rounds, output=len(state))
    return state


def rdfs_closure_boxed(graph: RDFGraph) -> RDFGraph:
    """``RDFS-cl(G)`` over boxed terms (reference / A-B baseline).

    The original staged implementation; kept callable so the benchmark
    suite can measure the encoded kernel against it and so
    ``REPRO_CLOSURE_KERNEL=boxed`` can force it at runtime.
    """
    triples: Set[Triple] = set(graph.triples)
    _fixpoint_rounds(triples, _closure_round, len(graph))
    return RDFGraph(triples)


def rdfs_closure_encoded(graph: RDFGraph) -> RDFGraph:
    """``RDFS-cl(G)`` via the dictionary-encoded int kernel.

    Interns the graph through a fresh vocabulary-seeded
    :class:`TermDict`, runs the staged fixpoint entirely over
    ``(int, int, int)`` rows, and decodes once at the end.  Raises
    ``TypeError`` if the graph contains non-RDF terms (variables);
    :func:`rdfs_closure` falls back to the boxed path in that case.
    """
    terms = TermDict()
    rows: Set[Row] = set(terms.encode_rows(graph.triples))
    # Reserved vocabulary in a subject/object position (a subproperty
    # *of sp itself*, a domain axiom *about type*, …) can make round-1
    # derivations feed rules they precede; only then is iteration
    # needed.  Thanks to vocabulary seeding this is five int compares
    # per row — and on clean input the verification round (a full
    # re-derivation that discovers nothing) is skipped outright, which
    # roughly halves the kernel's work.  The staged round orders rules
    # (6)/(7) before rule (5) precisely so this single pass is complete;
    # the equivalence with the iterated boxed path is pinned by the
    # closure and property suites.
    if any(s < VOCAB_SIZE or o < VOCAB_SIZE for s, _p, o in rows):
        _fixpoint_rounds(rows, _closure_round_ids, len(graph))
    else:
        guard = current_guard()
        if FAULTS.enabled:
            FAULTS.hit("closure.round")
        with OBS.span("closure.fixpoint", input=len(rows)) as span:
            with OBS.span("closure.round", round=1) as round_span:
                new = _closure_round_ids(rows)
                round_span.annotate(new=len(new))
            if guard is not None:
                guard.tick(1 + len(new))
            rows |= new
            if OBS.enabled:
                OBS.registry.inc("closure.rounds", 1)
                OBS.registry.inc(
                    "closure.derived_triples", len(rows) - len(graph)
                )
                span.annotate(rounds=1, output=len(rows))
    dec = terms.decode_triple
    out = RDFGraph([dec(row) for row in rows])
    if OBS.enabled:
        registry = OBS.registry
        registry.inc("interning.encode_calls", terms.encodes)
        registry.inc("interning.decode_calls", terms.decodes)
        registry.set_gauge("interning.closure_dict_size", len(terms))
    return out


def _successor_sets(edges, guard) -> Dict[int, Set[int]]:
    """Per-source reachability sets of a pair relation (DFS per source).

    The int-space twin of :func:`_transitive_pairs`, kept in successor-
    set form so rule application can leapfrog over its *sorted keys*
    without flattening the whole quadratic pair relation.  A semi-naive
    merge-join doubling was tried here and measured ~15x slower on
    chains: composing delta with the full relation re-derives every
    path decomposition (Θ(n³) emissions for a Θ(n²) closure), while
    one DFS per source touches each reachable node exactly once.
    """
    successors: Dict[int, Set[int]] = {}
    for a, b in edges:
        successors.setdefault(a, set()).add(b)
    reach: Dict[int, Set[int]] = {}
    for start in successors:
        if guard is not None:
            guard.tick()  # one DFS from this start node
        seen: Set[int] = set()
        stack = list(successors[start])
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            nxt = successors.get(node)
            if nxt:
                stack.extend(nxt)
        reach[start] = seen
    return reach


def _reverse_reachable(edges, sources) -> Dict[int, List[int]]:
    """``{s: [c, ...]}`` for each *source* s: all c with c →* s.

    Reverse-DFS over the (input-sized) edge list, run only from the
    handful of dom/range axiom subjects rules (6)/(7) care about —
    cheaper than inverting the full transitive pair relation.
    """
    reverse: Dict[int, List[int]] = {}
    for a, b in edges:
        reverse.setdefault(b, []).append(a)
    out: Dict[int, List[int]] = {}
    for start in sources:
        if start in out:
            continue
        seen: Set[int] = set()
        stack = list(reverse.get(start, ()))
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(reverse.get(node, ()))
        out[start] = list(seen)
    return out


def _arrays_round(acc: SortedRuns, tallies: Dict[str, int], guard) -> List[Row]:
    """One staged emission over a sorted-run relation.

    The array twin of :func:`_closure_round_ids`: every rule group
    reads contiguous POS runs (the five rdfsV keywords are IDs 0–4, so
    their runs sit at the front of the predicate column), and rule
    application leapfrogs the sorted predicate runs against the sorted
    keys of the sp/sc reachability relations — a key-level merge-join
    in place of per-tuple dict probing.  Emits a raw batch (duplicates
    allowed); the caller deduplicates by sorted-merge difference
    against the accumulated run.
    """
    batch: List[Row] = []
    push = batch.append
    # Per-rule-group emission counters over the raw batch (duplicates
    # included — first-emitter attribution happens at dedup time).
    checkpoint = _make_checkpoint(batch)
    pos = acc.pos
    c1, c2 = pos.c1, pos.c2
    sp_lo, sp_hi = pos.range1(SP_ID)
    sc_lo, sc_hi = pos.range1(SC_ID)
    ty_lo, ty_hi = pos.range1(TYPE_ID)
    dom_lo, dom_hi = pos.range1(DOM_ID)
    rg_lo, rg_hi = pos.range1(RANGE_ID)
    groups = list(pos.groups())  # (predicate, lo, hi) runs, ascending
    probes = emits = 0

    # GROUP E: sp reflexivity — rules (8), (9), (10), (11).
    sp_reflexive: Set[int] = set(range(VOCAB_SIZE))
    sp_reflexive.update(k for k, _lo, _hi in groups)  # rule (8)
    sp_reflexive.update(c2[dom_lo:dom_hi])  # rule (10)
    sp_reflexive.update(c2[rg_lo:rg_hi])
    sp_reflexive.update(c2[sp_lo:sp_hi])  # rule (11)
    sp_reflexive.update(c1[sp_lo:sp_hi])
    for a in sp_reflexive:
        if a < LITERAL_BASE:
            push((a, SP_ID, a))
    checkpoint("rule8_11_sp_reflexivity")

    # GROUP F: sc reflexivity — rules (12), (13).
    sc_reflexive: Set[int] = set()
    sc_reflexive.update(c1[dom_lo:dom_hi])  # rule (12)
    sc_reflexive.update(c1[rg_lo:rg_hi])
    sc_reflexive.update(c1[ty_lo:ty_hi])
    sc_reflexive.update(c2[sc_lo:sc_hi])  # rule (13)
    sc_reflexive.update(c1[sc_lo:sc_hi])
    for a in sc_reflexive:
        if a < LITERAL_BASE:
            push((a, SC_ID, a))
    checkpoint("rule12_13_sc_reflexivity")

    # The sp/sc reachability relations, as per-source successor sets
    # (DFS — linear in the output; see :func:`_successor_sets`).
    sp_edges = list(zip(c2[sp_lo:sp_hi], c1[sp_lo:sp_hi]))
    sc_edges = list(zip(c2[sc_lo:sc_hi], c1[sc_lo:sc_hi]))
    sp_succ = _successor_sets(sp_edges, guard)
    sc_succ = _successor_sets(sc_edges, guard)

    # GROUP B, rule (2): sp transitivity.
    for a, succ in sp_succ.items():
        for b in succ:
            push((a, SP_ID, b))
    checkpoint("rule2_sp_transitivity")

    # GROUP C, rule (4): sc transitivity.
    for a, succ in sc_succ.items():
        if a < LITERAL_BASE:
            for b in succ:
                if b < LITERAL_BASE:
                    push((a, SC_ID, b))
    checkpoint("rule4_sc_transitivity")

    # GROUP B, rule (3): lift every triple along sp — leapfrog the
    # predicate runs against the sorted sp-reachability keys; each
    # match emits the whole run against the whole superproperty set.
    if sp_succ:
        sp_keys = sorted(sp_succ)
        i, n = 0, len(sp_keys)
        for p, lo, hi in groups:
            while i < n and sp_keys[i] < p:
                i += 1
            if i >= n:
                break
            probes += 1
            if sp_keys[i] != p:
                continue
            for b in sp_succ[p]:
                if b < BNODE_BASE:  # no blank predicates
                    for x in range(lo, hi):
                        push((c2[x], b, c1[x]))
                        emits += 1
            i += 1
    checkpoint("rule3_sp_lift")

    # GROUP D, rules (6)/(7): dom/range typing through sp (Marin's
    # fix).  Ordered BEFORE rule (5) — as in the encoded kernel — so
    # the type pairs derived here are sc-lifted within the same round.
    # Properties sp-below an axiom subject come from a reverse DFS over
    # the (input-sized) sp edge list; each property's uses are one
    # galloping range probe into the predicate column.
    typed_pairs: List[Tuple[int, int]] = []  # (instance, class)
    if dom_lo != dom_hi or rg_lo != rg_hi:
        subjects = set(c2[dom_lo:dom_hi])
        subjects.update(c2[rg_lo:rg_hi])
        sp_sub = _reverse_reachable(sp_edges, subjects)
        for a_lo, a_hi, use_subject in (
            (dom_lo, dom_hi, True),
            (rg_lo, rg_hi, False),
        ):
            for klass, a in zip(c1[a_lo:a_hi], c2[a_lo:a_hi]):
                if klass >= LITERAL_BASE:
                    continue
                below = sp_sub.get(a)
                properties = [a] + below if below else (a,)
                for c in properties:
                    lo, hi = pos.range1(c)
                    probes += 1
                    if use_subject:
                        for x in range(lo, hi):
                            typed_pairs.append((c2[x], klass))
                    else:
                        for x in range(lo, hi):
                            target = c1[x]
                            if target < LITERAL_BASE:
                                typed_pairs.append((target, klass))
        for x, klass in typed_pairs:
            push((x, TYPE_ID, klass))
    checkpoint("rule6_7_dom_range")

    # GROUP D, rule (5): lift type along sc — a leapfrog merge-join of
    # the class-grouped type pairs (the accumulated TYPE run unioned
    # with the typings derived just above) against the sorted sc keys.
    if sc_succ:
        by_class = list(zip(c1[ty_lo:ty_hi], c2[ty_lo:ty_hi]))  # sorted
        if typed_pairs:
            by_class = merge_union_sorted(
                by_class, sorted(set((k, x) for x, k in typed_pairs))
            )
        sc_keys = sorted(sc_succ)
        i, m = 0, len(by_class)
        j, n = 0, len(sc_keys)
        while i < m and j < n:
            k = by_class[i][0]
            k2 = sc_keys[j]
            probes += 1
            if k < k2:
                i += 1
                while i < m and by_class[i][0] < k2:
                    i += 1
            elif k2 < k:
                j += 1
            else:
                i2 = i + 1
                while i2 < m and by_class[i2][0] == k:
                    i2 += 1
                supers = [b for b in sc_succ[k] if b < LITERAL_BASE]
                if supers:
                    for x in range(i, i2):
                        xx = by_class[x][1]
                        for b in supers:
                            push((xx, TYPE_ID, b))
                    emits += (i2 - i) * len(supers)
                i = i2
                j += 1
    checkpoint("rule5_sc_type_lift")

    if probes or emits:
        tallies["probes"] = tallies.get("probes", 0) + probes
        tallies["emits"] = tallies.get("emits", 0) + emits
    return batch


def rdfs_closure_arrays(graph: RDFGraph) -> RDFGraph:
    """``RDFS-cl(G)`` via the array-native sorted-run kernel.

    Interns the graph, keeps the accumulated closure as a
    :class:`~repro.core.columns.SortedRuns` relation, and runs the
    staged fixpoint with batch semantics: each round emits one raw
    batch through merge-joins over contiguous POS runs, deduplicates it
    by sorted-merge difference against the accumulated run (no
    per-tuple set probing), and merges the delta back in one pass.  On
    input without reserved vocabulary in subject/object positions a
    single round is complete (same argument as the encoded kernel) and
    the verification round is skipped.  Raises ``TypeError`` on
    non-RDF terms (variables); :func:`rdfs_closure` falls back to the
    boxed path in that case.
    """
    terms = TermDict()
    rows_sorted = sorted(set(terms.encode_rows(graph.triples)))
    acc = SortedRuns(rows_sorted)
    tallies: Dict[str, int] = {}
    guard = current_guard()
    input_size = len(graph)
    single_round = not any(
        s < VOCAB_SIZE or o < VOCAB_SIZE for s, _p, o in rows_sorted
    )
    batch_total = delta_total = 0
    with OBS.span("closure.fixpoint", input=input_size) as span:
        rounds = 0
        while True:
            rounds += 1
            if FAULTS.enabled:
                FAULTS.hit("closure.round")
            with OBS.span("closure.round", round=rounds) as round_span:
                batch = _arrays_round(acc, tallies, guard)
                batch.sort()
                delta = acc.new_rows(batch)
                round_span.annotate(new=len(delta))
            batch_total += len(batch)
            delta_total += len(delta)
            if guard is not None:
                # One step per batch boundary plus one per surviving
                # delta row: budgets interrupt between batches, not
                # inside a merge.
                guard.tick(1 + len(delta))
            if not delta:
                break
            acc = acc.union_sorted(delta)
            if single_round:
                break  # the verification round is provably empty
        if OBS.enabled:
            registry = OBS.registry
            registry.inc("closure.rounds", rounds)
            registry.inc("closure.derived_triples", len(acc) - input_size)
            span.annotate(rounds=rounds, output=len(acc))
    out = RDFGraph._from_trusted(terms.decode_rows(acc.rows()))
    if OBS.enabled:
        registry = OBS.registry
        registry.inc("interning.encode_calls", terms.encodes)
        registry.inc("interning.decode_calls", terms.decodes)
        registry.set_gauge("interning.closure_dict_size", len(terms))
        registry.inc("closure.kernel.arrays.batch_rows", batch_total)
        registry.inc("closure.kernel.arrays.delta_rows", delta_total)
        registry.inc("columns.mergejoin.probes", tallies.get("probes", 0))
        registry.inc("columns.mergejoin.emits", tallies.get("emits", 0))
    return out


# ----------------------------------------------------------------------
# Partitioned closure (ROADMAP item 3: the 10⁶-triple scale path)
# ----------------------------------------------------------------------

def _is_schema_row(p: int) -> bool:
    """Schema rows are the ones replicated to every shard.

    A row is *schema* iff its predicate is sp, sc, dom or range.  Every
    RDFS rule (2)–(13) has at most one non-schema premise: rules
    (2)/(4) and the reflexivity group join only schema rows, and rules
    (3)/(5)/(6)/(7) join one schema row against one arbitrary row.  So
    replicating schema to all shards and partitioning the rest by
    subject co-locates every rule's premises — no shard ever needs
    another shard's *data* rows, only its derived deltas.
    """
    return p < VOCAB_SIZE and p != TYPE_ID


class _Shard:
    """One partition's accumulated closure, spillable between rounds."""

    __slots__ = ("acc", "path", "n_rows", "inbox", "needs_round")

    def __init__(self, acc: SortedRuns):
        self.acc: Optional[SortedRuns] = acc
        self.path: Optional[str] = None
        self.n_rows = len(acc)
        self.inbox: List[List[Row]] = []
        self.needs_round = True

    def load(self) -> SortedRuns:
        if self.acc is None:
            with open(self.path, "rb") as f:
                self.acc = SortedRuns.fromfile(f, self.n_rows)
        return self.acc

    def spill(self, directory: str, index: int) -> None:
        if self.acc is None:
            return
        if self.path is None:
            self.path = os.path.join(directory, f"shard-{index:04d}.bin")
        with open(self.path, "wb") as f:
            self.acc.tofile(f)
        self.acc = None

    def resident_rows(self) -> int:
        return self.n_rows if self.acc is not None else 0

    def rows_iter(self):
        """Rows for the final k-way merge, streamed if spilled."""
        if self.acc is not None:
            return iter(self.acc.rows())
        from ..ingest.spill import SpilledRun

        return SpilledRun(self.path, self.n_rows).iter_rows()


def rdfs_closure_partitioned_rows(
    rows_sorted: List[Row],
    shards: int = 4,
    max_memory_mb: Optional[int] = None,
    tmp_dir: Optional[str] = None,
    tallies: Optional[Dict[str, int]] = None,
    progress: Optional[ProgressReporter] = None,
) -> SortedRuns:
    """``RDFS-cl`` of encoded rows by hash-partitioned fixpoint.

    *rows_sorted* is a sorted duplicate-free encoded row list over a
    vocabulary-seeded :class:`TermDict` (exactly what the bulk loader
    produces).  The relation is split into *shards* partitions — schema
    rows (sp/sc/dom/range predicates) replicated to all, data rows
    hashed by subject — and each shard runs the PR 6 staged round
    (:func:`_arrays_round`) over its own :class:`SortedRuns`.  Between
    rounds the shards exchange deltas: derived **schema** rows broadcast
    to every shard (new sp*/sc* frontier), and derived data rows whose
    subject hashes elsewhere — only rule (7) emits these — route to
    their home shard.  A shard re-enters the round loop whenever its
    accumulation grew; the global fixpoint is reached when no shard
    derives or receives anything new.

    On vocabulary-clean input (no reserved IDs in subject/object) one
    round per shard plus one exchange is complete: rules (6)/(7) emit
    type rows already lifted through the full (replicated) sc relation,
    so routed rows are inert at their home shard — the partitioned twin
    of the single-round argument in :func:`rdfs_closure_arrays`.

    With *max_memory_mb* set, shard accumulations are spilled to temp
    files between uses (:meth:`SortedRuns.tofile` flat-array format)
    whenever the resident estimate exceeds the bound, and the final
    union streams spilled shards back block-wise.

    *progress* (or the ambient reporter) gets one heartbeat per global
    round.  With instrumentation on, each shard additionally records
    into a private :class:`MetricsRegistry` that is merged into the
    global one under a ``closure.partitioned.shard.<i>.`` prefix at the
    end — the same loss-free snapshot-merge protocol the multi-worker
    loader uses across processes, exercised here across shards.
    """
    from ..ingest.spill import ROW_BYTES

    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if tallies is None:
        tallies = {}
    guard = current_guard()
    if progress is None:
        progress = current_progress()
    shard_regs: Optional[List[MetricsRegistry]] = (
        [MetricsRegistry() for _ in range(shards)] if OBS.enabled else None
    )
    max_bytes = None if max_memory_mb is None else max_memory_mb * (1 << 20)

    # One pass with the _is_schema_row test inlined (it is hot here).
    schema: List[Row] = []
    data_parts: List[List[Row]] = [[] for _ in range(shards)]
    for row in rows_sorted:
        p = row[1]
        if p < VOCAB_SIZE and p != TYPE_ID:
            schema.append(row)
        else:
            data_parts[row[0] % shards].append(row)
    # Schema and data rows interleave arbitrarily by subject, so each
    # part must be re-sorted after the replicate/partition split.
    shard_state = [
        _Shard(SortedRuns(sorted(schema + part))) for part in data_parts
    ]
    del data_parts

    single_round = not any(
        s < VOCAB_SIZE or o < VOCAB_SIZE for s, _p, o in rows_sorted
    )

    spill_dir: Optional[str] = None
    spill_events = 0
    exchanged = 0

    def enforce_budget() -> None:
        nonlocal spill_dir, spill_events
        if max_bytes is None:
            return
        while True:
            resident = sum(sh.resident_rows() for sh in shard_state)
            if resident * ROW_BYTES <= max_bytes:
                return
            # Spill the largest resident shard; stop when nothing is
            # left to spill (a single huge shard stays resident).
            loaded = [sh for sh in shard_state if sh.acc is not None]
            if len(loaded) <= 1:
                return
            victim = max(loaded, key=lambda sh: sh.n_rows)
            if spill_dir is None:
                spill_dir = tempfile.mkdtemp(
                    prefix="repro-shards-", dir=tmp_dir
                )
            victim.spill(spill_dir, shard_state.index(victim))
            spill_events += 1

    def route(delta: List[Row], origin: int) -> None:
        """Queue an origin shard's delta for the other shards."""
        nonlocal exchanged
        if shards == 1:
            return
        # Single pass, _is_schema_row inlined: schema rows broadcast,
        # foreign-subject data rows (rule 7's emissions) go home.
        broadcast: List[Row] = []
        routed: Dict[int, List[Row]] = {}
        for r in delta:
            p = r[1]
            if p < VOCAB_SIZE and p != TYPE_ID:
                broadcast.append(r)
            else:
                home = r[0] % shards
                if home != origin:
                    bucket = routed.get(home)
                    if bucket is None:
                        routed[home] = [r]
                    else:
                        bucket.append(r)
        if not broadcast and not routed:
            return
        for j, sh in enumerate(shard_state):
            if j == origin:
                continue
            extra = routed.get(j)
            if extra is None:
                # Inbox batches are read-only until merged, so every
                # shard may share the one broadcast list.
                batch = broadcast
            elif not broadcast:
                batch = extra
            else:
                batch = merge_union_sorted(broadcast, extra)
            if batch:
                sh.inbox.append(batch)
                exchanged += len(batch)

    rounds = 0
    try:
        with OBS.span(
            "closure.partitioned", shards=shards, input=len(rows_sorted)
        ) as span:
            while True:
                if not any(
                    sh.needs_round or sh.inbox for sh in shard_state
                ):
                    break
                rounds += 1
                if FAULTS.enabled:
                    FAULTS.hit("closure.round")
                for i, sh in enumerate(shard_state):
                    if sh.inbox:
                        incoming = merge_union_many(sh.inbox)
                        sh.inbox = []
                        acc = sh.load()
                        # One merge pass: union_sorted dedups, and the
                        # length tells us whether anything was new.
                        merged = acc.union_sorted(incoming)
                        if len(merged) != sh.n_rows:
                            sh.acc = merged
                            sh.n_rows = len(merged)
                            if not single_round:
                                sh.needs_round = True
                    if not sh.needs_round:
                        enforce_budget()
                        continue
                    acc = sh.load()
                    if shard_regs is not None:
                        with shard_regs[i].timer("round_ms"):
                            batch = _arrays_round(acc, tallies, guard)
                        shard_regs[i].inc("rounds")
                    else:
                        batch = _arrays_round(acc, tallies, guard)
                    batch.sort()
                    delta = acc.new_rows(batch)
                    if guard is not None:
                        guard.tick(1 + len(delta))
                    if delta:
                        sh.acc = acc.union_sorted(delta)
                        sh.n_rows = len(sh.acc)
                        route(delta, i)
                        if shard_regs is not None:
                            shard_regs[i].inc("derived_rows", len(delta))
                    else:
                        sh.needs_round = False
                    if single_round:
                        sh.needs_round = False
                    enforce_budget()
                if progress is not None:
                    progress.report(
                        "closure.partitioned",
                        round=rounds,
                        rows=sum(sh.n_rows for sh in shard_state),
                        exchanged=exchanged,
                        spills=spill_events,
                        shards=shards,
                    )
                if single_round and rounds >= 1:
                    # Drain the one exchange, then stop: routed rows
                    # are provably inert (see docstring).
                    for sh in shard_state:
                        if sh.inbox:
                            incoming = merge_union_many(sh.inbox)
                            sh.inbox = []
                            acc = sh.load()
                            merged = acc.union_sorted(incoming)
                            if len(merged) != sh.n_rows:
                                sh.acc = merged
                                sh.n_rows = len(merged)
                            enforce_budget()
                    break

            # Final union over all shard accumulations (schema rows and
            # broadcast copies dedup here).  With every shard resident,
            # concatenate + Timsort beats a pure-Python k-way heap
            # merge: the sort's galloping merge of the K pre-sorted
            # runs happens in C.  Spilled shards instead stream
            # block-wise through heapq.merge, never rematerializing.
            if all(sh.acc is not None for sh in shard_state):
                merged: List[Row] = []
                for sh in shard_state:
                    merged.extend(sh.acc.rows())
                merged.sort()
                out = [row for row, _group in groupby(merged)]
            else:
                out = [
                    row
                    for row, _group in groupby(
                        heapq.merge(*(sh.rows_iter() for sh in shard_state))
                    )
                ]
            span.annotate(rounds=rounds, output=len(out), spills=spill_events)
    finally:
        if spill_dir is not None:
            shutil.rmtree(spill_dir, ignore_errors=True)
    if progress is not None:
        progress.report(
            "closure.partitioned",
            force=True,
            round=rounds,
            rows=len(out),
            exchanged=exchanged,
            spills=spill_events,
            shards=shards,
        )
    if OBS.enabled:
        registry = OBS.registry
        registry.inc("closure.partitioned.rounds", rounds)
        registry.inc("closure.partitioned.exchanged_rows", exchanged)
        registry.inc("closure.partitioned.spilled_shards", spill_events)
        if shard_regs is not None:
            for i, reg in enumerate(shard_regs):
                registry.merge(
                    reg.snapshot(),
                    prefix=f"closure.partitioned.shard.{i}.",
                )
    return SortedRuns(out)


def rdfs_closure_partitioned(
    graph: RDFGraph,
    shards: int = 4,
    max_memory_mb: Optional[int] = None,
    tmp_dir: Optional[str] = None,
) -> RDFGraph:
    """``RDFS-cl(G)`` via the hash-partitioned sorted-run kernel.

    The graph-level wrapper over
    :func:`rdfs_closure_partitioned_rows`: encode, partition, run the
    per-shard fixpoint with delta exchange, decode the merged union.
    Produces exactly :func:`rdfs_closure_arrays`'s output for every
    shard count (parity-tested at 1, 2 and 7 shards); raises
    ``TypeError`` on non-RDF terms like the other encoded kernels.
    """
    terms = TermDict()
    rows_sorted = sorted(set(terms.encode_rows(graph.triples)))
    tallies: Dict[str, int] = {}
    acc = rdfs_closure_partitioned_rows(
        rows_sorted,
        shards=shards,
        max_memory_mb=max_memory_mb,
        tmp_dir=tmp_dir,
        tallies=tallies,
    )
    KERNEL_DISPATCH["partitioned"] += 1
    out = RDFGraph._from_trusted(terms.decode_rows(acc.rows()))
    if OBS.enabled:
        registry = OBS.registry
        registry.inc("closure.dispatch.partitioned")
        registry.inc("interning.encode_calls", terms.encodes)
        registry.inc("interning.decode_calls", terms.decodes)
        registry.inc("columns.mergejoin.probes", tallies.get("probes", 0))
        registry.inc("columns.mergejoin.emits", tallies.get("emits", 0))
    return out


def rdfs_closure(graph: RDFGraph) -> RDFGraph:
    """``RDFS-cl(G)`` via the staged algorithm, iterated to fixpoint.

    Agrees with :func:`rdfs_closure_by_rules` on every graph (tested,
    including graphs that use reserved vocabulary in subject/object
    positions); runs in time polynomial in ``|G|`` with output size
    ``Θ(|G|²)`` in the worst case (Theorem 3.6.3).

    Dispatches on ``REPRO_CLOSURE_KERNEL``: ``arrays`` (the default)
    runs the sorted-run kernel (:func:`rdfs_closure_arrays`),
    ``encoded`` the dictionary-encoded set kernel
    (:func:`rdfs_closure_encoded`), ``boxed`` the term-level staged
    path.  Graphs holding terms the interner cannot encode (variables)
    fall back to boxed whatever the mode.  All three produce the same
    graph; ``closure.dispatch.*`` counters and the always-on
    :data:`KERNEL_DISPATCH` tallies record which one ran.
    """
    mode = active_closure_kernel()
    if mode != "boxed":
        kernel = rdfs_closure_arrays if mode == "arrays" else rdfs_closure_encoded
        try:
            result = kernel(graph)
        except TypeError:
            pass  # non-RDF terms (e.g. variables): boxed fallback below
        else:
            KERNEL_DISPATCH[mode] += 1
            if OBS.enabled:
                OBS.registry.inc(f"closure.dispatch.{mode}")
            return result
    KERNEL_DISPATCH["boxed"] += 1
    if OBS.enabled:
        OBS.registry.inc("closure.dispatch.boxed")
    return rdfs_closure_boxed(graph)


def closure(graph: RDFGraph) -> RDFGraph:
    """``cl(G)`` per Definition 3.5: Skolemize, close, un-Skolemize.

    For ground graphs this is directly the maximal equivalent ground
    graph (= ``RDFS-cl(G)``); otherwise ``cl(G) = (cl(G*))_*``.  By
    Lemma 3.4 the result equals ``RDFS-cl(G)``.
    """
    if graph.is_ground():
        return rdfs_closure(graph)
    skolemized, inverse = graph.skolemize()
    closed = rdfs_closure(skolemized)
    return RDFGraph.unskolemize(closed, inverse)


def closure_delta(graph: RDFGraph, closed: Optional[RDFGraph] = None) -> RDFGraph:
    """The derived part ``cl(G) − G`` (useful for inspection and tests).

    Pass *closed* to reuse an already-computed (e.g. incrementally
    maintained) closure instead of recomputing it — the store's
    :meth:`~repro.store.TripleStore.closure_delta` does exactly that.
    """
    return (closure(graph) if closed is None else closed) - graph


class ClosureOracle:
    """Decides ``t ∈ cl(G)`` without materializing the closure.

    Preprocessing builds the sp/sc edge lists and per-predicate triple
    indexes (linear in ``|G|``); each membership query then runs a
    bounded number of reachability checks, in line with the
    ``O(|G| log |G|)`` bound of Theorem 3.6.4.

    The oracle answers relative to ``cl(G)`` with blank nodes treated as
    in the Skolemized closure — i.e. a queried blank node matches itself
    only, which is the correct reading of Definition 3.5.
    """

    def __init__(self, graph: RDFGraph):
        self._graph = graph
        self._sp_succ: Dict[Term, Set[Term]] = {}
        self._sc_succ: Dict[Term, Set[Term]] = {}
        for t in graph:
            if t.p == SP:
                self._sp_succ.setdefault(t.s, set()).add(t.o)
            elif t.p == SC:
                self._sc_succ.setdefault(t.s, set()).add(t.o)
        # Deep vocabulary nesting (reserved words in subject/object
        # positions) can make single-pass reachability insufficient;
        # detect it and fall back to the materialized closure, keeping
        # the fast path for the overwhelmingly common case.
        self._pathological = any(
            term in RDFS_VOCABULARY
            for t in graph
            for term in (t.s, t.o)
        )
        self._materialized: Optional[RDFGraph] = None

    # -- reachability helpers -------------------------------------------

    def _reaches(self, succ: Dict[Term, Set[Term]], a: Term, b: Term) -> bool:
        """True iff there is a path a → ... → b of length ≥ 1."""
        seen: Set[Term] = set()
        stack = list(succ.get(a, ()))
        while stack:
            node = stack.pop()
            if node == b:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(succ.get(node, ()))
        return False

    def _sp_reaches(self, a: Term, b: Term) -> bool:
        return self._reaches(self._sp_succ, a, b)

    def _sc_reaches(self, a: Term, b: Term) -> bool:
        return self._reaches(self._sc_succ, a, b)

    def _sp_reflexive(self, a: Term) -> bool:
        """Does rule (8)/(9)/(10)/(11) put (a, sp, a) in the closure?"""
        if a in RDFS_VOCABULARY:
            return True
        g = self._graph
        if g.count(p=a):
            return True  # rule (8)
        if g.count(s=a, p=DOM) or g.count(s=a, p=RANGE):
            return True  # rule (10)
        if g.count(s=a, p=SP) or g.count(p=SP, o=a):
            return True  # rule (11)
        return False

    def _sc_reflexive(self, a: Term) -> bool:
        """Does rule (12)/(13) put (a, sc, a) in the closure?"""
        g = self._graph
        for p in (DOM, RANGE, TYPE):
            if g.count(p=p, o=a):
                return True  # rule (12)
        if g.count(s=a, p=SC) or g.count(p=SC, o=a):
            return True  # rule (13)
        return False

    def _predicates_below(self, prop: Term) -> Set[Term]:
        """``{prop} ∪ {c : c sp→* prop}`` — candidates for rules (3)/(6)/(7)."""
        out = {prop}
        # Reverse reachability over sp edges.
        reverse: Dict[Term, Set[Term]] = {}
        for a, succs in self._sp_succ.items():
            for b in succs:
                reverse.setdefault(b, set()).add(a)
        stack = list(reverse.get(prop, ()))
        while stack:
            node = stack.pop()
            if node in out:
                continue
            out.add(node)
            stack.extend(reverse.get(node, ()))
        return out

    # -- membership ------------------------------------------------------

    def __contains__(self, t: Triple) -> bool:
        return self.contains(t)

    def contains(self, t: Triple) -> bool:
        """``t ∈ cl(G)``?"""
        if not isinstance(t, Triple):
            t = Triple(*t)
        if t in self._graph:
            return True
        if self._pathological:
            if self._materialized is None:
                self._materialized = closure(self._graph)
            return t in self._materialized

        s, p, o = t
        if p == SP:
            if s == o:
                return self._sp_reflexive(s) or self._sp_reaches(s, s)
            return self._sp_reaches(s, o)
        if p == SC:
            if s == o:
                return self._sc_reflexive(s) or self._sc_reaches(s, s)
            return self._sc_reaches(s, o)
        if p == TYPE:
            return self._type_holds(s, o)
        if p in (DOM, RANGE):
            return False  # no rule derives new dom/range triples
        # Ordinary predicate: rule (3) — some (s, c, o) with c sp→* p.
        for c in self._predicates_below(p):
            if isinstance(c, URI) and c != p and self._graph.count(s=s, p=c, o=o):
                return True
        return False

    def _type_holds(self, x: Term, klass: Term) -> bool:
        """Is (x, type, klass) derivable?

        Sources: an explicit (x, type, c) with c sc→* klass (rule 5);
        a dom/range axiom (a, dom, c) with c sc→* klass and a use of a
        property sp-below a having x in the right position (rules 6/7
        then 5).
        """
        # Classes from which `klass` is sc-reachable (including itself).
        sources = {klass}
        reverse: Dict[Term, Set[Term]] = {}
        for a, succs in self._sc_succ.items():
            for b in succs:
                reverse.setdefault(b, set()).add(a)
        stack = list(reverse.get(klass, ()))
        while stack:
            node = stack.pop()
            if node in sources:
                continue
            sources.add(node)
            stack.extend(reverse.get(node, ()))

        for c in sources:
            if self._graph.count(s=x, p=TYPE, o=c):
                return True  # rule (5) chain from an explicit type triple
            # rule (6): (a, dom, c), some property use (x, b, ·), b sp* a.
            for axiom in self._graph.match(p=DOM, o=c):
                for b in self._predicates_below(axiom.s):
                    if isinstance(b, URI) and self._graph.count(s=x, p=b):
                        return True
            # rule (7): (a, range, c), some property use (·, b, x).
            for axiom in self._graph.match(p=RANGE, o=c):
                for b in self._predicates_below(axiom.s):
                    if isinstance(b, URI) and self._graph.count(p=b, o=x):
                        return True
        return False
