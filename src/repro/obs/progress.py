"""Live progress heartbeats for long-running loads and closures.

A 30-second ``repro load --close`` used to be completely silent; this
module gives the bulk paths a pulse.  A :class:`ProgressReporter` emits
rate-limited heartbeat lines to a stream (stderr by the CLI's default):
human-readable by default, one JSON object per line in ``json_lines``
mode, each carrying the reporting stage, its counters, an overall
rate, elapsed time, and the process's peak RSS
(``resource.getrusage``).

Reporters are handed down explicitly where a function signature allows
(``load_ntriples(progress=...)``) and ambiently otherwise: the Datalog
semi-naive loop reads :func:`current_progress`, installed for a region
with :func:`progress_scope` — the same pattern as the robustness
guard.  With no reporter installed the hot-path cost is one function
call returning ``None`` per *round* (never per row), and a reporter
throttles itself to one line per ``interval_s`` so a million-row load
writes a handful of lines, not a handful of megabytes.
"""

from __future__ import annotations

import json
import sys
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

__all__ = [
    "ProgressReporter",
    "current_progress",
    "progress_scope",
    "peak_rss_bytes",
]


def peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process, in bytes (None if unknown).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalized
    here so heartbeat consumers never need to care.
    """
    try:
        import resource
    except ImportError:  # non-POSIX: degrade gracefully
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return rss
    return rss * 1024


class ProgressReporter:
    """Rate-limited heartbeat emitter for the bulk ingest/closure paths.

    ``report(stage, **fields)`` is called freely (once per chunk, per
    round, per wave); at most one line per *interval_s* actually
    reaches the stream, except ``force=True`` (phase boundaries and
    final summaries always land).  *clock* is injectable so the
    rate-limiting is unit-testable without sleeping.

    A reporter constructed with ``enabled=False`` swallows everything —
    call sites may hold one unconditionally; the disabled check is one
    attribute read, which is what the obs-disabled overhead gate in
    ``benchmarks/bench_ingest.py`` pins down.
    """

    def __init__(
        self,
        stream=None,
        interval_s: float = 1.0,
        json_lines: bool = False,
        enabled: bool = True,
        clock=time.monotonic,
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.interval_s = interval_s
        self.json_lines = json_lines
        self.enabled = enabled
        self.heartbeats = 0  # lines actually emitted
        self._clock = clock
        self._t0 = clock()
        self._last_emit: Optional[float] = None

    # -- the reporting protocol -----------------------------------------

    def report(self, stage: str, force: bool = False, **fields) -> bool:
        """Offer a heartbeat; returns True when a line was emitted."""
        if not self.enabled:
            return False
        now = self._clock()
        if (
            not force
            and self._last_emit is not None
            and now - self._last_emit < self.interval_s
        ):
            return False
        self._last_emit = now
        self._emit(stage, now - self._t0, fields)
        self.heartbeats += 1
        return True

    # -- formatting ------------------------------------------------------

    @staticmethod
    def _fmt_value(value) -> str:
        if isinstance(value, float):
            return f"{value:.1f}"
        if isinstance(value, int) and abs(value) >= 10_000:
            return f"{value:,}"
        return str(value)

    def _emit(self, stage: str, elapsed_s: float, fields: Dict) -> None:
        rss = peak_rss_bytes()
        if self.json_lines:
            payload = {
                "stage": stage,
                "elapsed_s": round(elapsed_s, 3),
                **fields,
            }
            if rss is not None:
                payload["peak_rss_mb"] = round(rss / (1 << 20), 1)
            self.stream.write(json.dumps(payload) + "\n")
        else:
            parts = [f"{k}={self._fmt_value(v)}" for k, v in fields.items()]
            if rss is not None:
                parts.append(f"rss={rss / (1 << 20):.0f}MB")
            parts.append(f"t={elapsed_s:.1f}s")
            self.stream.write(f"[repro] {stage}: " + " ".join(parts) + "\n")
        flush = getattr(self.stream, "flush", None)
        if flush is not None:
            flush()


#: The ambient reporter (None = silent).  Installed per region by
#: :func:`progress_scope`; read by code without a ``progress``
#: parameter of its own (the Datalog semi-naive loop).
_ACTIVE: Optional[ProgressReporter] = None


def current_progress() -> Optional[ProgressReporter]:
    """The ambient reporter installed by :func:`progress_scope`, if any."""
    return _ACTIVE


@contextmanager
def progress_scope(
    reporter: Optional[ProgressReporter],
) -> Iterator[Optional[ProgressReporter]]:
    """Install *reporter* as the ambient progress sink for a region."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = reporter
    try:
        yield reporter
    finally:
        _ACTIVE = previous
