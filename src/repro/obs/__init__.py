"""Observability: one metrics registry and tracer for the whole stack.

The paper's complexity theorems are statements about *where the work
goes* — homomorphism backtracking (Theorems 2.9/2.10), closure fixpoint
rounds (Theorem 3.6), core search (Theorem 3.12).  This package makes
that work visible: the matching planner, the Datalog engine, the staged
closure and the triple store all report to one process-global
:class:`~repro.obs.metrics.MetricsRegistry` and
:class:`~repro.obs.tracing.Tracer` pair, held in :data:`OBS`.

Instrumentation is **off by default** and near-free while off: hot
paths guard every report with ``if OBS.enabled:`` (one attribute read),
and the disabled registry/tracer singletons no-op without allocating.
Turn it on around a region of interest::

    from repro import obs

    with obs.instrumentation() as (registry, tracer):
        entails(g1, g2)
    print(registry.counter("planner.backtracks"))
    print(tracer.describe())

or globally with :func:`enable` / :func:`disable`.  The CLI's
``--profile`` flag and the benchmark report's metrics snapshots are
thin wrappers over exactly this API.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from .export import chrome_trace, prometheus_text, write_chrome_trace
from .metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from .progress import (
    ProgressReporter,
    current_progress,
    peak_rss_bytes,
    progress_scope,
)
from .tracing import TraceEvent, Tracer

__all__ = [
    "OBS",
    "MetricsRegistry",
    "Histogram",
    "Tracer",
    "TraceEvent",
    "DEFAULT_BUCKETS",
    "STANDARD_COUNTERS",
    "ProgressReporter",
    "current_progress",
    "progress_scope",
    "peak_rss_bytes",
    "prometheus_text",
    "chrome_trace",
    "write_chrome_trace",
    "enable",
    "disable",
    "is_enabled",
    "get_registry",
    "get_tracer",
    "instrumentation",
]

#: Headline counters declared (at 0) whenever instrumentation turns on,
#: so a profile over any command shows the full shared-registry shape
#: even for layers the command never touched.
STANDARD_COUNTERS = (
    "planner.prepared",
    "planner.strategy.ground",
    "planner.strategy.semijoin",
    "planner.strategy.backtrack",
    "planner.backtracks",
    "planner.pruned_empty",
    "planner.solutions",
    "closure.rounds",
    "closure.derived_triples",
    "closure.dispatch.arrays",
    "closure.dispatch.encoded",
    "closure.dispatch.boxed",
    "closure.dispatch.partitioned",
    "closure.kernel.arrays.batch_rows",
    "closure.kernel.arrays.delta_rows",
    "columns.mergejoin.probes",
    "columns.mergejoin.emits",
    "interning.encode_calls",
    "interning.decode_calls",
    "ingest.lines",
    "ingest.chunks",
    "ingest.rows",
    "ingest.skipped_lines",
    "ingest.spilled_runs",
    "ingest.worker_snapshots",
    "closure.partitioned.rounds",
    "closure.partitioned.exchanged_rows",
    "closure.partitioned.spilled_shards",
    "datalog.rounds",
    "datalog.derived",
    "datalog.batch_rows",
    "datalog.dred.overdeleted",
    "datalog.dred.rederived",
    "store.dataset_cache.hit",
    "store.dataset_cache.miss",
    "store.closure_cache.hit",
    "store.closure_cache.miss",
    "store.nf_cache.hit",
    "store.nf_cache.miss",
    "store.maintenance.incremental_insert",
    "store.maintenance.incremental_delete",
    "store.maintenance.recomputed",
    "store.recovered_ops",
    "wal.appends",
    "wal.fsyncs",
    "wal.terms.appends",
    "wal.terms.fsyncs",
    "wal.recovered_batches",
    "wal.torn_tail_bytes",
    "wal.repaired_commits",
    "durable.checkpoints",
    "query.cache.hits",
    "query.cache.misses",
    "query.cache.containment_hits",
    "query.cache.plan_hits",
    "query.cache.invalidations",
    "query.cache.evictions",
    "guard.checks",
    "guard.steps",
    "guard.trips.deadline",
    "guard.trips.steps",
    "guard.trips.results",
    "guard.trips.cancelled",
    "guard.degraded_answers",
)


class Observability:
    """The process-global switchboard instrumented code reads.

    ``enabled`` is the single flag hot paths check; ``registry`` and
    ``tracer`` are never None (disabled singletons while off), so
    guarded code may use them without re-checking.
    """

    __slots__ = ("enabled", "registry", "tracer")

    def __init__(self):
        self.enabled = False
        self.registry = MetricsRegistry.disabled()
        self.tracer = Tracer.disabled()

    def span(self, name: str, **attrs):
        """Convenience: a tracer span, or the shared no-op while off."""
        return self.tracer.span(name, **attrs)


#: The one global instance every instrumented module imports.
OBS = Observability()


def enable(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> Tuple[MetricsRegistry, Tracer]:
    """Switch global instrumentation on; returns (registry, tracer).

    Fresh collectors are created unless explicitly passed in (e.g. to
    keep accumulating into an earlier run's registry).
    """
    OBS.registry = registry if registry is not None else MetricsRegistry()
    OBS.tracer = tracer if tracer is not None else Tracer()
    OBS.registry.declare(STANDARD_COUNTERS)
    OBS.enabled = True
    return OBS.registry, OBS.tracer


def disable() -> None:
    """Switch global instrumentation off (collectors are dropped)."""
    OBS.enabled = False
    OBS.registry = MetricsRegistry.disabled()
    OBS.tracer = Tracer.disabled()


def is_enabled() -> bool:
    return OBS.enabled


def get_registry() -> MetricsRegistry:
    """The active global registry (the disabled singleton while off)."""
    return OBS.registry


def get_tracer() -> Tracer:
    """The active global tracer (the disabled singleton while off)."""
    return OBS.tracer


@contextmanager
def instrumentation(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> Iterator[Tuple[MetricsRegistry, Tracer]]:
    """Enable instrumentation for a ``with`` block, then restore.

    The previous global state (including a previously enabled
    registry/tracer pair) is reinstated on exit, so profiled regions
    nest safely.
    """
    previous = (OBS.enabled, OBS.registry, OBS.tracer)
    try:
        yield enable(registry, tracer)
    finally:
        OBS.enabled, OBS.registry, OBS.tracer = previous
