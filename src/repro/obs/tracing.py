"""Span-based tracing for search and fixpoint loops.

A :class:`Tracer` records structured events — name, attributes, start
offset, duration, parent span — from ``with tracer.span(...)`` blocks.
The planner wraps its prepare phase, the Datalog engine wraps each
semi-naive round and DRed phase, the store wraps every maintenance
flush; nesting is tracked with a plain stack so a trace snapshot
reconstructs the call tree (``parent`` indexes into the event list).

Like the metrics registry, a disabled tracer is an aggressive no-op:
``span()`` returns one shared inert context manager, no event objects
are allocated, and snapshots stay empty.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

__all__ = ["Tracer", "TraceEvent"]


class TraceEvent:
    """One finished span: name, attrs, timing, tree position."""

    __slots__ = ("index", "name", "attrs", "parent", "start_ms", "duration_ms")

    def __init__(
        self,
        index: int,
        name: str,
        attrs: Dict,
        parent: Optional[int],
        start_ms: float,
    ):
        self.index = index
        self.name = name
        self.attrs = attrs
        self.parent = parent
        self.start_ms = start_ms
        self.duration_ms: Optional[float] = None

    def to_dict(self, now_ms: Optional[float] = None) -> Dict:
        """JSON form; an unfinished span closes at *now_ms* if given.

        Spans abandoned mid-flight (a ``BudgetExceeded`` unwinding past
        a hand-opened span, a generator never finalized) keep
        ``duration_ms is None`` in the live event; the snapshot path
        passes the capture time so they still record an end time
        instead of vanishing from rollups, and are marked
        ``"unfinished": true``.
        """
        duration = self.duration_ms
        attrs = dict(self.attrs)
        if duration is None and now_ms is not None:
            duration = max(now_ms - self.start_ms, 0.0)
            attrs["unfinished"] = True
        return {
            "index": self.index,
            "name": self.name,
            "attrs": attrs,
            "parent": self.parent,
            "start_ms": round(self.start_ms, 3),
            "duration_ms": None if duration is None else round(duration, 3),
        }


class _Span:
    """Live span handle; ``annotate()`` attaches attrs mid-flight."""

    __slots__ = ("_tracer", "_event", "_t0")

    def __init__(self, tracer: "Tracer", event: TraceEvent):
        self._tracer = tracer
        self._event = event
        self._t0 = 0.0

    def annotate(self, **attrs) -> "_Span":
        self._event.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        self._event.duration_ms = (time.perf_counter() - self._t0) * 1e3
        if exc_type is not None:
            # An exception (BudgetExceeded, injected fault) unwound
            # through the span: still a finished span, but flagged so
            # rollups can distinguish aborted work.
            self._event.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self._event)
        return False


class _NullSpan:
    """Shared inert span returned by a disabled tracer."""

    __slots__ = ()

    def annotate(self, **_attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Records nested spans as a flat event list with parent links."""

    __slots__ = ("enabled", "_events", "_stack", "_origin")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._events: List[TraceEvent] = []
        self._stack: List[int] = []
        self._origin = time.perf_counter()

    @classmethod
    def disabled(cls) -> "Tracer":
        """A tracer whose spans are all shared no-ops (records nothing)."""
        return cls(enabled=False)

    def span(self, name: str, **attrs):
        """Open a span: ``with tracer.span("datalog.round", round=2): ...``"""
        if not self.enabled:
            return _NULL_SPAN
        event = TraceEvent(
            index=len(self._events),
            name=name,
            attrs=attrs,
            parent=self._stack[-1] if self._stack else None,
            start_ms=(time.perf_counter() - self._origin) * 1e3,
        )
        self._events.append(event)
        self._stack.append(event.index)
        return _Span(self, event)

    def _pop(self, event: TraceEvent) -> None:
        # Exits come in LIFO order for well-nested ``with`` blocks; be
        # tolerant of generators finalized out of order.
        if self._stack and self._stack[-1] == event.index:
            self._stack.pop()
        elif event.index in self._stack:
            self._stack.remove(event.index)

    def now_ms(self) -> float:
        """Milliseconds since this tracer's origin (its time base)."""
        return (time.perf_counter() - self._origin) * 1e3

    def merge(self, events: List[Dict], label: str = "") -> None:
        """Append another tracer's :meth:`snapshot` to this event list.

        The cross-process half of the telemetry pipeline: a worker (or
        shard) snapshots its private tracer, the plain dicts travel
        over the result pipe, and the parent folds them in here.  The
        foreign events keep their internal parent links (re-based onto
        this tracer's index space); top-level foreign spans become
        children of the currently open span, so a worker's chunk spans
        nest under the parent's ``ingest.load``.

        Foreign timestamps are measured against the *worker's* clock
        origin, which is incomparable with ours — they are re-based so
        the last foreign span ends at the merge instant.  That keeps
        every event on one monotonic timeline (what the Chrome-trace
        exporter needs) at the cost of showing worker work at its
        *delivery* time rather than its true wall-clock slot; the
        ``track`` attribute (*label*) preserves which source it was.
        """
        if not self.enabled or not events:
            return
        base = len(self._events)
        anchor = self._stack[-1] if self._stack else None
        end = max(
            e["start_ms"] + (e["duration_ms"] or 0.0) for e in events
        )
        offset = self.now_ms() - end
        for e in events:
            attrs = dict(e.get("attrs", ()))
            if label:
                attrs.setdefault("track", label)
            parent = e.get("parent")
            event = TraceEvent(
                index=base + e["index"],
                name=e["name"],
                attrs=attrs,
                parent=anchor if parent is None else base + parent,
                start_ms=e["start_ms"] + offset,
            )
            event.duration_ms = e.get("duration_ms")
            self._events.append(event)

    # -- readers ---------------------------------------------------------

    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def reset(self) -> None:
        self._events.clear()
        self._stack.clear()
        self._origin = time.perf_counter()

    def snapshot(self) -> List[Dict]:
        """Every recorded span as a JSON-able dict, in start order.

        Unfinished spans (abandoned by an exception that bypassed their
        ``__exit__``, e.g. a hand-opened span) are closed at capture
        time and flagged ``unfinished`` instead of being dropped.
        """
        now = self.now_ms()
        return [e.to_dict(now_ms=now) for e in self._events]

    def aggregate(self) -> Dict[str, Dict]:
        """Per-span-name rollup: call count and total/max duration.

        Unfinished spans contribute their elapsed-so-far duration, so
        work aborted by a budget trip or injected fault still shows up
        in the rollup instead of silently vanishing.
        """
        now = self.now_ms()
        out: Dict[str, Dict] = {}
        for e in self._events:
            row = out.setdefault(
                e.name, {"count": 0, "total_ms": 0.0, "max_ms": 0.0}
            )
            row["count"] += 1
            duration = e.duration_ms
            if duration is None:
                duration = max(now - e.start_ms, 0.0)
            row["total_ms"] += duration
            row["max_ms"] = max(row["max_ms"], duration)
        for row in out.values():
            row["total_ms"] = round(row["total_ms"], 3)
            row["max_ms"] = round(row["max_ms"], 3)
        return dict(sorted(out.items()))

    def describe(self, limit: int = 10) -> str:
        """Rollup table plus the *limit* slowest spans with their attrs."""
        if not self._events:
            return "(no spans recorded)"
        lines = ["spans (by name):"]
        agg = self.aggregate()
        width = max(len(n) for n in agg)
        for name, row in agg.items():
            lines.append(
                f"  {name:<{width}}  n={row['count']} "
                f"total={row['total_ms']:.3f}ms max={row['max_ms']:.3f}ms"
            )
        finished = [e for e in self._events if e.duration_ms is not None]
        slowest = sorted(finished, key=lambda e: -e.duration_ms)[:limit]
        if slowest:
            lines.append(f"slowest spans (top {len(slowest)}):")
            for e in slowest:
                attrs = ", ".join(f"{k}={v}" for k, v in e.attrs.items())
                lines.append(
                    f"  {e.duration_ms:9.3f}ms  {e.name}"
                    + (f"  [{attrs}]" if attrs else "")
                )
        return "\n".join(lines)
