"""Span-based tracing for search and fixpoint loops.

A :class:`Tracer` records structured events — name, attributes, start
offset, duration, parent span — from ``with tracer.span(...)`` blocks.
The planner wraps its prepare phase, the Datalog engine wraps each
semi-naive round and DRed phase, the store wraps every maintenance
flush; nesting is tracked with a plain stack so a trace snapshot
reconstructs the call tree (``parent`` indexes into the event list).

Like the metrics registry, a disabled tracer is an aggressive no-op:
``span()`` returns one shared inert context manager, no event objects
are allocated, and snapshots stay empty.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

__all__ = ["Tracer", "TraceEvent"]


class TraceEvent:
    """One finished span: name, attrs, timing, tree position."""

    __slots__ = ("index", "name", "attrs", "parent", "start_ms", "duration_ms")

    def __init__(
        self,
        index: int,
        name: str,
        attrs: Dict,
        parent: Optional[int],
        start_ms: float,
    ):
        self.index = index
        self.name = name
        self.attrs = attrs
        self.parent = parent
        self.start_ms = start_ms
        self.duration_ms: Optional[float] = None

    def to_dict(self) -> Dict:
        return {
            "index": self.index,
            "name": self.name,
            "attrs": dict(self.attrs),
            "parent": self.parent,
            "start_ms": round(self.start_ms, 3),
            "duration_ms": (
                None if self.duration_ms is None else round(self.duration_ms, 3)
            ),
        }


class _Span:
    """Live span handle; ``annotate()`` attaches attrs mid-flight."""

    __slots__ = ("_tracer", "_event", "_t0")

    def __init__(self, tracer: "Tracer", event: TraceEvent):
        self._tracer = tracer
        self._event = event
        self._t0 = 0.0

    def annotate(self, **attrs) -> "_Span":
        self._event.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> bool:
        self._event.duration_ms = (time.perf_counter() - self._t0) * 1e3
        self._tracer._pop(self._event)
        return False


class _NullSpan:
    """Shared inert span returned by a disabled tracer."""

    __slots__ = ()

    def annotate(self, **_attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Records nested spans as a flat event list with parent links."""

    __slots__ = ("enabled", "_events", "_stack", "_origin")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._events: List[TraceEvent] = []
        self._stack: List[int] = []
        self._origin = time.perf_counter()

    @classmethod
    def disabled(cls) -> "Tracer":
        """A tracer whose spans are all shared no-ops (records nothing)."""
        return cls(enabled=False)

    def span(self, name: str, **attrs):
        """Open a span: ``with tracer.span("datalog.round", round=2): ...``"""
        if not self.enabled:
            return _NULL_SPAN
        event = TraceEvent(
            index=len(self._events),
            name=name,
            attrs=attrs,
            parent=self._stack[-1] if self._stack else None,
            start_ms=(time.perf_counter() - self._origin) * 1e3,
        )
        self._events.append(event)
        self._stack.append(event.index)
        return _Span(self, event)

    def _pop(self, event: TraceEvent) -> None:
        # Exits come in LIFO order for well-nested ``with`` blocks; be
        # tolerant of generators finalized out of order.
        if self._stack and self._stack[-1] == event.index:
            self._stack.pop()
        elif event.index in self._stack:
            self._stack.remove(event.index)

    # -- readers ---------------------------------------------------------

    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def reset(self) -> None:
        self._events.clear()
        self._stack.clear()
        self._origin = time.perf_counter()

    def snapshot(self) -> List[Dict]:
        """Every recorded span as a JSON-able dict, in start order."""
        return [e.to_dict() for e in self._events]

    def aggregate(self) -> Dict[str, Dict]:
        """Per-span-name rollup: call count and total/max duration."""
        out: Dict[str, Dict] = {}
        for e in self._events:
            row = out.setdefault(
                e.name, {"count": 0, "total_ms": 0.0, "max_ms": 0.0}
            )
            row["count"] += 1
            if e.duration_ms is not None:
                row["total_ms"] += e.duration_ms
                row["max_ms"] = max(row["max_ms"], e.duration_ms)
        for row in out.values():
            row["total_ms"] = round(row["total_ms"], 3)
            row["max_ms"] = round(row["max_ms"], 3)
        return dict(sorted(out.items()))

    def describe(self, limit: int = 10) -> str:
        """Rollup table plus the *limit* slowest spans with their attrs."""
        if not self._events:
            return "(no spans recorded)"
        lines = ["spans (by name):"]
        agg = self.aggregate()
        width = max(len(n) for n in agg)
        for name, row in agg.items():
            lines.append(
                f"  {name:<{width}}  n={row['count']} "
                f"total={row['total_ms']:.3f}ms max={row['max_ms']:.3f}ms"
            )
        finished = [e for e in self._events if e.duration_ms is not None]
        slowest = sorted(finished, key=lambda e: -e.duration_ms)[:limit]
        if slowest:
            lines.append(f"slowest spans (top {len(slowest)}):")
            for e in slowest:
                attrs = ", ".join(f"{k}={v}" for k, v in e.attrs.items())
                lines.append(
                    f"  {e.duration_ms:9.3f}ms  {e.name}"
                    + (f"  [{attrs}]" if attrs else "")
                )
        return "\n".join(lines)
