"""Machine-readable exporters for the obs registry and tracer.

Two formats, both zero-dependency:

* :func:`prometheus_text` — the Prometheus text exposition format
  (version 0.0.4) over a registry snapshot: counters as ``_total``
  series, gauges verbatim, histograms as cumulative ``_bucket{le=...}``
  series with ``_sum``/``_count``.  This is the body the future
  ``repro serve`` ``/metrics`` endpoint returns (ROADMAP item 2), and
  what ``repro metrics --format prom`` prints today.
* :func:`chrome_trace` — Chrome ``trace_event`` JSON over a tracer
  snapshot, loadable in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``.  Spans become complete ("X") events; merged
  worker/shard spans carry a ``track`` attribute and are laid out on
  their own named thread rows, so a 2-worker ingest renders as three
  parallel swimlanes.

Both accept either the live object or its plain-dict snapshot, so
they work equally on an in-process registry and on a snapshot JSON
written by ``--profile-json`` in an earlier run.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Union

from .metrics import MetricsRegistry
from .tracing import Tracer

__all__ = ["prometheus_text", "chrome_trace", "write_chrome_trace"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

#: Every exported series is namespaced under this prefix.
PROM_PREFIX = "repro_"


def _prom_name(name: str) -> str:
    """A dotted obs name as a legal Prometheus metric name."""
    return PROM_PREFIX + _NAME_OK.sub("_", name)


def _prom_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def prometheus_text(source: Union[MetricsRegistry, Dict]) -> str:
    """A registry (or its snapshot dict) in Prometheus text exposition.

    Counter names gain the conventional ``_total`` suffix; histogram
    bucket counts are emitted *cumulatively* (each ``le`` bound counts
    every observation at or below it), which is what Prometheus
    histograms mean — the registry stores per-bucket counts.
    """
    snapshot = (
        source.snapshot() if isinstance(source, MetricsRegistry) else source
    )
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = _prom_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(value)}")
    for name, hist in snapshot.get("histograms", {}).items():
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} histogram")
        buckets = hist.get("buckets", {})
        finite = sorted(
            (float(bound), count)
            for bound, count in buckets.items()
            if bound != "+Inf"
        )
        cumulative = 0
        for bound, count in finite:
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{bound:g}"}} {cumulative}'
            )
        lines.append(
            f'{metric}_bucket{{le="+Inf"}} {hist.get("count", 0)}'
        )
        lines.append(f"{metric}_sum {_prom_value(hist.get('sum', 0))}")
        lines.append(f"{metric}_count {hist.get('count', 0)}")
    return "\n".join(lines) + ("\n" if lines else "")


def chrome_trace(source: Union[Tracer, List[Dict]]) -> Dict:
    """A tracer (or its snapshot list) as a Chrome ``trace_event`` dict.

    Every span becomes one complete ("X") event with microsecond
    ``ts``/``dur``.  Events whose attrs carry a ``track`` label (set by
    :meth:`Tracer.merge` for worker/shard snapshots) get their own
    ``tid`` with a thread_name metadata record, so Perfetto renders
    each source as its own swimlane; unlabeled (parent) spans share
    tid 0.  Serialize with ``json.dump`` or use
    :func:`write_chrome_trace`.
    """
    events = source.snapshot() if isinstance(source, Tracer) else source
    tids: Dict[str, int] = {}
    trace: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "main"},
        },
    ]
    for e in events:
        attrs = dict(e.get("attrs", ()))
        track = attrs.pop("track", None)
        if track is None:
            tid = 0
        else:
            tid = tids.get(track)
            if tid is None:
                tid = tids[track] = len(tids) + 1
                trace.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": 0,
                        "tid": tid,
                        "args": {"name": str(track)},
                    }
                )
        duration_ms = e.get("duration_ms")
        trace.append(
            {
                "name": e["name"],
                "ph": "X",
                "pid": 0,
                "tid": tid,
                "ts": round(e["start_ms"] * 1e3, 3),
                "dur": round((duration_ms or 0.0) * 1e3, 3),
                "args": attrs,
            }
        )
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def write_chrome_trace(source: Union[Tracer, List[Dict]], path) -> None:
    """Write :func:`chrome_trace` output as JSON to *path*."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(chrome_trace(source), f, indent=1)
        f.write("\n")
