"""The metrics registry: counters, gauges, histograms, timers.

One :class:`MetricsRegistry` holds every numeric signal the library
emits — planner backtrack counts, per-rule Datalog derivations, store
cache hits, flush timings — keyed by dotted string names
(``planner.backtracks``, ``store.dataset_cache.hit``).  Two usage
modes:

* **process-global** — :data:`repro.obs.OBS` carries one registry that
  instrumented code writes to *only when enabled* (the default is
  disabled, and every mutator on a disabled registry is an immediate
  no-op, so the hot paths pay one attribute check at most);
* **per-object** — anything may own a private always-on registry;
  :class:`~repro.store.triple_store.TripleStore` keeps its maintenance
  counters this way so two stores never share state.

Zero dependencies: histograms use fixed bucket boundaries (Prometheus
style, ``le`` counts) and :meth:`MetricsRegistry.snapshot` returns
plain JSON-able dicts.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["MetricsRegistry", "Histogram", "DEFAULT_BUCKETS"]

#: Default histogram bucket upper bounds.  Chosen for the library's two
#: dominant value shapes — millisecond timings and small cardinalities
#: (domain sizes, cone sizes) — which both live comfortably in
#: 0.1 … 10⁴ with a +Inf overflow bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 10000,
)


class Histogram:
    """Fixed-boundary histogram with count/sum/min/max running stats."""

    __slots__ = ("buckets", "counts", "count", "total", "min", "max")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # last = +Inf overflow
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def to_dict(self) -> Dict:
        buckets = {str(b): n for b, n in zip(self.buckets, self.counts)}
        buckets["+Inf"] = self.counts[-1]
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
        }

    def merge_dict(self, snapshot: Dict) -> None:
        """Add a :meth:`to_dict` snapshot into this histogram, loss-free.

        Bucket counts add, count/sum add, min/max widen.  The snapshot
        must have been taken over the same bucket boundaries (all
        registries in this library use :data:`DEFAULT_BUCKETS`);
        mismatched boundaries raise ``ValueError`` rather than silently
        misbinning.
        """
        theirs = snapshot["buckets"]
        expected = [str(b) for b in self.buckets] + ["+Inf"]
        if sorted(theirs) != sorted(expected):
            raise ValueError(
                "histogram bucket boundaries differ; cannot merge "
                f"{sorted(theirs)} into {expected}"
            )
        for i, key in enumerate(expected):
            self.counts[i] += theirs[key]
        self.count += snapshot["count"]
        self.total += snapshot["sum"]
        if snapshot["min"] is not None:
            if self.min is None or snapshot["min"] < self.min:
                self.min = snapshot["min"]
        if snapshot["max"] is not None:
            if self.max is None or snapshot["max"] > self.max:
                self.max = snapshot["max"]


class _Timer:
    """Context manager: observes elapsed milliseconds into a histogram."""

    __slots__ = ("_registry", "_name", "_start", "elapsed_ms")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self._name = name
        self._start = 0.0
        self.elapsed_ms: Optional[float] = None

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> bool:
        self.elapsed_ms = (time.perf_counter() - self._start) * 1e3
        self._registry.observe(self._name, self.elapsed_ms)
        return False


class _NullTimer:
    """Shared no-op stand-in returned by disabled registries."""

    __slots__ = ()
    elapsed_ms = None

    def __enter__(self):
        return self

    def __exit__(self, *_exc) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class MetricsRegistry:
    """Counters, gauges and histograms under dotted string names.

    A disabled registry (``MetricsRegistry.disabled()``) turns every
    mutator into an immediate no-op that records *nothing* — no keys
    appear, snapshots stay empty — so instrumented code can call it
    unconditionally on cold paths.  Hot paths should still guard with
    ``if OBS.enabled:`` to skip even the method call.
    """

    __slots__ = ("enabled", "_counters", "_gauges", "_histograms")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    @classmethod
    def disabled(cls) -> "MetricsRegistry":
        """A registry whose mutators are all no-ops (records nothing)."""
        return cls(enabled=False)

    # -- mutators --------------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        """Increment counter *name* (created at 0 on first touch)."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + amount

    def declare(self, names: Iterable[str]) -> None:
        """Register counters at 0 so snapshots show them even untouched."""
        if not self.enabled:
            return
        for name in names:
            self._counters.setdefault(name, 0)

    def set_gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record *value* into histogram *name*."""
        if not self.enabled:
            return
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe(value)

    def timer(self, name: str):
        """``with registry.timer("store.flush_ms"): ...`` — observes ms."""
        if not self.enabled:
            return _NULL_TIMER
        return _Timer(self, name)

    def merge(self, snapshot: Dict, prefix: str = "") -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The cross-process aggregation protocol: ingest workers and
        closure shards snapshot their private registry, ship the plain
        dict over the result pipe, and the parent merges — **counters
        sum**, **gauges take the incoming value** (labeled last-writer:
        give each source its own *prefix* when the per-source value
        matters), **histogram buckets add** (same boundaries required).
        Merging is commutative over counters and histograms, so the
        merged totals are independent of worker scheduling — the same
        determinism argument as the loader's TermDict ID-remap.

        *prefix* is prepended to every incoming name (e.g.
        ``"ingest.worker.3."``) to keep per-source series distinct; an
        empty prefix folds into the shared series.  A disabled registry
        ignores the merge entirely.
        """
        if not self.enabled:
            return
        for name, value in snapshot.get("counters", {}).items():
            key = prefix + name
            self._counters[key] = self._counters.get(key, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            self._gauges[prefix + name] = value
        for name, hist_dict in snapshot.get("histograms", {}).items():
            key = prefix + name
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram()
            hist.merge_dict(hist_dict)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- readers ---------------------------------------------------------

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0)

    def counters(self, prefix: str = "") -> Dict[str, float]:
        """Counters whose name starts with *prefix*, sorted by name."""
        return {
            name: value
            for name, value in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def gauges(self) -> Dict[str, float]:
        return dict(sorted(self._gauges.items()))

    def histogram(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(name)

    def __len__(self) -> int:
        """Total number of recorded entries (all three families)."""
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -- export ----------------------------------------------------------

    def snapshot(self) -> Dict:
        """The registry as plain JSON-able dicts (stable key order)."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": {
                name: hist.to_dict()
                for name, hist in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def describe(self) -> str:
        """A human-readable multi-line summary (the ``--profile`` body)."""
        lines: List[str] = []
        counters = self.counters()
        if counters:
            lines.append("counters:")
            width = max(len(n) for n in counters)
            for name, value in counters.items():
                shown = int(value) if float(value).is_integer() else value
                lines.append(f"  {name:<{width}}  {shown}")
        gauges = self.gauges()
        if gauges:
            lines.append("gauges:")
            width = max(len(n) for n in gauges)
            for name, value in gauges.items():
                lines.append(f"  {name:<{width}}  {value}")
        if self._histograms:
            lines.append("histograms:")
            width = max(len(n) for n in self._histograms)
            for name, hist in sorted(self._histograms.items()):
                lines.append(
                    f"  {name:<{width}}  count={hist.count} "
                    f"sum={hist.total:.3f} min={hist.min:.3f} "
                    f"max={hist.max:.3f}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"
