"""The RDF ↔ relational correspondence of Section 2.4.

For a simple RDF graph ``G``:

* ``D_G`` — a relational database with a binary relation ``R_p`` per
  predicate ``p ∈ voc(G)`` holding ``{(s, o) : (s, p, o) ∈ G}``; the
  active domain is ``universe(G)`` (blank nodes included, as plain
  values);
* ``Q_G`` — the Boolean conjunctive query conjoining ``R_p(s, o)`` per
  triple, with the blank nodes of ``G`` as existential variables.

The paper's key observation: ``D_{G1} ⊨ Q_{G2}`` iff there is a map
``G2 → G1`` iff ``G1 ⊨ G2`` (simple entailment).  When ``G2`` has no
blank-induced cycles, ``Q_{G2}`` is an acyclic CQ and Yannakakis'
algorithm decides entailment in polynomial time —
:func:`simple_entails_acyclic` wires that pipeline together.
"""

from __future__ import annotations


from ..core.graph import RDFGraph
from ..core.planner import boolean_match_acyclic
from ..core.terms import BNode, Term
from .acyclic import build_join_tree
from .cq import Atom, CQVariable, ConjunctiveQuery
from .database import Database
from .evaluation import evaluate_boolean
from .yannakakis import evaluate_boolean_acyclic

__all__ = [
    "graph_to_database",
    "graph_to_boolean_cq",
    "simple_entails_via_cq",
    "simple_entails_acyclic",
    "simple_entails_treewidth",
    "blank_treewidth_upper_bound",
]


def _relation_name(predicate: Term) -> str:
    return f"R_{predicate.value}"


def graph_to_database(graph: RDFGraph) -> Database:
    """``D_G``: one binary relation per predicate (Section 2.4)."""
    db = Database()
    for t in graph:
        db.add(_relation_name(t.p), (t.s, t.o))
    return db


def graph_to_boolean_cq(graph: RDFGraph) -> ConjunctiveQuery:
    """``Q_G``: the Boolean CQ with blank nodes as variables."""

    def term_to_cq(term: Term):
        if isinstance(term, BNode):
            return CQVariable(term.value)
        return term

    atoms = tuple(
        Atom(relation=_relation_name(t.p), terms=(term_to_cq(t.s), term_to_cq(t.o)))
        for t in graph.sorted_triples()
    )
    return ConjunctiveQuery(atoms=atoms)


def simple_entails_via_cq(g1: RDFGraph, g2: RDFGraph) -> bool:
    """``G1 ⊨ G2`` decided as ``D_{G1} ⊨ Q_{G2}`` (naive evaluation).

    Cross-validates :func:`repro.semantics.entailment.simple_entails`:
    both must agree on all simple graphs (tested, incl. property tests).
    """
    return evaluate_boolean(graph_to_boolean_cq(g2), graph_to_database(g1))


def simple_entails_acyclic(g1: RDFGraph, g2: RDFGraph) -> bool:
    """Polynomial entailment test for blank-acyclic ``G2`` (Section 2.4).

    Requires ``Q_{G2}`` to be an acyclic CQ — guaranteed whenever ``G2``
    has no cycles induced by blank nodes
    (:meth:`repro.core.graph.RDFGraph.has_blank_cycle`), and checked
    directly on the hypergraph, which is strictly more permissive.
    Raises :class:`ValueError` on cyclic inputs.

    Since the matching-planner rewrite the common case never leaves the
    graph layer: when every connected blank component of ``G2`` is
    tree-shaped, :func:`repro.core.planner.boolean_match_acyclic` runs
    the semijoin reduction directly on ``G1``'s positional indexes.  The
    relational round-trip (``D_G`` / ``Q_G`` / join tree) remains as the
    general path — it accepts some hypergraph-acyclic inputs the planner
    conservatively routes to backtracking, and it is what raises
    ``ValueError`` on genuinely cyclic queries.
    """
    verdict = boolean_match_acyclic(list(g2), g1)
    if verdict is not None:
        return verdict
    cq = graph_to_boolean_cq(g2)
    tree = build_join_tree(cq)
    if tree is None:
        raise ValueError(
            "G2 induces a cyclic conjunctive query; use simple_entails "
            "(the general NP procedure) instead"
        )
    return evaluate_boolean_acyclic(cq, graph_to_database(g1), tree=tree)


def blank_treewidth_upper_bound(graph: RDFGraph) -> int:
    """Treewidth (upper bound) of the graph's blank structure.

    The width of ``Q_G``'s primal graph under the min-fill heuristic;
    blank-acyclic graphs have width ≤ 1.
    """
    from .treewidth import treewidth_upper_bound

    return max(0, treewidth_upper_bound(graph_to_boolean_cq(graph)))


def simple_entails_treewidth(g1: RDFGraph, g2: RDFGraph) -> bool:
    """Entailment through a tree decomposition of ``Q_{G2}`` (§2.4).

    Polynomial whenever the blank structure of ``G2`` has bounded
    treewidth — strictly generalizing :func:`simple_entails_acyclic`
    (blank-acyclic means treewidth ≤ 1).  Always terminates with the
    correct answer; the bound degrades to ``|G1|^{w+1}`` for width w.
    """
    from .treewidth import evaluate_boolean_treewidth

    return evaluate_boolean_treewidth(
        graph_to_boolean_cq(g2), graph_to_database(g1)
    )
