"""Bounded-treewidth evaluation of conjunctive queries (Section 2.4).

The paper's third polynomial special case: conjunctive queries of
bounded tree-width can be evaluated in polynomial time [10, 18], and
the notion "has been recently applied in the RDF context [36]".  This
module supplies the full pipeline:

* the *primal graph* of a CQ (vertices = variables, edges = co-occurrence
  in an atom);
* tree decompositions from elimination orderings (min-fill heuristic —
  optimal on chordal inputs, a good upper bound elsewhere), with an
  exact width checker;
* Boolean evaluation in ``O(|D|^{w+1})``: each bag materializes the
  join of its atoms (cross-extended to connector variables), and the
  bag tree — acyclic by construction — is reduced by Yannakakis-style
  semijoins.

Combined with the bridge of Section 2.4, this gives a third entailment
procedure: polynomial whenever the blank structure of ``G2`` has
bounded treewidth, strictly subsuming the blank-acyclic case
(treewidth 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .cq import Atom, CQVariable, ConjunctiveQuery
from .database import Database

__all__ = [
    "primal_graph",
    "min_fill_order",
    "TreeDecomposition",
    "tree_decomposition",
    "treewidth_upper_bound",
    "exact_treewidth",
    "evaluate_boolean_treewidth",
]


def primal_graph(query: ConjunctiveQuery) -> Dict[CQVariable, Set[CQVariable]]:
    """Variables adjacency: connected iff they share an atom."""
    adjacency: Dict[CQVariable, Set[CQVariable]] = {
        v: set() for v in query.variables()
    }
    for atom in query.atoms:
        variables = sorted(atom.variables(), key=lambda v: v.name)
        for i, u in enumerate(variables):
            for v in variables[i + 1 :]:
                adjacency[u].add(v)
                adjacency[v].add(u)
    return adjacency


def min_fill_order(
    adjacency: Dict[CQVariable, Set[CQVariable]]
) -> List[CQVariable]:
    """Elimination ordering by the min-fill heuristic.

    Repeatedly eliminates the vertex whose elimination adds the fewest
    fill edges (ties broken by degree, then name, for determinism).
    """
    graph = {v: set(ns) for v, ns in adjacency.items()}
    order: List[CQVariable] = []
    while graph:
        best = None
        best_key = None
        for v, neighbours in graph.items():
            ns = sorted(neighbours, key=lambda x: x.name)
            fill = sum(
                1
                for i, a in enumerate(ns)
                for b in ns[i + 1 :]
                if b not in graph[a]
            )
            key = (fill, len(neighbours), v.name)
            if best_key is None or key < best_key:
                best, best_key = v, key
        order.append(best)
        neighbours = graph.pop(best)
        ns = sorted(neighbours, key=lambda x: x.name)
        for i, a in enumerate(ns):
            for b in ns[i + 1 :]:
                graph[a].add(b)
                graph[b].add(a)
        for n in neighbours:
            graph[n].discard(best)
    return order


@dataclass
class TreeDecomposition:
    """Bags (variable sets) connected in a tree."""

    bags: List[FrozenSet[CQVariable]]
    edges: List[Tuple[int, int]]  # indexes into bags

    @property
    def width(self) -> int:
        return max((len(b) for b in self.bags), default=1) - 1

    def neighbours(self, index: int) -> List[int]:
        out = []
        for a, b in self.edges:
            if a == index:
                out.append(b)
            elif b == index:
                out.append(a)
        return out

    def verify(self, query: ConjunctiveQuery) -> bool:
        """All three decomposition conditions."""
        all_vars = query.variables()
        covered = set()
        for bag in self.bags:
            covered |= bag
        if covered != set(all_vars):
            return False
        # Every atom's variables inside some bag.
        for atom in query.atoms:
            if not any(atom.variables() <= bag for bag in self.bags):
                return False
        # Connectedness: bags holding each variable form a subtree.
        for v in all_vars:
            holders = {i for i, bag in enumerate(self.bags) if v in bag}
            if not holders:
                return False
            start = next(iter(holders))
            seen = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for n in self.neighbours(node):
                    if n in holders and n not in seen:
                        seen.add(n)
                        frontier.append(n)
            if seen != holders:
                return False
        return True


def tree_decomposition(query: ConjunctiveQuery) -> TreeDecomposition:
    """A decomposition from the min-fill elimination ordering.

    Standard construction: eliminating ``v`` creates the bag
    ``{v} ∪ N(v)``; each bag connects to the first later bag containing
    all of its remaining vertices.
    """
    adjacency = primal_graph(query)
    if not adjacency:
        return TreeDecomposition(bags=[frozenset()], edges=[])
    order = min_fill_order(adjacency)
    position = {v: i for i, v in enumerate(order)}
    graph = {v: set(ns) for v, ns in adjacency.items()}
    bags: List[FrozenSet[CQVariable]] = []
    for v in order:
        later = {n for n in graph[v] if position[n] > position[v]}
        bags.append(frozenset({v} | later))
        ns = sorted(later, key=lambda x: x.name)
        for i, a in enumerate(ns):
            for b in ns[i + 1 :]:
                graph[a].add(b)
                graph[b].add(a)
    edges: List[Tuple[int, int]] = []
    for i, bag in enumerate(bags):
        rest = bag - {order[i]}
        if not rest:
            continue
        # Attach to the bag of the earliest-eliminated remaining vertex.
        j = min((position[v] for v in rest))
        edges.append((i, j))
    return TreeDecomposition(bags=bags, edges=edges)


def treewidth_upper_bound(query: ConjunctiveQuery) -> int:
    """The width of the min-fill decomposition (an upper bound on tw)."""
    return tree_decomposition(query).width


def exact_treewidth(query: ConjunctiveQuery, limit: int = 9) -> int:
    """The exact treewidth, by exhaustive elimination-order search.

    Factorial in the variable count — a validation tool for the
    heuristic (tests assert min-fill is optimal on the standard
    families), guarded by *limit* on the number of variables.
    """
    import itertools

    adjacency = primal_graph(query)
    variables = sorted(adjacency, key=lambda v: v.name)
    if len(variables) > limit:
        raise ValueError(
            f"exact treewidth limited to {limit} variables; "
            f"query has {len(variables)}"
        )
    if not variables:
        return 0

    def width_of_order(order) -> int:
        graph = {v: set(ns) for v, ns in adjacency.items()}
        worst = 0
        for v in order:
            neighbours = graph.pop(v)
            worst = max(worst, len(neighbours))
            ns = sorted(neighbours, key=lambda x: x.name)
            for i, a in enumerate(ns):
                for b in ns[i + 1 :]:
                    graph[a].add(b)
                    graph[b].add(a)
            for n in neighbours:
                graph[n].discard(v)
        return worst

    return min(
        width_of_order(order) for order in itertools.permutations(variables)
    )


def _bag_relation(
    query: ConjunctiveQuery,
    db: Database,
    bag: FrozenSet[CQVariable],
    atoms: Sequence[Atom],
    domain: Sequence,
) -> Tuple[Tuple[CQVariable, ...], Set[Tuple]]:
    """All assignments of the bag's variables satisfying its atoms.

    Covered variables come from joining the atoms; connector variables
    with no local atom are cross-extended over the active domain (this
    is where the |D|^{w+1} bound comes from).
    """
    from .evaluation import iter_valuations

    columns = tuple(sorted(bag, key=lambda v: v.name))
    local = ConjunctiveQuery(atoms=tuple(atoms))
    covered = local.variables()
    rows: Set[Tuple] = set()
    if atoms:
        partials = [
            {v: binding[v] for v in covered}
            for binding in iter_valuations(local, db)
        ]
    else:
        partials = [{}]
    uncovered = [v for v in columns if v not in covered]
    for partial in partials:
        if not uncovered:
            rows.add(tuple(partial[c] for c in columns))
            continue
        # Cross-extend uncovered connectors over the active domain.
        stack: List[Dict[CQVariable, object]] = [dict(partial)]
        for v in uncovered:
            stack = [
                {**binding, v: value} for binding in stack for value in domain
            ]
        for binding in stack:
            rows.add(tuple(binding[c] for c in columns))
    return columns, rows


def evaluate_boolean_treewidth(
    query: ConjunctiveQuery,
    db: Database,
    decomposition: Optional[TreeDecomposition] = None,
) -> bool:
    """Boolean evaluation through a tree decomposition.

    Polynomial for bounded width: bag relations have at most
    ``|D|^{w+1}`` rows, and the bag tree is reduced by upward semijoins
    exactly as in Yannakakis' algorithm.
    """
    from .yannakakis import semijoin

    if decomposition is None:
        decomposition = tree_decomposition(query)
    if not decomposition.verify(query):
        raise ValueError("invalid tree decomposition for this query")

    # Assign every atom to one bag containing its variables.
    assignment: Dict[int, List[Atom]] = {i: [] for i in range(len(decomposition.bags))}
    ground_atoms: List[Atom] = []
    for atom in query.atoms:
        if not atom.variables():
            ground_atoms.append(atom)
            continue
        for i, bag in enumerate(decomposition.bags):
            if atom.variables() <= bag:
                assignment[i].append(atom)
                break
        else:  # pragma: no cover - verify() guarantees coverage
            raise ValueError(f"atom {atom} fits in no bag")
    # Ground atoms are simple membership checks.
    for atom in ground_atoms:
        if tuple(atom.terms) not in db.rows(atom.relation):
            return False

    domain = sorted(db.active_domain(), key=repr)
    relations: Dict[int, Tuple[Tuple[CQVariable, ...], Set[Tuple]]] = {}
    for i, bag in enumerate(decomposition.bags):
        relations[i] = _bag_relation(query, db, bag, assignment[i], domain)
        if not relations[i][1]:
            return False

    # Root the bag tree at index len(bags)-1 (the last-eliminated bag)
    # and semijoin upward in elimination order (children first).
    children: Dict[int, List[int]] = {i: [] for i in relations}
    for a, b in decomposition.edges:
        children[b].append(a)  # a was eliminated before b ⇒ a is below b
    for i in range(len(decomposition.bags)):
        cols, rows = relations[i]
        for child in children[i]:
            ccols, crows = relations[child]
            rows = semijoin(cols, rows, ccols, crows)
        relations[i] = (cols, rows)
        if not rows:
            return False
    return True
