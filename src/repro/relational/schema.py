"""Relational schemas: relation names with fixed arities.

The relational substrate backs Section 2.4's correspondence between
simple RDF graphs and conjunctive queries: every predicate ``p`` of a
graph becomes a binary relation ``R_p``.  The substrate itself is
general (any arity) so the conjunctive-query machinery (GYO reduction,
Yannakakis) is usable — and testable — beyond the binary case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator

__all__ = ["Relation", "Schema"]


@dataclass(frozen=True, order=True)
class Relation:
    """A relation name with its arity."""

    name: str
    arity: int

    def __post_init__(self):
        if self.arity < 1:
            raise ValueError("arity must be positive")

    def __str__(self):
        return f"{self.name}/{self.arity}"


class Schema:
    """A set of relations, indexed by name."""

    def __init__(self, relations: Iterable[Relation] = ()):
        self._by_name: Dict[str, Relation] = {}
        for rel in relations:
            self.add(rel)

    def add(self, relation: Relation) -> None:
        existing = self._by_name.get(relation.name)
        if existing is not None and existing != relation:
            raise ValueError(
                f"conflicting arities for {relation.name}: "
                f"{existing.arity} vs {relation.arity}"
            )
        self._by_name[relation.name] = relation

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Relation:
        return self._by_name[name]

    def __iter__(self) -> Iterator[Relation]:
        return iter(sorted(self._by_name.values()))

    def __len__(self) -> int:
        return len(self._by_name)

    def __repr__(self):
        return f"Schema({sorted(self._by_name)})"
