"""Conjunctive queries over relational schemas.

A conjunctive query is a set of atoms ``R(t1, ..., tk)`` whose terms
are constants or variables, plus an (optionally empty) tuple of head
variables; Boolean queries have an empty head.  Section 2.4 associates
a Boolean CQ ``Q_G`` to every simple RDF graph ``G`` (blank nodes become
existential variables) — see :mod:`repro.relational.bridge`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, Tuple, Union

__all__ = ["CQVariable", "Atom", "ConjunctiveQuery"]


@dataclass(frozen=True, order=True)
class CQVariable:
    """An existential/head variable of a conjunctive query."""

    name: str

    def __str__(self):
        return f"${self.name}"


CQTerm = Union[CQVariable, Hashable]


@dataclass(frozen=True)
class Atom:
    """``R(t1, ..., tk)``: one conjunct."""

    relation: str
    terms: Tuple[CQTerm, ...]

    def variables(self) -> FrozenSet[CQVariable]:
        return frozenset(t for t in self.terms if isinstance(t, CQVariable))

    def arity(self) -> int:
        return len(self.terms)

    def __str__(self):
        inner = ", ".join(str(t) for t in self.terms)
        return f"{self.relation}({inner})"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query: atoms plus head variables (empty = Boolean)."""

    atoms: Tuple[Atom, ...]
    head: Tuple[CQVariable, ...] = ()

    def __post_init__(self):
        body_vars = self.variables()
        stray = [v for v in self.head if v not in body_vars]
        if stray:
            raise ValueError(f"head variables not in body: {stray}")

    def variables(self) -> FrozenSet[CQVariable]:
        out = set()
        for atom in self.atoms:
            out |= atom.variables()
        return frozenset(out)

    def is_boolean(self) -> bool:
        return not self.head

    def relations(self) -> FrozenSet[str]:
        return frozenset(a.relation for a in self.atoms)

    def __str__(self):
        head = ", ".join(str(v) for v in self.head)
        body = " ∧ ".join(str(a) for a in self.atoms)
        return f"({head}) ← {body}" if self.head else f"() ← {body}"
