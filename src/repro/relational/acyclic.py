"""Acyclicity of conjunctive queries: GYO reduction and join trees.

A conjunctive query is *acyclic* iff its hypergraph (one hyperedge per
atom, vertices = variables) reduces to nothing under GYO ear removal,
iff it has a join tree.  Section 2.4 uses this notion: a simple RDF
graph without blank-induced cycles yields an acyclic Boolean CQ, whose
evaluation — hence the entailment test — is polynomial [40].

This module builds the join tree that
:mod:`repro.relational.yannakakis` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .cq import Atom, ConjunctiveQuery

__all__ = ["JoinTree", "build_join_tree", "is_acyclic"]


@dataclass
class JoinTree:
    """A join tree: atoms as nodes, children grouped under parents.

    The defining property (checked by :meth:`verify`): for every
    variable, the atoms containing it form a connected subtree.
    """

    root: Atom
    children: Dict[Atom, List[Atom]] = field(default_factory=dict)

    def nodes(self) -> List[Atom]:
        out: List[Atom] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(self.children.get(node, ()))
        return out

    def postorder(self) -> List[Atom]:
        """Children before parents — the order Yannakakis' upward pass uses."""
        out: List[Atom] = []

        def visit(node: Atom):
            for child in self.children.get(node, ()):
                visit(child)
            out.append(node)

        visit(self.root)
        return out

    def parent_of(self, node: Atom) -> Optional[Atom]:
        for parent, kids in self.children.items():
            if node in kids:
                return parent
        return None

    def verify(self) -> bool:
        """Check the running-intersection (connected subtree) property."""
        nodes = self.nodes()
        variables = set()
        for atom in nodes:
            variables |= atom.variables()
        for var in variables:
            holders = {a for a in nodes if var in a.variables()}
            # BFS within holders starting from any one of them.
            start = next(iter(holders))
            seen = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                neighbours = list(self.children.get(node, ()))
                parent = self.parent_of(node)
                if parent is not None:
                    neighbours.append(parent)
                for n in neighbours:
                    if n in holders and n not in seen:
                        seen.add(n)
                        frontier.append(n)
            if seen != holders:
                return False
        return True


def build_join_tree(query: ConjunctiveQuery) -> Optional[JoinTree]:
    """A join tree of the query, or None when the query is cyclic.

    Classic ear removal: an atom ``A`` is an *ear* with witness ``B``
    when every variable ``A`` shares with the rest of the query also
    occurs in ``B``; remove ears (hanging each under its witness) until
    one atom remains.  Success ⟺ acyclicity (GYO).
    """
    atoms = list(dict.fromkeys(query.atoms))  # dedupe, keep order
    if not atoms:
        return None
    if len(atoms) == 1:
        return JoinTree(root=atoms[0])

    children: Dict[Atom, List[Atom]] = {}
    remaining = list(atoms)
    removed_under: List[Tuple[Atom, Atom]] = []  # (ear, witness)

    progress = True
    while len(remaining) > 1 and progress:
        progress = False
        for ear in list(remaining):
            others = [a for a in remaining if a is not ear]
            shared = set()
            other_vars = set()
            for a in others:
                other_vars |= a.variables()
            shared = ear.variables() & other_vars
            witness = None
            for b in others:
                if shared <= b.variables():
                    witness = b
                    break
            if witness is not None:
                remaining.remove(ear)
                removed_under.append((ear, witness))
                progress = True
                break
    if len(remaining) != 1:
        return None

    root = remaining[0]
    tree = JoinTree(root=root, children=children)
    # Attach ears in reverse removal order so witnesses are in the tree.
    placed = {root}
    pending = list(reversed(removed_under))
    while pending:
        advanced = False
        for pair in list(pending):
            ear, witness = pair
            if witness in placed:
                children.setdefault(witness, []).append(ear)
                placed.add(ear)
                pending.remove(pair)
                advanced = True
        if not advanced:  # pragma: no cover - witnesses always placeable
            return None
    return tree


def is_acyclic(query: ConjunctiveQuery) -> bool:
    """Is the query's hypergraph (GYO-)acyclic?"""
    return build_join_tree(query) is not None
