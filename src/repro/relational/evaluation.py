"""Naive conjunctive-query evaluation (backtracking join).

This is the general-purpose evaluator: NP-complete in combined
complexity (Theorem 6.1's query-complexity half reduces 3SAT to it),
polynomial in data complexity for a fixed query [42].  The acyclic
special case gets the dedicated polynomial algorithm in
:mod:`repro.relational.yannakakis`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Tuple

from .cq import Atom, CQVariable, ConjunctiveQuery
from .database import Database

__all__ = ["iter_valuations", "evaluate", "evaluate_boolean"]

Binding = Dict[CQVariable, object]


def _candidates(db: Database, atom: Atom, binding: Binding) -> Iterator[Tuple]:
    wanted = []
    for term in atom.terms:
        if isinstance(term, CQVariable):
            wanted.append(binding.get(term))
        else:
            wanted.append(term)
    for row in db.rows(atom.relation):
        if len(row) != len(wanted):
            continue
        if all(w is None or w == r for w, r in zip(wanted, row)):
            yield row


def iter_valuations(query: ConjunctiveQuery, db: Database) -> Iterator[Binding]:
    """All satisfying assignments of the query's variables.

    Backtracking with a fail-first atom order (fewest candidates under
    the current partial binding), mirroring the RDF homomorphism solver.
    """
    atoms = list(query.atoms)

    def backtrack(todo: List[Atom], binding: Binding) -> Iterator[Binding]:
        if not todo:
            yield dict(binding)
            return
        best_i, best_count = None, None
        for i, atom in enumerate(todo):
            n = sum(1 for _ in _candidates(db, atom, binding))
            if best_count is None or n < best_count:
                best_i, best_count = i, n
                if n == 0:
                    return
        atom = todo[best_i]
        rest = todo[:best_i] + todo[best_i + 1 :]
        for row in sorted(_candidates(db, atom, binding), key=repr):
            bound = []
            ok = True
            for term, value in zip(atom.terms, row):
                if isinstance(term, CQVariable):
                    seen = binding.get(term)
                    if seen is None:
                        binding[term] = value
                        bound.append(term)
                    elif seen != value:
                        ok = False
                        break
            if ok:
                yield from backtrack(rest, binding)
            for v in bound:
                del binding[v]

    yield from backtrack(atoms, {})


def evaluate(query: ConjunctiveQuery, db: Database) -> FrozenSet[Tuple]:
    """The answer relation: head-variable projections of all valuations."""
    out = set()
    for binding in iter_valuations(query, db):
        out.add(tuple(binding[v] for v in query.head))
    return frozenset(out)


def evaluate_boolean(query: ConjunctiveQuery, db: Database) -> bool:
    """``D ⊨ Q`` for Boolean Q: some valuation exists."""
    for _binding in iter_valuations(query, db):
        return True
    return False
