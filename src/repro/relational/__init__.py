"""Relational substrate: conjunctive queries, acyclicity, Yannakakis.

Backs the Section 2.4 correspondence between simple RDF entailment and
Boolean conjunctive query evaluation, including the polynomial
special case for blank-acyclic graphs.
"""

from .acyclic import JoinTree, build_join_tree, is_acyclic
from .bridge import (
    blank_treewidth_upper_bound,
    graph_to_boolean_cq,
    graph_to_database,
    simple_entails_acyclic,
    simple_entails_treewidth,
    simple_entails_via_cq,
)
from .cq import Atom, CQVariable, ConjunctiveQuery
from .database import Database
from .evaluation import evaluate, evaluate_boolean, iter_valuations
from .schema import Relation, Schema
from .treewidth import (
    TreeDecomposition,
    evaluate_boolean_treewidth,
    exact_treewidth,
    min_fill_order,
    primal_graph,
    tree_decomposition,
    treewidth_upper_bound,
)
from .yannakakis import evaluate_acyclic, evaluate_boolean_acyclic, semijoin

__all__ = [
    "Atom",
    "CQVariable",
    "ConjunctiveQuery",
    "Database",
    "JoinTree",
    "Relation",
    "Schema",
    "TreeDecomposition",
    "blank_treewidth_upper_bound",
    "build_join_tree",
    "evaluate",
    "evaluate_acyclic",
    "evaluate_boolean",
    "evaluate_boolean_acyclic",
    "evaluate_boolean_treewidth",
    "exact_treewidth",
    "graph_to_boolean_cq",
    "graph_to_database",
    "is_acyclic",
    "iter_valuations",
    "min_fill_order",
    "primal_graph",
    "semijoin",
    "simple_entails_acyclic",
    "simple_entails_treewidth",
    "simple_entails_via_cq",
    "tree_decomposition",
    "treewidth_upper_bound",
]
