"""Relational database instances: finite sets of tuples per relation.

Instances are the targets of conjunctive-query evaluation
(:mod:`repro.relational.evaluation`, :mod:`repro.relational.yannakakis`).
The active domain may contain arbitrary hashable values; Section 2.4's
``D_G`` construction puts RDF terms (including blank nodes) in it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Set, Tuple

from .schema import Relation, Schema

__all__ = ["Database"]

Value = Hashable
Row = Tuple[Value, ...]


class Database:
    """A finite relational instance."""

    def __init__(self):
        self._schema = Schema()
        self._tables: Dict[str, Set[Row]] = {}

    @property
    def schema(self) -> Schema:
        return self._schema

    def add(self, relation_name: str, row: Iterable[Value]) -> None:
        """Insert one tuple, registering the relation on first use."""
        row = tuple(row)
        self._schema.add(Relation(relation_name, len(row)))
        self._tables.setdefault(relation_name, set()).add(row)

    def rows(self, relation_name: str) -> FrozenSet[Row]:
        """All tuples of a relation (empty if unknown)."""
        return frozenset(self._tables.get(relation_name, ()))

    def relations(self) -> Iterator[Relation]:
        return iter(self._schema)

    def active_domain(self) -> FrozenSet[Value]:
        out: Set[Value] = set()
        for rows in self._tables.values():
            for row in rows:
                out.update(row)
        return frozenset(out)

    def size(self) -> int:
        """Total number of tuples."""
        return sum(len(rows) for rows in self._tables.values())

    def __len__(self) -> int:
        return self.size()

    def __repr__(self):
        parts = ", ".join(
            f"{name}:{len(rows)}" for name, rows in sorted(self._tables.items())
        )
        return f"Database({parts})"
