"""Yannakakis' algorithm for acyclic conjunctive queries [40].

For Boolean acyclic CQs the algorithm is a single bottom-up semijoin
pass over a join tree: each node's candidate tuple set is filtered to
those joinable with every (already-reduced) child; the query holds iff
the root ends up non-empty.  Total time is polynomial in query +
database size — this is the engine behind the polynomial entailment
test for blank-acyclic RDF graphs (Section 2.4, exercised by benchmark
E5).

Non-Boolean heads are supported through the standard full reducer
(bottom-up then top-down semijoins) followed by joins along the tree,
projecting early onto head + connecting variables.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .acyclic import JoinTree, build_join_tree
from .cq import Atom, CQVariable, ConjunctiveQuery
from .database import Database

__all__ = ["evaluate_boolean_acyclic", "evaluate_acyclic", "semijoin"]

Row = Tuple
VarTuple = Tuple[CQVariable, ...]


def _atom_relation(db: Database, atom: Atom) -> Tuple[VarTuple, Set[Row]]:
    """The atom's candidate bindings as (variable columns, rows).

    Selects rows compatible with the atom's constants and repeated
    variables, projecting to one column per distinct variable (in first
    occurrence order).
    """
    columns: List[CQVariable] = []
    for term in atom.terms:
        if isinstance(term, CQVariable) and term not in columns:
            columns.append(term)
    rows: Set[Row] = set()
    for row in db.rows(atom.relation):
        if len(row) != len(atom.terms):
            continue
        binding: Dict[CQVariable, object] = {}
        ok = True
        for term, value in zip(atom.terms, row):
            if isinstance(term, CQVariable):
                if term in binding and binding[term] != value:
                    ok = False
                    break
                binding[term] = value
            elif term != value:
                ok = False
                break
        if ok:
            rows.add(tuple(binding[c] for c in columns))
    return tuple(columns), rows


def semijoin(
    left_cols: VarTuple,
    left_rows: Set[Row],
    right_cols: VarTuple,
    right_rows: Set[Row],
) -> Set[Row]:
    """``left ⋉ right``: the left rows joinable with some right row."""
    shared = [c for c in left_cols if c in right_cols]
    if not shared:
        return set(left_rows) if right_rows else set()
    left_idx = [left_cols.index(c) for c in shared]
    right_idx = [right_cols.index(c) for c in shared]
    keys = {tuple(r[i] for i in right_idx) for r in right_rows}
    return {r for r in left_rows if tuple(r[i] for i in left_idx) in keys}


def evaluate_boolean_acyclic(
    query: ConjunctiveQuery, db: Database, tree: Optional[JoinTree] = None
) -> bool:
    """``D ⊨ Q`` for an acyclic Boolean query, in polynomial time.

    Raises :class:`ValueError` if the query is cyclic and no tree is
    supplied.
    """
    if tree is None:
        tree = build_join_tree(query)
        if tree is None:
            raise ValueError("query is cyclic; use the general evaluator")
    relations: Dict[Atom, Tuple[VarTuple, Set[Row]]] = {
        atom: _atom_relation(db, atom) for atom in tree.nodes()
    }
    for node in tree.postorder():
        cols, rows = relations[node]
        for child in tree.children.get(node, ()):
            ccols, crows = relations[child]
            rows = semijoin(cols, rows, ccols, crows)
        relations[node] = (cols, rows)
        if not rows:
            return False
    _root_cols, root_rows = relations[tree.root]
    return bool(root_rows)


def _join(
    left_cols: VarTuple, left_rows: Set[Row], right_cols: VarTuple, right_rows: Set[Row]
) -> Tuple[VarTuple, Set[Row]]:
    """Natural join on shared variables."""
    shared = [c for c in left_cols if c in right_cols]
    out_cols = tuple(left_cols) + tuple(c for c in right_cols if c not in left_cols)
    right_extra_idx = [i for i, c in enumerate(right_cols) if c not in left_cols]
    left_idx = [left_cols.index(c) for c in shared]
    right_idx = [right_cols.index(c) for c in shared]
    index: Dict[Row, List[Row]] = {}
    for r in right_rows:
        index.setdefault(tuple(r[i] for i in right_idx), []).append(r)
    rows: Set[Row] = set()
    for l in left_rows:
        for r in index.get(tuple(l[i] for i in left_idx), ()):
            rows.add(tuple(l) + tuple(r[i] for i in right_extra_idx))
    return out_cols, rows


def evaluate_acyclic(
    query: ConjunctiveQuery, db: Database, tree: Optional[JoinTree] = None
) -> FrozenSet[Row]:
    """Full Yannakakis evaluation of an acyclic query with a head.

    Bottom-up and top-down semijoin passes (the full reducer) followed
    by bottom-up joins with early projection to head ∪ connecting
    variables; output-polynomial.
    """
    if tree is None:
        tree = build_join_tree(query)
        if tree is None:
            raise ValueError("query is cyclic; use the general evaluator")
    relations: Dict[Atom, Tuple[VarTuple, Set[Row]]] = {
        atom: _atom_relation(db, atom) for atom in tree.nodes()
    }
    # Upward semijoins.
    for node in tree.postorder():
        cols, rows = relations[node]
        for child in tree.children.get(node, ()):
            ccols, crows = relations[child]
            rows = semijoin(cols, rows, ccols, crows)
        relations[node] = (cols, rows)
    # Downward semijoins.
    for node in reversed(tree.postorder()):
        cols, rows = relations[node]
        for child in tree.children.get(node, ()):
            ccols, crows = relations[child]
            relations[child] = (ccols, semijoin(ccols, crows, cols, rows))
    # Bottom-up joins with projection.
    head = set(query.head)

    def needed_above(node: Atom) -> Set[CQVariable]:
        parent = tree.parent_of(node)
        keep: Set[CQVariable] = set(head)
        while parent is not None:
            keep |= parent.variables()
            parent = tree.parent_of(parent)
        return keep

    def combine(node: Atom) -> Tuple[VarTuple, Set[Row]]:
        cols, rows = relations[node]
        for child in tree.children.get(node, ()):
            ccols, crows = combine(child)
            cols, rows = _join(cols, rows, ccols, crows)
        keep = (head | node.variables()) & set(cols)
        keep |= needed_above(node) & set(cols)
        keep_cols = tuple(c for c in cols if c in keep)
        idx = [cols.index(c) for c in keep_cols]
        return keep_cols, {tuple(r[i] for i in idx) for r in rows}

    cols, rows = combine(tree.root)
    missing = [v for v in query.head if v not in cols]
    if missing:
        # Head variables absent from the data (empty result) or the
        # query was Boolean: project what exists.
        return frozenset() if rows == set() else frozenset({()})
    idx = [cols.index(v) for v in query.head]
    return frozenset(tuple(r[i] for i in idx) for r in rows)
