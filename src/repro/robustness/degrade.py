"""Degraded three-valued answers for the NP-hard predicates.

A budget trip inside ``entails``/``is_lean``/``core`` surfaces as a
:class:`~repro.robustness.guard.BudgetExceeded` exception — correct for
callers that treat exhaustion as failure, hostile for callers that just
want *an answer within this envelope*.  The ``*_within`` functions here
wrap each hard predicate in its own :func:`~repro.robustness.guard.guarded`
scope and convert a trip into a :class:`TriState`:

* ``PROVED`` / ``REFUTED`` — the search finished; the answer is exact
  and identical to the unbudgeted API's;
* ``UNKNOWN(reason, evidence)`` — the budget tripped first.  ``reason``
  names the limit (``deadline``/``steps``/``results``/``cancelled``)
  and ``evidence`` carries what the search had established: steps and
  wall-clock consumed, plus predicate-specific partial results (e.g.
  the best shrunken graph ``core_within`` had reached).

The asymmetry between the three predicates mirrors the paper's
complexity landscape: entailment is NP-complete (Theorems 2.9/2.10, a
*positive* witness ends the search), leanness is coNP-complete
(Theorem 3.12.1, a *counterexample* ends it), and the core is
DP-complete to verify (Theorem 3.12.2) so ``core_within`` reports the
partially-shrunken — still equivalent — graph when interrupted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from ..core.graph import RDFGraph
from ..core.homomorphism import find_proper_endomorphism
from ..core.maps import Map, identity_map
from ..minimize.lean import non_lean_witness
from ..obs import OBS
from ..semantics.entailment import entails, simple_entails
from .guard import Budget, BudgetExceeded, ExecutionGuard, guarded

__all__ = [
    "PROVED",
    "REFUTED",
    "UNKNOWN",
    "TriState",
    "core_within",
    "entails_within",
    "is_lean_within",
]

PROVED = "PROVED"
REFUTED = "REFUTED"
UNKNOWN = "UNKNOWN"


@dataclass(frozen=True)
class TriState:
    """A three-valued answer from a budget-governed predicate.

    ``bool(answer)`` is safe only on decided answers; on UNKNOWN it
    raises instead of silently picking a side, so code that forgot to
    handle degradation fails loudly rather than wrongly.
    """

    status: str
    reason: Optional[str] = None
    evidence: Mapping[str, Any] = field(default_factory=dict)

    @property
    def proved(self) -> bool:
        return self.status == PROVED

    @property
    def refuted(self) -> bool:
        return self.status == REFUTED

    @property
    def unknown(self) -> bool:
        return self.status == UNKNOWN

    @property
    def known(self) -> bool:
        return self.status != UNKNOWN

    def __bool__(self) -> bool:
        if self.status == UNKNOWN:
            raise ValueError(
                f"answer is UNKNOWN ({self.reason}); "
                "check .known before truth-testing a TriState"
            )
        return self.status == PROVED

    def __repr__(self) -> str:
        if self.status == UNKNOWN:
            return f"TriState(UNKNOWN, reason={self.reason!r})"
        return f"TriState({self.status})"


def _decided(verdict: bool, guard: ExecutionGuard, **extra: Any) -> TriState:
    evidence = guard.evidence()
    evidence.update(extra)
    return TriState(PROVED if verdict else REFUTED, evidence=evidence)


def _degraded(
    err: BudgetExceeded, guard: ExecutionGuard, **extra: Any
) -> TriState:
    if OBS.enabled:
        OBS.registry.inc("guard.degraded_answers")
    evidence = guard.evidence()
    evidence["message"] = str(err)
    evidence.update(extra)
    return TriState(UNKNOWN, reason=err.reason, evidence=evidence)


def entails_within(
    g1: RDFGraph,
    g2: RDFGraph,
    budget: Optional[Budget] = None,
    simple: bool = False,
) -> TriState:
    """``G1 ⊨ G2`` within *budget*; UNKNOWN if the budget trips first.

    With ``simple=True`` decides simple entailment (map ``G2 → G1``,
    Theorem 2.8.2); otherwise full RDFS entailment through the closure
    (Theorem 2.8.1).  An unlimited (or None) budget returns exactly
    what :func:`repro.semantics.entails` would.
    """
    with guarded(budget) as guard:
        try:
            verdict = simple_entails(g1, g2) if simple else entails(g1, g2)
        except BudgetExceeded as err:
            return _degraded(err, guard)
        return _decided(verdict, guard)


def is_lean_within(
    graph: RDFGraph, budget: Optional[Budget] = None
) -> TriState:
    """Is ``G`` lean, within *budget*?  (coNP-complete, Theorem 3.12.1.)

    REFUTED answers carry the proper endomorphism as
    ``evidence["witness"]`` — the NP certificate of non-leanness.
    """
    with guarded(budget) as guard:
        try:
            witness = non_lean_witness(graph)
        except BudgetExceeded as err:
            return _degraded(err, guard)
        if witness is None:
            return _decided(True, guard)
        return _decided(False, guard, witness=witness)


def core_within(
    graph: RDFGraph, budget: Optional[Budget] = None
) -> TriState:
    """Compute ``core(G)`` within *budget* (DP-complete, Theorem 3.12.2).

    PROVED: ``evidence["graph"]`` is the core and
    ``evidence["retraction"]`` the composed map ``G → core(G)``.
    UNKNOWN: ``evidence["graph"]`` is the best shrunken graph reached so
    far — every intermediate ``μ…μ(G)`` is still equivalent to ``G``
    (Theorem 3.10's invariant), so the partial answer is usable, just
    not guaranteed lean.  ``evidence["iterations"]`` counts the proper
    endomorphisms already applied.
    """
    with guarded(budget) as guard:
        current = graph
        retraction: Map = identity_map()
        iterations = 0
        try:
            while True:
                guard.tick()
                mu = find_proper_endomorphism(current)
                if mu is None:
                    break
                current = mu.apply_graph(current)
                retraction = mu.compose(retraction)
                iterations += 1
        except BudgetExceeded as err:
            return _degraded(
                err, guard, graph=current, iterations=iterations
            )
        return _decided(
            True, guard, graph=current, retraction=retraction,
            iterations=iterations,
        )
