"""Deterministic fault injection for the store/engine/closure stack.

The exception-safety guarantees of :class:`repro.store.TripleStore`
("any failure mid-maintenance leaves the store in a consistent state")
are only worth committing if a test can *force* a failure at every
interesting point of the write path.  This module provides that forcing
handle, mirroring the obs switchboard idiom: a process-global
:data:`FAULTS` singleton, **off by default**, consulted on hot paths
behind a single ``if FAULTS.enabled:`` test so production runs pay one
attribute read per site.

Instrumented modules declare *named injection sites*::

    if FAULTS.enabled:
        FAULTS.hit("store.flush.retract")

A test arms a site to raise on its Nth hit::

    with FAULTS.injected("store.flush.retract", on_hit=2):
        store.add_all(triples)          # boom, mid-DRed
    assert store.dataset() == reference  # atomicity held

Faults are deterministic (the Nth dynamic execution of the site, no
randomness), so every failure a chaos test finds replays exactly.  The
injected exception class is configurable — ``KeyboardInterrupt`` is the
interesting non-``Exception`` case for interrupt-safety tests.  Hit
tallies report through the obs registry (``faultinject.hit.<site>``)
while instrumentation is on.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Type

from ..obs import OBS

__all__ = ["FAULTS", "FaultInjector", "InjectedFault", "SITES"]


class InjectedFault(RuntimeError):
    """The default exception raised by an armed injection site."""


#: Every named injection site in the codebase.  ``arm`` validates
#: against this list so a typo'd site name fails loudly instead of
#: silently never firing; chaos tests iterate it to prove coverage.
SITES: Tuple[str, ...] = (
    # store write path
    "store.add.apply",
    "store.add_all.batch",
    "store.remove.apply",
    "store.clear.graph",
    "store.commit",
    # incremental closure maintenance (DRed flush)
    "store.flush.begin",
    "store.flush.retract",
    "store.flush.extend",
    "store.materialize",
    # datalog engine
    "engine.round",
    "engine.dred.overdelete",
    "engine.dred.rederive",
    # staged closure kernel
    "closure.round",
    # durable backend I/O (crash windows on the persistence path)
    "durable.wal.post_write",
    "durable.wal.pre_fsync",
    "durable.terms.post_write",
    "durable.terms.pre_fsync",
    "durable.checkpoint.mid_compaction",
    "durable.checkpoint.pre_rename",
    # ingest spill I/O
    "ingest.spill.write",
)


class FaultInjector:
    """Arms named sites to raise deterministically on their Nth hit."""

    __slots__ = ("enabled", "_armed", "hits")

    def __init__(self):
        self.enabled = False
        #: site -> (hit number to fire on, exception class, on_fire hook)
        self._armed: Dict[
            str,
            Tuple[int, Type[BaseException], Optional[Callable[[str], None]]],
        ] = {}
        #: site -> dynamic hit count since the last reset
        self.hits: Dict[str, int] = {}

    def arm(
        self,
        site: str,
        on_hit: int = 1,
        exc: Type[BaseException] = InjectedFault,
        on_fire: Optional[Callable[[str], None]] = None,
    ) -> None:
        """Make *site* raise ``exc`` on its ``on_hit``-th execution.

        *on_fire* runs at the firing site, after the hit is recorded
        but **before** the exception propagates — the crash–reopen
        tests use it to photograph the on-disk state at the exact
        instant of the simulated crash, before any in-process
        exception handler gets a chance to repair it.
        """
        if site not in SITES:
            raise ValueError(f"unknown injection site: {site!r}")
        if on_hit < 1:
            raise ValueError("on_hit must be >= 1")
        self._armed[site] = (on_hit, exc, on_fire)
        self.enabled = True

    def disarm(self, site: str) -> None:
        self._armed.pop(site, None)
        self.enabled = bool(self._armed)

    def reset(self) -> None:
        """Disarm everything and clear hit tallies."""
        self._armed.clear()
        self.hits.clear()
        self.enabled = False

    def hit(self, site: str) -> None:
        """Record one execution of *site*; raise if it is armed for it.

        Callers gate on ``FAULTS.enabled`` so this is never reached in
        an unarmed process.
        """
        count = self.hits.get(site, 0) + 1
        self.hits[site] = count
        if OBS.enabled:
            OBS.registry.inc(f"faultinject.hit.{site}")
        armed = self._armed.get(site)
        if armed is not None and count == armed[0]:
            exc, on_fire = armed[1], armed[2]
            if OBS.enabled:
                OBS.registry.inc(f"faultinject.raised.{site}")
            if on_fire is not None:
                on_fire(site)
            raise exc(f"injected fault at {site!r} (hit {count})")

    @contextmanager
    def injected(
        self,
        site: str,
        on_hit: int = 1,
        exc: Type[BaseException] = InjectedFault,
        on_fire: Optional[Callable[[str], None]] = None,
    ) -> Iterator["FaultInjector"]:
        """Arm *site* for the block, then fully reset the injector."""
        self.arm(site, on_hit=on_hit, exc=exc, on_fire=on_fire)
        try:
            yield self
        finally:
            self.reset()

    def describe(self) -> List[str]:
        return [
            f"{site} -> {exc.__name__} on hit {n}"
            for site, (n, exc, _) in sorted(self._armed.items())
        ]

    def __repr__(self) -> str:
        state = "; ".join(self.describe()) if self._armed else "disarmed"
        return f"FaultInjector({state})"


#: Process-global injector, off by default (same idiom as ``OBS``).
FAULTS = FaultInjector()
