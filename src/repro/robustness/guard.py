"""Execution budgets and cooperative cancellation for the hard searches.

The paper proves the hot decision problems intractable in the worst
case — simple and RDFS entailment are NP-complete (Theorems 2.9/2.10),
leanness is coNP-complete and core identification DP-complete
(Theorem 3.12) — so every search in this library (planner backtracking,
closure fixpoints, Datalog rounds, lean/core witness hunts) can in
principle run for an unbounded amount of time on one adversarial input.
This module bounds them:

* :class:`Budget` — a declarative resource envelope: wall-clock
  deadline, step budget (backtracks + derivations + emissions), result
  cap, and an optional :class:`CancellationToken`;
* :class:`ExecutionGuard` — the runtime object the hot loops consult.
  Checks are **amortized**: :meth:`ExecutionGuard.tick` is an int add
  plus one compare, and the expensive wall-clock / token reads only run
  every :attr:`ExecutionGuard.stride` accumulated steps, so a guard
  with an unlimited budget stays within noise of an unguarded run;
* :func:`guarded` — installs a guard as the *ambient* guard for a
  ``with`` block.  Instrumented loops read :func:`current_guard` once
  on entry; when no guard is installed (the default) their only cost is
  one ``is not None`` test per step.

On a budget trip the guard raises the matching
:class:`BudgetExceeded` subclass through the search stack.  Callers
that want a degraded three-valued answer instead of an exception use
the ``*_within`` APIs of :mod:`repro.robustness.degrade`.

Trips and check counts report through the global obs registry
(``guard.trips.<reason>``, ``guard.checks``, ``guard.steps``) while
instrumentation is on.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..obs import OBS

__all__ = [
    "Budget",
    "BudgetExceeded",
    "CancellationToken",
    "DeadlineExceeded",
    "ExecutionGuard",
    "OperationCancelled",
    "ResultBudgetExceeded",
    "StepBudgetExceeded",
    "current_guard",
    "guarded",
    "DEFAULT_STRIDE",
]

#: How many steps accumulate between full budget checks.  Small enough
#: that a 10 ms deadline is honoured well within 2x (one stride of
#: planner/fixpoint steps is microseconds), large enough that the
#: per-step cost of a guarded run is an int add.
DEFAULT_STRIDE = 256


class BudgetExceeded(RuntimeError):
    """Base of the budget-trip hierarchy; ``reason`` names the limit."""

    reason = "budget"

    def __init__(self, message: str, guard: Optional["ExecutionGuard"] = None):
        super().__init__(message)
        self.guard = guard


class DeadlineExceeded(BudgetExceeded):
    """The wall-clock deadline passed."""

    reason = "deadline"


class StepBudgetExceeded(BudgetExceeded):
    """The step budget (backtracks/derivations/emissions) ran out."""

    reason = "steps"


class ResultBudgetExceeded(BudgetExceeded):
    """More results were produced than the budget allows."""

    reason = "results"


class OperationCancelled(BudgetExceeded):
    """The attached :class:`CancellationToken` was cancelled."""

    reason = "cancelled"


class CancellationToken:
    """Cooperative cancellation: another party flips it, guards notice.

    ``cancel()`` is a single attribute write, safe to call from signal
    handlers or other threads; the guard observes it at its next
    amortized check.
    """

    __slots__ = ("_cancelled",)

    def __init__(self):
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled


@dataclass(frozen=True)
class Budget:
    """A declarative resource envelope for one governed computation.

    All limits default to "unlimited"; a default-constructed budget
    installs a guard whose results are identical to an unguarded run
    (used by the guard-overhead benchmark A/B).
    """

    deadline_ms: Optional[float] = None
    max_steps: Optional[int] = None
    max_results: Optional[int] = None
    token: Optional[CancellationToken] = None

    @classmethod
    def unlimited(cls) -> "Budget":
        return cls()

    @property
    def is_unlimited(self) -> bool:
        return (
            self.deadline_ms is None
            and self.max_steps is None
            and self.max_results is None
            and self.token is None
        )

    def describe(self) -> str:
        parts = []
        if self.deadline_ms is not None:
            parts.append(f"deadline={self.deadline_ms:g}ms")
        if self.max_steps is not None:
            parts.append(f"max_steps={self.max_steps}")
        if self.max_results is not None:
            parts.append(f"max_results={self.max_results}")
        if self.token is not None:
            parts.append("cancellable")
        return ", ".join(parts) if parts else "unlimited"


class ExecutionGuard:
    """The runtime budget enforcer hot loops consult.

    Loops call :meth:`tick` per unit of work (a candidate tried, a fact
    derived, a triple emitted); the full check — step budget, wall
    clock, cancellation token — runs only when ``stride`` steps have
    accumulated since the last one, except that a finite step budget
    schedules its own exact boundary so it never overshoots by more
    than the final tick's charge.
    """

    __slots__ = (
        "budget",
        "stride",
        "steps",
        "results",
        "checks",
        "tripped",
        "started_at",
        "_deadline_at",
        "_max_steps",
        "_max_results",
        "_token",
        "_next_check",
    )

    def __init__(self, budget: Budget, stride: int = DEFAULT_STRIDE):
        self.budget = budget
        self.stride = max(1, int(stride))
        self.steps = 0
        self.results = 0
        self.checks = 0
        self.tripped: Optional[str] = None
        self.started_at = time.perf_counter()
        self._deadline_at = (
            None
            if budget.deadline_ms is None
            else self.started_at + budget.deadline_ms / 1e3
        )
        self._max_steps = budget.max_steps
        self._max_results = budget.max_results
        self._token = budget.token
        self._next_check = self.stride
        if self._max_steps is not None:
            self._next_check = min(self._next_check, self._max_steps + 1)

    # -- hot path --------------------------------------------------------

    def tick(self, n: int = 1) -> None:
        """Charge *n* steps; runs the full check every ``stride`` steps."""
        self.steps = s = self.steps + n
        if s >= self._next_check:
            self.check()

    def note_result(self, n: int = 1) -> None:
        """Count *n* produced results against the result cap."""
        self.results = r = self.results + n
        if self._max_results is not None and r > self._max_results:
            self._trip(
                ResultBudgetExceeded,
                f"result budget of {self._max_results} exceeded "
                f"({r} results produced)",
            )

    # -- checks ----------------------------------------------------------

    def check(self) -> None:
        """Run the full budget check now (unamortized)."""
        self.checks += 1
        s = self.steps
        next_check = s + self.stride
        if self._max_steps is not None:
            if s > self._max_steps:
                self._trip(
                    StepBudgetExceeded,
                    f"step budget of {self._max_steps} exhausted "
                    f"({s} steps charged)",
                )
            next_check = min(next_check, self._max_steps + 1)
        self._next_check = next_check
        if (
            self._deadline_at is not None
            and time.perf_counter() >= self._deadline_at
        ):
            self._trip(
                DeadlineExceeded,
                f"deadline of {self.budget.deadline_ms:g} ms exceeded "
                f"after {self.elapsed_ms():.3f} ms",
            )
        token = self._token
        if token is not None and token.cancelled:
            self._trip(OperationCancelled, "operation cancelled via token")

    def _trip(self, exc_cls, message: str) -> None:
        self.tripped = exc_cls.reason
        if OBS.enabled:
            OBS.registry.inc(f"guard.trips.{exc_cls.reason}")
        raise exc_cls(message, guard=self)

    # -- introspection ---------------------------------------------------

    def elapsed_ms(self) -> float:
        return (time.perf_counter() - self.started_at) * 1e3

    def evidence(self) -> Dict[str, object]:
        """What the computation had consumed when asked (partial
        evidence attached to degraded UNKNOWN answers)."""
        return {
            "steps": self.steps,
            "results": self.results,
            "checks": self.checks,
            "elapsed_ms": round(self.elapsed_ms(), 3),
            "budget": self.budget.describe(),
        }

    def __repr__(self) -> str:
        state = self.tripped if self.tripped else "live"
        return (
            f"ExecutionGuard({self.budget.describe()}, steps={self.steps}, "
            f"{state})"
        )


#: The ambient guard stack.  Hot modules read the top once per search
#: via :func:`current_guard`; an empty stack (the default) means the
#: per-step cost of governance is a single ``is not None`` test.
_STACK: List[ExecutionGuard] = []


def current_guard() -> Optional[ExecutionGuard]:
    """The innermost installed guard, or None when execution is free."""
    return _STACK[-1] if _STACK else None


@contextmanager
def guarded(
    budget: Optional[Budget] = None, stride: int = DEFAULT_STRIDE
) -> Iterator[ExecutionGuard]:
    """Install an :class:`ExecutionGuard` as ambient for the block.

    Nests: an inner ``guarded`` shadows the outer one for its extent
    (each governed API call owns its own envelope).  On exit the
    guard's check/step tallies flush into the obs registry when
    instrumentation is on.
    """
    guard = ExecutionGuard(budget if budget is not None else Budget(), stride)
    _STACK.append(guard)
    try:
        yield guard
    finally:
        _STACK.pop()
        if OBS.enabled:
            reg = OBS.registry
            reg.inc("guard.checks", guard.checks)
            reg.inc("guard.steps", guard.steps)
