"""Execution governance: budgets, cancellation, degraded answers, faults.

Three pieces, layered so the rest of the stack can depend on the light
parts without import cycles:

* :mod:`repro.robustness.guard` — ``Budget``/``ExecutionGuard``, the
  ``BudgetExceeded`` hierarchy, and the ambient :func:`guarded` scope.
  Depends only on :mod:`repro.obs`; the hot modules (planner, closure,
  datalog engine, store) import it directly.
* :mod:`repro.robustness.faultinject` — the process-global ``FAULTS``
  injector with named sites, for deterministic chaos testing of the
  store's exception-safety guarantees.  Also obs-only.
* :mod:`repro.robustness.degrade` — ``TriState`` and the ``*_within``
  predicate wrappers.  This one imports the semantics/minimize layers,
  which themselves import the guard — so it loads lazily (PEP 562)
  to keep ``repro.core.planner -> repro.robustness`` acyclic.
"""

from .faultinject import FAULTS, FaultInjector, InjectedFault, SITES
from .guard import (
    DEFAULT_STRIDE,
    Budget,
    BudgetExceeded,
    CancellationToken,
    DeadlineExceeded,
    ExecutionGuard,
    OperationCancelled,
    ResultBudgetExceeded,
    StepBudgetExceeded,
    current_guard,
    guarded,
)

__all__ = [
    "Budget",
    "BudgetExceeded",
    "CancellationToken",
    "DEFAULT_STRIDE",
    "DeadlineExceeded",
    "ExecutionGuard",
    "FAULTS",
    "FaultInjector",
    "InjectedFault",
    "OperationCancelled",
    "PROVED",
    "REFUTED",
    "ResultBudgetExceeded",
    "SITES",
    "StepBudgetExceeded",
    "TriState",
    "UNKNOWN",
    "core_within",
    "current_guard",
    "entails_within",
    "guarded",
    "is_lean_within",
]

#: Names served lazily from :mod:`repro.robustness.degrade` (PEP 562) —
#: degrade imports the semantics layer, which imports the planner,
#: which imports this package's guard; eager import here would cycle.
_DEGRADE_EXPORTS = frozenset(
    {
        "PROVED",
        "REFUTED",
        "UNKNOWN",
        "TriState",
        "core_within",
        "entails_within",
        "is_lean_within",
    }
)


def __getattr__(name):
    if name in _DEGRADE_EXPORTS:
        from . import degrade

        return getattr(degrade, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def __dir__():
    return sorted(__all__)
