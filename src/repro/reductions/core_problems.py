"""Graph-core problems and their RDF encodings (Theorem 3.12).

Hell and Nešetřil's *Core* problem (is there a homomorphism of ``H`` to
a proper subgraph?) is NP-complete; *Core Identification* (is ``H′``
the core of ``H``?) is DP-complete [15].  Encoded as RDF:

* ``H`` maps to a proper subgraph  ⟺  ``enc(H)`` is **not lean**;
* ``H′`` is the core of ``H``  ⟺  ``enc(H′) ≅ core(enc(H))``.

Both directions are executable here and cross-validated against direct
graph-theoretic computations.
"""

from __future__ import annotations

from typing import FrozenSet, Set, Tuple

from ..core.isomorphism import isomorphic
from ..minimize.core_graph import core as rdf_core
from ..minimize.lean import is_lean
from .homomorphism import find_graph_homomorphism
from .standard_graphs import DiGraph, decode_graph, encode_graph

__all__ = [
    "has_proper_retract_via_rdf",
    "graph_core_via_rdf",
    "is_graph_core_via_rdf",
    "graph_core_direct",
]


def has_proper_retract_via_rdf(graph: DiGraph) -> bool:
    """The Core problem decided through RDF leanness (Theorem 3.12.1)."""
    return not is_lean(encode_graph(graph))


def graph_core_via_rdf(graph: DiGraph) -> DiGraph:
    """The graph-theoretic core of ``H``, via ``core(enc(H))``."""
    return decode_graph(rdf_core(encode_graph(graph)))


def is_graph_core_via_rdf(candidate: DiGraph, graph: DiGraph) -> bool:
    """Core Identification through RDF (Theorem 3.12.2).

    ``H′`` is the core of ``H`` iff ``enc(H′) ≅ core(enc(H))``.
    """
    return isomorphic(encode_graph(candidate), rdf_core(encode_graph(graph)))


def _subgraph_on_edges(edges: FrozenSet[Tuple]) -> DiGraph:
    return DiGraph(edges=edges)


def graph_core_direct(graph: DiGraph) -> DiGraph:
    """The graph core by direct retraction search (ground truth).

    Repeatedly looks for an endomorphism whose edge image is a proper
    subset of the current edge set, exactly mirroring the RDF-side
    procedure but in plain graph terms.
    """
    current_edges: Set[Tuple] = set(graph.edges)
    while True:
        current = DiGraph(edges=current_edges)
        found = None
        for dropped in sorted(current_edges, key=repr):
            target = DiGraph(edges=current_edges - {dropped})
            # Homomorphism from `current` into `target`; vertices of
            # `current` must all map, so give target current's vertices.
            for v in current.vertices:
                target.add_vertex(v)
            hom = find_graph_homomorphism(current, target)
            if hom is not None:
                image_edges = {(hom[u], hom[v]) for u, v in current_edges}
                if image_edges < current_edges:
                    found = image_edges
                    break
        if found is None:
            return DiGraph(edges=current_edges)
        current_edges = found
