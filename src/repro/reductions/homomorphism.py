"""Graph Homomorphism via RDF entailment (Theorem 2.9).

Given digraphs ``H, H′``: ``H`` is homomorphic to ``H′`` iff
``enc(H′) ⊨ enc(H)``.  This is both

* the NP-hardness reduction for simple entailment/equivalence, and
* a reference implementation of graph homomorphism (plus a direct
  combinatorial one, for cross-validation in tests).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..semantics.entailment import simple_entails, simple_equivalent
from .standard_graphs import DiGraph, encode_graph

__all__ = [
    "homomorphic_via_rdf",
    "homomorphically_equivalent_via_rdf",
    "find_graph_homomorphism",
    "homomorphic_direct",
]


def homomorphic_via_rdf(h1: DiGraph, h2: DiGraph) -> bool:
    """Is ``H1`` homomorphic to ``H2``?  Decided by RDF entailment."""
    return simple_entails(encode_graph(h2), encode_graph(h1))


def homomorphically_equivalent_via_rdf(h1: DiGraph, h2: DiGraph) -> bool:
    """Are ``H1, H2`` homomorphically equivalent?  Via ``≡`` of encodings.

    The reduction behind Theorem 2.9.2 — e.g. with ``H1 = K3`` this
    decides "``H2`` contains a triangle and is 3-colorable".
    """
    return simple_equivalent(encode_graph(h1), encode_graph(h2))


def find_graph_homomorphism(h1: DiGraph, h2: DiGraph) -> Optional[Dict]:
    """A homomorphism ``h : V1 → V2``, by direct backtracking.

    Independent of the RDF machinery: used to cross-validate the
    reduction.
    """
    vertices = sorted(h1.vertices, key=repr)
    targets = sorted(h2.vertices, key=repr)
    edges2 = h2.edges
    out_edges: Dict[object, list] = {}
    in_edges: Dict[object, list] = {}
    for u, v in h1.edges:
        out_edges.setdefault(u, []).append(v)
        in_edges.setdefault(v, []).append(u)

    assignment: Dict = {}

    def consistent(vertex, image) -> bool:
        for w in out_edges.get(vertex, ()):
            if w in assignment and (image, assignment[w]) not in edges2:
                return False
        for w in in_edges.get(vertex, ()):
            if w in assignment and (assignment[w], image) not in edges2:
                return False
        return True

    def backtrack(i: int) -> Optional[Dict]:
        if i == len(vertices):
            return dict(assignment)
        vertex = vertices[i]
        for image in targets:
            if consistent(vertex, image):
                assignment[vertex] = image
                result = backtrack(i + 1)
                if result is not None:
                    return result
                del assignment[vertex]
        return None

    if not vertices:
        return {}
    return backtrack(0)


def homomorphic_direct(h1: DiGraph, h2: DiGraph) -> bool:
    """Direct combinatorial homomorphism test (no RDF involved)."""
    return find_graph_homomorphism(h1, h2) is not None
