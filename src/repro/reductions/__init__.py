"""Executable hardness reductions (Theorems 2.9, 3.12, 5.6, 6.1).

Each reduction is implemented in both directions where feasible and is
used twice: as a correctness test (the reduction agrees with a direct
combinatorial solver) and as a benchmark workload generator (the
reduction's hard instances exhibit the claimed complexity).
"""

from .coloring import (
    brute_force_chromatic_number,
    contains_triangle,
    is_3_colorable_via_rdf,
    is_k_colorable_via_rdf,
    triangle_equivalence_instance,
)
from .core_problems import (
    graph_core_direct,
    graph_core_via_rdf,
    has_proper_retract_via_rdf,
    is_graph_core_via_rdf,
)
from .homomorphism import (
    find_graph_homomorphism,
    homomorphic_direct,
    homomorphic_via_rdf,
    homomorphically_equivalent_via_rdf,
)
from .sat import (
    CNF,
    Clause,
    brute_force_satisfiable,
    cnf_to_cq,
    cnf_to_rdf_query,
    random_3sat,
    sat_database_rdf,
    sat_database_relational,
    satisfiable_via_cq,
    satisfiable_via_rdf_query,
)
from .standard_graphs import EDGE_PREDICATE, DiGraph, decode_graph, encode_graph

__all__ = [
    "CNF",
    "Clause",
    "DiGraph",
    "EDGE_PREDICATE",
    "brute_force_chromatic_number",
    "brute_force_satisfiable",
    "cnf_to_cq",
    "cnf_to_rdf_query",
    "contains_triangle",
    "decode_graph",
    "encode_graph",
    "find_graph_homomorphism",
    "graph_core_direct",
    "graph_core_via_rdf",
    "has_proper_retract_via_rdf",
    "homomorphic_direct",
    "homomorphic_via_rdf",
    "homomorphically_equivalent_via_rdf",
    "is_3_colorable_via_rdf",
    "is_graph_core_via_rdf",
    "is_k_colorable_via_rdf",
    "random_3sat",
    "sat_database_rdf",
    "sat_database_relational",
    "satisfiable_via_cq",
    "satisfiable_via_rdf_query",
    "triangle_equivalence_instance",
]
