"""3SAT reductions for the query-complexity lower bound (Theorem 6.1).

Theorem 6.1 proves query-complexity NP-completeness of query-answer
emptiness by reducing 3SAT to conjunctive-query evaluation over a
*fixed* database.  Both halves are implemented:

* the relational rendition: one ternary relation per clause sign
  pattern, holding the 7 satisfying Boolean triples; the formula
  becomes a Boolean CQ; the database never changes;
* the RDF rendition: the same relations reified as triples (one node
  per satisfying assignment, three projection predicates), so the
  formula becomes a tableau query body and emptiness of
  ``preans(q, D_SAT)`` decides satisfiability.

A brute-force DPLL-free satisfiability check provides ground truth for
tests; :func:`random_3sat` generates benchmark workloads (the hardness
benchmark sweeps the clause/variable ratio through the ~4.26 phase
transition where backtracking blows up).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.graph import RDFGraph
from ..core.terms import Triple, URI, Variable
from ..query.tableau import PatternGraph, Query, Tableau
from .. import relational

__all__ = [
    "Clause",
    "CNF",
    "random_3sat",
    "brute_force_satisfiable",
    "cnf_to_cq",
    "sat_database_relational",
    "cnf_to_rdf_query",
    "sat_database_rdf",
    "satisfiable_via_cq",
    "satisfiable_via_rdf_query",
]

#: Truth-value constants shared by both renditions.
TRUE = URI("val:1")
FALSE = URI("val:0")


@dataclass(frozen=True)
class Clause:
    """A 3-clause: three (variable, polarity) literals.

    ``polarity`` True means the positive literal.
    """

    literals: Tuple[Tuple[str, bool], Tuple[str, bool], Tuple[str, bool]]

    def variables(self) -> Tuple[str, str, str]:
        return tuple(v for v, _sign in self.literals)

    def signs(self) -> Tuple[bool, bool, bool]:
        return tuple(sign for _v, sign in self.literals)

    def satisfied_by(self, assignment: Dict[str, bool]) -> bool:
        return any(assignment[v] == sign for v, sign in self.literals)

    def __str__(self):
        body = " ∨ ".join(("" if s else "¬") + v for v, s in self.literals)
        return f"({body})"


@dataclass(frozen=True)
class CNF:
    """A 3-CNF formula."""

    clauses: Tuple[Clause, ...]

    def variables(self) -> List[str]:
        out = []
        for c in self.clauses:
            for v in c.variables():
                if v not in out:
                    out.append(v)
        return out

    def satisfied_by(self, assignment: Dict[str, bool]) -> bool:
        return all(c.satisfied_by(assignment) for c in self.clauses)

    def __str__(self):
        return " ∧ ".join(str(c) for c in self.clauses)


def random_3sat(
    num_variables: int, num_clauses: int, seed: Optional[int] = None
) -> CNF:
    """A uniformly random 3-CNF over ``x0..x{n-1}`` (distinct vars/clause)."""
    rng = random.Random(seed)
    names = [f"x{i}" for i in range(num_variables)]
    clauses = []
    for _ in range(num_clauses):
        chosen = rng.sample(names, 3)
        literals = tuple((v, rng.random() < 0.5) for v in chosen)
        clauses.append(Clause(literals=literals))
    return CNF(clauses=tuple(clauses))


def brute_force_satisfiable(formula: CNF) -> bool:
    """Ground-truth satisfiability by exhaustive assignment search."""
    names = formula.variables()
    for bits in itertools.product((False, True), repeat=len(names)):
        if formula.satisfied_by(dict(zip(names, bits))):
            return True
    return False


# ---------------------------------------------------------------------------
# Relational rendition
# ---------------------------------------------------------------------------


def _sign_relation_name(signs: Tuple[bool, bool, bool]) -> str:
    return "C" + "".join("1" if s else "0" for s in signs)


def sat_database_relational() -> "relational.Database":
    """The fixed database: per sign pattern, the 7 satisfying triples."""
    db = relational.Database()
    for signs in itertools.product((False, True), repeat=3):
        name = _sign_relation_name(signs)
        for values in itertools.product((False, True), repeat=3):
            if any(v == s for v, s in zip(values, signs)):
                db.add(name, tuple(TRUE if v else FALSE for v in values))
    return db


def cnf_to_cq(formula: CNF) -> "relational.ConjunctiveQuery":
    """The Boolean CQ that holds on the fixed database iff φ is SAT."""
    atoms = []
    for clause in formula.clauses:
        terms = tuple(relational.CQVariable(v) for v in clause.variables())
        atoms.append(
            relational.Atom(relation=_sign_relation_name(clause.signs()), terms=terms)
        )
    return relational.ConjunctiveQuery(atoms=tuple(atoms))


def satisfiable_via_cq(formula: CNF) -> bool:
    """SAT decided by CQ evaluation over the fixed database."""
    return relational.evaluate_boolean(cnf_to_cq(formula), sat_database_relational())


# ---------------------------------------------------------------------------
# RDF rendition
# ---------------------------------------------------------------------------


def sat_database_rdf() -> RDFGraph:
    """The fixed RDF database reifying the eight clause relations.

    For sign pattern ``s`` and each of its 7 satisfying value triples
    ``(v1, v2, v3)`` there is a witness node ``w`` with triples
    ``(w, s:pos1, v1), (w, s:pos2, v2), (w, s:pos3, v3)``.
    """
    triples = []
    for signs in itertools.product((False, True), repeat=3):
        name = _sign_relation_name(signs)
        for values in itertools.product((False, True), repeat=3):
            if not any(v == s for v, s in zip(values, signs)):
                continue
            witness = URI(
                f"w:{name}:" + "".join("1" if v else "0" for v in values)
            )
            for position, value in enumerate(values, start=1):
                triples.append(
                    Triple(
                        witness,
                        URI(f"{name}:pos{position}"),
                        TRUE if value else FALSE,
                    )
                )
    return RDFGraph(triples)


def cnf_to_rdf_query(formula: CNF) -> Query:
    """The tableau query whose answer over ``sat_database_rdf()`` is
    non-empty iff φ is satisfiable.

    Per clause ``j`` a fresh witness variable ``?Cj`` joins the clause's
    three variable positions; the head reports the satisfying
    assignment (one triple per formula variable).
    """
    body = []
    for j, clause in enumerate(formula.clauses):
        name = _sign_relation_name(clause.signs())
        witness = Variable(f"C{j}")
        for position, var_name in enumerate(clause.variables(), start=1):
            body.append(
                Triple(witness, URI(f"{name}:pos{position}"), Variable(var_name))
            )
    head = [
        Triple(URI(f"var:{name}"), URI("assigned"), Variable(name))
        for name in formula.variables()
    ]
    return Query(tableau=Tableau(head=PatternGraph(head), body=PatternGraph(body)))


def satisfiable_via_rdf_query(formula: CNF) -> bool:
    """SAT decided by RDF query-answer non-emptiness (Theorem 6.1)."""
    from ..query.answers import pre_answers

    return bool(pre_answers(cnf_to_rdf_query(formula), sat_database_rdf()))
