"""Colorability through homomorphisms into cliques (Theorem 2.9.2).

``H`` is k-colorable iff ``H`` (symmetrized, loop-free) is homomorphic
to ``K_k``.  The paper uses the ``K_3`` case: ``H`` is homomorphically
equivalent to a triangle iff ``H`` contains a triangle and is
3-colorable — the NP-hardness engine for simple-graph *equivalence*.
"""

from __future__ import annotations

import itertools

from .homomorphism import find_graph_homomorphism, homomorphic_via_rdf
from .standard_graphs import DiGraph

__all__ = [
    "is_k_colorable_via_rdf",
    "is_3_colorable_via_rdf",
    "contains_triangle",
    "triangle_equivalence_instance",
    "brute_force_chromatic_number",
]


def is_k_colorable_via_rdf(graph: DiGraph, k: int) -> bool:
    """k-colorability decided through the RDF entailment reduction."""
    return homomorphic_via_rdf(graph.symmetrized(), DiGraph.complete(k))


def is_3_colorable_via_rdf(graph: DiGraph) -> bool:
    """3-colorability: homomorphism into ``K_3`` via RDF entailment."""
    return is_k_colorable_via_rdf(graph, 3)


def contains_triangle(graph: DiGraph) -> bool:
    """Does the symmetrized graph contain a triangle?

    Equivalently: is ``K_3`` homomorphic to it (cliques are cores, so a
    homomorphic image of ``K_3`` is a triangle).
    """
    sym = graph.symmetrized()
    edges = sym.edges
    vertices = sorted(sym.vertices, key=repr)
    for a, b, c in itertools.combinations(vertices, 3):
        if (
            (a, b) in edges
            and (b, c) in edges
            and (a, c) in edges
        ):
            return True
    return False


def triangle_equivalence_instance(graph: DiGraph) -> bool:
    """The Theorem 2.9.2 predicate: hom-equivalent to ``K_3``.

    True iff the graph contains a triangle *and* is 3-colorable; tests
    assert this equals
    :func:`repro.reductions.homomorphism.homomorphically_equivalent_via_rdf`
    against ``K_3``.
    """
    return contains_triangle(graph) and is_3_colorable_via_rdf(graph)


def brute_force_chromatic_number(graph: DiGraph) -> int:
    """χ(H) by direct search — ground truth for the reduction tests."""
    sym = graph.symmetrized()
    vertices = sorted(sym.vertices, key=repr)
    if not vertices:
        return 0
    for k in range(1, len(vertices) + 1):
        if find_graph_homomorphism(sym, DiGraph.complete(k)) is not None:
            return k
    return len(vertices)  # pragma: no cover - loop always returns
