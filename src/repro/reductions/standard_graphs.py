"""Encoding standard digraphs as simple RDF graphs (Section 2.4).

``enc(H)``: each vertex ``v`` becomes a blank node ``X_v``; each edge
``(u, v)`` becomes the triple ``(X_u, e, X_v)`` for a distinguished URI
``e``.  The paper's bridge between graph theory and RDF:

* ``H1`` homomorphic to ``H2``  ⟺  there is a map
  ``enc(H1) → enc(H2)``  ⟺  ``enc(H2) ⊨ enc(H1)``;
* ``H1 ≅ H2``  ⟺  ``enc(H1) ≅ enc(H2)``.

These equivalences power the NP-hardness results (Theorems 2.9, 3.12,
5.6) and this module's executable reductions.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Set, Tuple

from ..core.graph import RDFGraph
from ..core.terms import BNode, Triple, URI

__all__ = ["DiGraph", "EDGE_PREDICATE", "encode_graph", "decode_graph"]

#: The distinguished edge predicate ``e`` of the encoding.
EDGE_PREDICATE = URI("e")

Vertex = object
Edge = Tuple[Vertex, Vertex]


class DiGraph:
    """A standard directed graph ``H = (V, E)`` with hashable vertices.

    Minimal on purpose: the reductions only need vertices, edges,
    homomorphism-compatible iteration, and symmetrization (undirected
    problems such as 3-colorability encode each edge both ways).
    """

    def __init__(self, vertices: Iterable[Vertex] = (), edges: Iterable[Edge] = ()):
        self._vertices: Set[Vertex] = set(vertices)
        self._edges: Set[Edge] = set()
        for u, v in edges:
            self.add_edge(u, v)

    def add_vertex(self, v: Vertex) -> None:
        self._vertices.add(v)

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        self._vertices.add(u)
        self._vertices.add(v)
        self._edges.add((u, v))

    @property
    def vertices(self) -> FrozenSet[Vertex]:
        return frozenset(self._vertices)

    @property
    def edges(self) -> FrozenSet[Edge]:
        return frozenset(self._edges)

    def symmetrized(self) -> "DiGraph":
        """Both orientations of every edge (undirected reading)."""
        g = DiGraph(self._vertices)
        for u, v in self._edges:
            g.add_edge(u, v)
            g.add_edge(v, u)
        return g

    @classmethod
    def complete(cls, n: int) -> "DiGraph":
        """``K_n`` with both edge orientations and no self-loops."""
        g = cls(range(n))
        for u in range(n):
            for v in range(n):
                if u != v:
                    g.add_edge(u, v)
        return g

    @classmethod
    def cycle(cls, n: int, directed: bool = False) -> "DiGraph":
        """The n-cycle ``C_n`` (symmetric edges unless ``directed``)."""
        g = cls(range(n))
        for i in range(n):
            g.add_edge(i, (i + 1) % n)
        return g if directed else g.symmetrized()

    @classmethod
    def path(cls, n: int, directed: bool = True) -> "DiGraph":
        """The path on ``n`` vertices."""
        g = cls(range(n))
        for i in range(n - 1):
            g.add_edge(i, i + 1)
        return g if directed else g.symmetrized()

    def __len__(self):
        return len(self._vertices)

    def __repr__(self):
        return f"DiGraph({len(self._vertices)} vertices, {len(self._edges)} edges)"


def _blank_for(vertex: Vertex) -> BNode:
    return BNode(f"v!{vertex!r}")


def encode_graph(graph: DiGraph) -> RDFGraph:
    """``enc(H) = {(X_u, e, X_v) : (u, v) ∈ E}``.

    Isolated vertices do not appear in the encoding (RDF graphs have no
    vertex set separate from their triples) — harmless for the
    homomorphism problems, since an isolated vertex can always map
    anywhere.
    """
    return RDFGraph(
        Triple(_blank_for(u), EDGE_PREDICATE, _blank_for(v))
        for u, v in graph.edges
    )


def decode_graph(rdf_graph: RDFGraph) -> DiGraph:
    """Inverse of :func:`encode_graph` on graphs of the encoded shape."""
    g = DiGraph()
    for t in rdf_graph:
        if t.p != EDGE_PREDICATE:
            raise ValueError(f"not an enc() image: unexpected predicate {t.p}")
        g.add_edge(t.s, t.o)
    return g
