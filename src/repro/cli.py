"""Command-line interface: the paper's operations over files.

Usage examples::

    repro-rdf closure data.nt              # print cl(G)
    repro-rdf closure data.nt --rho        # reflexivity-free closure
    repro-rdf core data.nt                 # redundancy elimination
    repro-rdf nf data.nt                   # normal form
    repro-rdf lean data.nt                 # leanness verdict (+ witness)
    repro-rdf entails premise.nt goal.nt   # RDFS entailment
    repro-rdf equivalent a.nt b.nt
    repro-rdf query query.rq data.nt       # tableau query (CONSTRUCT/WHERE)
    repro-rdf contains q1.rq q2.rq         # q1 ⊑p q2 (--entailment for ⊑m)
    repro-rdf path 'type/sc*' data.nt --source Picasso --rdfs
    repro-rdf stats data.nt                # structural profile
    repro-rdf dot data.nt                  # Graphviz export

Graph files use the N-Triples-style syntax of :mod:`repro.rdfio`;
query files use the CONSTRUCT/WHERE syntax of
:mod:`repro.rdfio.query_syntax`.  ``-`` reads from stdin.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .core.graph import RDFGraph
from .core.terms import URI

__all__ = ["main", "build_parser"]


def _read_text(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    return Path(path).read_text()


def _load_graph(path: str) -> RDFGraph:
    from .rdfio.ntriples import parse_ntriples

    return parse_ntriples(_read_text(path))


def _load_query(path: str):
    from .rdfio.query_syntax import parse_query

    return parse_query(_read_text(path))


def _print_graph(graph: RDFGraph, out) -> None:
    from .rdfio.ntriples import serialize_ntriples

    out.write(serialize_ntriples(graph))


def cmd_closure(args, out) -> int:
    graph = _load_graph(args.graph)
    if args.rho:
        from .semantics import rho_closure

        _print_graph(rho_closure(graph), out)
    else:
        from .semantics import closure

        _print_graph(closure(graph), out)
    return 0


def cmd_core(args, out) -> int:
    from .minimize import core

    _print_graph(core(_load_graph(args.graph)), out)
    return 0


def cmd_nf(args, out) -> int:
    from .minimize import normal_form

    _print_graph(normal_form(_load_graph(args.graph)), out)
    return 0


def cmd_minimal(args, out) -> int:
    from .minimize import minimal_representation

    _print_graph(minimal_representation(_load_graph(args.graph)), out)
    return 0


def cmd_lean(args, out) -> int:
    from .minimize import non_lean_witness

    graph = _load_graph(args.graph)
    witness = non_lean_witness(graph)
    if witness is None:
        out.write("lean\n")
        return 0
    out.write("not lean\n")
    if args.witness:
        out.write(f"witness: {witness}\n")
    return 1


def cmd_entails(args, out) -> int:
    g1 = _load_graph(args.premise_graph)
    g2 = _load_graph(args.conclusion_graph)
    if args.simple:
        from .semantics import simple_entails as decide
    else:
        from .semantics import entails as decide
    verdict = decide(g1, g2)
    out.write(("entailed" if verdict else "not entailed") + "\n")
    return 0 if verdict else 1


def cmd_equivalent(args, out) -> int:
    from .semantics import equivalent

    verdict = equivalent(_load_graph(args.graph_a), _load_graph(args.graph_b))
    out.write(("equivalent" if verdict else "not equivalent") + "\n")
    return 0 if verdict else 1


def cmd_query(args, out) -> int:
    from .query import answers

    query = _load_query(args.query)
    database = _load_graph(args.graph)
    _print_graph(answers(query, database, semantics=args.semantics), out)
    return 0


def cmd_contains(args, out) -> int:
    q1 = _load_query(args.query_a)
    q2 = _load_query(args.query_b)
    if args.entailment:
        from .query import contained_entailment as decide
    else:
        from .query import contained_standard as decide
    verdict = decide(q1, q2)
    out.write(("contained" if verdict else "not contained") + "\n")
    return 0 if verdict else 1


def cmd_path(args, out) -> int:
    from .navigation import evaluate_path, parse_path, reachable_from

    expr = parse_path(args.expression)
    graph = _load_graph(args.graph)
    if args.source is not None:
        nodes = reachable_from(expr, graph, URI(args.source), rdfs=args.rdfs)
        for node in sorted(nodes, key=str):
            out.write(f"{node}\n")
    else:
        pairs = evaluate_path(expr, graph, rdfs=args.rdfs)
        for x, y in sorted(pairs, key=lambda p: (str(p[0]), str(p[1]))):
            out.write(f"{x}\t{y}\n")
    return 0


def cmd_stats(args, out) -> int:
    from .minimize import is_lean
    from .relational import blank_treewidth_upper_bound

    graph = _load_graph(args.graph)
    out.write(f"triples:            {len(graph)}\n")
    out.write(f"universe size:      {len(graph.universe())}\n")
    out.write(f"blank nodes:        {len(graph.bnodes())}\n")
    out.write(f"predicates:         {len(graph.predicates())}\n")
    out.write(f"ground:             {graph.is_ground()}\n")
    out.write(f"simple (Def 2.2):   {graph.is_simple()}\n")
    out.write(f"blank cycles:       {graph.has_blank_cycle()}\n")
    out.write(f"blank treewidth ≤:  {blank_treewidth_upper_bound(graph)}\n")
    if len(graph) <= args.lean_limit:
        out.write(f"lean (Def 3.7):     {is_lean(graph)}\n")
    else:
        out.write("lean (Def 3.7):     skipped (use --lean-limit to raise)\n")
    return 0


def cmd_dot(args, out) -> int:
    from .rdfio.dot import to_dot

    out.write(to_dot(_load_graph(args.graph)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-rdf",
        description="Foundations of Semantic Web Databases — operations "
        "on RDF graphs and tableau queries.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("closure", help="print cl(G) (or the ρdf closure)")
    p.add_argument("graph")
    p.add_argument("--rho", action="store_true", help="reflexivity-free closure")
    p.set_defaults(fn=cmd_closure)

    p = sub.add_parser("core", help="print core(G)")
    p.add_argument("graph")
    p.set_defaults(fn=cmd_core)

    p = sub.add_parser("nf", help="print the normal form nf(G)")
    p.add_argument("graph")
    p.set_defaults(fn=cmd_nf)

    p = sub.add_parser("minimal", help="print a minimal representation")
    p.add_argument("graph")
    p.set_defaults(fn=cmd_minimal)

    p = sub.add_parser("lean", help="decide leanness (exit 1 if not lean)")
    p.add_argument("graph")
    p.add_argument("--witness", action="store_true", help="show the retraction")
    p.set_defaults(fn=cmd_lean)

    p = sub.add_parser("entails", help="G1 ⊨ G2? (exit 1 if not)")
    p.add_argument("premise_graph")
    p.add_argument("conclusion_graph")
    p.add_argument("--simple", action="store_true", help="simple semantics")
    p.set_defaults(fn=cmd_entails)

    p = sub.add_parser("equivalent", help="G1 ≡ G2? (exit 1 if not)")
    p.add_argument("graph_a")
    p.add_argument("graph_b")
    p.set_defaults(fn=cmd_equivalent)

    p = sub.add_parser("query", help="answer a CONSTRUCT/WHERE query")
    p.add_argument("query")
    p.add_argument("graph")
    p.add_argument("--semantics", choices=("union", "merge"), default="union")
    p.set_defaults(fn=cmd_query)

    p = sub.add_parser("contains", help="q1 ⊑ q2? (exit 1 if not)")
    p.add_argument("query_a")
    p.add_argument("query_b")
    p.add_argument("--entailment", action="store_true", help="use ⊑m instead of ⊑p")
    p.set_defaults(fn=cmd_contains)

    p = sub.add_parser("path", help="evaluate a path expression")
    p.add_argument("expression")
    p.add_argument("graph")
    p.add_argument("--source", help="single-source mode: start node")
    p.add_argument("--rdfs", action="store_true", help="navigate the closure")
    p.set_defaults(fn=cmd_path)

    p = sub.add_parser("stats", help="structural profile of a graph")
    p.add_argument("graph")
    p.add_argument("--lean-limit", type=int, default=40)
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("dot", help="Graphviz DOT export")
    p.add_argument("graph")
    p.set_defaults(fn=cmd_dot)

    return parser


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args, out)
    except FileNotFoundError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
