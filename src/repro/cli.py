"""Command-line interface: the paper's operations over files.

Usage examples::

    repro-rdf closure data.nt              # print cl(G)
    repro-rdf closure data.nt --rho        # reflexivity-free closure
    repro-rdf core data.nt                 # redundancy elimination
    repro-rdf nf data.nt                   # normal form
    repro-rdf lean data.nt                 # leanness verdict (+ witness)
    repro-rdf entails premise.nt goal.nt   # RDFS entailment
    repro-rdf equivalent a.nt b.nt
    repro-rdf query query.rq data.nt       # tableau query (CONSTRUCT/WHERE)
    repro-rdf contains q1.rq q2.rq         # q1 ⊑p q2 (--entailment for ⊑m)
    repro-rdf path 'type/sc*' data.nt --source Picasso --rdfs
    repro-rdf stats data.nt                # structural profile
    repro-rdf dot data.nt                  # Graphviz export
    repro-rdf explain entails g1.nt g2.nt  # planner introspection
    repro-rdf explain query q.rq data.nt
    repro-rdf --profile closure data.nt    # + metrics/trace summary

``--profile`` (before the subcommand) enables the :mod:`repro.obs`
instrumentation for the duration of the command and appends a
metrics/trace summary as ``#``-prefixed comment lines (valid N-Triples
comments, so piped graph output stays parseable);
``--profile-json PATH`` additionally dumps the full registry snapshot
and span list as JSON.

Graph files use the N-Triples-style syntax of :mod:`repro.rdfio`;
query files use the CONSTRUCT/WHERE syntax of
:mod:`repro.rdfio.query_syntax`.  ``-`` reads from stdin.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .core.graph import RDFGraph
from .core.terms import URI

__all__ = ["main", "build_parser"]


def _read_text(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    return Path(path).read_text()


def _load_graph(path: str) -> RDFGraph:
    from .rdfio.ntriples import parse_ntriples

    return parse_ntriples(_read_text(path))


def _load_query(path: str):
    from .rdfio.query_syntax import parse_query

    return parse_query(_read_text(path))


def _print_graph(graph: RDFGraph, out) -> None:
    from .rdfio.ntriples import serialize_ntriples

    out.write(serialize_ntriples(graph))


def cmd_closure(args, out) -> int:
    graph = _load_graph(args.graph)
    if args.rho:
        from .semantics import rho_closure

        _print_graph(rho_closure(graph), out)
    else:
        from .semantics import closure

        _print_graph(closure(graph), out)
    return 0


def cmd_core(args, out) -> int:
    from .minimize import core

    _print_graph(core(_load_graph(args.graph)), out)
    return 0


def cmd_nf(args, out) -> int:
    from .minimize import normal_form

    _print_graph(normal_form(_load_graph(args.graph)), out)
    return 0


def cmd_minimal(args, out) -> int:
    from .minimize import minimal_representation

    _print_graph(minimal_representation(_load_graph(args.graph)), out)
    return 0


def cmd_lean(args, out) -> int:
    from .minimize import non_lean_witness

    graph = _load_graph(args.graph)
    witness = non_lean_witness(graph)
    if witness is None:
        out.write("lean\n")
        return 0
    out.write("not lean\n")
    if args.witness:
        out.write(f"witness: {witness}\n")
    return 1


def _budget_from_args(args):
    """A Budget from --timeout-ms/--max-steps, or None when neither set."""
    timeout_ms = getattr(args, "timeout_ms", None)
    max_steps = getattr(args, "max_steps", None)
    if timeout_ms is None and max_steps is None:
        return None
    from .robustness import Budget

    return Budget(deadline_ms=timeout_ms, max_steps=max_steps)


def _add_trace_flag(p) -> None:
    p.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write a Chrome trace_event JSON of the command's spans to "
        "PATH (view at https://ui.perfetto.dev); implies instrumentation",
    )


def _add_budget_flags(p) -> None:
    p.add_argument(
        "--timeout-ms",
        type=float,
        metavar="MS",
        help="wall-clock budget; an exceeded deadline reports 'unknown' "
        "and exits 3 instead of running on",
    )
    p.add_argument(
        "--max-steps",
        type=int,
        metavar="N",
        help="search-step budget (backtracks/derivations); exhaustion "
        "reports 'unknown' and exits 3",
    )


def cmd_entails(args, out) -> int:
    g1 = _load_graph(args.premise_graph)
    g2 = _load_graph(args.conclusion_graph)
    budget = _budget_from_args(args)
    if budget is not None:
        from .robustness import entails_within

        answer = entails_within(g1, g2, budget, simple=args.simple)
        if answer.unknown:
            ev = answer.evidence
            out.write(
                f"unknown ({answer.reason} budget tripped after "
                f"{ev.get('steps', 0)} steps, "
                f"{ev.get('elapsed_ms', 0)} ms)\n"
            )
            return 3
        verdict = answer.proved
    else:
        if args.simple:
            from .semantics import simple_entails as decide
        else:
            from .semantics import entails as decide
        verdict = decide(g1, g2)
    out.write(("entailed" if verdict else "not entailed") + "\n")
    return 0 if verdict else 1


def cmd_equivalent(args, out) -> int:
    from .semantics import equivalent

    verdict = equivalent(_load_graph(args.graph_a), _load_graph(args.graph_b))
    out.write(("equivalent" if verdict else "not equivalent") + "\n")
    return 0 if verdict else 1


def cmd_query(args, out) -> int:
    query = _load_query(args.query)
    database = _load_graph(args.graph)

    if getattr(args, "cached", False):
        # Serve through a store with the two-tier query cache attached:
        # identical answers (property-tested), but repeated/subsumed
        # queries in one process are filtered from cached valuations
        # instead of re-searched.
        from .store import TripleStore

        store = TripleStore()
        store.add_all(database)
        store.enable_query_cache()

        def _answer():
            return store.query(query, semantics=args.semantics)
    else:
        from .query import answers

        def _answer():
            return answers(query, database, semantics=args.semantics)

    budget = _budget_from_args(args)
    if budget is None:
        _print_graph(_answer(), out)
        return 0
    from .robustness import BudgetExceeded, guarded

    try:
        with guarded(budget):
            result = _answer()
    except BudgetExceeded as err:
        out.write(f"# unknown ({err.reason} budget tripped: {err})\n")
        return 3
    _print_graph(result, out)
    return 0


def cmd_contains(args, out) -> int:
    q1 = _load_query(args.query_a)
    q2 = _load_query(args.query_b)
    if args.entailment:
        from .query import contained_entailment as decide
    else:
        from .query import contained_standard as decide
    verdict = decide(q1, q2)
    out.write(("contained" if verdict else "not contained") + "\n")
    return 0 if verdict else 1


def cmd_path(args, out) -> int:
    from .navigation import evaluate_path, parse_path, reachable_from

    expr = parse_path(args.expression)
    graph = _load_graph(args.graph)
    if args.source is not None:
        nodes = reachable_from(expr, graph, URI(args.source), rdfs=args.rdfs)
        for node in sorted(nodes, key=str):
            out.write(f"{node}\n")
    else:
        pairs = evaluate_path(expr, graph, rdfs=args.rdfs)
        for x, y in sorted(pairs, key=lambda p: (str(p[0]), str(p[1]))):
            out.write(f"{x}\t{y}\n")
    return 0


def cmd_load(args, out) -> int:
    """Bulk-load an N-Triples file; optionally close it, partitioned."""
    import time

    from .ingest import (
        DEFAULT_CHUNK_LINES,
        DEFAULT_MAX_MEMORY_MB,
        load_ntriples,
    )
    from .obs.progress import ProgressReporter, progress_scope

    if args.max_memory_mb is None:
        max_memory_mb = DEFAULT_MAX_MEMORY_MB
    elif args.max_memory_mb <= 0:
        max_memory_mb = None
    else:
        max_memory_mb = args.max_memory_mb
    progress = None
    if args.progress or args.progress_json:
        # Heartbeats go to stderr so piped graph output stays clean.
        progress = ProgressReporter(json_lines=args.progress_json)
    with progress_scope(progress):
        t0 = time.perf_counter()
        result = load_ntriples(
            args.graph if args.graph != "-" else sys.stdin,
            workers=args.parallel,
            chunk_lines=args.chunk_lines or DEFAULT_CHUNK_LINES,
            strict=not args.tolerant,
            max_memory_mb=max_memory_mb,
            progress=progress,
        )
        load_ms = (time.perf_counter() - t0) * 1000.0
        out.write(f"triples:            {result.triples}\n")
        out.write(f"lines:              {result.lines}\n")
        out.write(f"chunks:             {result.chunks}\n")
        out.write(f"skipped lines:      {len(result.issues)}\n")
        out.write(f"spilled runs:       {result.spilled_runs}\n")
        out.write(f"terms interned:     {len(result.terms)}\n")
        out.write(f"load ms:            {load_ms:.1f}\n")
        if args.close:
            from .semantics.closure import rdfs_closure_partitioned_rows

            t1 = time.perf_counter()
            acc = rdfs_closure_partitioned_rows(
                result.runs.rows(),
                shards=args.shards,
                max_memory_mb=max_memory_mb,
                progress=progress,
            )
            close_ms = (time.perf_counter() - t1) * 1000.0
            out.write(f"closure rows:       {len(acc)}\n")
            out.write(f"closure shards:     {args.shards}\n")
            out.write(f"close ms:           {close_ms:.1f}\n")
    if args.store:
        # Persist the loaded graph into a durable store directory: one
        # add_all batch (a single fsynced WAL commit), then a checkpoint
        # so a later open reads compact sorted segments instead of
        # replaying the whole load from the log.
        from .store import TripleStore

        t2 = time.perf_counter()
        store = TripleStore.open(args.store)
        try:
            added = store.add_all(result.terms.decode_rows(result.runs.rows()))
            store.checkpoint()
            info = store.backend.info()
        finally:
            store.close()
        persist_ms = (time.perf_counter() - t2) * 1000.0
        out.write(f"store:              {args.store}\n")
        out.write(f"store new triples:  {added}\n")
        out.write(f"store generation:   {info['generation']}\n")
        out.write(f"persist ms:         {persist_ms:.1f}\n")
    if args.out:
        from .rdfio.ntriples import serialize_ntriples

        target = acc.rows() if args.close else result.runs.rows()
        graph = RDFGraph._from_trusted(result.terms.decode_rows(target))
        Path(args.out).write_text(serialize_ntriples(graph))
        out.write(f"wrote:              {args.out}\n")
    return 0


def cmd_open(args, out) -> int:
    """Open a durable store directory and print its state.

    Opening *is* recovery: if the last process died mid-commit, the WAL
    tail is truncated and committed batches are replayed before anything
    is reported, so the ``wal.*`` counters below describe what this open
    actually did.
    """
    from .store import TripleStore

    store = TripleStore.open(args.store)
    try:
        info = store.backend.info()
        out.write(f"store:              {info['path']}\n")
        out.write(f"generation:         {info['generation']}\n")
        out.write(f"wal file:           {info['wal_file']}\n")
        out.write(f"wal bytes:          {info['wal_bytes']}\n")
        out.write(f"terms log bytes:    {info['terms_log_bytes']}\n")
        out.write(f"next commit seq:    {info['next_seq']}\n")
        out.write(f"terms interned:     {len(store.term_dict)}\n")
        names = store.graph_names()
        out.write(f"graphs:             {len(names)}\n")
        for name in names:
            out.write(f"  graph {name}: {len(store.graph(name))}\n")
        out.write(f"triples (dataset):  {len(store.dataset())}\n")
        for counter in (
            "wal.recovered_batches",
            "wal.torn_tail_bytes",
            "wal.appends",
            "wal.fsyncs",
        ):
            key = f"{counter}:"
            out.write(f"{key:24s}{int(store.metrics.counter(counter))}\n")
        if args.checkpoint:
            store.checkpoint()
            out.write(
                f"checkpointed:       generation "
                f"{store.backend.info()['generation']}\n"
            )
    finally:
        store.close()
    return 0


def cmd_dump(args, out) -> int:
    """Serialize a durable store's contents as N-Triples."""
    from .rdfio.ntriples import serialize_ntriples
    from .store import TripleStore

    store = TripleStore.open(args.store)
    try:
        if args.graph is not None:
            if args.graph not in store.graph_names():
                print(
                    f"error: no graph named {args.graph!r} in {args.store}",
                    file=sys.stderr,
                )
                return 2
            graph = store.graph(args.graph)
        else:
            graph = store.dataset()
        text = serialize_ntriples(graph)
    finally:
        store.close()
    if args.out:
        Path(args.out).write_text(text)
        out.write(f"wrote:              {args.out}\n")
    else:
        out.write(text)
    return 0


def cmd_metrics(args, out) -> int:
    """Re-export a ``--profile-json`` snapshot as Prometheus text or JSON."""
    import json

    from .obs import prometheus_text

    payload = json.loads(_read_text(args.snapshot))
    # Accept both the --profile-json payload ({"metrics": ..., "trace":
    # ...}) and a bare registry snapshot.
    snapshot = payload
    if isinstance(payload, dict) and "metrics" in payload:
        snapshot = payload["metrics"]
    if not isinstance(snapshot, dict) or not (
        {"counters", "gauges", "histograms"} & set(snapshot)
    ):
        print(
            f"error: {args.snapshot}: not a metrics snapshot "
            "(expected --profile-json output or a registry snapshot)",
            file=sys.stderr,
        )
        return 2
    if args.format == "prom":
        out.write(prometheus_text(snapshot))
    else:
        out.write(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return 0


def cmd_stats(args, out) -> int:
    from .minimize import is_lean
    from .relational import blank_treewidth_upper_bound
    from .store import TripleStore

    graph = _load_graph(args.graph)
    out.write(f"triples:            {len(graph)}\n")
    out.write(f"universe size:      {len(graph.universe())}\n")
    out.write(f"blank nodes:        {len(graph.bnodes())}\n")
    out.write(f"predicates:         {len(graph.predicates())}\n")
    out.write(f"ground:             {graph.is_ground()}\n")
    out.write(f"simple (Def 2.2):   {graph.is_simple()}\n")
    out.write(f"blank cycles:       {graph.has_blank_cycle()}\n")
    out.write(f"blank treewidth ≤:  {blank_treewidth_upper_bound(graph)}\n")
    if len(graph) <= args.lean_limit:
        out.write(f"lean (Def 3.7):     {is_lean(graph)}\n")
    else:
        out.write("lean (Def 3.7):     skipped (use --lean-limit to raise)\n")
    # Load the graph into a store and materialize its closure, so the
    # profile covers the write path's maintenance counters too.
    store = TripleStore()
    store.add_all(graph)
    out.write(f"closure size:       {len(store.closure())}\n")
    for key, value in store.stats.items():
        out.write(f"{key + ':':20s}{value}\n")
    # Dictionary-encoding layer: interned-term population and traffic
    # through the store's shared TermDict.
    for key, value in store.term_dict.stats().items():
        out.write(f"{'term_dict.' + key + ':':20s}{value}\n")
    # Closure-kernel dispatch: which kernel is active and how often each
    # one actually ran in this process, so profiles are attributable.
    from .semantics.closure import KERNEL_DISPATCH, active_closure_kernel

    out.write(f"closure kernel:     {active_closure_kernel()}\n")
    for kernel in sorted(KERNEL_DISPATCH):
        key = f"kernel.dispatch.{kernel}:"
        out.write(f"{key:20s}{KERNEL_DISPATCH[kernel]}\n")
    # Query-cache counters (declare-at-zero: the cache is opt-in per
    # store, so a profile that never enabled it shows the full row set
    # at 0 rather than omitting it).
    from .query.cache import (
        CONTAINMENT_HITS,
        EVICTIONS,
        HITS,
        INVALIDATIONS,
        MISSES,
        PLAN_HITS,
    )

    for name in (
        HITS,
        MISSES,
        CONTAINMENT_HITS,
        PLAN_HITS,
        INVALIDATIONS,
        EVICTIONS,
    ):
        key = f"{name}:"
        out.write(f"{key:32s}{int(store.metrics.counter(name))}\n")
    return 0


def cmd_dot(args, out) -> int:
    from .rdfio.dot import to_dot

    out.write(to_dot(_load_graph(args.graph)))
    return 0


def cmd_explain(args, out) -> int:
    """Planner introspection: print the MatchPlan a decision would run."""
    budget = _budget_from_args(args)

    def _plan():
        if args.kind == "entails":
            from .semantics import entailment_plan

            g1 = _load_graph(args.left)
            g2 = _load_graph(args.right)
            target = f"cl({args.left})" if args.rdfs else args.left
            out.write(f"entailment plan: {args.right} -> {target}\n")
            return entailment_plan(g1, g2, rdfs=args.rdfs)
        from .query import matching_plan

        query = _load_query(args.left)
        database = _load_graph(args.right)
        out.write(
            f"matching plan: body of {args.left} -> nf({args.right})\n"
        )
        return matching_plan(query, database)

    if budget is None:
        plan = _plan()
    else:
        from .robustness import BudgetExceeded, guarded

        try:
            with guarded(budget):
                plan = _plan()
        except BudgetExceeded as err:
            out.write(f"unknown ({err.reason} budget tripped: {err})\n")
            return 3
    out.write(plan.describe() + "\n")
    out.write("strategies: " + ", ".join(plan.strategies()) + "\n")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-rdf",
        description="Foundations of Semantic Web Databases — operations "
        "on RDF graphs and tableau queries.",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="enable instrumentation and append a metrics/trace summary "
        "(as '#' comment lines) after the command output",
    )
    parser.add_argument(
        "--profile-json",
        metavar="PATH",
        help="write the full metrics snapshot and span list as JSON to "
        "PATH (implies instrumentation; add --profile for the "
        "human-readable summary too)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("closure", help="print cl(G) (or the ρdf closure)")
    p.add_argument("graph")
    p.add_argument("--rho", action="store_true", help="reflexivity-free closure")
    p.set_defaults(fn=cmd_closure)

    p = sub.add_parser("core", help="print core(G)")
    p.add_argument("graph")
    p.set_defaults(fn=cmd_core)

    p = sub.add_parser("nf", help="print the normal form nf(G)")
    p.add_argument("graph")
    p.set_defaults(fn=cmd_nf)

    p = sub.add_parser("minimal", help="print a minimal representation")
    p.add_argument("graph")
    p.set_defaults(fn=cmd_minimal)

    p = sub.add_parser("lean", help="decide leanness (exit 1 if not lean)")
    p.add_argument("graph")
    p.add_argument("--witness", action="store_true", help="show the retraction")
    p.set_defaults(fn=cmd_lean)

    p = sub.add_parser(
        "entails",
        help="G1 ⊨ G2? (exit 1 if not, 3 if the budget tripped)",
    )
    p.add_argument("premise_graph")
    p.add_argument("conclusion_graph")
    p.add_argument("--simple", action="store_true", help="simple semantics")
    _add_budget_flags(p)
    _add_trace_flag(p)
    p.set_defaults(fn=cmd_entails)

    p = sub.add_parser("equivalent", help="G1 ≡ G2? (exit 1 if not)")
    p.add_argument("graph_a")
    p.add_argument("graph_b")
    p.set_defaults(fn=cmd_equivalent)

    p = sub.add_parser("query", help="answer a CONSTRUCT/WHERE query")
    p.add_argument("query")
    p.add_argument("graph")
    p.add_argument("--semantics", choices=("union", "merge"), default="union")
    p.add_argument(
        "--cached",
        action="store_true",
        help="serve via TripleStore.query with the two-tier query cache",
    )
    _add_budget_flags(p)
    _add_trace_flag(p)
    p.set_defaults(fn=cmd_query)

    p = sub.add_parser("contains", help="q1 ⊑ q2? (exit 1 if not)")
    p.add_argument("query_a")
    p.add_argument("query_b")
    p.add_argument("--entailment", action="store_true", help="use ⊑m instead of ⊑p")
    p.set_defaults(fn=cmd_contains)

    p = sub.add_parser("path", help="evaluate a path expression")
    p.add_argument("expression")
    p.add_argument("graph")
    p.add_argument("--source", help="single-source mode: start node")
    p.add_argument("--rdfs", action="store_true", help="navigate the closure")
    p.set_defaults(fn=cmd_path)

    p = sub.add_parser(
        "load",
        help="bulk-load an N-Triples file (streaming, optionally parallel)",
        description="Streaming bulk ingest: chunk-parse FILE into "
        "dictionary-encoded sorted runs (repro.ingest), optionally in "
        "parallel worker processes, and report throughput.  --close "
        "additionally computes the RDFS closure with the partitioned "
        "kernel; --out writes the (closed) graph back out.",
    )
    p.add_argument("graph", help="N-Triples file, or - for stdin")
    p.add_argument(
        "--parallel",
        type=int,
        default=1,
        metavar="N",
        help="parse chunks across N worker processes (default 1)",
    )
    p.add_argument(
        "--chunk-lines",
        type=int,
        default=None,
        metavar="N",
        help="lines per parse chunk",
    )
    p.add_argument(
        "--tolerant",
        action="store_true",
        help="skip malformed lines instead of failing on the first",
    )
    p.add_argument(
        "--max-memory-mb",
        type=int,
        default=None,
        metavar="MB",
        help="spill pending runs / cold shards to temp files beyond "
        "this budget (default: 512; 0 = unbounded)",
    )
    p.add_argument(
        "--close",
        action="store_true",
        help="also compute the RDFS closure (partitioned kernel)",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=4,
        metavar="K",
        help="with --close: number of closure partitions (default 4)",
    )
    p.add_argument(
        "--progress",
        action="store_true",
        help="emit rate-limited heartbeat lines to stderr while loading",
    )
    p.add_argument(
        "--progress-json",
        action="store_true",
        help="like --progress, but one JSON object per heartbeat line",
    )
    p.add_argument(
        "--store",
        metavar="DIR",
        help="persist the loaded graph into a durable store directory "
        "(WAL + checkpoint; create or append)",
    )
    p.add_argument("--out", metavar="PATH", help="write the result graph")
    _add_trace_flag(p)
    p.set_defaults(fn=cmd_load)

    p = sub.add_parser(
        "open",
        help="open a durable store directory and report its state",
        description="Open (and recover, if the last process crashed) a "
        "durable store directory: print the manifest generation, WAL "
        "and term-log sizes, per-graph triple counts, and the recovery "
        "counters (replayed batches, truncated torn-tail bytes).  "
        "--checkpoint compacts the WAL into fresh sorted segments "
        "before closing.",
    )
    p.add_argument("store", help="store directory (as given to load --store)")
    p.add_argument(
        "--checkpoint",
        action="store_true",
        help="compact: fold the WAL into a new segment generation",
    )
    p.set_defaults(fn=cmd_open)

    p = sub.add_parser(
        "dump",
        help="serialize a durable store's graphs as N-Triples",
        description="Open a durable store directory and write its "
        "contents as N-Triples to stdout (or --out): the default graph, "
        "a single named graph (--graph), or the dataset union.",
    )
    p.add_argument("store", help="store directory (as given to load --store)")
    p.add_argument(
        "--graph",
        metavar="NAME",
        help="dump one named graph (default: the union of all graphs)",
    )
    p.add_argument("--out", metavar="PATH", help="write to PATH, not stdout")
    p.set_defaults(fn=cmd_dump)

    p = sub.add_parser(
        "metrics",
        help="re-export a --profile-json snapshot (Prometheus text/JSON)",
        description="Convert a metrics snapshot written by "
        "--profile-json (or any registry snapshot JSON) into the "
        "Prometheus text exposition format, or pretty-printed JSON.",
    )
    p.add_argument("snapshot", help="snapshot JSON file, or - for stdin")
    p.add_argument(
        "--format",
        choices=("prom", "json"),
        default="prom",
        help="output format (default: prom)",
    )
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser("stats", help="structural profile of a graph")
    p.add_argument("graph")
    p.add_argument("--lean-limit", type=int, default=40)
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("dot", help="Graphviz DOT export")
    p.add_argument("graph")
    p.set_defaults(fn=cmd_dot)

    p = sub.add_parser(
        "explain",
        help="print the matching planner's plan for a decision",
        description="Planner introspection: 'explain entails G1 G2' "
        "shows the plan behind G1 ⊨ G2 (add --rdfs to plan against "
        "cl(G1)); 'explain query Q D' shows how Q's body decomposes "
        "against nf(D).",
    )
    p.add_argument("kind", choices=("entails", "query"))
    p.add_argument("left", help="premise graph, or the query file")
    p.add_argument("right", help="conclusion graph, or the database graph")
    p.add_argument(
        "--rdfs",
        action="store_true",
        help="entails only: plan against the closure cl(G1)",
    )
    _add_budget_flags(p)
    p.set_defaults(fn=cmd_explain)

    return parser


def _write_profile(registry, tracer, out) -> None:
    """The --profile summary, as N-Triples-safe '#' comment lines."""
    out.write("#\n# --- profile (repro.obs) ---\n")
    for line in registry.describe().splitlines():
        out.write(f"# {line}\n")
    for line in tracer.describe().splitlines():
        out.write(f"# {line}\n")


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_out = getattr(args, "trace_out", None)
    try:
        if not args.profile and not args.profile_json and trace_out is None:
            return args.fn(args, out)
        from . import obs

        with obs.instrumentation() as (registry, tracer):
            code = args.fn(args, out)
        if args.profile:
            _write_profile(registry, tracer, out)
        if args.profile_json:
            import json

            payload = {
                "metrics": registry.snapshot(),
                "trace": tracer.snapshot(),
            }
            Path(args.profile_json).write_text(
                json.dumps(payload, indent=2) + "\n"
            )
        if trace_out is not None:
            obs.write_chrome_trace(tracer, trace_out)
        return code
    except FileNotFoundError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
