"""Normal forms for RDF graphs (Section 3.3).

``nf(G) = core(cl(G))`` (Definition 3.18) is the representation with the
two desiderata the closure and the core individually lack:

1. uniqueness up to isomorphism, and
2. syntax independence — ``G ≡ H`` iff ``nf(G) ≅ nf(H)``
   (Theorem 3.19).

Verifying that a given graph is the normal form of another is
DP-complete (Theorem 3.20); :func:`is_normal_form_of` decides it by the
theorem's own split (a map-existence NP part plus a leanness coNP part).
"""

from __future__ import annotations

from ..core.graph import RDFGraph
from ..core.homomorphism import find_map
from ..core.isomorphism import isomorphic
from ..semantics.closure import closure
from .core_graph import core
from .lean import is_lean

__all__ = ["normal_form", "is_normal_form_of", "normal_form_equivalent"]


def normal_form(graph: RDFGraph) -> RDFGraph:
    """``nf(G) = core(cl(G))`` — unique and syntax independent."""
    return core(closure(graph))


def is_normal_form_of(candidate: RDFGraph, graph: RDFGraph) -> bool:
    """Is ``candidate ≅ nf(graph)``?  (DP-complete, Theorem 3.20.)

    Follows the membership argument of the theorem: check there is a
    map ``cl(G) → candidate`` and a map ``candidate → cl(G)`` (so the
    candidate is equivalent to the closure), and that the candidate is
    lean; then uniqueness of the core makes candidate ≅ nf(G).
    """
    closed = closure(graph)
    if find_map(closed, candidate) is None:
        return False
    if find_map(candidate, closed) is None:
        return False
    if not is_lean(candidate):
        return False
    return isomorphic(candidate, core(closed))


def normal_form_equivalent(g1: RDFGraph, g2: RDFGraph) -> bool:
    """Decide ``G1 ≡ G2`` through normal forms (Theorem 3.19.2).

    Provided as a cross-check of :func:`repro.semantics.entailment.equivalent`;
    both must agree on every input (tested).
    """
    return isomorphic(normal_form(g1), normal_form(g2))
