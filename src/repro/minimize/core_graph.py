"""The core of an RDF graph (Theorem 3.10, Theorem 3.11).

Every RDF graph contains a unique (up to isomorphism) lean subgraph that
is an instance of it — its *core*.  The computation follows the
existence proof of Theorem 3.10: repeatedly find a proper endomorphism
``μ`` (``μ(G) ⊊ G``) and replace ``G`` by ``μ(G)``; each application
strictly shrinks the graph, so at most ``|G|`` iterations occur, each
one an NP search (cores are DP-complete to verify, Theorem 3.12.2 —
there is no easy shortcut).  Within each iteration the matching planner
amortizes the per-graph preparation (domains, arc consistency) across
the up-to-``|G|`` excluded-triple searches, so the dominant cost is the
genuinely hard search, not repeated setup.

For *simple* graphs the core is additionally the unique minimal graph
equivalent to ``G`` and decides equivalence up to isomorphism
(Theorem 3.11); tests exercise both properties.
"""

from __future__ import annotations

from typing import Tuple

from ..core.graph import RDFGraph
from ..core.homomorphism import find_proper_endomorphism
from ..core.isomorphism import isomorphic
from ..core.maps import Map, identity_map
from ..robustness.guard import current_guard

__all__ = ["core", "core_with_retraction", "is_core_of"]


def core_with_retraction(graph: RDFGraph) -> Tuple[RDFGraph, Map]:
    """``(core(G), ρ)`` where ρ is the composed retraction ``G → core(G)``.

    The retraction is a map with ``ρ(G) = core(G)``; it certifies that
    the core is an instance of ``G`` (one half of Theorem 3.10).
    """
    current = graph
    retraction = identity_map()
    guard = current_guard()
    while True:
        if guard is not None:
            guard.tick()  # one shrink iteration (each an NP search)
        mu = find_proper_endomorphism(current)
        if mu is None:
            return current, retraction
        current = mu.apply_graph(current)
        retraction = mu.compose(retraction)


def core(graph: RDFGraph) -> RDFGraph:
    """``core(G)``: the unique lean subgraph that is an instance of G."""
    result, _retraction = core_with_retraction(graph)
    return result


def is_core_of(candidate: RDFGraph, graph: RDFGraph) -> bool:
    """Is ``candidate ≅ core(graph)``?  (DP-complete, Theorem 3.12.2.)

    Decided by actually computing the core and testing isomorphism —
    matching the theorem's DP structure (an NP part: candidate is an
    instance-subgraph; a coNP part: candidate is lean).
    """
    return isomorphic(candidate, core(graph))
