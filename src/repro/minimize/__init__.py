"""Normal forms and minimal/maximal representations (Section 3).

Lean graphs and cores (minimal representations for simple graphs),
closures (maximal representations), minimal representations for
vocabulary-bearing graphs, and the normal form ``nf(G) = core(cl(G))``.
"""

from .core_graph import core, core_with_retraction, is_core_of
from .lean import is_lean, non_lean_witness
from .minimal import (
    all_minimal_representations,
    count_minimal_representations,
    has_unique_minimal_representation,
    is_acyclic_for,
    minimal_representation,
    satisfies_theorem_316_preconditions,
    transitive_reduction,
)
from .naive_closure import candidate_triples, iter_naive_closures, naive_closures
from .normal_form import is_normal_form_of, normal_form, normal_form_equivalent

__all__ = [
    "all_minimal_representations",
    "candidate_triples",
    "core",
    "core_with_retraction",
    "count_minimal_representations",
    "has_unique_minimal_representation",
    "is_acyclic_for",
    "is_core_of",
    "is_lean",
    "is_normal_form_of",
    "iter_naive_closures",
    "minimal_representation",
    "naive_closures",
    "non_lean_witness",
    "normal_form",
    "normal_form_equivalent",
    "satisfies_theorem_316_preconditions",
    "transitive_reduction",
]
