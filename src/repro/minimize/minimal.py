"""Minimal representations of RDF graphs (Section 3.2, Theorem 3.16).

A *minimal representation* of ``G`` (Definition 3.13) is a minimal
(w.r.t. number of triples) graph equivalent to ``G`` and contained in
``G``.  In general it is not unique — the transitivity of ``sp``/``sc``
alone produces non-isomorphic reductions (Example 3.14), and reserved
vocabulary in subject/object positions produces more subtle ambiguity
(Example 3.15).  Theorem 3.16 identifies a robust class where it *is*
unique: graphs with no reserved vocabulary in subject or object
positions that are acyclic w.r.t. subproperty and subclass.

This module provides:

* :func:`transitive_reduction` — the Aho–Garey–Ullman unique transitive
  reduction of a DAG (the engine behind sc/sp minimization);
* :func:`minimal_representation` — a greedy redundant-triple elimination
  that, under the preconditions of Theorem 3.16, returns *the* unique
  minimal representation regardless of elimination order (tested);
* :func:`all_minimal_representations` — exhaustive enumeration for
  small graphs, used to reproduce Examples 3.14 and 3.15;
* :func:`satisfies_theorem_316_preconditions` — the class membership
  test.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from ..core.graph import RDFGraph
from ..core.terms import Term, Triple
from ..core.vocabulary import RDFS_VOCABULARY, SC, SP
from ..semantics.entailment import entails

__all__ = [
    "transitive_reduction",
    "minimal_representation",
    "all_minimal_representations",
    "count_minimal_representations",
    "has_unique_minimal_representation",
    "satisfies_theorem_316_preconditions",
    "is_acyclic_for",
]


def transitive_reduction(
    edges: Iterable[Tuple[Term, Term]]
) -> Set[Tuple[Term, Term]]:
    """The unique transitive reduction of an acyclic edge relation.

    Per Aho, Garey and Ullman [1], a DAG has a unique minimal edge set
    with the same transitive closure: the edges ``(a, b)`` admitting no
    alternative path ``a → ... → b`` of length ≥ 2.

    Raises :class:`ValueError` when the relation has a (non-loop) cycle;
    self-loops are dropped (they are never needed for reachability).
    """
    edge_set = {(a, b) for a, b in edges if a != b}
    successors: Dict[Term, Set[Term]] = {}
    for a, b in edge_set:
        successors.setdefault(a, set()).add(b)

    def reach_avoiding_direct(a: Term, b: Term) -> bool:
        """Path a →+ b using at least two edges (skip the direct edge)."""
        frontier = [m for m in successors.get(a, ()) if m != b]
        seen: Set[Term] = set()
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            for nxt in successors.get(node, ()):
                if nxt == b:
                    return True
                frontier.append(nxt)
        return False

    # Cycle check (DFS, three colours).
    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[Term, int] = {}
    nodes = set()
    for a, b in edge_set:
        nodes.add(a)
        nodes.add(b)
    for start in nodes:
        if colour.get(start, WHITE) != WHITE:
            continue
        stack = [(start, iter(successors.get(start, ())))]
        colour[start] = GREY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                state = colour.get(nxt, WHITE)
                if state == GREY:
                    raise ValueError("relation has a cycle; reduction not unique")
                if state == WHITE:
                    colour[nxt] = GREY
                    stack.append((nxt, iter(successors.get(nxt, ()))))
                    advanced = True
                    break
            if not advanced:
                colour[node] = BLACK
                stack.pop()

    return {(a, b) for a, b in edge_set if not reach_avoiding_direct(a, b)}


def is_acyclic_for(graph: RDFGraph, predicate: Term) -> bool:
    """Is the edge relation of *predicate* acyclic (ignoring self-loops)?"""
    edges = {(t.s, t.o) for t in graph.match(p=predicate) if t.s != t.o}
    try:
        transitive_reduction(edges)
    except ValueError:
        return False
    return True


def satisfies_theorem_316_preconditions(graph: RDFGraph) -> bool:
    """No reserved vocabulary in subject/object position; sp/sc acyclic."""
    for t in graph:
        if t.s in RDFS_VOCABULARY or t.o in RDFS_VOCABULARY:
            return False
    return is_acyclic_for(graph, SP) and is_acyclic_for(graph, SC)


def _removable(graph: RDFGraph, t: Triple) -> bool:
    """Can *t* be dropped while preserving equivalence?

    Since ``G − {t} ⊆ G`` we always have ``G ⊨ G − {t}``; the triple is
    redundant iff ``G − {t} ⊨ G``, which (because the rest of G is
    literally present) reduces to ``G − {t} ⊨ {t}``.
    """
    return entails(graph - {t}, RDFGraph([t]))


def minimal_representation(graph: RDFGraph) -> RDFGraph:
    """Greedy redundancy elimination: drop derivable triples until none.

    Under the preconditions of Theorem 3.16 the result is *the* unique
    minimal representation of ``G`` and does not depend on the
    elimination order.  Outside that class the result is an irredundant
    equivalent subgraph — one of possibly several minimal
    representations (Examples 3.14, 3.15); use
    :func:`all_minimal_representations` to enumerate them.
    """
    current = graph
    changed = True
    while changed:
        changed = False
        for t in current.sorted_triples():
            if _removable(current, t):
                current = current - {t}
                changed = True
    return current


def all_minimal_representations(graph: RDFGraph) -> List[RDFGraph]:
    """All minimum-size equivalent subgraphs of ``G`` (small graphs only).

    Exhaustively explores single-triple removals (every equivalent
    subgraph is reachable this way because subgraph equivalence is
    preserved along the removal chain: for ``G' ⊆ G'' ⊆ G`` with
    ``G' ≡ G``, also ``G'' ≡ G``), collects the irredundant ones, and
    returns those of minimum cardinality.  Exponential; intended for the
    worked examples and randomized tests.
    """
    seen: Set[FrozenSet[Triple]] = set()
    irredundant: List[RDFGraph] = []

    def explore(current: RDFGraph):
        key = current.triples
        if key in seen:
            return
        seen.add(key)
        shrunk = False
        for t in current.sorted_triples():
            if _removable(current, t):
                shrunk = True
                explore(current - {t})
        if not shrunk:
            irredundant.append(current)

    explore(graph)
    best = min(len(g) for g in irredundant)
    return [g for g in irredundant if len(g) == best]


def count_minimal_representations(graph: RDFGraph) -> int:
    """Number of distinct minimal representations (small graphs only)."""
    return len(all_minimal_representations(graph))


def has_unique_minimal_representation(graph: RDFGraph) -> bool:
    """True iff the minimal representation is unique (up to identity).

    Representations are subgraphs of the same graph, so distinctness is
    plain set inequality; Examples 3.14/3.15 exhibit graphs where this
    returns False even though uniqueness-up-to-isomorphism also fails.
    """
    return count_minimal_representations(graph) == 1
