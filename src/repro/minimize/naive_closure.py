"""The naive closure of Definition 3.1 and its non-uniqueness.

Definition 3.1 attempts the standard database notion: a *naive closure*
of ``G`` is a maximal set of triples over ``universe(G)`` plus the
reserved vocabulary that contains ``G`` and is equivalent to it.
Example 3.2 shows this is not unique — a blank node lets two different
maximal extensions exist — which motivates the semantic closure of
Definition 3.5.

This module makes the counterexample executable: it enumerates naive
closures of small graphs by greedy saturation over candidate triples,
and checks Lemma 3.3 (``RDFS-cl(G)`` is contained in every naive
closure).  Exponential; for worked examples and tests only.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Set

from ..core.graph import RDFGraph
from ..core.terms import BNode, Literal, Triple, URI
from ..core.vocabulary import RDFS_VOCABULARY
from ..semantics.entailment import equivalent

__all__ = ["candidate_triples", "iter_naive_closures", "naive_closures"]


def candidate_triples(graph: RDFGraph) -> List[Triple]:
    """All well-formed triples over ``universe(G)`` ∪ rdfsV.

    This is the space within which Definition 3.1 takes maximal
    equivalent extensions; cubic in the universe size.
    """
    universe = set(graph.universe()) | set(RDFS_VOCABULARY)
    subjects = [t for t in universe if isinstance(t, (URI, BNode))]
    predicates = [t for t in universe if isinstance(t, URI)]
    objects = [t for t in universe if isinstance(t, (URI, BNode, Literal))]
    out = []
    for s, p, o in itertools.product(
        sorted(subjects, key=str), sorted(predicates, key=str), sorted(objects, key=str)
    ):
        out.append(Triple(s, p, o))
    return out


def iter_naive_closures(graph: RDFGraph) -> Iterator[RDFGraph]:
    """Enumerate the maximal equivalent extensions of *graph*.

    Strategy: a triple is *individually addable* if ``G ∪ {t} ≡ G``.
    Distinct naive closures arise only when addable triples conflict
    (adding one makes another no longer addable), so we saturate
    greedily under every order of the initially-conflicting triples and
    deduplicate.  Exhaustive for the small universes this is meant for.
    """
    base = candidate_triples(graph)

    def addable(current: RDFGraph, t: Triple) -> bool:
        return t not in current and equivalent(current.union(RDFGraph([t])), graph)

    initially_addable = [t for t in base if addable(graph, t)]

    def saturate(current: RDFGraph, order: List[Triple]) -> RDFGraph:
        changed = True
        while changed:
            changed = False
            for t in order:
                if addable(current, t):
                    current = current.union(RDFGraph([t]))
                    changed = True
        return current

    seen: Set[frozenset] = set()
    # Different priority orders of the addable triples can reach
    # different maximal sets; try each single triple as the leader.
    orders = [initially_addable]
    for first in initially_addable:
        rest = [t for t in initially_addable if t != first]
        orders.append([first] + rest)
    for order in orders:
        result = saturate(graph, order)
        if result.triples not in seen:
            seen.add(result.triples)
            yield result


def naive_closures(graph: RDFGraph) -> List[RDFGraph]:
    """All distinct naive closures found (small graphs only)."""
    return list(iter_naive_closures(graph))
