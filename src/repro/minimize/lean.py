"""Lean graphs (Definition 3.7, Theorem 3.12.1).

A graph ``G`` is *lean* if no map ``μ`` sends ``G`` to a proper subgraph
of itself.  Deciding leanness is coNP-complete (Theorem 3.12.1, by
reduction from the graph-theoretic Core problem of Hell and Nešetřil);
the decision procedure here is the complement search: try to find a
proper endomorphism, one excluded triple at a time.

The matching planner prepares the search for ``G`` once — component
split, candidate domains, arc consistency — and shares that work across
all excluded triples (each exclusion is a candidate filter, not a graph
rebuild); see :func:`repro.core.planner.proper_endomorphism_assignment`.
"""

from __future__ import annotations

from typing import Optional

from ..core.graph import RDFGraph
from ..core.homomorphism import find_proper_endomorphism
from ..core.maps import Map

__all__ = ["is_lean", "non_lean_witness"]


def non_lean_witness(graph: RDFGraph) -> Optional[Map]:
    """A map μ with ``μ(G) ⊊ G`` (the NP certificate), or None if lean.

    A ground triple is fixed by every map, so only graphs with
    blank-node triples can fail to be lean; the search tries to exclude
    each non-ground triple in deterministic order.
    """
    if graph.is_ground():
        return None
    return find_proper_endomorphism(graph)


def is_lean(graph: RDFGraph) -> bool:
    """Is ``G`` lean?  coNP-complete in general (Theorem 3.12.1)."""
    return non_lean_witness(graph) is None
