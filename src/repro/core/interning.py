"""Dictionary encoding: terms → dense integer IDs, graphs → int tuples.

Every hot loop in the library — the Θ(|G|²) RDFS closure of
Theorem 3.6, the semi-naive Datalog fixpoints behind the store, and the
planner's homomorphism search behind Theorems 2.8–2.10 — ultimately
hashes and compares terms.  Boxed :class:`~repro.core.terms.URI` /
:class:`~repro.core.terms.BNode` objects pay a Python-level ``__eq__``
and a precomputed-but-still-boxed ``__hash__`` on every probe.
Production RDF engines instead *dictionary-encode*: intern each term
once into a dense integer ID and run every join / fixpoint / candidate
intersection over plain int tuples, decoding back to terms only at the
API boundary.  This module supplies that layer:

* :class:`TermDict` — a bidirectional term ↔ int mapping with
  **per-kind ID ranges**, so the frequent structural tests become range
  checks on an int instead of ``isinstance`` calls on an object:

  ====================  =========================================
  kind                  ID range
  ====================  =========================================
  URI                   ``0 … BNODE_BASE - 1``
  BNode                 ``BNODE_BASE … LITERAL_BASE - 1``
  Literal               ``LITERAL_BASE …``
  ====================  =========================================

  A vocabulary-seeded dict (the default) additionally pins the five
  rdfsV keywords to IDs ``0 … 4`` (:data:`SP_ID` … :data:`RANGE_ID`),
  so "is this predicate an rdfsV keyword" is ``id < 5``.

* :class:`EncodedGraph` — an immutable set of ``(int, int, int)`` rows
  with the same six positional indexes as
  :class:`~repro.core.graph.RDFGraph` (SPO/POS/OSP and the three
  pair-keyed variants) plus an ID-space adjacency view
  (:meth:`EncodedGraph.successors`) for the sp/sc transitive-closure
  kernel.

The ID ranges are ordered URI < BNode < Literal, matching the kind
component of :func:`repro.core.terms.sort_key`.  A dict built by
:meth:`TermDict.from_sorted_terms` (no vocabulary seeding, terms
interned in sorted order) is therefore **order-isomorphic**: comparing
two IDs gives the same answer as comparing the terms' sort keys.  The
planner relies on this to keep its deterministic enumeration order
bit-identical to the boxed implementation.

Encoding is an internal representation.  The paper-facing API
(:class:`~repro.core.graph.RDFGraph`, :mod:`repro.semantics`) stays
term-level; kernels decode at the boundary.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from ..robustness.guard import current_guard
from .terms import BNode, Literal, Term, Triple, URI
from .vocabulary import DOM, RANGE, SC, SP, TYPE

__all__ = [
    "TermDict",
    "EncodedGraph",
    "Row",
    "BNODE_BASE",
    "LITERAL_BASE",
    "SKOLEM_PREFIX",
    "SP_ID",
    "SC_ID",
    "TYPE_ID",
    "DOM_ID",
    "RANGE_ID",
    "VOCAB_SIZE",
    "is_uri_id",
    "is_bnode_id",
    "is_literal_id",
    "is_vocab_id",
]

#: An encoded triple: three term IDs from one :class:`TermDict`.
Row = Tuple[int, int, int]

# --------------------------------------------------------------------------
# ID-range layout
# --------------------------------------------------------------------------

#: Width of each kind's ID range.  2⁴⁰ IDs per kind is unreachable in
#: practice (a dict would exhaust memory long before), so the ranges
#: never collide and the kind of an ID is recoverable by comparison.
_KIND_SHIFT = 40

#: First blank-node ID; URIs occupy ``0 … BNODE_BASE - 1``.
BNODE_BASE = 1 << _KIND_SHIFT

#: First literal ID; blank nodes occupy ``BNODE_BASE … LITERAL_BASE-1``.
LITERAL_BASE = 2 << _KIND_SHIFT

#: Reserved URI prefix marking skolemized blank nodes (Definition 3.4).
#: Canonical definition; :mod:`repro.core.graph` re-exports it.
SKOLEM_PREFIX = "urn:skolem:"

# The five rdfsV keywords are interned first in a vocabulary-seeded
# dict, pinning them to IDs 0 … 4 in this fixed order.
SP_ID = 0
SC_ID = 1
TYPE_ID = 2
DOM_ID = 3
RANGE_ID = 4

#: Number of pre-seeded vocabulary IDs.
VOCAB_SIZE = 5

_VOCAB_TERMS: Tuple[URI, ...] = (SP, SC, TYPE, DOM, RANGE)


def is_uri_id(i: int) -> bool:
    """True iff *i* encodes a :class:`~repro.core.terms.URI`."""
    return 0 <= i < BNODE_BASE


def is_bnode_id(i: int) -> bool:
    """True iff *i* encodes a :class:`~repro.core.terms.BNode`."""
    return BNODE_BASE <= i < LITERAL_BASE


def is_literal_id(i: int) -> bool:
    """True iff *i* encodes a :class:`~repro.core.terms.Literal`."""
    return i >= LITERAL_BASE


def is_vocab_id(i: int) -> bool:
    """True iff *i* is a pre-seeded rdfsV keyword ID.

    Only meaningful for vocabulary-seeded dicts (the default
    constructor); dicts built by :meth:`TermDict.from_sorted_terms` do
    not pin the keywords.
    """
    return 0 <= i < VOCAB_SIZE


# --------------------------------------------------------------------------
# TermDict
# --------------------------------------------------------------------------


class TermDict:
    """Bidirectional term ↔ dense-int mapping with per-kind ID ranges.

    ``encode`` interns (assigns the next free ID in the term's kind
    range); ``lookup`` probes without interning; ``decode`` is an
    O(1) list index.  The dict also owns the ID-space skolemization
    maps used by :class:`~repro.store.triple_store.TripleStore`
    (Definition 3.4: blank node ↔ reserved skolem URI).

    Encode/decode call tallies are kept as plain int attributes —
    always on, practically free — and surfaced through
    :meth:`stats`; callers flush them into the global obs registry at
    kernel boundaries rather than per call.
    """

    __slots__ = (
        "_ids",
        "_uris",
        "_bnodes",
        "_literals",
        "_skolem_of",
        "_blank_of",
        "encodes",
        "decodes",
    )

    def __init__(self, vocabulary: bool = True):
        #: term → ID for every interned term (all kinds share one map;
        #: term hashes are precomputed so probes are cheap).
        self._ids: Dict[Term, int] = {}
        self._uris: List[URI] = []
        self._bnodes: List[BNode] = []
        self._literals: List[Literal] = []
        #: bnode ID → skolem URI ID, and its inverse.
        self._skolem_of: Dict[int, int] = {}
        self._blank_of: Dict[int, int] = {}
        self.encodes = 0
        self.decodes = 0
        if vocabulary:
            for term in _VOCAB_TERMS:
                self._intern(term)

    @classmethod
    def from_sorted_terms(cls, terms: Iterable[Term]) -> "TermDict":
        """Build an **order-isomorphic** dict over *terms*.

        No vocabulary seeding; the caller passes terms in sorted order
        (:func:`repro.core.terms.sort_key`), so within each kind the
        IDs are assigned in value order and — because the kind bases
        are ordered URI < BNode < Literal like the sort-key kind tags —
        ID comparison agrees with term comparison across the whole
        universe.
        """
        d = cls(vocabulary=False)
        intern = d._intern
        for term in terms:
            intern(term)
        return d

    # -- encoding ----------------------------------------------------------

    def _intern(self, term: Term) -> int:
        ids = self._ids
        i = ids.get(term)
        if i is not None:
            return i
        if isinstance(term, URI):
            pool, base = self._uris, 0
        elif isinstance(term, BNode):
            pool, base = self._bnodes, BNODE_BASE
        elif isinstance(term, Literal):
            pool, base = self._literals, LITERAL_BASE
        else:
            raise TypeError(f"cannot intern {term!r}: not a ground RDF term")
        i = base + len(pool)
        pool.append(term)
        ids[term] = i
        return i

    def encode(self, term: Term) -> int:
        """Return *term*'s ID, interning it on first sight."""
        self.encodes += 1
        i = self._ids.get(term)
        if i is None:
            i = self._intern(term)
        return i

    def lookup(self, term: Term) -> Optional[int]:
        """Return *term*'s ID, or ``None`` if it was never interned."""
        return self._ids.get(term)

    def encode_triple(self, t: Triple) -> Row:
        """Encode all three positions of *t*, interning as needed."""
        self.encodes += 3
        ids, intern = self._ids, self._intern
        s, p, o = t
        si = ids.get(s)
        if si is None:
            si = intern(s)
        pi = ids.get(p)
        if pi is None:
            pi = intern(p)
        oi = ids.get(o)
        if oi is None:
            oi = intern(o)
        return (si, pi, oi)

    def encode_rows(self, triples: Iterable[Triple]) -> List[Row]:
        """Bulk-encode an iterable of triples, interning as needed.

        The batch twin of :meth:`encode_triple` and the encode-side
        mirror of :meth:`decode_rows`: the dict probe and the intern
        fallback are bound to locals once for the whole batch instead
        of being re-looked-up per triple, which is what the closure
        kernels and the streaming loader feed their whole input
        through.
        """
        get = self._ids.get
        intern = self._intern
        out: List[Row] = []
        push = out.append
        count = 0
        for s, p, o in triples:
            count += 1
            si = get(s)
            if si is None:
                si = intern(s)
            pi = get(p)
            if pi is None:
                pi = intern(p)
            oi = get(o)
            if oi is None:
                oi = intern(o)
            push((si, pi, oi))
        self.encodes += 3 * count
        return out

    def lookup_triple(self, t: Triple) -> Optional[Row]:
        """Encode *t* without interning; ``None`` if any term is new."""
        ids = self._ids
        si = ids.get(t[0])
        if si is None:
            return None
        pi = ids.get(t[1])
        if pi is None:
            return None
        oi = ids.get(t[2])
        if oi is None:
            return None
        return (si, pi, oi)

    # -- decoding ----------------------------------------------------------

    def decode(self, i: int) -> Term:
        """Return the term with ID *i* (O(1) list index)."""
        self.decodes += 1
        if i >= LITERAL_BASE:
            return self._literals[i - LITERAL_BASE]
        if i >= BNODE_BASE:
            return self._bnodes[i - BNODE_BASE]
        return self._uris[i]

    def decode_triple(self, row: Row) -> Triple:
        """Decode an encoded row back into a :class:`Triple`."""
        self.decodes += 3
        uris, bnodes, literals = self._uris, self._bnodes, self._literals

        def dec(i: int) -> Term:
            if i >= LITERAL_BASE:
                return literals[i - LITERAL_BASE]
            if i >= BNODE_BASE:
                return bnodes[i - BNODE_BASE]
            return uris[i]

        return Triple(dec(row[0]), dec(row[1]), dec(row[2]))

    def decode_rows(self, rows: "Iterable[Row]") -> List[Triple]:
        """Batch-decode rows into triples with the per-kind branches
        inlined — the arrays kernel's output boundary.

        Equivalent to ``[self.decode_triple(r) for r in rows]`` but
        roughly 3x faster: pool lists are bound locally, the kind
        dispatch is two int comparisons per position, and each
        :class:`Triple` is built through ``tuple.__new__`` (Triple is a
        NamedTuple, so this is just a tagged tuple fill).
        """
        uris, bnodes, literals = self._uris, self._bnodes, self._literals
        new = tuple.__new__
        out: List[Triple] = []
        push = out.append
        count = 0
        for s, p, o in rows:
            count += 1
            push(new(Triple, (
                uris[s] if s < BNODE_BASE
                else bnodes[s - BNODE_BASE] if s < LITERAL_BASE
                else literals[s - LITERAL_BASE],
                uris[p] if p < BNODE_BASE
                else bnodes[p - BNODE_BASE] if p < LITERAL_BASE
                else literals[p - LITERAL_BASE],
                uris[o] if o < BNODE_BASE
                else bnodes[o - BNODE_BASE] if o < LITERAL_BASE
                else literals[o - LITERAL_BASE],
            )))
        self.decodes += 3 * count
        return out

    # -- ID-space skolemization (Definition 3.4) ---------------------------

    def skolem_id(self, bnode_id: int) -> int:
        """ID of the reserved skolem URI for the blank node *bnode_id*."""
        si = self._skolem_of.get(bnode_id)
        if si is None:
            label = self._bnodes[bnode_id - BNODE_BASE].value
            si = self.encode(URI(SKOLEM_PREFIX + label))
            self._skolem_of[bnode_id] = si
            self._blank_of[si] = bnode_id
        return si

    def skolemize_id(self, i: int) -> int:
        """Map blank-node IDs to their skolem URI ID; others unchanged."""
        if BNODE_BASE <= i < LITERAL_BASE:
            return self.skolem_id(i)
        return i

    def unskolemize_id(self, i: int) -> int:
        """Inverse of :meth:`skolemize_id`: skolem URI → blank node."""
        return self._blank_of.get(i, i)

    def skolemize_row(self, row: Row) -> Row:
        s, p, o = row
        if BNODE_BASE <= s < LITERAL_BASE:
            s = self.skolem_id(s)
        if BNODE_BASE <= o < LITERAL_BASE:
            o = self.skolem_id(o)
        return (s, p, o)

    # -- introspection -----------------------------------------------------

    def pool_values(self) -> Tuple[List[str], List[str], List[str]]:
        """Raw string values of the URI / BNode / Literal pools, in
        interning order.

        This is the wire format of the parallel loader's ID-remap step:
        a worker ships its local dict as three string lists (cheap to
        pickle) and the parent reconstructs terms and re-interns them in
        the same order, so local ID ``base + i`` maps to the shared ID
        of ``pool[i]``.
        """
        return (
            [t.value for t in self._uris],
            [t.value for t in self._bnodes],
            [t.value for t in self._literals],
        )

    def pool_sizes(self) -> Tuple[int, int, int]:
        """Current (URI, BNode, Literal) pool lengths — a high-water
        mark for :meth:`pool_records_since`."""
        return (len(self._uris), len(self._bnodes), len(self._literals))

    def pool_records_since(
        self, marks: Tuple[int, int, int]
    ) -> List[Tuple[str, str]]:
        """Terms interned since *marks*, as ``(kind, value)`` records.

        The durable backend's string-pool log entries: appending these
        in order (URIs, then BNodes, then Literals) and replaying them
        through :meth:`encode` at open reconstructs the exact same ID
        assignment, because IDs are dense per-kind append positions.
        """
        u, b, l = marks
        out: List[Tuple[str, str]] = []
        out.extend(("U", t.value) for t in self._uris[u:])
        out.extend(("B", t.value) for t in self._bnodes[b:])
        out.extend(("L", t.value) for t in self._literals[l:])
        return out

    def __len__(self) -> int:
        return len(self._uris) + len(self._bnodes) + len(self._literals)

    def __contains__(self, term: object) -> bool:
        return term in self._ids

    def stats(self) -> Dict[str, int]:
        """Size and traffic counters, for ``repro stats`` and obs."""
        return {
            "terms": len(self),
            "uris": len(self._uris),
            "bnodes": len(self._bnodes),
            "literals": len(self._literals),
            "skolems": len(self._skolem_of),
            "encode_calls": self.encodes,
            "decode_calls": self.decodes,
        }

    def __repr__(self) -> str:
        return (
            f"TermDict(terms={len(self)}, uris={len(self._uris)}, "
            f"bnodes={len(self._bnodes)}, literals={len(self._literals)})"
        )


# --------------------------------------------------------------------------
# EncodedGraph
# --------------------------------------------------------------------------

_WILDCARD = None


class EncodedGraph:
    """An RDF graph as a set of ``(int, int, int)`` rows.

    Mirrors the lookup contract of
    :class:`~repro.core.graph.RDFGraph` — six positional indexes, a
    ``match``/``count`` pair keyed by optional positions — but entirely
    in ID space over one :class:`TermDict`.  Instances are treated as
    immutable once built.
    """

    __slots__ = (
        "terms",
        "rows",
        "_by_s",
        "_by_p",
        "_by_o",
        "_by_sp",
        "_by_po",
        "_by_so",
        "_runs",
    )

    def __init__(self, rows: Iterable[Row], terms: TermDict):
        self.terms = terms
        self.rows: FrozenSet[Row] = frozenset(rows)
        guard = current_guard()
        if guard is not None:
            # Building the encoded view of a large target (e.g. a
            # closure) is real pre-search work; charge it as one step
            # per row so a deadline can fire before the search even
            # starts on an adversarially large input.
            guard.tick(len(self.rows))
        by_s: Dict[int, Set[Row]] = {}
        by_p: Dict[int, Set[Row]] = {}
        by_o: Dict[int, Set[Row]] = {}
        by_sp: Dict[Tuple[int, int], Set[Row]] = {}
        by_po: Dict[Tuple[int, int], Set[Row]] = {}
        by_so: Dict[Tuple[int, int], Set[Row]] = {}
        for row in self.rows:
            s, p, o = row
            by_s.setdefault(s, set()).add(row)
            by_p.setdefault(p, set()).add(row)
            by_o.setdefault(o, set()).add(row)
            by_sp.setdefault((s, p), set()).add(row)
            by_po.setdefault((p, o), set()).add(row)
            by_so.setdefault((s, o), set()).add(row)
        self._by_s = by_s
        self._by_p = by_p
        self._by_o = by_o
        self._by_sp = by_sp
        self._by_po = by_po
        self._by_so = by_so
        self._runs = None

    @classmethod
    def from_graph(cls, graph: "Iterable[Triple]") -> "EncodedGraph":
        """Encode a term-level graph with an **order-isomorphic** dict.

        The universe is interned in sorted order so that ID comparisons
        reproduce term sort-key comparisons exactly (see module
        docstring); the planner's enumeration order is therefore
        identical to the boxed implementation's.
        """
        triples = list(graph)
        universe: Set[Term] = set()
        for s, p, o in triples:
            universe.add(s)
            universe.add(p)
            universe.add(o)
        from .terms import sort_key

        terms = TermDict.from_sorted_terms(sorted(universe, key=sort_key))
        ids = terms._ids
        terms.encodes += 3 * len(triples)
        return cls(((ids[s], ids[p], ids[o]) for s, p, o in triples), terms)

    # -- lookups -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __contains__(self, row: object) -> bool:
        return row in self.rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def match(
        self,
        s: Optional[int] = _WILDCARD,
        p: Optional[int] = _WILDCARD,
        o: Optional[int] = _WILDCARD,
    ) -> Set[Row]:
        """Rows matching the given positions (``None`` = wildcard)."""
        if s is not None:
            if p is not None:
                if o is not None:
                    row = (s, p, o)
                    return {row} if row in self.rows else set()
                return self._by_sp.get((s, p), _EMPTY)
            if o is not None:
                return self._by_so.get((s, o), _EMPTY)
            return self._by_s.get(s, _EMPTY)
        if p is not None:
            if o is not None:
                return self._by_po.get((p, o), _EMPTY)
            return self._by_p.get(p, _EMPTY)
        if o is not None:
            return self._by_o.get(o, _EMPTY)
        return set(self.rows)

    def count(
        self,
        s: Optional[int] = _WILDCARD,
        p: Optional[int] = _WILDCARD,
        o: Optional[int] = _WILDCARD,
    ) -> int:
        """``len(self.match(s, p, o))`` without building a new set."""
        return len(self.match(s, p, o))

    def runs(self):
        """The graph's sorted-run columnar view, built once on demand.

        A :class:`~repro.core.columns.SortedRuns` over the same rows;
        the planner's candidate-domain construction reads contiguous
        ranges from it instead of materializing per-pattern row sets.
        """
        runs = self._runs
        if runs is None:
            from .columns import SortedRuns

            runs = SortedRuns(sorted(self.rows))
            self._runs = runs
        return runs

    # -- adjacency view for transitive-closure kernels ---------------------

    def successors(self, p: int) -> Dict[int, Set[int]]:
        """ID-space adjacency of predicate *p*: subject → {objects}.

        The sp/sc transitive-closure kernel in
        :mod:`repro.semantics.closure` walks this view instead of
        re-probing triple indexes on every hop.
        """
        adj: Dict[int, Set[int]] = {}
        for s, _, o in self._by_p.get(p, _EMPTY):
            adj.setdefault(s, set()).add(o)
        return adj

    def subjects(self) -> Set[int]:
        return set(self._by_s)

    def predicates(self) -> Set[int]:
        return set(self._by_p)

    def objects(self) -> Set[int]:
        return set(self._by_o)

    def decode(self) -> List[Triple]:
        """Decode every row (boundary use only — O(|G|) allocations)."""
        dt = self.terms.decode_triple
        return [dt(row) for row in self.rows]

    def __repr__(self) -> str:
        return f"EncodedGraph(rows={len(self.rows)}, dict={len(self.terms)})"


#: Shared immutable empty set returned by missed index probes.
_EMPTY: FrozenSet[Row] = frozenset()
