"""Homomorphism search: maps between RDF graphs and pattern matchings.

This is the single engine behind every NP-hard decision procedure in the
library:

* simple entailment ``G1 ⊨ G2`` — a map ``G2 → G1`` (Theorem 2.8.2);
* RDFS entailment — a map ``G2 → cl(G1)`` (Theorem 2.8.1);
* leanness / core computation — proper endomorphisms (Section 3.2);
* query matching — valuations ``v`` with ``v(B) ⊆ nf(D + P)``
  (Definition 4.3);
* containment certificates — substitutions θ (Theorems 5.5/5.7/5.8).

The search treats a set of *pattern triples* containing free terms
(blank nodes and/or query variables) and enumerates assignments of those
free terms to terms of a *target* graph such that every instantiated
pattern triple belongs to the target.  Free-term images always come from
actual target triples, so positional well-formedness (no literal
subjects, no blank predicates) holds by construction.

Since the matching-planner rewrite, the actual solving happens in
:mod:`repro.core.planner`: the pattern is split into connected
components, per-term candidate domains are narrowed to arc consistency
against the target's positional indexes, and blank-acyclic components
are routed to a backtrack-free semijoin (Yannakakis) order while cyclic
ones fall back to fail-first backtracking with forward checking.  Use
:func:`repro.core.planner.explain` to inspect the plan for a given
pattern/target pair.

The pre-planner solver is retained as :func:`iter_assignments_naive` /
:func:`find_proper_endomorphism_naive`; the property-test suite checks
the planner against it on random graphs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Sequence, Set

from . import planner as _planner
from .graph import RDFGraph
from .maps import Map
from .terms import BNode, Term, Triple, Variable

__all__ = [
    "iter_assignments",
    "find_assignment",
    "iter_maps",
    "find_map",
    "find_map_into_subgraph",
    "find_proper_endomorphism",
    "count_assignments",
    "iter_assignments_naive",
    "find_proper_endomorphism_naive",
]

#: Terms that the solver binds: blank nodes and query variables.
FreeTerm = Term


def iter_assignments(
    pattern: Sequence[Triple],
    target: RDFGraph,
    frozen: Iterable[Term] = (),
    partial: Optional[Dict[Term, Term]] = None,
) -> Iterator[Dict[Term, Term]]:
    """Enumerate assignments of the pattern's free terms into *target*.

    Parameters
    ----------
    pattern:
        Triples possibly containing blank nodes and variables.
    target:
        The graph the instantiated pattern must be a subgraph of.
    frozen:
        Blank nodes / variables to treat as constants (not assignable).
        Used e.g. by containment tests, which freeze the body's variables
        of one query while matching the other's (Theorem 5.5).
    partial:
        A pre-commitment of some free terms.

    Yields every total assignment of the free terms such that each
    instantiated pattern triple is in *target*.  The enumeration order
    is deterministic across runs (candidates are ordered by
    :func:`repro.core.terms.sort_key`, never by hash) and independent of
    the order of *pattern*.
    """
    return _planner.iter_assignments(pattern, target, frozen, partial)


def find_assignment(
    pattern: Sequence[Triple],
    target: RDFGraph,
    frozen: Iterable[Term] = (),
    partial: Optional[Dict[Term, Term]] = None,
) -> Optional[Dict[Term, Term]]:
    """First assignment from :func:`iter_assignments`, or None."""
    for assignment in iter_assignments(pattern, target, frozen, partial):
        return assignment
    return None


def count_assignments(
    pattern: Sequence[Triple],
    target: RDFGraph,
    frozen: Iterable[Term] = (),
) -> int:
    """Number of assignments (used by benchmarks and answer-size tests)."""
    return sum(1 for _ in iter_assignments(pattern, target, frozen))


def iter_maps(source: RDFGraph, target: RDFGraph) -> Iterator[Map]:
    """Enumerate maps ``μ : source → target`` (``μ(source) ⊆ target``)."""
    for assignment in iter_assignments(list(source), target):
        yield Map({n: v for n, v in assignment.items() if isinstance(n, BNode)})


def find_map(source: RDFGraph, target: RDFGraph) -> Optional[Map]:
    """A map ``source → target`` if one exists, else None.

    By Theorem 2.8.2 this decides simple entailment: ``target ⊨ source``
    iff this returns a map, for simple graphs.
    """
    for m in iter_maps(source, target):
        return m
    return None


def find_map_into_subgraph(
    graph: RDFGraph, excluded: Triple
) -> Optional[Map]:
    """A map ``G → G − {excluded}`` if one exists.

    Since ``μ(G) ⊆ G`` and ``t ∉ μ(G)`` together say exactly
    ``μ(G) ⊆ G − {t}``, non-leanness reduces to this search over the
    non-ground triples ``t`` of ``G``.  The planner runs it as a search
    over ``G`` itself with *excluded* banned as an image, so the target
    graph and its indexes are never rebuilt.
    """
    for assignment in _planner.iter_assignments(
        list(graph), graph, exclude=excluded
    ):
        return Map(
            {n: v for n, v in assignment.items() if isinstance(n, BNode)}
        )
    return None


def find_proper_endomorphism(graph: RDFGraph) -> Optional[Map]:
    """A map ``μ : G → G`` with ``μ(G) ⊊ G``, or None if G is lean.

    A ground triple is a fixed point of every map, so only non-ground
    triples can be missing from ``μ(G)``; we try to exclude each in turn
    (deterministic order), returning the first witness found.  The
    planner prepares candidate domains once for ``G`` and shares them
    across all excluded triples (see
    :func:`repro.core.planner.proper_endomorphism_assignment`).
    """
    assignment = _planner.proper_endomorphism_assignment(graph)
    if assignment is None:
        return None
    return Map({n: v for n, v in assignment.items() if isinstance(n, BNode)})


# ----------------------------------------------------------------------
# Naive reference implementation (pre-planner)
# ----------------------------------------------------------------------
#
# Kept verbatim as an executable specification: the property tests check
# that the planner's enumeration and the decisions built on it agree
# with this solver on random graphs.


def _free_terms(pattern: Iterable[Triple], frozen: FrozenSet[Term]) -> Set[Term]:
    free: Set[Term] = set()
    for t in pattern:
        for term in t:
            if isinstance(term, (BNode, Variable)) and term not in frozen:
                free.add(term)
    return free


def _instantiate(t: Triple, assignment: Dict[Term, Term], frozen: FrozenSet[Term]):
    """Return (s, p, o) with bound/constant positions fixed, free ones None."""
    out = []
    for term in t:
        if isinstance(term, (BNode, Variable)) and term not in frozen:
            out.append(assignment.get(term))
        else:
            out.append(term)
    return tuple(out)


def _candidates(
    target: RDFGraph,
    t: Triple,
    assignment: Dict[Term, Term],
    frozen: FrozenSet[Term],
) -> Iterable[Triple]:
    s, p, o = _instantiate(t, assignment, frozen)
    return target.match(s, p, o)


def iter_assignments_naive(
    pattern: Sequence[Triple],
    target: RDFGraph,
    frozen: Iterable[Term] = (),
    partial: Optional[Dict[Term, Term]] = None,
) -> Iterator[Dict[Term, Term]]:
    """The pre-planner backtracking solver (reference implementation)."""
    frozen_set = frozenset(frozen)
    assignment: Dict[Term, Term] = dict(partial or {})
    pattern = list(pattern)

    # Ground (and frozen/pre-assigned) triples must already be present.
    remaining = []
    for t in pattern:
        s, p, o = _instantiate(t, assignment, frozen_set)
        if s is not None and p is not None and o is not None:
            if Triple(s, p, o) not in target:
                return
        else:
            remaining.append(t)

    free = _free_terms(remaining, frozen_set) - set(assignment)
    if not remaining:
        yield dict(assignment)
        return

    def backtrack(todo: list) -> Iterator[Dict[Term, Term]]:
        if not todo:
            yield dict(assignment)
            return
        # Fail-first: pick the pattern triple with the fewest candidates.
        best_index = None
        best_count = None
        for i, t in enumerate(todo):
            found = _candidates(target, t, assignment, frozen_set)
            n = len(found) if hasattr(found, "__len__") else sum(1 for _ in found)
            if best_count is None or n < best_count:
                best_index, best_count = i, n
                if n == 0:
                    return
        chosen = todo[best_index]
        rest = todo[:best_index] + todo[best_index + 1 :]
        s, p, o = _instantiate(chosen, assignment, frozen_set)
        for cand in sorted(
            _candidates(target, chosen, assignment, frozen_set),
            key=lambda c: (str(c.s), str(c.p), str(c.o)),
        ):
            bound: list = []
            ok = True
            for want, have, got in (
                (s, chosen.s, cand.s),
                (p, chosen.p, cand.p),
                (o, chosen.o, cand.o),
            ):
                if want is not None:
                    if got != want:
                        ok = False
                        break
                    continue
                already = assignment.get(have)
                if already is None:
                    assignment[have] = got
                    bound.append(have)
                elif already != got:
                    ok = False
                    break
            if ok:
                yield from backtrack(rest)
            for term in bound:
                del assignment[term]

    produced_free = free  # every yielded dict covers exactly these + partial
    for result in backtrack(remaining):
        # A free term occurring only in already-satisfied ground triples
        # cannot happen (such triples had no free terms), so the result
        # always covers `produced_free`.
        assert produced_free <= set(result) or not produced_free
        yield result


def find_proper_endomorphism_naive(graph: RDFGraph) -> Optional[Map]:
    """Pre-planner proper-endomorphism search (reference implementation)."""
    for t in graph.sorted_triples():
        if t.is_ground():
            continue
        for assignment in iter_assignments_naive(list(graph), graph - {t}):
            return Map(
                {n: v for n, v in assignment.items() if isinstance(n, BNode)}
            )
    return None
