"""The RDFS vocabulary fragment ``rdfsV`` (Section 2.2).

The paper isolates the five reserved predicates whose semantics is
non-trivial and relates external data:

    rdfsV = {sp, sc, type, dom, range}

corresponding to ``rdfs:subPropertyOf``, ``rdfs:subClassOf``,
``rdf:type``, ``rdfs:domain`` and ``rdfs:range``.  Groups (b)–(d) of the
full W3C vocabulary (containers, reification, utility terms) have purely
structural "axiomatic triple" semantics and are excluded, as in the
paper.
"""

from __future__ import annotations

from .terms import URI

__all__ = [
    "SP",
    "SC",
    "TYPE",
    "DOM",
    "RANGE",
    "RDFS_VOCABULARY",
    "FULL_URIS",
]

#: rdfs:subPropertyOf — reflexive and transitive over properties.
SP = URI("sp")

#: rdfs:subClassOf — reflexive and transitive over classes.
SC = URI("sc")

#: rdf:type — class membership.
TYPE = URI("type")

#: rdfs:domain — the domain class of a property.
DOM = URI("dom")

#: rdfs:range — the range class of a property.
RANGE = URI("range")

#: The fragment rdfsV studied throughout the paper.
RDFS_VOCABULARY = frozenset({SP, SC, TYPE, DOM, RANGE})

#: Mapping from the paper's short names to the normative W3C URIs, for
#: interoperability when importing/exporting real RDF data.
FULL_URIS = {
    SP: URI("http://www.w3.org/2000/01/rdf-schema#subPropertyOf"),
    SC: URI("http://www.w3.org/2000/01/rdf-schema#subClassOf"),
    TYPE: URI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
    DOM: URI("http://www.w3.org/2000/01/rdf-schema#domain"),
    RANGE: URI("http://www.w3.org/2000/01/rdf-schema#range"),
}
