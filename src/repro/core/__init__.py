"""Abstract RDF data model (Section 2 of the paper).

Public surface: term types, triples, graphs, maps, homomorphism search,
isomorphism, and the ``rdfsV`` vocabulary.
"""

from .graph import RDFGraph, graph_from_triples, triple
from .homomorphism import (
    count_assignments,
    find_assignment,
    find_map,
    find_proper_endomorphism,
    iter_assignments,
    iter_maps,
)
from .isomorphism import canonical_form, find_isomorphism, isomorphic
from .maps import Map, identity_map
from .planner import ComponentPlan, MatchPlan, explain
from .terms import (
    BNode,
    Literal,
    Term,
    Triple,
    URI,
    Variable,
    fresh_bnode,
    fresh_bnode_factory,
)
from .vocabulary import DOM, RANGE, RDFS_VOCABULARY, SC, SP, TYPE

__all__ = [
    "BNode",
    "ComponentPlan",
    "DOM",
    "MatchPlan",
    "Literal",
    "Map",
    "RANGE",
    "RDFGraph",
    "RDFS_VOCABULARY",
    "SC",
    "SP",
    "TYPE",
    "Term",
    "Triple",
    "URI",
    "Variable",
    "canonical_form",
    "count_assignments",
    "explain",
    "find_assignment",
    "find_isomorphism",
    "find_map",
    "find_proper_endomorphism",
    "fresh_bnode",
    "fresh_bnode_factory",
    "graph_from_triples",
    "identity_map",
    "isomorphic",
    "iter_assignments",
    "iter_maps",
    "triple",
]
