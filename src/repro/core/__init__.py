"""Abstract RDF data model (Section 2 of the paper).

Public surface: term types, triples, graphs, maps, homomorphism search,
isomorphism, and the ``rdfsV`` vocabulary.
"""

from .columns import (
    OrderView,
    SortedRuns,
    dedup_sorted,
    gallop_left,
    gallop_right,
    merge_diff_sorted,
    merge_join_pairs,
    merge_union_sorted,
)
from .graph import RDFGraph, graph_from_triples, triple
from .homomorphism import (
    count_assignments,
    find_assignment,
    find_map,
    find_proper_endomorphism,
    iter_assignments,
    iter_maps,
)
from .isomorphism import canonical_form, find_isomorphism, isomorphic
from .maps import Map, identity_map
from .planner import ComponentPlan, MatchPlan, explain
from .terms import (
    BNode,
    Literal,
    Term,
    Triple,
    URI,
    Variable,
    fresh_bnode,
    fresh_bnode_factory,
)
from .vocabulary import DOM, RANGE, RDFS_VOCABULARY, SC, SP, TYPE

__all__ = [
    "BNode",
    "ComponentPlan",
    "DOM",
    "MatchPlan",
    "Literal",
    "Map",
    "OrderView",
    "RANGE",
    "RDFGraph",
    "RDFS_VOCABULARY",
    "SC",
    "SP",
    "SortedRuns",
    "TYPE",
    "Term",
    "Triple",
    "URI",
    "Variable",
    "canonical_form",
    "count_assignments",
    "dedup_sorted",
    "explain",
    "find_assignment",
    "find_isomorphism",
    "find_map",
    "find_proper_endomorphism",
    "fresh_bnode",
    "gallop_left",
    "gallop_right",
    "fresh_bnode_factory",
    "graph_from_triples",
    "identity_map",
    "isomorphic",
    "iter_assignments",
    "iter_maps",
    "merge_diff_sorted",
    "merge_join_pairs",
    "merge_union_sorted",
    "triple",
]
