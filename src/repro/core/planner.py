"""The matching planner: strategy selection for homomorphism search.

Every NP-hard decision procedure in the library (entailment, leanness,
cores, query matching, containment) funnels through one search problem:
enumerate assignments of a pattern's free terms (blank nodes, query
variables) into a target graph such that every instantiated pattern
triple is a triple of the target.  This module plans and executes that
search:

1. **Component decomposition** — the pattern is split into connected
   components on shared free terms; components are solved independently
   and their solution sets combined as a (lazily memoized) product, so
   one component's candidates are never re-enumerated per candidate of
   another.
2. **Candidate domains** — each free term gets a candidate domain
   computed from the target's positional indexes, and the domains are
   narrowed to arc consistency before any search happens.  On acyclic
   components this *is* Yannakakis' full reducer (Section 2.4): one
   bottom-up and one top-down semijoin pass over the component's join
   tree, executed directly on the graph indexes.
3. **Strategy routing** — blank-acyclic components (the paper's
   tractable case, Section 2.4) are enumerated backtrack-free along a
   static join-tree order (``semijoin``); cyclic components fall back to
   fail-first backtracking with forward checking and incrementally
   maintained candidate counts (``backtrack``).
4. **Plan introspection** — :func:`explain` returns the
   :class:`MatchPlan` the solver would execute, so benchmarks and tests
   can report which strategy actually ran.

The solver additionally supports an *excluded triple*: no pattern triple
may be mapped onto it.  This turns the leanness/core search ``μ(G) ⊆
G − {t}`` into a filter instead of a graph rebuild, letting
:func:`proper_endomorphism_assignment` reuse one set of candidate
domains across all up-to-``|G|`` excluded triples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..obs import OBS
from ..robustness.guard import current_guard
from .graph import RDFGraph
from .interning import EncodedGraph, Row
from .terms import BNode, Term, Triple, Variable, sort_key

__all__ = [
    "MatchPlan",
    "ComponentPlan",
    "iter_assignments",
    "explain",
    "boolean_match_acyclic",
    "proper_endomorphism_assignment",
    "GROUND",
    "SEMIJOIN",
    "BACKTRACK",
]

#: Strategy labels reported by :func:`explain`.
GROUND = "ground"
SEMIJOIN = "semijoin"
BACKTRACK = "backtrack"


def _is_free_kind(term: Term) -> bool:
    return isinstance(term, (BNode, Variable))


class _CompiledTriple:
    """One pattern triple with constants/pre-bound terms substituted.

    ``const`` holds the fixed **term ID** per position (None where
    free), resolved against the target's dictionary — a constant the
    target never mentions gets a distinct negative sentinel ID, so it
    matches nothing without growing the dictionary; ``free_at`` lists
    (position, term) for the free positions; ``free`` is the tuple of
    distinct free terms in position order.  The search itself runs
    entirely over IDs; only ``triple``/``free``/``key`` stay term-level
    for plan introspection and deterministic canonicalization.
    """

    __slots__ = ("triple", "const", "free_at", "free", "key")

    def __init__(
        self,
        t: Triple,
        frozen: FrozenSet[Term],
        partial: Dict[Term, Term],
        encode,
    ):
        const: List[Optional[int]] = []
        free_at: List[Tuple[int, Term]] = []
        free: List[Term] = []
        shape: List[Term] = []
        for pos, term in enumerate(t):
            if _is_free_kind(term) and term not in frozen:
                bound = partial.get(term)
                if bound is not None:
                    const.append(encode(bound))
                    shape.append(bound)
                else:
                    const.append(None)
                    shape.append(term)
                    free_at.append((pos, term))
                    if term not in free:
                        free.append(term)
            else:
                const.append(encode(term))
                shape.append(term)
        self.triple = t
        self.const = tuple(const)
        self.free_at = tuple(free_at)
        self.free = tuple(free)
        # Deterministic identity: the substituted pattern (free positions
        # keep their term so distinct variables stay distinct).
        self.key = tuple(sort_key(x) for x in shape)

    def args(self, assignment: Dict[Term, int]):
        """(s, p, o) IDs with constants and current bindings, else None."""
        s, p, o = self.const
        for pos, term in self.free_at:
            v = assignment.get(term)
            if pos == 0:
                s = v
            elif pos == 1:
                p = v
            else:
                o = v
        return s, p, o


@dataclass(frozen=True)
class ComponentPlan:
    """What the planner decided for one connected component."""

    triples: Tuple[Triple, ...]
    free_terms: Tuple[Term, ...]
    strategy: str
    domain_sizes: Tuple[Tuple[Term, int], ...]
    pruned_empty: bool

    def describe(self) -> str:
        doms = ", ".join(f"{t}:{n}" for t, n in self.domain_sizes)
        note = " (refuted by pruning)" if self.pruned_empty else ""
        return (
            f"{self.strategy}[{len(self.triples)} triples, "
            f"{len(self.free_terms)} free; domains {doms or '-'}]{note}"
        )


@dataclass(frozen=True)
class MatchPlan:
    """The full plan: ground prechecks plus one entry per component."""

    ground_checked: int
    ground_ok: bool
    components: Tuple[ComponentPlan, ...]

    def strategies(self) -> Tuple[str, ...]:
        """Per-component strategy labels (``ground`` when none remain)."""
        if not self.components:
            return (GROUND,)
        return tuple(c.strategy for c in self.components)

    def describe(self) -> str:
        lines = [
            f"ground: {self.ground_checked} checked"
            + ("" if self.ground_ok else " (FAILED)")
        ]
        lines.extend(c.describe() for c in self.components)
        return "\n".join(lines)


class _ComponentSolver:
    """Domains, arc consistency and search for one connected component.

    ``target`` is the target graph's :class:`EncodedGraph` view;
    domains, base candidate lists and the whole search run over term
    IDs (``exclude`` too).  Because the per-graph dictionary is
    order-isomorphic, sorting candidate rows as plain int tuples
    reproduces the term-level deterministic enumeration order exactly.
    """

    __slots__ = (
        "triples",
        "target",
        "exclude",
        "free_terms",
        "term_to_triples",
        "base",
        "domains",
        "strategy",
        "static_order",
        "failed",
    )

    def __init__(
        self,
        triples: List[_CompiledTriple],
        target: EncodedGraph,
        exclude: Optional[Row],
    ):
        self.triples = triples
        self.target = target
        self.exclude = exclude
        self.free_terms = tuple(
            sorted({term for ct in triples for term in ct.free}, key=sort_key)
        )
        term_to_triples: Dict[Term, List[int]] = {t: [] for t in self.free_terms}
        for i, ct in enumerate(triples):
            for term in ct.free:
                term_to_triples[term].append(i)
        self.term_to_triples = term_to_triples
        self.base: List[List[Row]] = []
        self.domains: Dict[Term, Set[int]] = {}
        self.failed = False
        self.strategy = self._structural_strategy()
        self.static_order = (
            self._static_order() if self.strategy == SEMIJOIN else None
        )
        for ct in triples:
            cands = self._base_candidates(ct)
            self.base.append(cands)
            if not cands:
                self.failed = True
        if not self.failed:
            self._arc_consistency()
        if OBS.enabled:
            reg = OBS.registry
            reg.inc(f"planner.strategy.{self.strategy}")
            if self.failed:
                reg.inc("planner.pruned_empty")
            for term in self.free_terms:
                # Candidate-domain size after arc consistency: the
                # quantity Theorem 2.9's hard instances blow up.
                reg.observe(
                    "planner.domain_size", len(self.domains.get(term, ()))
                )

    # -- structure ------------------------------------------------------

    def _structural_strategy(self) -> str:
        """``semijoin`` iff the free-term constraint graph is a tree.

        Requirements: every free term sits in subject/object position
        (a free predicate makes a ternary constraint), no two triples
        constrain the same pair of free terms (parallel edges = a
        length-2 cycle in the paper's reading of Section 2.4), and the
        pair graph is acyclic.  Repeated terms within one triple are
        unary constraints and do not affect the shape.
        """
        parent: Dict[Term, Term] = {t: t for t in self.free_terms}

        def find(x: Term) -> Term:
            while parent[x] is not x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        seen_pairs: Set[Tuple[Term, Term]] = set()
        for ct in self.triples:
            if any(pos == 1 for pos, _ in ct.free_at):
                return BACKTRACK
            if len(ct.free) < 2:
                continue
            a, b = ct.free
            pair = (a, b) if sort_key(a) <= sort_key(b) else (b, a)
            if pair in seen_pairs:
                return BACKTRACK  # parallel edge between the same terms
            seen_pairs.add(pair)
            ra, rb = find(a), find(b)
            if ra is rb:
                return BACKTRACK  # closing a cycle
            parent[ra] = rb
        return SEMIJOIN

    def _static_order(self) -> List[int]:
        """A connected triple order (each next triple shares a bound term).

        With arc-consistent domains on a tree-shaped component this
        order makes the search backtrack-free for the first solution:
        every expansion has at most one unbound term, and every value in
        an arc-consistent domain extends to the whole subtree.
        """
        n = len(self.triples)
        remaining = set(range(n))
        bound: Set[Term] = set()
        order: List[int] = []
        while remaining:
            best = None
            best_rank = None
            for i in sorted(remaining):
                unbound = sum(1 for t in self.triples[i].free if t not in bound)
                rank = (unbound, i)
                if best_rank is None or rank < best_rank:
                    best, best_rank = i, rank
            order.append(best)
            remaining.discard(best)
            bound.update(self.triples[best].free)
        return order

    # -- domains and arc consistency ------------------------------------

    def _base_candidates(self, ct: _CompiledTriple) -> List[Row]:
        """Target rows matching the constant positions of *ct*.

        Reads one contiguous sorted run from the target's columnar view
        (:meth:`EncodedGraph.runs`): the bound-constant prefix becomes a
        pair of galloping binary searches instead of a hash probe that
        materializes a per-pattern row set.  The run is already in row
        order, so the base lists — and everything arc consistency
        derives from them — come out deterministically sorted for free.
        Filters the excluded row and intra-triple repeated-term
        inconsistencies; does not yet apply domains.
        """
        exclude = self.exclude
        matched = self.target.runs().match_range(*ct.const)
        if len(ct.free_at) > len(ct.free):
            # Repeated free term within one triple: keep only candidates
            # whose positions agree (e.g. (x, p, x) needs c.s == c.o).
            out = []
            for c in matched:
                if exclude is not None and c == exclude:
                    continue
                binds: Dict[Term, int] = {}
                ok = True
                for pos, term in ct.free_at:
                    v = c[pos]
                    prev = binds.get(term)
                    if prev is None:
                        binds[term] = v
                    elif prev != v:
                        ok = False
                        break
                if ok:
                    out.append(c)
            return out
        if exclude is not None:
            return [c for c in matched if c != exclude]
        return list(matched)

    def _arc_consistency(self) -> None:
        """Build candidate domains and narrow them to arc consistency.

        Domains start as "unconstrained" and each revision intersects
        them with the values a triple's surviving candidates support, so
        the first sweep both constructs and prunes them; later sweeps
        only fire along arcs whose domain actually shrank.  On a
        tree-shaped component this is exactly Yannakakis' semijoin
        reduction; on cyclic components it is still a sound polynomial
        filter before backtracking.
        """
        guard = current_guard()
        domains = self.domains
        base = self.base
        queue = set(range(len(self.triples)))
        while queue:
            if guard is not None:
                guard.tick()
            i = min(queue)  # deterministic order (fixpoint is unique anyway)
            queue.discard(i)
            ct = self.triples[i]
            free_at = ct.free_at
            if not free_at:
                continue
            cands = base[i]
            if len(free_at) == 1:
                (pos, term), = free_at
                dom = domains.get(term)
                if dom is not None:
                    cands = [c for c in cands if c[pos] in dom]
                supported = ({c[pos] for c in cands},)
            elif len(free_at) == 2 and len(ct.free) == 2:
                (pos_a, term_a), (pos_b, term_b) = free_at
                dom_a = domains.get(term_a)
                dom_b = domains.get(term_b)
                if dom_a is not None and dom_b is not None:
                    cands = [
                        c for c in cands
                        if c[pos_a] in dom_a and c[pos_b] in dom_b
                    ]
                elif dom_a is not None:
                    cands = [c for c in cands if c[pos_a] in dom_a]
                elif dom_b is not None:
                    cands = [c for c in cands if c[pos_b] in dom_b]
                supported = (
                    {c[pos_a] for c in cands},
                    {c[pos_b] for c in cands},
                )
            else:
                kept = []
                per_term: Dict[Term, Set[int]] = {t: set() for t in ct.free}
                for c in cands:
                    ok = True
                    for pos, term in free_at:
                        dom = domains.get(term)
                        if dom is not None and c[pos] not in dom:
                            ok = False
                            break
                    if ok:
                        kept.append(c)
                        for pos, term in free_at:
                            per_term[term].add(c[pos])
                cands = kept
                supported = tuple(per_term[t] for t in ct.free)
            base[i] = cands
            if not cands:
                self.failed = True
                return
            for term, values in zip(ct.free, supported):
                old = domains.get(term)
                if old is None or len(values) < len(old):
                    domains[term] = values
                    if old is not None:
                        for j in self.term_to_triples[term]:
                            if j != i:
                                queue.add(j)

    # -- introspection ---------------------------------------------------

    def plan(self) -> ComponentPlan:
        return ComponentPlan(
            triples=tuple(ct.triple for ct in self.triples),
            free_terms=self.free_terms,
            strategy=self.strategy,
            domain_sizes=tuple(
                (t, len(self.domains.get(t, ()))) for t in self.free_terms
            ),
            pruned_empty=self.failed,
        )

    def with_exclude(self, exclude: Row) -> "_ComponentSolver":
        """A copy of this (prepared) solver with one more excluded row.

        Reuses the compiled triples, base candidate lists and domains:
        only candidates equal to *exclude* are dropped, then arc
        consistency is re-established incrementally.  This is what makes
        the leanness/core loop cheap: the expensive per-graph
        preparation happens once, not once per excluded triple.
        """
        guard = current_guard()
        if guard is not None:
            guard.tick()
        clone = object.__new__(_ComponentSolver)
        clone.triples = self.triples
        clone.target = self.target
        clone.exclude = exclude
        clone.free_terms = self.free_terms
        clone.term_to_triples = self.term_to_triples
        clone.strategy = self.strategy
        clone.static_order = self.static_order
        clone.failed = self.failed
        clone.domains = {t: set(d) for t, d in self.domains.items()}
        touched = []
        base = []
        for i, cands in enumerate(self.base):
            if exclude in self.base[i]:
                cands = [c for c in cands if c != exclude]
                touched.append(i)
            base.append(list(cands))
            if not cands:
                clone.failed = True
        clone.base = base
        if touched and not clone.failed:
            # Re-derive the affected domains, then restore arc consistency.
            for i in touched:
                ct = clone.triples[i]
                supported: Dict[Term, Set[int]] = {t: set() for t in ct.free}
                for c in clone.base[i]:
                    for pos, term in ct.free_at:
                        supported[term].add(c[pos])
                for term in ct.free:
                    clone.domains[term] &= supported[term]
            if any(not d for d in clone.domains.values()):
                clone.failed = True
            else:
                clone._arc_consistency()
        return clone

    # -- search ----------------------------------------------------------

    def solutions(self, ordered: bool = True) -> Iterator[Dict[Term, Term]]:
        """Enumerate this component's assignments, deterministically.

        The search state (``assignment``) holds term IDs; each solution
        is decoded back to terms at yield time, so callers never see
        the encoding.
        """
        if self.failed:
            return
        if not self.triples:
            yield {}
            return

        target = self.target
        rows = target.rows
        decode = target.terms.decode
        exclude = self.exclude
        triples = self.triples
        domains = self.domains
        n = len(triples)
        assignment: Dict[Term, int] = {}
        satisfied = [False] * n
        counts = [len(b) for b in self.base]
        static_order = self.static_order
        term_to_triples = self.term_to_triples

        def choose() -> int:
            if static_order is not None:
                for i in static_order:
                    if not satisfied[i]:
                        return i
                return -1
            best = -1
            best_count = None
            for i in range(n):
                if satisfied[i]:
                    continue
                c = counts[i]
                if best_count is None or c < best_count:
                    best, best_count = i, c
                    if c == 0:
                        break
            return best

        def bind(i: int, cand: Row):
            """Commit candidate *cand* for triple *i*; None on conflict.

            Returns an undo record: (bound terms, satisfied triples,
            count restores).  Marks as satisfied every triple that the
            new bindings fully instantiate (checking membership), and
            refreshes the candidate counts of every other affected
            triple (forward checking: a zero count is a dead end).
            """
            bound_terms: List[Term] = []
            marked: List[int] = [i]
            restores: List[Tuple[int, int]] = []
            satisfied[i] = True
            ok = True
            for pos, term in triples[i].free_at:
                if term in assignment:
                    # Already bound (by an earlier position of this very
                    # candidate, or a previous triple): must agree.
                    if assignment[term] != cand[pos]:
                        ok = False
                        break
                    continue
                assignment[term] = cand[pos]
                bound_terms.append(term)
            if ok:
                affected: Set[int] = set()
                for term in bound_terms:
                    affected.update(term_to_triples[term])
                for j in sorted(affected):
                    if satisfied[j]:
                        continue
                    s, p, o = triples[j].args(assignment)
                    if s is not None and p is not None and o is not None:
                        t = (s, p, o)
                        if t in rows and (exclude is None or t != exclude):
                            satisfied[j] = True
                            marked.append(j)
                        else:
                            ok = False
                            break
                    else:
                        restores.append((j, counts[j]))
                        counts[j] = target.count(s, p, o)
                        if counts[j] == 0:
                            ok = False
                            break
            undo = (bound_terms, marked, restores)
            if ok:
                return undo
            _unbind(undo)
            return None

        def _unbind(undo) -> None:
            bound_terms, marked, restores = undo
            for term in bound_terms:
                del assignment[term]
            for j in marked:
                satisfied[j] = False
            for j, old in restores:
                counts[j] = old

        def candidates(i: int) -> List[Row]:
            s, p, o = triples[i].args(assignment)
            out: List[Row] = []
            for c in target.match(s, p, o):
                if exclude is not None and c == exclude:
                    continue
                ok = True
                binds: Dict[Term, int] = {}
                for pos, term in triples[i].free_at:
                    if term in assignment:
                        continue  # match already pinned this position
                    v = c[pos]
                    prev = binds.get(term)
                    if prev is None:
                        if v not in domains[term]:
                            ok = False
                            break
                        binds[term] = v
                    elif prev != v:
                        ok = False
                        break
                if ok:
                    out.append(c)
            if ordered:
                # Deterministic enumeration; witness-only callers (a
                # Boolean answer) may skip the sort.  Rows sort as plain
                # int tuples — the order-isomorphic dictionary makes
                # this identical to the term-level sort-key order.
                out.sort()
            return out

        backtracks = 0
        found = 0
        # Resolved once per enumeration: the ambient budget guard.  One
        # candidate tried = one step; with no guard installed the cost
        # per candidate is a single ``is not None`` test.
        guard = current_guard()

        def search(remaining: int) -> Iterator[Dict[Term, Term]]:
            nonlocal backtracks
            if remaining == 0:
                yield {term: decode(v) for term, v in assignment.items()}
                return
            i = choose()
            if i < 0:
                return
            for cand in candidates(i):
                if guard is not None:
                    guard.tick()
                undo = bind(i, cand)
                if undo is None:
                    backtracks += 1  # rejected candidate: dead end
                    continue
                yield from search(remaining - len(undo[1]))
                _unbind(undo)
                backtracks += 1  # binding undone after exploration

        # Solutions are counted eagerly (a witness-only caller abandons
        # the generator right after the first yield, and its GC-time
        # finalization may run after instrumentation was switched off);
        # the hot backtrack tally stays local and flushes once, into
        # the registry that was active when enumeration started.
        reg = OBS.registry if OBS.enabled else None
        try:
            for sol in search(n):
                found += 1
                if OBS.enabled:
                    OBS.registry.inc("planner.solutions")
                yield sol
        finally:
            flush_reg = OBS.registry if OBS.enabled else reg
            if flush_reg is not None:
                flush_reg.inc("planner.backtracks", backtracks)


class _PreparedMatch:
    """A planned pattern/target pair, ready to enumerate or explain."""

    __slots__ = (
        "partial",
        "components",
        "failed",
        "ground_checked",
        "ground_ok",
        "exclude_row",
    )

    def __init__(
        self,
        pattern: Sequence[Triple],
        target: RDFGraph,
        frozen: Iterable[Term] = (),
        partial: Optional[Dict[Term, Term]] = None,
        exclude: Optional[Triple] = None,
    ):
        with OBS.span("planner.prepare", pattern=len(pattern)) as span:
            self._prepare(pattern, target, frozen, partial, exclude)
            if OBS.enabled:
                OBS.registry.inc("planner.prepared")
                span.annotate(
                    components=len(self.components),
                    strategies=",".join(
                        s.strategy for s in self.components
                    ),
                    failed=self.failed,
                )

    def _prepare(
        self,
        pattern: Sequence[Triple],
        target: RDFGraph,
        frozen: Iterable[Term],
        partial: Optional[Dict[Term, Term]],
        exclude: Optional[Triple],
    ) -> None:
        frozen_set = frozenset(frozen)
        self.partial: Dict[Term, Term] = dict(partial or {})
        self.ground_checked = 0
        self.ground_ok = True

        # Everything from here on runs against the target's cached
        # encoded view.  Pattern constants resolve through a
        # non-interning lookup; constants the target never mentions get
        # distinct negative sentinel IDs (distinct so two different
        # unknown constants never alias one compiled-triple shape).
        enc = target.encoded()
        lookup = enc.terms.lookup
        missing: Dict[Term, int] = {}

        def encode(term: Term) -> int:
            i = lookup(term)
            if i is None:
                i = missing.get(term)
                if i is None:
                    i = -1 - len(missing)
                    missing[term] = i
            return i

        exclude_row: Optional[Row] = None
        if exclude is not None:
            er = enc.terms.lookup_triple(exclude)
            # A row the target does not even mention can never be
            # matched, so the exclusion is vacuous when er is None.
            exclude_row = er if er is not None and er in enc.rows else None
        self.exclude_row = exclude_row

        compiled: Dict[Tuple, _CompiledTriple] = {}
        for t in pattern:
            ct = _CompiledTriple(t, frozen_set, self.partial, encode)
            if not ct.free:
                # Fully constant (possibly via partial): check membership.
                self.ground_checked += 1
                instance = ct.const
                if instance not in enc.rows or (
                    exclude_row is not None and instance == exclude_row
                ):
                    self.ground_ok = False
            elif ct.key not in compiled:
                compiled[ct.key] = ct

        ordered = sorted(compiled.values(), key=lambda ct: ct.key)

        # Union-find over free terms to split connected components.
        parent: Dict[Term, Term] = {}

        def find(x: Term) -> Term:
            while parent[x] is not x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for ct in ordered:
            for term in ct.free:
                parent.setdefault(term, term)
            root = find(ct.free[0])
            for term in ct.free[1:]:
                r = find(term)
                if r is not root:
                    parent[r] = root

        groups: Dict[Term, List[_CompiledTriple]] = {}
        for ct in ordered:
            groups.setdefault(find(ct.free[0]), []).append(ct)

        # Components in the deterministic order of their first triple.
        component_lists = sorted(groups.values(), key=lambda g: g[0].key)
        self.components = [
            _ComponentSolver(group, enc, exclude_row)
            for group in component_lists
        ]
        self.failed = not self.ground_ok or any(
            s.failed for s in self.components
        )

    def plan(self) -> MatchPlan:
        return MatchPlan(
            ground_checked=self.ground_checked,
            ground_ok=self.ground_ok,
            components=tuple(s.plan() for s in self.components),
        )

    def assignments(self) -> Iterator[Dict[Term, Term]]:
        guard = current_guard()
        if self.failed:
            return
        if not self.components:
            if guard is not None:
                guard.note_result()
            yield dict(self.partial)
            return

        solvers = self.components
        k = len(solvers)
        caches: List[List[Dict[Term, Term]]] = [[] for _ in range(k)]
        gens = [s.solutions() for s in solvers]
        exhausted = [False] * k

        def component_solutions(i: int) -> Iterator[Dict[Term, Term]]:
            yield from caches[i]
            if not exhausted[i]:
                for sol in gens[i]:
                    caches[i].append(sol)
                    yield sol
                exhausted[i] = True

        # Short-circuit: every component must have at least one solution,
        # otherwise the product is empty and enumeration order would
        # degenerate into re-solving non-empty components for nothing.
        def product(i: int, acc: Dict[Term, Term]) -> Iterator[Dict[Term, Term]]:
            if i == k:
                yield dict(acc)
                return
            for sol in component_solutions(i):
                merged = dict(acc)
                merged.update(sol)
                yield from product(i + 1, merged)

        try:
            for i in range(k):
                if not any(True for _ in _first(component_solutions(i))):
                    return

            if guard is None:
                yield from product(0, dict(self.partial))
            else:
                # Result-cap accounting: each emitted assignment counts
                # against the ambient budget's ``max_results``.
                for sol in product(0, dict(self.partial)):
                    guard.note_result()
                    yield sol
        finally:
            # The per-component generators sit in reference cycles (the
            # cache closures), so an abandoned enumeration would only
            # finalize them at an arbitrary later GC pass; when a
            # profiling window is open, close them here so their
            # instrumentation flushes before it ends.  While disabled,
            # leave finalization to GC — eagerly unwinding the search
            # stack would tax every witness-only caller for nothing.
            if OBS.enabled:
                for gen in gens:
                    gen.close()


def _first(it: Iterator) -> Iterator:
    for x in it:
        yield x
        return


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------


def iter_assignments(
    pattern: Sequence[Triple],
    target: RDFGraph,
    frozen: Iterable[Term] = (),
    partial: Optional[Dict[Term, Term]] = None,
    exclude: Optional[Triple] = None,
) -> Iterator[Dict[Term, Term]]:
    """Enumerate assignments of the pattern's free terms into *target*.

    Drop-in engine behind :func:`repro.core.homomorphism.iter_assignments`
    (see there for the parameter semantics); *exclude* additionally bans
    any pattern triple from instantiating to that exact target triple.
    Enumeration is deterministic across runs and independent of the
    input order of *pattern* (triples are canonicalized up front).
    """
    prep = _PreparedMatch(pattern, target, frozen, partial, exclude)
    return prep.assignments()


def explain(
    pattern: Sequence[Triple],
    target: RDFGraph,
    frozen: Iterable[Term] = (),
    partial: Optional[Dict[Term, Term]] = None,
) -> MatchPlan:
    """The :class:`MatchPlan` that :func:`iter_assignments` would execute."""
    return _PreparedMatch(pattern, target, frozen, partial).plan()


def prepare_match(
    pattern: Sequence[Triple],
    target: RDFGraph,
    frozen: Iterable[Term] = (),
    partial: Optional[Dict[Term, Term]] = None,
    exclude: Optional[Triple] = None,
) -> _PreparedMatch:
    """Plan once, enumerate many times.

    Returns the prepared pattern/target pair whose
    :meth:`~_PreparedMatch.assignments` can be re-called — each call
    starts a fresh deterministic enumeration over the same planned
    state (component split, arc-consistent domains, strategies).  The
    query-plan cache holds these so repeated traffic skips the prepare
    phase entirely; the prepared state is only valid as long as the
    matchings of *pattern* into *target* are unchanged.
    """
    return _PreparedMatch(pattern, target, frozen, partial, exclude)


def boolean_match_acyclic(
    pattern: Sequence[Triple], target: RDFGraph
) -> Optional[bool]:
    """Fast Boolean matching when every component routes to ``semijoin``.

    Returns True/False when the planner can decide the match entirely
    through the acyclic pipeline (arc-consistency = semijoin reduction +
    backtrack-free witness search), or None when some component is
    cyclic and the caller should pick a general procedure.  This is the
    polynomial path of Section 2.4 run directly on the graph indexes.
    """
    prep = _PreparedMatch(pattern, target)
    if any(s.strategy != SEMIJOIN for s in prep.components):
        return None
    if prep.failed:
        return False
    for solver in prep.components:
        if not any(True for _ in _first(solver.solutions(ordered=False))):
            return False
    return True


def proper_endomorphism_assignment(
    graph: RDFGraph,
) -> Optional[Dict[Term, Term]]:
    """An assignment witnessing ``μ(G) ⊊ G``, or None if *graph* is lean.

    Tries to exclude each non-ground triple in deterministic order
    (Theorem 3.10's construction).  The pattern preparation — component
    split, candidate domains, arc consistency — is computed once against
    the full graph and *reused* across every excluded triple via
    :meth:`_ComponentSolver.with_exclude`, instead of rebuilding target
    indexes and domains from scratch per exclusion.
    """
    if graph.is_ground():
        return None
    base = _PreparedMatch(list(graph), graph)
    if base.failed:  # cannot happen for a self-match, but stay safe
        return None
    lookup_triple = graph.encoded().terms.lookup_triple
    guard = current_guard()
    for t in graph.sorted_triples():
        if t.is_ground():
            continue
        if guard is not None:
            guard.tick()  # one excluded-triple search attempted
        row = lookup_triple(t)  # t ∈ graph, so always resolvable
        solvers = [s.with_exclude(row) for s in base.components]
        if any(s.failed for s in solvers):
            continue
        found: List[Dict[Term, Term]] = []
        for solver in solvers:
            sol = None
            for sol in _first(solver.solutions()):
                break
            if sol is None:
                found = []
                break
            found.append(sol)
        if found:
            assignment: Dict[Term, Term] = {}
            for sol in found:
                assignment.update(sol)
            return assignment
    return None
