"""Sorted-run columnar relations over dictionary-encoded triples.

This module is the array-native substrate under the ``arrays`` closure
kernel, the planner's candidate-domain construction and the Datalog
engine's batch deduplication (ROADMAP item 5).  A :class:`SortedRuns`
relation holds a set of encoded ``(s, p, o)`` rows as **sorted flat
``array('q')`` columns** in up to three permutation orders — SPO, POS
and OSP — each order exposing contiguous *runs* per key prefix:

.. code-block:: text

        SPO order                POS order                OSP order
    s: [0 0 1 1 1 4]         p: [0 0 0 2 2 5]         o: [1 1 3 3 7 9]
    p: [0 2 0 0 5 2]         o: [1 3 9 1 7 3]         s: [0 1 0 4 1 1]
    o: [1 3 1 3 3 7]         s: [0 1 1 0 1 4]         p: [0 0 2 2 2 5]
       └─┴─ run s=0             └─┴─┴─ run p=0            └─┴─ run o=1

Every lookup with a bound prefix is a pair of galloping binary searches
(:func:`gallop_left` / :func:`gallop_right`) returning a ``[lo, hi)``
slice; set algebra is sorted-merge (:func:`merge_union_sorted`,
:func:`merge_diff_sorted`) and joins are leapfrog-style two-relation
merges over sorted key groups (:func:`merge_join_pairs`) — no per-tuple
hashing anywhere.  The SPO columns are the canonical storage; the POS
and OSP permutations are materialized lazily on first use, so a
relation that is only ever iterated (e.g. a closure result headed
straight to decode) never pays for them.
"""

from __future__ import annotations

import heapq
from array import array
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

Row = Tuple[int, int, int]
Pair = Tuple[int, int]

__all__ = [
    "SortedRuns",
    "OrderView",
    "gallop_left",
    "gallop_right",
    "dedup_sorted",
    "merge_union_sorted",
    "merge_diff_sorted",
    "merge_union_many",
    "merge_join_pairs",
    "rows_to_array",
    "rows_from_array",
]


# ----------------------------------------------------------------------
# Galloping binary search
# ----------------------------------------------------------------------

def gallop_left(col: Sequence[int], key: int, lo: int, hi: int) -> int:
    """First index in ``col[lo:hi]`` (sorted ascending) with value >= key.

    Gallops from *lo* in doubling steps before bisecting, so a probe
    that lands near the start of the window — the common case when a
    merge walks keys in ascending order — costs O(log distance) rather
    than O(log window).
    """
    if lo >= hi or col[lo] >= key:
        return lo
    # Invariant: col[lo + step_prev] < key.  Double until overshoot.
    step = 1
    while lo + step < hi and col[lo + step] < key:
        step <<= 1
    left = lo + (step >> 1)  # last probe known to be < key
    right = min(lo + step, hi)
    while left < right:
        mid = (left + right) >> 1
        if col[mid] < key:
            left = mid + 1
        else:
            right = mid
    return left


def gallop_right(col: Sequence[int], key: int, lo: int, hi: int) -> int:
    """First index in ``col[lo:hi]`` (sorted ascending) with value > key."""
    if lo >= hi or col[lo] > key:
        return lo
    step = 1
    while lo + step < hi and col[lo + step] <= key:
        step <<= 1
    left = lo + (step >> 1)
    right = min(lo + step, hi)
    while left < right:
        mid = (left + right) >> 1
        if col[mid] <= key:
            left = mid + 1
        else:
            right = mid
    return left


# ----------------------------------------------------------------------
# Sorted-merge set algebra over sorted row sequences
# ----------------------------------------------------------------------

def dedup_sorted(rows: List) -> List:
    """Drop adjacent duplicates from an already-sorted list (new list)."""
    if not rows:
        return rows
    out = [rows[0]]
    push = out.append
    prev = rows[0]
    for r in rows:
        if r != prev:
            push(r)
            prev = r
    return out


def merge_union_sorted(a: List, b: List) -> List:
    """Union of two sorted duplicate-free lists, one merge pass."""
    if not a:
        return list(b)
    if not b:
        return list(a)
    out: List = []
    push = out.append
    i = j = 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        x, y = a[i], b[j]
        if x < y:
            push(x)
            i += 1
        elif x > y:
            push(y)
            j += 1
        else:
            push(x)
            i += 1
            j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    return out


def merge_diff_sorted(a: List, b: List) -> List:
    """``a − b`` for sorted lists; *a* may contain duplicates (dropped)."""
    out: List = []
    push = out.append
    i = j = 0
    la, lb = len(a), len(b)
    prev = None
    while i < la and j < lb:
        x, y = a[i], b[j]
        if x < y:
            if x != prev:
                push(x)
                prev = x
            i += 1
        elif x > y:
            j += 1
        else:
            prev = x  # suppress later duplicates of a matched element
            i += 1
    while i < la:
        x = a[i]
        if x != prev:
            push(x)
            prev = x
        i += 1
    return out


def merge_union_many(sorted_lists: Sequence[List]) -> List:
    """Union of many sorted lists (duplicates within/across allowed).

    Binary merges for up to two inputs; a ``heapq.merge`` k-way pass
    with adjacent-duplicate suppression beyond that — the merge step of
    the spill pool (:mod:`repro.ingest.spill`) and of the partitioned
    closure's final shard collection.
    """
    live = [lst for lst in sorted_lists if lst]
    if not live:
        return []
    if len(live) == 1:
        return dedup_sorted(live[0])
    if len(live) == 2:
        return merge_union_sorted(dedup_sorted(live[0]), dedup_sorted(live[1]))
    out: List = []
    push = out.append
    prev = None
    for row in heapq.merge(*live):
        if row != prev:
            push(row)
            prev = row
    return out


# ----------------------------------------------------------------------
# Flat-array (de)serialization — the spill format
# ----------------------------------------------------------------------

def rows_to_array(rows: Sequence[Row]) -> array:
    """Pack row tuples into one flat ``array('q')`` of ``3 * len(rows)``
    values (s, p, o interleaved) — the on-disk spill representation
    written with ``array.tofile`` and read back with ``array.fromfile``.
    """
    flat = array("q", bytes(24 * len(rows)))
    i = 0
    for s, p, o in rows:
        flat[i] = s
        flat[i + 1] = p
        flat[i + 2] = o
        i += 3
    return flat


def rows_from_array(flat: array) -> List[Row]:
    """Rebuild row tuples from a flat interleaved ``array('q')``."""
    if len(flat) % 3:
        raise ValueError(f"flat row array length {len(flat)} not a multiple of 3")
    it = iter(flat)
    return list(zip(it, it, it))


# ----------------------------------------------------------------------
# Leapfrog merge-join over sorted pair lists
# ----------------------------------------------------------------------

def merge_join_pairs(
    left: List[Pair],
    right: List[Pair],
    out: List[Pair],
    tallies: Optional[dict] = None,
) -> None:
    """Leapfrog two-relation merge-join: emit ``(x, y)`` for every
    ``(k, x) ∈ left`` and ``(k, y) ∈ right`` sharing a key *k*.

    Both inputs are sorted by key (first component).  The two cursors
    leapfrog: whichever side is behind seeks forward to the other's
    key, matching key groups produce their cross product.  ``out`` is
    extended in place so callers can accumulate several joins into one
    batch; *tallies* (a plain dict) collects ``probes``/``emits``
    counts for the obs flush at the kernel boundary.
    """
    i = j = 0
    ln, rn = len(left), len(right)
    probes = emits = 0
    push = out.append
    while i < ln and j < rn:
        k = left[i][0]
        k2 = right[j][0]
        probes += 1
        if k < k2:
            # Seek left forward to k2 (gallop: doubling probe then scan).
            i += 1
            while i < ln and left[i][0] < k2:
                i += 1
        elif k2 < k:
            j += 1
            while j < rn and right[j][0] < k:
                j += 1
        else:
            i2 = i + 1
            while i2 < ln and left[i2][0] == k:
                i2 += 1
            j2 = j + 1
            while j2 < rn and right[j2][0] == k:
                j2 += 1
            for x in range(i, i2):
                a = left[x][1]
                for y in range(j, j2):
                    push((a, right[y][1]))
            emits += (i2 - i) * (j2 - j)
            i, j = i2, j2
    if tallies is not None:
        tallies["probes"] = tallies.get("probes", 0) + probes
        tallies["emits"] = tallies.get("emits", 0) + emits


# ----------------------------------------------------------------------
# Order views and the relation type
# ----------------------------------------------------------------------

class OrderView:
    """One sort order of a relation: three parallel sorted columns.

    ``c0``/``c1``/``c2`` hold the rows permuted into this order's
    position sequence (e.g. the POS view's ``c0`` is the predicate
    column).  Rows are sorted lexicographically by ``(c0, c1, c2)``, so
    every bound prefix is one contiguous ``[lo, hi)`` run.
    """

    __slots__ = ("c0", "c1", "c2", "n")

    def __init__(self, c0: array, c1: array, c2: array):
        self.c0 = c0
        self.c1 = c1
        self.c2 = c2
        self.n = len(c0)

    def range1(self, k0: int, lo: int = 0, hi: Optional[int] = None) -> Tuple[int, int]:
        """The ``[lo, hi)`` run of rows whose first column equals *k0*."""
        if hi is None:
            hi = self.n
        left = gallop_left(self.c0, k0, lo, hi)
        if left == hi or self.c0[left] != k0:
            return left, left
        return left, gallop_right(self.c0, k0, left, hi)

    def range2(self, k0: int, k1: int) -> Tuple[int, int]:
        """The run with first column *k0* and second column *k1*."""
        lo, hi = self.range1(k0)
        if lo == hi:
            return lo, lo
        left = gallop_left(self.c1, k1, lo, hi)
        if left == hi or self.c1[left] != k1:
            return left, left
        return left, gallop_right(self.c1, k1, left, hi)

    def pairs12(self, lo: int, hi: int) -> List[Pair]:
        """``(c1, c2)`` pairs of the run — sorted, since c0 is constant."""
        return list(zip(self.c1[lo:hi], self.c2[lo:hi]))

    def pairs21(self, lo: int, hi: int) -> List[Pair]:
        """``(c2, c1)`` pairs of the run (not sorted; sort if needed)."""
        return list(zip(self.c2[lo:hi], self.c1[lo:hi]))

    def col2_values(self, lo: int, hi: int) -> array:
        return self.c2[lo:hi]

    def groups(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(key, lo, hi)`` for each distinct first-column run."""
        c0 = self.c0
        n = self.n
        lo = 0
        while lo < n:
            k = c0[lo]
            hi = lo + 1
            while hi < n and c0[hi] == k:
                hi += 1
            yield k, lo, hi
            lo = hi


def _columns_from_rows(rows: Sequence[Tuple[int, int, int]], a: int, b: int, c: int):
    c0 = array("q", bytes(8 * len(rows)))
    c1 = array("q", bytes(8 * len(rows)))
    c2 = array("q", bytes(8 * len(rows)))
    for i, r in enumerate(rows):
        c0[i] = r[a]
        c1[i] = r[b]
        c2[i] = r[c]
    return c0, c1, c2


class SortedRuns:
    """An immutable relation of encoded triples as sorted flat columns.

    The canonical storage is the SPO permutation; the POS and OSP
    permutations — and the tuple *view* used by sorted-merge algebra —
    are derived lazily and cached.  All constructors deduplicate, so a
    relation is always a *set* of rows.
    """

    __slots__ = ("_rows", "_spo", "_pos", "_osp")

    def __init__(self, sorted_unique_rows: List[Row]):
        """Trusted constructor: *sorted_unique_rows* must be sorted and
        duplicate-free (use :meth:`from_rows` otherwise)."""
        self._rows: List[Row] = sorted_unique_rows
        self._spo: Optional[OrderView] = None
        self._pos: Optional[OrderView] = None
        self._osp: Optional[OrderView] = None

    @classmethod
    def from_rows(cls, rows: Iterable[Row]) -> "SortedRuns":
        return cls(sorted(set(map(tuple, rows))))

    # -- view accessors -------------------------------------------------

    def rows(self) -> List[Row]:
        """The sorted duplicate-free row list (the relation's run view)."""
        return self._rows

    @property
    def spo(self) -> OrderView:
        view = self._spo
        if view is None:
            view = OrderView(*_columns_from_rows(self._rows, 0, 1, 2))
            self._spo = view
        return view

    @property
    def pos(self) -> OrderView:
        view = self._pos
        if view is None:
            view = OrderView(
                *_columns_from_rows(sorted(
                    (p, o, s) for s, p, o in self._rows
                ), 0, 1, 2)
            )
            self._pos = view
        return view

    @property
    def osp(self) -> OrderView:
        view = self._osp
        if view is None:
            view = OrderView(
                *_columns_from_rows(sorted(
                    (o, s, p) for s, p, o in self._rows
                ), 0, 1, 2)
            )
            self._osp = view
        return view

    # -- set protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row) -> bool:
        row = tuple(row)
        view = self.spo
        lo, hi = view.range2(row[0], row[1])
        if lo == hi:
            return False
        return gallop_right(view.c2, row[2], lo, hi) > gallop_left(
            view.c2, row[2], lo, hi
        )

    def __eq__(self, other) -> bool:
        if isinstance(other, SortedRuns):
            return self._rows == other._rows
        return NotImplemented

    def __repr__(self) -> str:
        return f"SortedRuns({len(self._rows)} rows)"

    # -- sorted-merge algebra -------------------------------------------

    def union_sorted(self, sorted_new_rows: List[Row]) -> "SortedRuns":
        """Union with a sorted duplicate-free batch, one merge pass."""
        if not sorted_new_rows:
            return self
        return SortedRuns(merge_union_sorted(self._rows, sorted_new_rows))

    def union(self, other: "SortedRuns") -> "SortedRuns":
        return self.union_sorted(other._rows)

    def new_rows(self, sorted_batch: List[Row]) -> List[Row]:
        """``batch − self`` by sorted-merge difference.

        The batch may contain duplicates (rule emissions usually do);
        the result is sorted and duplicate-free — exactly the delta a
        semi-naive round feeds back.
        """
        return merge_diff_sorted(sorted_batch, self._rows)

    def difference(self, other: "SortedRuns") -> "SortedRuns":
        return SortedRuns(merge_diff_sorted(self._rows, other._rows))

    # -- spill (de)serialization ----------------------------------------

    def tofile(self, f) -> int:
        """Serialize to a binary file as one flat ``array('q')`` of
        ``3 * len(self)`` interleaved (s, p, o) values; returns the row
        count the caller must remember to :meth:`fromfile` it back.

        The sort order survives the round trip (rows are written in SPO
        order), so reloading costs one pass — no re-sort, no re-dedup.
        """
        rows_to_array(self._rows).tofile(f)
        return len(self._rows)

    @classmethod
    def fromfile(cls, f, n_rows: int) -> "SortedRuns":
        """Reload a relation spilled by :meth:`tofile` (trusted: the
        file holds exactly *n_rows* rows, sorted and duplicate-free)."""
        flat = array("q")
        flat.fromfile(f, 3 * n_rows)
        return cls(rows_from_array(flat))

    # -- pattern ranges -------------------------------------------------

    def match_range(self, s=None, p=None, o=None):
        """Rows matching a bound prefix, as an iterator over row tuples.

        Dispatches to whichever order makes the bound positions a
        prefix; the (s, o) shape has no contiguous run and falls back
        to filtering the OSP object run.
        """
        if s is None and p is None and o is None:
            return iter(self._rows)
        if p is None and o is None:  # s__
            view = self.spo
            lo, hi = view.range1(s)
            return zip(view.c0[lo:hi], view.c1[lo:hi], view.c2[lo:hi])
        if s is None and o is None:  # _p_
            view = self.pos
            lo, hi = view.range1(p)
            return (
                (sv, p, ov)
                for ov, sv in zip(view.c1[lo:hi], view.c2[lo:hi])
            )
        if s is None and p is None:  # __o
            view = self.osp
            lo, hi = view.range1(o)
            return (
                (sv, pv, o)
                for sv, pv in zip(view.c1[lo:hi], view.c2[lo:hi])
            )
        if o is None:  # sp_
            view = self.spo
            lo, hi = view.range2(s, p)
            return ((s, p, ov) for ov in view.c2[lo:hi])
        if s is None:  # _po
            view = self.pos
            lo, hi = view.range2(p, o)
            return ((sv, p, o) for sv in view.c2[lo:hi])
        if p is None:  # s_o
            view = self.osp
            lo, hi = view.range2(o, s)
            return ((s, pv, o) for pv in view.c2[lo:hi])
        return iter(((s, p, o),)) if (s, p, o) in self else iter(())
