"""RDF graphs: sets of triples with the operations of Section 2.1.

An :class:`RDFGraph` is an immutable set of :class:`~repro.core.terms.Triple`
values together with per-position indexes that make homomorphism search,
closure computation and query matching efficient.  The class implements
the whole vocabulary of Section 2.1:

* ``universe(G)`` — all elements of ``U ∪ B`` occurring in triples;
* ``voc(G)`` — ``universe(G) ∩ U``;
* ground test, simple test (Definition 2.2);
* union ``G1 ∪ G2`` and merge ``G1 + G2`` (blank-renaming union);
* Skolemization ``G*`` and unskolemization ``H_*`` (Section 3.1);
* blank-node-induced cycle detection (Section 2.4).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Iterator, Optional, Set, Tuple

from .interning import EncodedGraph, SKOLEM_PREFIX, TermDict
from .terms import (
    BNode,
    Literal,
    Term,
    Triple,
    URI,
    Variable,
    fresh_bnode_factory,
    sort_key,
)
from .vocabulary import RDFS_VOCABULARY

__all__ = ["RDFGraph", "triple", "graph_from_triples", "SKOLEM_PREFIX"]


def triple(s, p, o) -> Triple:
    """Build a triple, coercing raw strings for convenience.

    Strings become URIs; use explicit :class:`BNode` / :class:`Literal` /
    :class:`Variable` instances for the other kinds.
    """

    def coerce(t):
        if isinstance(t, str):
            return URI(t)
        return t

    return Triple(coerce(s), coerce(p), coerce(o))


class RDFGraph:
    """An RDF graph: a finite set of RDF triples (Definition 2.1).

    Instances are immutable; all "mutating" operations return new graphs.
    Equality is set equality of triples (syntactic identity), *not*
    logical equivalence — use :func:`repro.semantics.entailment.equivalent`
    for the latter and :func:`repro.core.isomorphism.isomorphic` for
    equality up to blank renaming.
    """

    __slots__ = (
        "_triples",
        "_by_predicate",
        "_by_subject",
        "_by_object",
        "_by_sp",
        "_by_po",
        "_by_so",
        "_universe",
        "_bnodes",
        "_hash",
        "_encoded",
        "_lazy_from",
    )

    def __init__(self, triples: Iterable[Triple] = ()):
        items = []
        for t in triples:
            if not isinstance(t, Triple):
                t = Triple(*t)
            if not t.is_valid_rdf():
                raise ValueError(f"not a well-formed RDF triple: {t}")
            items.append(t)
        self._triples: FrozenSet[Triple] = frozenset(items)
        # The object-keyed and (s, o)-keyed indexes are consulted far
        # less often than the other four (o-only and s+o lookups are
        # rare pattern shapes), yet the closure/minimize code creates
        # many short-lived intermediate graphs.  Build them lazily on
        # first access instead of paying two more passes here.
        self._by_object: Optional[Dict[Term, Set[Triple]]] = None
        self._by_so: Optional[Dict[Tuple[Term, Term], Set[Triple]]] = None
        #: Lazily built dictionary-encoded view (see :meth:`encoded`).
        self._encoded: Optional[EncodedGraph] = None
        #: Identity of the row set every derived cache was built from.
        #: Instances are immutable by contract, but if ``_triples`` is
        #: ever rebound in place, accessors notice the mismatch and
        #: rebuild instead of serving stale indexes.
        self._lazy_from: FrozenSet[Triple] = self._triples
        self._build_core()
        self._hash: Optional[int] = hash(self._triples)

    @classmethod
    def _from_trusted(cls, triples: Iterable[Triple]) -> "RDFGraph":
        """Internal: build from known-valid triples, deferring all caches.

        Kernels whose output rows are valid RDF by construction (the
        arrays closure kernel decodes interned rows that were range-
        checked on emission) skip per-triple validation here, and every
        index — including the four the public constructor builds
        eagerly — is materialized lazily on first access.  A closure
        result that goes straight to iteration or set comparison never
        pays for indexes it does not use.
        """
        g = object.__new__(cls)
        g._triples = frozenset(triples)
        g._by_subject = None
        g._by_predicate = None
        g._by_sp = None
        g._by_po = None
        g._by_object = None
        g._by_so = None
        g._encoded = None
        g._universe = None
        g._bnodes = None
        g._hash = None
        g._lazy_from = g._triples
        return g

    # -- derived-cache maintenance --------------------------------------

    def _invalidate_stale(self) -> None:
        """Drop every cache built from a row set other than ``_triples``.

        The mutation guard behind all lazy builds: each accessor calls
        this before trusting a cached structure, so an in-place rebind
        of ``_triples`` (immutability violation or internal surgery)
        yields rebuilt indexes rather than silently stale answers.
        """
        if self._lazy_from is not self._triples:
            self._by_subject = None
            self._by_predicate = None
            self._by_sp = None
            self._by_po = None
            self._by_object = None
            self._by_so = None
            self._encoded = None
            self._universe = None
            self._bnodes = None
            self._hash = None
            self._lazy_from = self._triples

    def _build_core(self) -> None:
        by_subject: Dict[Term, Set[Triple]] = {}
        by_predicate: Dict[Term, Set[Triple]] = {}
        by_sp: Dict[Tuple[Term, Term], Set[Triple]] = {}
        by_po: Dict[Tuple[Term, Term], Set[Triple]] = {}
        universe: Set[Term] = set()
        bnodes: Set[BNode] = set()
        for t in self._triples:
            by_subject.setdefault(t.s, set()).add(t)
            by_predicate.setdefault(t.p, set()).add(t)
            by_sp.setdefault((t.s, t.p), set()).add(t)
            by_po.setdefault((t.p, t.o), set()).add(t)
            for term in t:
                universe.add(term)
                if isinstance(term, BNode):
                    bnodes.add(term)
        self._by_subject = by_subject
        self._by_predicate = by_predicate
        self._by_sp = by_sp
        self._by_po = by_po
        self._universe = frozenset(universe)
        self._bnodes = frozenset(bnodes)

    def _core_indexes(self):
        """The four eager-by-default indexes, built/refreshed on demand."""
        if self._by_subject is None or self._lazy_from is not self._triples:
            self._invalidate_stale()
            self._build_core()
        return self._by_subject, self._by_predicate, self._by_sp, self._by_po

    def _object_index(self) -> Dict[Term, Set[Triple]]:
        idx = self._by_object
        if idx is None or self._lazy_from is not self._triples:
            self._invalidate_stale()
            idx = {}
            for t in self._triples:
                idx.setdefault(t.o, set()).add(t)
            self._by_object = idx
        return idx

    def _so_index(self) -> Dict[Tuple[Term, Term], Set[Triple]]:
        idx = self._by_so
        if idx is None or self._lazy_from is not self._triples:
            self._invalidate_stale()
            idx = {}
            for t in self._triples:
                idx.setdefault((t.s, t.o), set()).add(t)
            self._by_so = idx
        return idx

    def encoded(self) -> EncodedGraph:
        """The graph's dictionary-encoded view, built once on demand.

        The :class:`~repro.core.interning.TermDict` is private to this
        graph and **order-isomorphic** (terms interned in sorted order),
        so ID comparisons agree with term sort-key comparisons — the
        planner depends on that to keep its deterministic enumeration
        order identical to the term-level implementation.
        """
        self._invalidate_stale()
        enc = self._encoded
        if enc is None:
            terms = TermDict.from_sorted_terms(
                sorted(self.universe(), key=sort_key)
            )
            ids = terms._ids
            terms.encodes += 3 * len(self._triples)
            enc = EncodedGraph(
                ((ids[t[0]], ids[t[1]], ids[t[2]]) for t in self._triples),
                terms,
            )
            self._encoded = enc
        return enc

    # ------------------------------------------------------------------
    # Set-like protocol
    # ------------------------------------------------------------------

    @property
    def triples(self) -> FrozenSet[Triple]:
        """The underlying frozenset of triples."""
        return self._triples

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __contains__(self, t) -> bool:
        if not isinstance(t, Triple):
            t = Triple(*t)
        return t in self._triples

    def __eq__(self, other) -> bool:
        if isinstance(other, RDFGraph):
            return self._triples == other._triples
        if isinstance(other, (set, frozenset)):
            return self._triples == other
        return NotImplemented

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = self._hash = hash(self._triples)
        return h

    def __le__(self, other: "RDFGraph") -> bool:
        return self._triples <= other._triples

    def __lt__(self, other: "RDFGraph") -> bool:
        return self._triples < other._triples

    def __ge__(self, other: "RDFGraph") -> bool:
        return self._triples >= other._triples

    def __gt__(self, other: "RDFGraph") -> bool:
        return self._triples > other._triples

    def issubgraph(self, other: "RDFGraph") -> bool:
        """True iff this graph is a subgraph (subset) of *other*."""
        return self._triples <= other._triples

    def __or__(self, other: "RDFGraph") -> "RDFGraph":
        return self.union(other)

    def __add__(self, other: "RDFGraph") -> "RDFGraph":
        return self.merge(other)

    def __sub__(self, other) -> "RDFGraph":
        other_triples = other.triples if isinstance(other, RDFGraph) else frozenset(other)
        return RDFGraph(self._triples - other_triples)

    def __bool__(self) -> bool:
        return bool(self._triples)

    def __repr__(self) -> str:
        return f"RDFGraph({len(self._triples)} triples)"

    def __str__(self) -> str:
        body = ", ".join(str(t) for t in self.sorted_triples())
        return "{" + body + "}"

    def sorted_triples(self):
        """Triples in a deterministic order (for display and hashing)."""
        return sorted(
            self._triples, key=lambda t: (sort_key(t.s), sort_key(t.p), sort_key(t.o))
        )

    # ------------------------------------------------------------------
    # Section 2.1 notions
    # ------------------------------------------------------------------

    def universe(self) -> FrozenSet[Term]:
        """``universe(G)``: the elements of ``UB`` occurring in triples."""
        if self._universe is None or self._lazy_from is not self._triples:
            self._core_indexes()
        return self._universe

    def voc(self) -> FrozenSet[URI]:
        """``voc(G) = universe(G) ∩ U``: the URIs occurring in G."""
        return frozenset(t for t in self.universe() if isinstance(t, URI))

    def bnodes(self) -> FrozenSet[BNode]:
        """The blank nodes occurring in G."""
        if self._bnodes is None or self._lazy_from is not self._triples:
            self._core_indexes()
        return self._bnodes

    def is_ground(self) -> bool:
        """True iff G mentions no blank nodes."""
        return not self.bnodes()

    def is_simple(self) -> bool:
        """True iff G mentions no RDFS vocabulary (Definition 2.2)."""
        return not (RDFS_VOCABULARY & self.voc())

    def predicates(self) -> FrozenSet[Term]:
        """The terms occurring in predicate position."""
        return frozenset(self._core_indexes()[1])

    def subjects(self) -> FrozenSet[Term]:
        """The terms occurring in subject position."""
        return frozenset(self._core_indexes()[0])

    def objects(self) -> FrozenSet[Term]:
        """The terms occurring in object position."""
        return frozenset(self._object_index())

    def union(self, other: "RDFGraph") -> "RDFGraph":
        """``G1 ∪ G2``: set-theoretic union, blank nodes shared."""
        return RDFGraph(self._triples | other._triples)

    def merge(self, other: "RDFGraph") -> "RDFGraph":
        """``G1 + G2``: union after renaming *other*'s blanks apart.

        Per Section 2.1 the merge is unique up to isomorphism; this
        implementation renames deterministically, keeping labels that do
        not clash.
        """
        clashes = self.bnodes() & other.bnodes()
        if not clashes:
            return self.union(other)
        fresh = fresh_bnode_factory(self.bnodes() | other.bnodes())
        renaming = {n: fresh() for n in sorted(clashes, key=sort_key)}
        return self.union(other.rename_bnodes(renaming))

    def rename_bnodes(self, renaming: Dict[BNode, BNode]) -> "RDFGraph":
        """Apply a blank-node renaming (must be injective to preserve ≅)."""

        def rn(term):
            return renaming.get(term, term) if isinstance(term, BNode) else term

        return RDFGraph(Triple(rn(t.s), rn(t.p), rn(t.o)) for t in self._triples)

    # ------------------------------------------------------------------
    # Pattern access (used by the homomorphism solver and rule engine)
    # ------------------------------------------------------------------

    def match(
        self,
        s: Optional[Term] = None,
        p: Optional[Term] = None,
        o: Optional[Term] = None,
    ) -> Iterable[Triple]:
        """Triples matching the given fixed positions (None = wildcard).

        This is the graph's only lookup primitive; the solver composes
        everything else from it.  Lookups use the most selective
        available index.
        """
        if s is not None and p is not None and o is not None:
            t = Triple(s, p, o)
            return (t,) if t in self._triples else ()
        if s is not None and p is not None:
            return self._core_indexes()[2].get((s, p), ())
        if p is not None and o is not None:
            return self._core_indexes()[3].get((p, o), ())
        if s is not None and o is not None:
            return self._so_index().get((s, o), ())
        if s is not None:
            return self._core_indexes()[0].get(s, ())
        if p is not None:
            return self._core_indexes()[1].get(p, ())
        if o is not None:
            return self._object_index().get(o, ())
        return self._triples

    def count(self, s=None, p=None, o=None) -> int:
        """Number of triples matching the given fixed positions.

        Reads the size of the selected index bucket directly instead of
        materializing the matching triples first.
        """
        if s is not None and p is not None and o is not None:
            return 1 if Triple(s, p, o) in self._triples else 0
        if s is not None and p is not None:
            return len(self._core_indexes()[2].get((s, p), ()))
        if p is not None and o is not None:
            return len(self._core_indexes()[3].get((p, o), ()))
        if s is not None and o is not None:
            return len(self._so_index().get((s, o), ()))
        if s is not None:
            return len(self._core_indexes()[0].get(s, ()))
        if p is not None:
            return len(self._core_indexes()[1].get(p, ()))
        if o is not None:
            return len(self._object_index().get(o, ()))
        return len(self._triples)

    # ------------------------------------------------------------------
    # Skolemization (Section 3.1)
    # ------------------------------------------------------------------

    def skolemize(self) -> Tuple["RDFGraph", Dict[URI, BNode]]:
        """Return ``(G*, inverse)``: blanks replaced by fresh constants.

        ``G*`` replaces each blank ``X`` by the Skolem constant ``c_X``
        (a URI with the reserved :data:`SKOLEM_PREFIX`); *inverse* maps
        each Skolem constant back to its blank, for
        :meth:`unskolemize`.
        """
        forward: Dict[BNode, URI] = {
            n: URI(SKOLEM_PREFIX + n.value) for n in self.bnodes()
        }
        inverse = {u: n for n, u in forward.items()}

        def sk(term):
            return forward.get(term, term) if isinstance(term, BNode) else term

        graph = RDFGraph(Triple(sk(t.s), sk(t.p), sk(t.o)) for t in self._triples)
        return graph, inverse

    @staticmethod
    def unskolemize(graph: "RDFGraph", inverse: Dict[URI, BNode]) -> "RDFGraph":
        """``H_*``: replace Skolem constants by their blanks.

        Triples whose predicate position would become a blank node are
        dropped, exactly as Section 3.1 prescribes ("deleting triples
        having blanks as predicates").
        """

        def unsk(term):
            return inverse.get(term, term) if isinstance(term, URI) else term

        result = []
        for t in graph:
            candidate = Triple(unsk(t.s), unsk(t.p), unsk(t.o))
            if candidate.is_valid_rdf():
                result.append(candidate)
        return RDFGraph(result)

    # ------------------------------------------------------------------
    # Blank-node-induced cycles (Section 2.4)
    # ------------------------------------------------------------------

    def has_blank_cycle(self) -> bool:
        """True iff G has a cycle induced by blank nodes (Section 2.4).

        A blank-induced cycle is a sequence ``x1, ..., xn = x1`` of
        universe elements, each consecutive pair linked by a triple in
        either direction, with every element on the cycle a blank node.
        Simple graphs without such cycles correspond to acyclic
        conjunctive queries and admit polynomial entailment testing.

        Following the conjunctive-query reading (blank nodes are the
        variables, the paper's stated motivation), two blanks co-occurring
        in more than one triple — or twice in one triple — also count as
        a (length-2) cycle, since the corresponding query hypergraph is
        cyclic.
        """
        # Build the adjacency among blank nodes only: an edge whenever
        # some triple links two blanks (in either subject/object role).
        adjacency: Dict[BNode, Set[BNode]] = {n: set() for n in self.bnodes()}
        edge_multiplicity: Dict[Tuple[BNode, BNode], int] = {}
        for t in self._triples:
            if isinstance(t.s, BNode) and isinstance(t.o, BNode):
                if t.s == t.o:
                    return True  # self-loop on a blank: length-1 cycle
                adjacency[t.s].add(t.o)
                adjacency[t.o].add(t.s)
                key = (min(t.s, t.o), max(t.s, t.o))
                edge_multiplicity[key] = edge_multiplicity.get(key, 0) + 1
        if any(m > 1 for m in edge_multiplicity.values()):
            return True  # two parallel triples between the same blanks
        # Undirected cycle detection among blanks via DFS.
        visited: Set[BNode] = set()
        for start in self.bnodes():
            if start in visited:
                continue
            stack = [(start, None)]
            parents: Dict[BNode, Optional[BNode]] = {start: None}
            while stack:
                node, parent = stack.pop()
                if node in visited:
                    continue
                visited.add(node)
                for neighbour in adjacency[node]:
                    if neighbour == parent:
                        continue
                    if neighbour in parents and neighbour in visited:
                        return True
                    if neighbour not in parents:
                        parents[neighbour] = node
                    stack.append((neighbour, node))
        return False

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_tuples(cls, tuples: Iterable[Tuple]) -> "RDFGraph":
        """Build a graph from raw (s, p, o) tuples, coercing strings to URIs."""
        return cls(triple(*t) for t in tuples)

    def map_terms(self, fn: Callable[[Term], Term]) -> "RDFGraph":
        """Apply *fn* to every term position; drops ill-formed results."""
        result = []
        for t in self._triples:
            candidate = Triple(fn(t.s), fn(t.p), fn(t.o))
            if candidate.is_valid_rdf():
                result.append(candidate)
        return RDFGraph(result)


def graph_from_triples(*tuples) -> RDFGraph:
    """Shorthand: ``graph_from_triples((s,p,o), ...)`` with string coercion."""
    return RDFGraph.from_tuples(tuples)
