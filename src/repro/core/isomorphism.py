"""Isomorphism of RDF graphs (Section 2.1).

``G1 ≅ G2`` iff there are maps ``μ1, μ2`` with ``μ1(G1) = G2`` and
``μ2(G2) = G1`` — equivalently, iff the graphs are equal up to a
bijective renaming of blank nodes.  Uniqueness statements in the paper
(core, normal form, merge) are all "up to isomorphism", so this decision
procedure underlies many tests.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional

from .graph import RDFGraph
from .homomorphism import iter_assignments
from .maps import Map
from .terms import BNode

__all__ = ["isomorphic", "find_isomorphism", "canonical_form"]


def _blank_signature(graph: RDFGraph, node: BNode):
    """An isomorphism-invariant profile of one blank node.

    Counts, for each (position, ground-context) combination, the triples
    the node participates in.  Used only for fast rejection; the search
    below is exact.
    """
    profile = Counter()
    for t in graph.match(s=node):
        profile[("s", t.p if not isinstance(t.p, BNode) else None,
                 t.o if not isinstance(t.o, BNode) else None)] += 1
    for t in graph.match(o=node):
        profile[("o", t.s if not isinstance(t.s, BNode) else None,
                 t.p if not isinstance(t.p, BNode) else None)] += 1
    return frozenset(profile.items())


def find_isomorphism(g1: RDFGraph, g2: RDFGraph) -> Optional[Map]:
    """A bijective blank renaming μ with ``μ(g1) = g2``, or None."""
    if len(g1) != len(g2):
        return None
    b1, b2 = g1.bnodes(), g2.bnodes()
    if len(b1) != len(b2):
        return None
    # Ground triples must coincide exactly (they are fixed by any map).
    ground1 = {t for t in g1 if t.is_ground()}
    ground2 = {t for t in g2 if t.is_ground()}
    if ground1 != ground2:
        return None
    # Signature multisets must match.
    sig1 = Counter(_blank_signature(g1, n) for n in b1)
    sig2 = Counter(_blank_signature(g2, n) for n in b2)
    if sig1 != sig2:
        return None
    target_blanks = b2
    for assignment in iter_assignments(list(g1), g2):
        images = [v for v in assignment.values() if isinstance(v, BNode)]
        if len(set(images)) != len(assignment):
            continue  # not injective, or some blank mapped to a constant
        if set(images) != set(target_blanks):
            continue  # not surjective onto g2's blanks
        m = Map({n: v for n, v in assignment.items() if isinstance(n, BNode)})
        if m.apply_graph(g1) == g2:
            return m
    return None


def isomorphic(g1: RDFGraph, g2: RDFGraph) -> bool:
    """``G1 ≅ G2``: equality up to bijective blank renaming."""
    return find_isomorphism(g1, g2) is not None


def canonical_form(graph: RDFGraph) -> RDFGraph:
    """A canonical representative of the isomorphism class of *graph*.

    Blank nodes are renamed to ``_:c0, _:c1, ...`` following an
    iterated-refinement ordering; when refinement cannot separate two
    blanks the tie is broken by trying all orders of the ambiguous block
    and taking the lexicographically least resulting graph.  Exponential
    in the size of the largest ambiguous block (as expected: canonical
    labelling subsumes graph isomorphism), but linear-ish in practice.
    """
    blanks = sorted(graph.bnodes(), key=lambda n: n.value)
    if not blanks:
        return graph
    # Initial colouring from local signatures, then refine by neighbour
    # colours until stable.
    colour: Dict[BNode, tuple] = {
        n: (repr(sorted(_blank_signature(graph, n), key=repr)),) for n in blanks
    }
    for _ in range(len(blanks)):
        new_colour = {}
        for n in blanks:
            neighbour_profile = []
            for t in graph.match(s=n):
                other = t.o
                neighbour_profile.append(
                    ("o", str(t.p), colour.get(other, ("const", str(other))))
                )
            for t in graph.match(o=n):
                other = t.s
                neighbour_profile.append(
                    ("s", str(t.p), colour.get(other, ("const", str(other))))
                )
            new_colour[n] = (colour[n], tuple(sorted(map(repr, neighbour_profile))))
        if len(set(new_colour.values())) == len(set(colour.values())):
            colour = new_colour
            break
        colour = new_colour

    # Group blanks by colour; within a group the order is ambiguous.
    groups: Dict[tuple, list] = {}
    for n in blanks:
        groups.setdefault(colour[n], []).append(n)
    ordered_groups = [sorted(g, key=lambda n: n.value)
                      for _, g in sorted(groups.items(), key=lambda kv: repr(kv[0]))]

    def rename_with(order) -> RDFGraph:
        renaming = {n: BNode(f"c{i}") for i, n in enumerate(order)}
        return graph.rename_bnodes(renaming)

    base_order = [n for group in ordered_groups for n in group]
    ambiguous = [g for g in ordered_groups if len(g) > 1]
    if not ambiguous:
        return rename_with(base_order)

    # Try permutations within ambiguous groups; pick the least graph.
    import itertools

    best: Optional[RDFGraph] = None
    best_key = None

    def graph_key(g: RDFGraph):
        return tuple(str(t) for t in g.sorted_triples())

    fixed_groups = [tuple(g) for g in ordered_groups]
    permutation_spaces = [
        itertools.permutations(g) if len(g) > 1 else [tuple(g)]
        for g in fixed_groups
    ]
    for combo in itertools.product(*permutation_spaces):
        order = [n for group in combo for n in group]
        candidate = rename_with(order)
        key = graph_key(candidate)
        if best_key is None or key < best_key:
            best, best_key = candidate, key
    return best
