"""Terms of the abstract RDF model.

The paper (Section 2.1) assumes an infinite set ``U`` of URI references
and an infinite set ``B`` of blank nodes, and defines an RDF triple as an
element of ``(U ∪ B) × U × (U ∪ B)``.  This module provides the concrete
Python value types for those sets, plus two extensions used elsewhere in
the library:

* :class:`Literal` — plain literals, allowed only in object position.
  The paper drops literals (footnote 1) because they behave exactly like
  constants at this level of abstraction; we keep them so realistic
  examples read naturally, and every algorithm treats them as constants.
* :class:`Variable` — query variables from the set ``V`` of Section 4,
  disjoint from ``U ∪ B``.  They never appear inside plain RDF graphs,
  only in tableau heads/bodies.

All term types are immutable, hashable and totally ordered (ordering is
by kind first, then by value) so that graphs serialize and iterate
deterministically.
"""

from __future__ import annotations

import itertools
from typing import NamedTuple, Union

__all__ = [
    "URI",
    "BNode",
    "Literal",
    "Variable",
    "Term",
    "GroundTerm",
    "Triple",
    "fresh_bnode",
    "fresh_bnode_factory",
    "is_ground_term",
    "sort_key",
]

# Kind tags used for cross-kind total ordering.  URIs sort before blank
# nodes, which sort before literals, which sort before variables.
_KIND_URI = 0
_KIND_BNODE = 1
_KIND_LITERAL = 2
_KIND_VARIABLE = 3


class _Atom:
    """Common base for all term kinds: an immutable tagged string."""

    __slots__ = ("value", "_hash")
    _kind: int = -1
    _prefix: str = ""
    _allow_empty: bool = False

    def __init__(self, value: str):
        if not isinstance(value, str):
            raise TypeError(
                f"{type(self).__name__} value must be a string, got {value!r}"
            )
        if not value and not self._allow_empty:
            raise ValueError(f"{type(self).__name__} value must be non-empty")
        object.__setattr__(self, "value", value)
        # Terms are used as dict/set keys in every hot path (graph
        # indexes, candidate domains), so the hash is computed once.
        object.__setattr__(self, "_hash", hash((self._kind, value)))

    def __setattr__(self, name, _value):
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __eq__(self, other):
        return type(self) is type(other) and self.value == other.value

    def __ne__(self, other):
        return not self.__eq__(other)

    def __hash__(self):
        return self._hash

    def __lt__(self, other):
        if not isinstance(other, _Atom):
            return NotImplemented
        return (self._kind, self.value) < (other._kind, other.value)

    def __le__(self, other):
        if not isinstance(other, _Atom):
            return NotImplemented
        return (self._kind, self.value) <= (other._kind, other.value)

    def __gt__(self, other):
        if not isinstance(other, _Atom):
            return NotImplemented
        return (self._kind, self.value) > (other._kind, other.value)

    def __ge__(self, other):
        if not isinstance(other, _Atom):
            return NotImplemented
        return (self._kind, self.value) >= (other._kind, other.value)

    def __repr__(self):
        return f"{type(self).__name__}({self.value!r})"

    def __str__(self):
        return self._prefix + self.value

    def __reduce__(self):
        return (type(self), (self.value,))


class URI(_Atom):
    """An RDF URI reference: an element of the set ``U``.

    In the abstract model a URI is just an opaque name; no IRI syntax is
    enforced, so short names such as ``URI("paints")`` are legal, exactly
    as in the paper's examples.
    """

    __slots__ = ()
    _kind = _KIND_URI
    _prefix = ""


class BNode(_Atom):
    """A blank node: an element of the set ``B = {N_j : j ∈ N}``.

    Blank nodes act as existential variables in the semantics
    (Section 2.3.1).  Two blank nodes are equal iff their labels are
    equal; merge (:meth:`repro.core.graph.RDFGraph.merge`) renames labels
    apart automatically.
    """

    __slots__ = ()
    _kind = _KIND_BNODE
    _prefix = "_:"


class Literal(_Atom):
    """A plain literal, allowed in object position only.

    The theory treats literals exactly as constants (see DESIGN.md §6);
    they exist so examples like ``(dept, offers, "DB")`` from Section 6.2
    can be written down.
    """

    __slots__ = ()
    _kind = _KIND_LITERAL
    _prefix = ""
    _allow_empty = True  # "" is a legitimate plain literal

    def __str__(self):
        return f'"{self.value}"'


class Variable(_Atom):
    """A query variable from the set ``V`` (Section 4), e.g. ``?X``.

    Variables appear only in tableau heads and bodies, never in RDF
    graphs or premises.
    """

    __slots__ = ()
    _kind = _KIND_VARIABLE
    _prefix = "?"

    def __init__(self, value: str):
        # Accept both "X" and "?X" spellings for convenience.
        if isinstance(value, str) and value.startswith("?"):
            value = value[1:]
        super().__init__(value)


#: Any term that may occur in a query pattern.
Term = Union[URI, BNode, Literal, Variable]

#: Any term that may occur in an RDF graph (no variables).
GroundTerm = Union[URI, BNode, Literal]


class Triple(NamedTuple):
    """An RDF triple ``(s, p, o)``.

    Validity per Section 2.1: ``s ∈ U ∪ B``, ``p ∈ U``, ``o ∈ U ∪ B``
    (plus literals in object position, and variables anywhere when the
    triple is a query pattern).  Construction does not validate so that
    intermediate rewriting (e.g. unskolemization) can build candidate
    triples and filter them; use :meth:`is_valid_rdf` /
    :meth:`is_valid_pattern` to check.
    """

    s: Term
    p: Term
    o: Term

    def is_valid_rdf(self) -> bool:
        """True iff this is a well-formed RDF triple (no variables)."""
        return (
            isinstance(self.s, (URI, BNode))
            and isinstance(self.p, URI)
            and isinstance(self.o, (URI, BNode, Literal))
        )

    def is_valid_pattern(self) -> bool:
        """True iff this is a well-formed query pattern.

        Patterns extend RDF triples with variables in any position; a
        blank node may not be a predicate (rule instantiations must not
        assign blank nodes to predicate positions either, Section 2.3.2).
        """
        return (
            isinstance(self.s, (URI, BNode, Variable))
            and isinstance(self.p, (URI, Variable))
            and isinstance(self.o, (URI, BNode, Literal, Variable))
        )

    def is_ground(self) -> bool:
        """True iff no blank node or variable occurs in the triple."""
        return all(isinstance(t, (URI, Literal)) for t in self)

    def terms(self):
        """Iterate the three positions (subject, predicate, object)."""
        return iter(self)

    def variables(self) -> frozenset:
        """The set of variables occurring in this triple."""
        return frozenset(t for t in self if isinstance(t, Variable))

    def bnodes(self) -> frozenset:
        """The set of blank nodes occurring in this triple."""
        return frozenset(t for t in self if isinstance(t, BNode))

    def __str__(self):
        return f"({self.s}, {self.p}, {self.o})"


_fresh_counter = itertools.count()


def fresh_bnode(hint: str = "g") -> BNode:
    """Return a blank node with a globally unused label.

    Labels have the shape ``<hint><n>`` with a process-wide counter, so
    independently generated fresh nodes never collide within one process.
    """
    return BNode(f"{hint}{next(_fresh_counter)}")


def fresh_bnode_factory(avoid, hint: str = "b"):
    """Return a zero-argument callable producing blank nodes not in *avoid*.

    Unlike :func:`fresh_bnode` the produced labels are deterministic
    (``b0, b1, ...`` skipping collisions), which keeps merge and
    Skolemization reproducible across runs.
    """
    avoid_labels = {n.value for n in avoid if isinstance(n, BNode)}
    counter = itertools.count()

    def factory() -> BNode:
        while True:
            label = f"{hint}{next(counter)}"
            if label not in avoid_labels:
                avoid_labels.add(label)
                return BNode(label)

    return factory


def is_ground_term(term: Term) -> bool:
    """True iff *term* is a constant (URI or literal)."""
    return isinstance(term, (URI, Literal))


def sort_key(term: Term):
    """Deterministic total-order key across all term kinds."""
    return (term._kind, term.value)
