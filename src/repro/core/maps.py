"""Maps between RDF graphs (Section 2.1).

A *map* is a function ``μ : UB → UB`` preserving URIs (``μ(u) = u`` for
``u ∈ U``).  Applied to a graph it replaces blank nodes; ``μ(G)`` is an
*instance* of ``G``, and a *proper* instance if it has fewer blank nodes
(``μ`` sends a blank to a URI or identifies two blanks).

We also overload "map" as the paper does: a map ``μ : G1 → G2`` is a map
with ``μ(G1) ⊆ G2``.  :mod:`repro.core.homomorphism` searches for such
maps; this module provides the value type and algebra.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from .graph import RDFGraph
from .terms import BNode, Literal, Term, Triple, URI

__all__ = ["Map", "identity_map", "apply_assignment"]


def apply_assignment(assignment: Mapping[Term, Term], t: Triple) -> Triple:
    """Apply a term assignment to one triple (no validity check)."""
    return Triple(
        assignment.get(t.s, t.s),
        assignment.get(t.p, t.p),
        assignment.get(t.o, t.o),
    )


class Map:
    """A URI-preserving function on terms, represented by its blank part.

    Only the action on blank nodes is stored; URIs and literals are fixed
    points by definition.  Instances are immutable.
    """

    __slots__ = ("_assignment",)

    def __init__(self, assignment: Mapping[BNode, Term] = ()):
        frozen: Dict[BNode, Term] = {}
        for source, image in dict(assignment).items():
            if not isinstance(source, BNode):
                raise TypeError(f"map domain must be blank nodes, got {source!r}")
            if not isinstance(image, (URI, BNode, Literal)):
                raise TypeError(f"map image must be a ground term, got {image!r}")
            frozen[source] = image
        self._assignment = frozen

    @property
    def assignment(self) -> Mapping[BNode, Term]:
        """The explicit (blank → term) part of the map."""
        return dict(self._assignment)

    def __call__(self, value):
        """Apply to a term, a triple, or a graph."""
        if isinstance(value, RDFGraph):
            return self.apply_graph(value)
        if isinstance(value, Triple):
            return apply_assignment(self._assignment, value)
        if isinstance(value, BNode):
            return self._assignment.get(value, value)
        return value

    def apply_graph(self, graph: RDFGraph) -> RDFGraph:
        """``μ(G)``: the instance of *graph* under this map.

        Raises :class:`ValueError` if some triple becomes ill-formed
        (a blank mapped into predicate position cannot occur, because
        predicates are URIs and URIs are fixed).
        """
        images = []
        for t in graph:
            image = apply_assignment(self._assignment, t)
            if not image.is_valid_rdf():
                raise ValueError(f"map produces ill-formed triple {image} from {t}")
            images.append(image)
        return RDFGraph(images)

    def compose(self, other: "Map") -> "Map":
        """``self ∘ other``: apply *other* first, then *self*."""
        assignment: Dict[BNode, Term] = {}
        for source, image in other._assignment.items():
            assignment[source] = self(image)
        for source, image in self._assignment.items():
            assignment.setdefault(source, image)
        return Map(assignment)

    def restrict(self, domain: Iterable[BNode]) -> "Map":
        """The map restricted to the given blank nodes."""
        wanted = set(domain)
        return Map({n: v for n, v in self._assignment.items() if n in wanted})

    def is_identity_on(self, bnodes: Iterable[BNode]) -> bool:
        """True iff every given blank is a fixed point."""
        return all(self._assignment.get(n, n) == n for n in bnodes)

    def is_injective_on(self, bnodes: Iterable[BNode]) -> bool:
        """True iff the map is injective restricted to the given blanks."""
        images = [self(n) for n in bnodes]
        return len(images) == len(set(images))

    def makes_proper_instance_of(self, graph: RDFGraph) -> bool:
        """True iff ``μ(G)`` has fewer blank nodes than ``G``.

        This is the paper's definition of a *proper instance*: the map
        either sends some blank to a URI/literal or identifies two
        blanks of the graph.
        """
        blanks = graph.bnodes()
        images = {self(n) for n in blanks}
        surviving = {v for v in images if isinstance(v, BNode)}
        return len(surviving) < len(blanks)

    def __eq__(self, other):
        if not isinstance(other, Map):
            return NotImplemented
        # Normalize away explicit fixed points before comparing.
        mine = {k: v for k, v in self._assignment.items() if k != v}
        theirs = {k: v for k, v in other._assignment.items() if k != v}
        return mine == theirs

    def __hash__(self):
        items = tuple(
            sorted(
                ((k, v) for k, v in self._assignment.items() if k != v),
                key=lambda kv: (kv[0].value, kv[1].value),
            )
        )
        return hash(items)

    def __repr__(self):
        inner = ", ".join(
            f"{k} ↦ {v}"
            for k, v in sorted(self._assignment.items(), key=lambda kv: kv[0].value)
        )
        return f"Map({{{inner}}})"


def identity_map() -> Map:
    """The identity map (every term a fixed point)."""
    return Map({})
