"""Shared utilities: fixpoint iteration and deterministic orderings."""

from .fixpoint import fixpoint
from .orderings import triple_sort_key

__all__ = ["fixpoint", "triple_sort_key"]
