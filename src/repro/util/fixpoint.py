"""Generic semi-naive fixpoint iteration.

Several procedures in the library (the rule engine's closure, transitive
closures in the optimized closure algorithm) are monotone operators on
finite sets; this helper iterates them to their least fixpoint while
passing the per-round delta so implementations can be incremental.
"""

from __future__ import annotations

from typing import Callable, Iterable, Set, TypeVar

T = TypeVar("T")

__all__ = ["fixpoint"]


def fixpoint(
    seed: Iterable[T],
    step: Callable[[Set[T], Set[T]], Iterable[T]],
    max_rounds: int = 10_000_000,
) -> Set[T]:
    """Least fixpoint of a monotone operator.

    Parameters
    ----------
    seed:
        Initial elements.
    step:
        ``step(all_so_far, delta)`` returns candidate new elements; only
        those not already present are added.  ``delta`` is the set of
        elements added in the previous round (the whole seed on round 1),
        enabling semi-naive evaluation.
    max_rounds:
        Safety bound; a :class:`RuntimeError` is raised if exceeded,
        which would indicate a non-monotone *step*.
    """
    everything: Set[T] = set(seed)
    delta: Set[T] = set(everything)
    rounds = 0
    while delta:
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError("fixpoint did not converge (non-monotone step?)")
        produced = set(step(everything, delta)) - everything
        everything |= produced
        delta = produced
    return everything
