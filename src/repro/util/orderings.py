"""Deterministic orderings for terms and triples.

Every algorithm in the library that picks "some" element (a retraction,
a rule instantiation, a candidate match) does so in the order defined
here, which makes all outputs reproducible across runs and platforms.
"""

from __future__ import annotations

from ..core.terms import Triple, sort_key

__all__ = ["triple_sort_key"]


def triple_sort_key(t: Triple):
    """Total-order key on triples: by subject, then predicate, then object."""
    return (sort_key(t.s), sort_key(t.p), sort_key(t.o))
