"""A transactional RDF store built on the paper's theory.

Named graphs, transactions, incremental RDFS-closure maintenance in
both directions (semi-naive insertion deltas, DRed deletions), a live
dataset cache, and query answering with the tableau semantics of
Section 4.
"""

from .backend import (
    DEFAULT_GRAPH,
    BackendState,
    MemoryBackend,
    StorageBackend,
    StorageError,
)
from .dataset_cache import DatasetCache
from .durable import DurableBackend
from .triple_store import (
    MaintenanceStats,
    TransactionError,
    TripleStore,
)

__all__ = [
    "DEFAULT_GRAPH",
    "BackendState",
    "DatasetCache",
    "DurableBackend",
    "MaintenanceStats",
    "MemoryBackend",
    "StorageBackend",
    "StorageError",
    "TransactionError",
    "TripleStore",
]
