"""A transactional RDF store built on the paper's theory.

Named graphs, transactions, incremental RDFS-closure maintenance, and
query answering with the tableau semantics of Section 4.
"""

from .triple_store import DEFAULT_GRAPH, TransactionError, TripleStore

__all__ = ["DEFAULT_GRAPH", "TransactionError", "TripleStore"]
