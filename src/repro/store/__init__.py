"""A transactional RDF store built on the paper's theory.

Named graphs, transactions, incremental RDFS-closure maintenance in
both directions (semi-naive insertion deltas, DRed deletions), a live
dataset cache, and query answering with the tableau semantics of
Section 4.
"""

from .dataset_cache import DatasetCache
from .triple_store import (
    DEFAULT_GRAPH,
    MaintenanceStats,
    TransactionError,
    TripleStore,
)

__all__ = [
    "DEFAULT_GRAPH",
    "DatasetCache",
    "MaintenanceStats",
    "TransactionError",
    "TripleStore",
]
