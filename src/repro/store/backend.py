"""The engine / storage-backend split of :class:`TripleStore`.

:class:`~repro.store.triple_store.TripleStore` is the *engine*: named
graphs, transactions, the dataset cache, incremental closure
maintenance, query answering.  Everything about *where the committed
data lives between processes* is delegated to a
:class:`StorageBackend`:

* :class:`MemoryBackend` — the historical behaviour: nothing persists,
  every hook is a no-op, and ``durable`` is False so the engine's
  write paths skip the persistence bookkeeping entirely (one attribute
  read per operation, same idiom as ``OBS``/``FAULTS``).
* :class:`~repro.store.durable.DurableBackend` — a pure-python durable
  backend: a write-ahead log of committed batches, an append-only
  string-pool log for the term dictionary, and SPO/POS/OSP segment
  files written at checkpoints, with crash recovery on open.

The contract is deliberately narrow — the engine stays the single
source of truth while the process lives, and the backend is a
*durability channel*, not a second database:

* ``load()`` is called once, when the engine attaches.  It returns the
  committed :class:`BackendState` (term-pool records in interning
  order plus per-graph encoded rows) or ``None`` for an empty/ephemeral
  backend; the engine replays it into its in-memory structures.
* ``commit_batch(new_terms, ops)`` is called at every durable commit
  point (each auto-committed write, each transaction commit) with the
  term-pool appends since the last commit and the ordered per-graph
  triple operations.  It must be atomic-or-raise: either the whole
  batch is durably committed, or the backend restores its previous
  on-disk state and raises (the engine then rolls the in-memory
  operation back too).
* ``checkpoint(graphs_rows)`` folds the engine's current committed
  state into compact segment files and resets the log.

Term IDs are stable across restarts because the term dictionary is
reconstructed by replaying pool appends in their original per-kind
order (see :meth:`~repro.core.interning.TermDict.pool_records_since`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.interning import Row

__all__ = [
    "StorageBackend",
    "MemoryBackend",
    "BackendState",
    "StorageError",
    "TermRecord",
    "DurableOp",
    "DEFAULT_GRAPH",
]

#: Default graph name (canonical definition; the engine re-exports it).
DEFAULT_GRAPH = "default"

#: One term-pool append: (kind, value) with kind in "U" / "B" / "L".
TermRecord = Tuple[str, str]

#: One durable triple operation: (op, graph, row) with op in
#: "add" / "del", the graph-name removal marker ("drop", graph, None),
#: or the full-reset marker ("clear", "", None).
DurableOp = Tuple[str, str, Optional[Row]]


class StorageError(RuntimeError):
    """A backend could not durably commit or recover.

    Raised on unrecoverable I/O failures (a commit whose on-disk repair
    also failed poisons the backend: every later commit raises until
    the store is reopened) and on corrupt segment files at open.
    """


class BackendState:
    """The committed state a backend hands the engine at attach time."""

    __slots__ = ("terms", "graphs")

    def __init__(
        self,
        terms: Sequence[TermRecord],
        graphs: Dict[str, List[Row]],
    ):
        #: Term-pool records in interning order (per kind), replayed
        #: into the engine's TermDict so IDs match the on-disk rows.
        self.terms = terms
        #: graph name -> sorted encoded rows (may be empty: a named
        #: graph whose triples were all removed keeps its name).
        self.graphs = graphs

    def __repr__(self) -> str:
        rows = sum(len(r) for r in self.graphs.values())
        return (
            f"BackendState(terms={len(self.terms)}, "
            f"graphs={len(self.graphs)}, rows={rows})"
        )


class StorageBackend:
    """Base class / interface for triple-store storage backends."""

    #: False for ephemeral backends: the engine checks this one
    #: attribute per write and skips all persistence bookkeeping when
    #: it is off, so the in-memory store pays nothing for the split.
    durable: bool = False

    def bind_counter(self, count: Callable[..., None]) -> None:
        """Receive the engine's counter sink (``store._count``)."""

    def load(self) -> Optional[BackendState]:
        """Recover and return the committed state, or ``None``."""
        return None

    def commit_batch(
        self, new_terms: Sequence[TermRecord], ops: Sequence[DurableOp]
    ) -> None:
        """Durably commit one batch (atomic-or-raise)."""

    def should_checkpoint(self) -> bool:
        """True when the log has grown enough to be worth compacting."""
        return False

    def checkpoint(self, graphs_rows: Dict[str, List[Row]]) -> None:
        """Fold the committed state into segments and reset the log."""

    def close(self) -> None:
        """Release file handles; the store must not be written after."""


class MemoryBackend(StorageBackend):
    """The no-op backend: data lives (and dies) with the process."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "MemoryBackend()"
