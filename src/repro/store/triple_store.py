"""A transactional RDF store with delta-aware write maintenance.

This is the "database" a downstream user of the paper's theory would
actually run: named graphs, ACID-ish transactions (all-or-nothing
batches with rollback), a materialized RDFS closure (the ``cl(G)`` of
Definition 3.5 / Theorem 3.6, a materialized view over the Datalog
rendition of rules (2)–(13)) maintained *incrementally* in both
directions, and query answering with the paper's semantics.

Write path:

* **Insertions** propagate through the semi-naive delta loop
  (:func:`~repro.datalog.engine.extend_fixpoint_into`).
* **Deletions** run delete–rederive (DRed) maintenance
  (:func:`~repro.datalog.engine.retract_fixpoint_into`): overdelete the
  removed facts' derivation cones, rederive what has alternate support.
  Both update one persistent fixpoint store in place; recomputation
  survives only as the lazy from-scratch fallback (and as the
  cross-check behind :attr:`TripleStore.validate_maintenance`).
* **Transactions** buffer the net dataset delta and run one batched
  maintenance step at commit (or at the first closure-dependent read
  inside the transaction) instead of one step per operation.
* A live :class:`~repro.store.dataset_cache.DatasetCache` keeps the
  union-of-graphs snapshot and its positional indexes current in place,
  so ``dataset()``/``describe()``/``entails()`` never rebuild an
  ``RDFGraph`` just to read.

The store works over the Skolemized image of its data (Section 3.1), so
the materialized closure is a plain ground fact set; blank nodes are
restored on the way out.

Since the dictionary-encoding PR the whole maintenance pipeline runs in
**ID space**: the store owns one shared
:class:`~repro.core.interning.TermDict`, triples are interned once at
insert, the dataset cache / delta buffers / fact stores all hold
``(int, int, int)`` rows, Skolemization is an O(1) ID remap, and the
Datalog program itself carries the pinned keyword IDs
(:func:`~repro.datalog.rdfs_program.rdfs_datalog_program_encoded`).
Terms are decoded only at the public read boundary (``closure()``,
``bnodes``, snapshots).
"""

from __future__ import annotations

import os
from collections.abc import Mapping
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..core.graph import RDFGraph
from ..core.interning import BNODE_BASE, LITERAL_BASE, Row, TermDict
from ..core.terms import BNode, Literal, Term, Triple, URI
from ..datalog.engine import (
    FactStore,
    evaluate_program,
    extend_fixpoint_into,
    materialize_fixpoint,
    retract_fixpoint_into,
)
from ..datalog.rdfs_program import TRIPLE_RELATION, rdfs_datalog_program_encoded
from ..obs import OBS
from ..obs.metrics import MetricsRegistry
from ..query.tableau import Query
from ..robustness.faultinject import FAULTS
from ..semantics.entailment import entails as graph_entails
from .backend import (
    DEFAULT_GRAPH,
    BackendState,
    DurableOp,
    MemoryBackend,
    StorageBackend,
)
from .dataset_cache import DatasetCache

__all__ = ["TripleStore", "TransactionError", "MaintenanceStats", "DEFAULT_GRAPH"]

#: ``(kind byte in the term-pool log) -> term constructor`` for backend
#: state replay.
_TERM_CTOR = {"U": URI, "B": BNode, "L": Literal}

#: Environment switch: cross-check every incremental maintenance step
#: against a from-scratch fixpoint (slow; for tests and debugging).
_VALIDATE_ENV = os.environ.get("REPRO_STORE_VALIDATE", "") not in ("", "0")


class TransactionError(RuntimeError):
    """Raised on invalid transaction usage (nested begin, stray commit)."""


#: Legacy ``stats`` key → metric name in the store's private registry.
_STATS_KEYS = {
    "incremental_insert": "store.maintenance.incremental_insert",
    "incremental_delete": "store.maintenance.incremental_delete",
    "recomputed": "store.maintenance.recomputed",
}


class MaintenanceStats(Mapping):
    """Read-through dict view of the store's maintenance counters.

    Historically ``TripleStore.stats`` was a plain dict; the counters
    now live in the store's private :class:`MetricsRegistry` (and are
    mirrored into the process-global registry while instrumentation is
    on).  This view keeps the old dict contract — indexing, iteration,
    ``dict(stats)``, equality against dicts — reading the registry live.
    """

    __slots__ = ("_metrics",)

    def __init__(self, metrics: MetricsRegistry):
        self._metrics = metrics

    def __getitem__(self, key: str) -> int:
        return int(self._metrics.counter(_STATS_KEYS[key]))

    def __iter__(self) -> Iterator[str]:
        return iter(_STATS_KEYS)

    def __len__(self) -> int:
        return len(_STATS_KEYS)

    def __eq__(self, other) -> bool:
        if isinstance(other, (dict, Mapping)):
            return dict(self) == dict(other)
        return NotImplemented

    def __ne__(self, other) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    def __repr__(self) -> str:
        return repr(dict(self))


class TripleStore:
    """An updatable collection of named RDF graphs with RDFS reasoning.

    Example::

        store = TripleStore()
        store.add(triple("painter", SC, "artist"))
        with store.transaction():
            store.add(triple("frida", TYPE, "painter"))
        assert store.entails(triple("frida", TYPE, "artist"))

    Durability is delegated to a pluggable
    :class:`~repro.store.backend.StorageBackend`.  The default is the
    ephemeral :class:`~repro.store.backend.MemoryBackend` (identical to
    the historical behaviour); :meth:`TripleStore.open` attaches the
    WAL-backed :class:`~repro.store.durable.DurableBackend` so every
    commit point survives a crash::

        store = TripleStore.open("/data/my-store")
        store.add(triple("frida", TYPE, "painter"))   # durable
        store.close()
        store = TripleStore.open("/data/my-store")    # recovered
    """

    def __init__(self, backend: Optional[StorageBackend] = None):
        self._graphs: Dict[str, Set[Triple]] = {DEFAULT_GRAPH: set()}
        #: The store-wide term dictionary: every term interned exactly
        #: once, shared by the dataset cache and the closure machinery
        #: (skolem IDs and their inverse live here too).
        self._terms = TermDict()
        #: Live union of all named graphs (refcounted; indexed in place;
        #: keyed by encoded rows).
        self._dataset = DatasetCache(terms=self._terms)
        self._program = rdfs_datalog_program_encoded()
        #: Persistent materialized fixpoint, updated in place by the
        #: ``*_into`` engine calls (never rebuilt per write).
        self._closure_store: Optional[FactStore] = None
        #: Skolemized dataset rows the closure was built over, maintained
        #: alongside ``_closure_store`` (the EDB for DRed rederivation).
        self._base_store: Optional[FactStore] = None
        self._closure_graph: Optional[RDFGraph] = None
        self._normal_form: Optional[RDFGraph] = None
        self._in_transaction = False
        self._txn_log: List[Tuple[str, str, Triple]] = []  # (op, graph, triple)
        #: Net dataset delta not yet folded into the materialized closure
        #: (buffered during transactions, flushed at commit or at the
        #: first closure-dependent read), held as encoded rows.
        self._pending_adds: Set[Row] = set()
        self._pending_removes: Set[Row] = set()
        #: Cross-check incremental maintenance against a from-scratch
        #: fixpoint after every flush (also settable per instance).
        self.validate_maintenance = _VALIDATE_ENV
        #: Monotonic derived-state version: bumped whenever a flushed
        #: delta changes the materialized closure (or drops it).  Reads
        #: served from the query cache are guarded by it.
        self._version = 0
        #: Optional two-tier query cache (see ``enable_query_cache``).
        self._query_cache = None
        #: Per-store metrics: maintenance counters and flush timings.
        #: Always on (cold-path increments only); mirrored into the
        #: process-global registry while ``repro.obs`` is enabled.
        self.metrics = MetricsRegistry()
        #: Legacy view: how many closure maintenance operations ran as
        #: incremental insert deltas, incremental DRed deletions, or
        #: from-scratch recomputations (exposed for the benchmarks).
        self.stats = MaintenanceStats(self.metrics)
        #: The durability channel.  ``_durable`` is the one attribute
        #: the write paths test (same idiom as ``OBS``/``FAULTS``), so
        #: the in-memory store pays nothing for the split.
        self._backend = backend if backend is not None else MemoryBackend()
        self._durable = bool(self._backend.durable)
        #: Graph-level operations since the last durable commit point
        #: (auto-commit or transaction commit).
        self._durable_ops: List[DurableOp] = []
        self._backend.bind_counter(self._count)
        if self._durable:
            state = self._backend.load()
            if state is not None:
                self._replay_backend(state)
        #: Term-pool high-water marks at the last durable commit; the
        #: diff is each batch's ``new_terms``.
        self._term_marks = self._terms.pool_sizes()

    def _replay_backend(self, state: BackendState) -> None:
        """Rebuild the in-memory structures from recovered backend state.

        The term pools are replayed in their original interning order,
        so every recovered row decodes under exactly the IDs it was
        written with (vocabulary seeding happened in ``__init__``, as
        it did in the original process).
        """
        encode = self._terms.encode
        for kind, value in state.terms:
            encode(_TERM_CTOR[kind](value))
        for name, rows in state.graphs.items():
            target = self._graphs.setdefault(name, set())
            if not rows:
                continue
            triples = self._terms.decode_rows(rows)
            target.update(triples)
            dataset_add = self._dataset.add
            for t in triples:
                dataset_add(t)

    def _count(self, name: str, amount: int = 1) -> None:
        """Bump a cold-path counter here and (if on) in the global registry."""
        self.metrics.inc(name, amount)
        if OBS.enabled:
            OBS.registry.inc(name, amount)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def graph_names(self) -> List[str]:
        return sorted(self._graphs)

    @property
    def term_dict(self) -> TermDict:
        """The store's shared term dictionary (sizes and traffic via
        :meth:`~repro.core.interning.TermDict.stats`)."""
        return self._terms

    def graph(self, name: str = DEFAULT_GRAPH) -> RDFGraph:
        """A snapshot of one named graph."""
        return RDFGraph(self._graphs.get(name, ()))

    def dataset(self) -> RDFGraph:
        """The union of all named graphs (shared blank labels merge).

        Served from the live dataset cache: O(1) once the snapshot is
        built, rebuilt lazily at most once after a burst of writes.
        Sources that must keep their blanks apart should be loaded via
        :meth:`load_graph`, which renames on the way in.
        """
        return self._dataset.snapshot()

    def match(
        self,
        s: Optional[Term] = None,
        p: Optional[Term] = None,
        o: Optional[Term] = None,
    ) -> Iterable[Triple]:
        """Dataset triples matching the fixed positions (None = wildcard).

        Reads the live cache's positional indexes directly — the same
        lookup primitive ``RDFGraph.match`` offers the matching planner,
        without materializing a graph snapshot.
        """
        return self._dataset.match(s, p, o)

    def count(
        self,
        s: Optional[Term] = None,
        p: Optional[Term] = None,
        o: Optional[Term] = None,
    ) -> int:
        """Number of dataset triples matching the fixed positions."""
        return self._dataset.count(s, p, o)

    def __len__(self) -> int:
        return sum(len(ts) for ts in self._graphs.values())

    def __contains__(self, t: Triple) -> bool:
        return t in self._dataset

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def add(self, t: Triple, graph: str = DEFAULT_GRAPH) -> bool:
        """Insert one triple; returns True when it was new.

        Exception-safe: any failure (including KeyboardInterrupt)
        while the triple is being applied undoes it and restores a
        consistent pre-op state before re-raising.
        """
        if not isinstance(t, Triple):
            t = Triple(*t)
        if not t.is_valid_rdf():
            raise ValueError(f"not a well-formed RDF triple: {t}")
        triples = self._graphs.setdefault(graph, set())
        if t in triples:
            return False
        ops_len = len(self._durable_ops) if self._durable else 0
        try:
            triples.add(t)
            if self._in_transaction:
                self._txn_log.append(("add", graph, t))
            if FAULTS.enabled:
                FAULTS.hit("store.add.apply")
            row = self._dataset.add(t)
            if row is not None:
                self._buffer_change(row, added=True)
            if self._durable:
                self._durable_ops.append(
                    ("add", graph, self._terms.lookup_triple(t))
                )
                if not self._in_transaction:
                    self._persist_ops()
        except BaseException:
            triples.discard(t)
            if (
                self._in_transaction
                and self._txn_log
                and self._txn_log[-1] == ("add", graph, t)
            ):
                self._txn_log.pop()
            if self._durable:
                del self._durable_ops[ops_len:]
            self._recover()
            raise
        if not self._in_transaction:
            self._flush_delta()
            self._maybe_checkpoint()
        return True

    def add_all(self, triples: Iterable[Triple], graph: str = DEFAULT_GRAPH) -> int:
        """Insert a batch; returns the number of new triples.

        The whole batch is folded into the closure in one maintenance
        step, not one per triple — and it is **atomic**: a failure on
        any triple (an invalid one mid-iterable, an interrupt, an
        injected fault) undoes every triple already applied and
        restores the pre-batch state before re-raising.
        """
        new = 0
        target = self._graphs.setdefault(graph, set())
        applied: List[Triple] = []
        logged = 0
        ops_len = len(self._durable_ops) if self._durable else 0
        try:
            for t in triples:
                if not isinstance(t, Triple):
                    t = Triple(*t)
                if not t.is_valid_rdf():
                    raise ValueError(f"not a well-formed RDF triple: {t}")
                if t not in target:
                    target.add(t)
                    applied.append(t)
                    new += 1
                    if self._in_transaction:
                        self._txn_log.append(("add", graph, t))
                        logged += 1
                    if FAULTS.enabled:
                        FAULTS.hit("store.add_all.batch")
                    row = self._dataset.add(t)
                    if row is not None:
                        self._buffer_change(row, added=True)
                    if self._durable:
                        self._durable_ops.append(
                            ("add", graph, self._terms.lookup_triple(t))
                        )
            if self._durable and not self._in_transaction:
                self._persist_ops()
        except BaseException:
            for t in applied:
                target.discard(t)
            if logged:
                del self._txn_log[-logged:]
            if self._durable:
                del self._durable_ops[ops_len:]
            self._recover()
            raise
        if not self._in_transaction:
            self._flush_delta()
            self._maybe_checkpoint()
        return new

    def bulk_load(
        self,
        source,
        graph: str = DEFAULT_GRAPH,
        workers: int = 1,
        strict: bool = True,
        max_memory_mb: Optional[int] = None,
    ) -> int:
        """Stream an N-Triples file (or line iterable) into one graph.

        A convenience front on :func:`repro.ingest.load_ntriples`: the
        file is chunk-parsed (in parallel for ``workers > 1``), decoded
        once, and folded in as a single atomic :meth:`add_all` batch —
        one maintenance step for the whole file.  Returns the number of
        new triples.
        """
        from ..ingest import load_ntriples

        result = load_ntriples(
            source,
            workers=workers,
            strict=strict,
            max_memory_mb=max_memory_mb,
        )
        return self.add_all(result.graph(), graph=graph)

    def load_graph(self, source: RDFGraph, graph: str = DEFAULT_GRAPH) -> int:
        """Merge a source graph in (blank nodes renamed apart, §2.1)."""
        current = self.dataset()
        merged = current + source
        fresh_part = merged - current
        return self.add_all(fresh_part, graph=graph)

    def remove(self, t: Triple, graph: str = DEFAULT_GRAPH) -> bool:
        """Delete one triple; returns True when it was present.

        Maintains the materialized closure by delete–rederive instead of
        invalidating it.
        """
        if not isinstance(t, Triple):
            t = Triple(*t)
        triples = self._graphs.get(graph, set())
        if t not in triples:
            return False
        ops_len = len(self._durable_ops) if self._durable else 0
        try:
            triples.remove(t)
            if self._in_transaction:
                self._txn_log.append(("remove", graph, t))
            if FAULTS.enabled:
                FAULTS.hit("store.remove.apply")
            row = self._dataset.discard(t)
            if row is not None:
                self._buffer_change(row, added=False)
            if self._durable:
                self._durable_ops.append(
                    ("del", graph, self._terms.lookup_triple(t))
                )
                if not self._in_transaction:
                    self._persist_ops()
        except BaseException:
            triples.add(t)
            if (
                self._in_transaction
                and self._txn_log
                and self._txn_log[-1] == ("remove", graph, t)
            ):
                self._txn_log.pop()
            if self._durable:
                del self._durable_ops[ops_len:]
            self._recover()
            raise
        if not self._in_transaction:
            self._flush_delta()
            self._maybe_checkpoint()
        return True

    def clear(self, graph: Optional[str] = None) -> None:
        """Drop one named graph (or everything).

        Dropping a single graph retracts its triples through the same
        batched DRed path as :meth:`remove`; a full clear resets the
        store outright.
        """
        if self._in_transaction:
            raise TransactionError("clear() is not allowed inside a transaction")
        ops_len = len(self._durable_ops) if self._durable else 0
        if graph is None:
            old_graphs = self._graphs
            self._graphs = {DEFAULT_GRAPH: set()}
            # The shared term dictionary survives a clear: IDs are
            # append-only, and re-adding the same terms must reuse them.
            self._dataset = DatasetCache(terms=self._terms)
            self._pending_adds = set()
            self._pending_removes = set()
            if self._durable:
                self._durable_ops.append(("clear", "", None))
                try:
                    self._persist_ops()
                except BaseException:
                    self._graphs = old_graphs
                    del self._durable_ops[ops_len:]
                    self._recover()
                    raise
            self._invalidate_closure()
            return
        dropped = self._graphs.pop(graph, None)
        if dropped is None:
            return
        # An existing-but-empty graph still flows through: its *name*
        # was just removed, and that removal must be persisted too.
        try:
            for t in dropped:
                if FAULTS.enabled:
                    FAULTS.hit("store.clear.graph")
                row = self._dataset.discard(t)
                if row is not None:
                    self._buffer_change(row, added=False)
            if self._durable:
                # One graph-drop record, not |G| deletes: replay must
                # also forget the graph *name*, exactly like the pop
                # above.
                self._durable_ops.append(("drop", graph, None))
                self._persist_ops()
        except BaseException:
            self._graphs[graph] = dropped
            if self._durable:
                del self._durable_ops[ops_len:]
            self._recover()
            raise
        self._flush_delta()
        self._maybe_checkpoint()

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def begin(self) -> None:
        if self._in_transaction:
            raise TransactionError("transaction already in progress")
        self._in_transaction = True
        self._txn_log = []

    def commit(self) -> None:
        """Close the transaction and fold its delta into the closure.

        Apply-or-rollback atomic: the transaction's writes are already
        in the graphs/dataset (applied), so once the transaction state
        is closed the commit cannot half-apply — a failure during the
        maintenance flush drops only the *derived* closure (recomputed
        lazily from scratch); the committed data survives intact.

        On a durable backend the whole transaction is one WAL batch,
        written and fsynced *before* the transaction state closes: if
        the backend cannot commit it (I/O failure, injected fault), the
        on-disk tail is repaired, the transaction is rolled back in
        memory, and the error propagates — all-or-nothing on disk and
        in memory alike.
        """
        if not self._in_transaction:
            raise TransactionError("no transaction in progress")
        if self._durable:
            try:
                self._persist_ops()
            except BaseException:
                self.rollback()
                raise
        self._in_transaction = False
        self._txn_log = []
        if FAULTS.enabled:
            FAULTS.hit("store.commit")
        self._flush_delta()
        self._maybe_checkpoint()

    def rollback(self) -> None:
        if not self._in_transaction:
            raise TransactionError("no transaction in progress")
        if self._durable:
            # Nothing in this transaction reached the backend (batches
            # are written only at commit), so undoing is memory-only.
            self._durable_ops = []
        entries = list(reversed(self._txn_log))
        self._in_transaction = False
        self._txn_log = []
        try:
            for op, graph, t in entries:
                if op == "add":
                    self._graphs.get(graph, set()).discard(t)
                    row = self._dataset.discard(t)
                    if row is not None:
                        self._buffer_change(row, added=False)
                else:
                    self._graphs.setdefault(graph, set()).add(t)
                    row = self._dataset.add(t)
                    if row is not None:
                        self._buffer_change(row, added=True)
        except BaseException:
            # Finish the graph-level undo (set ops are idempotent, so
            # replaying the whole reversed log is safe no matter where
            # the loop died), then rebuild the derived state from it.
            for op, graph, t in entries:
                if op == "add":
                    self._graphs.get(graph, set()).discard(t)
                else:
                    self._graphs.setdefault(graph, set()).add(t)
            self._recover()
            raise
        # When nothing inside the transaction forced a flush, the
        # inverse operations cancel the buffered delta exactly and the
        # materialized closure is untouched; otherwise the residue is
        # folded back in lazily (or now, since we are outside a txn).
        self._flush_delta()

    def transaction(self) -> "_Transaction":
        """Context manager: commits on success, rolls back on exception."""
        return _Transaction(self)

    # ------------------------------------------------------------------
    # Closure maintenance
    # ------------------------------------------------------------------

    def _persist_ops(self) -> None:
        """Send the buffered graph operations to the durable backend.

        One atomic backend batch per commit point: the term-pool
        records interned since the last batch plus the ordered ops.
        On success the buffer is consumed and the term marks advance;
        on failure both are left for the caller's exception handler
        (the write paths drop their own ops, :meth:`commit` rolls the
        transaction back).
        """
        new_terms = self._terms.pool_records_since(self._term_marks)
        if not self._durable_ops and not new_terms:
            return
        self._backend.commit_batch(new_terms, self._durable_ops)
        self._durable_ops = []
        self._term_marks = self._terms.pool_sizes()

    def _maybe_checkpoint(self) -> None:
        """Fold the WAL into segments when the backend asks for it."""
        if (
            self._durable
            and not self._in_transaction
            and self._backend.should_checkpoint()
        ):
            self.checkpoint()

    def _buffer_change(self, row: Row, added: bool) -> None:
        """Record a net dataset-level change awaiting closure maintenance."""
        if added:
            if row in self._pending_removes:
                self._pending_removes.discard(row)
            else:
                self._pending_adds.add(row)
        else:
            if row in self._pending_adds:
                self._pending_adds.discard(row)
            else:
                self._pending_removes.add(row)

    def _flush_delta(self) -> None:
        """Fold the buffered dataset delta into the materialized closure.

        One :func:`retract_fixpoint_into` for the net removals, one
        :func:`extend_fixpoint_into` for the net insertions — however
        many operations produced the delta, both updating the persistent
        fixpoint store in place.  No-op while nothing is buffered or the
        closure has never been materialized (it stays lazy).
        """
        if not self._pending_adds and not self._pending_removes:
            return
        adds, removes = self._pending_adds, self._pending_removes
        self._pending_adds, self._pending_removes = set(), set()
        if self._closure_store is None:
            # Nothing materialized: the delta is subsumed by the next
            # lazy from-scratch computation.  Without a closure delta to
            # test overlap against, cached query state is flushed
            # conservatively.
            self._closure_graph = None
            self._normal_form = None
            self._version += 1
            if self._query_cache is not None:
                self._query_cache.invalidate_all()
            return
        changed = False
        delta_rows: Set[Row] = set()
        sk = self._terms.skolemize_row
        timer = self.metrics.timer("store.flush_ms")
        try:
            if FAULTS.enabled:
                FAULTS.hit("store.flush.begin")
            with timer, OBS.span(
                "store.flush", adds=len(adds), removes=len(removes)
            ):
                if removes:
                    removed_rows = {sk(row) for row in removes}
                    for row in removed_rows:
                        self._base_store.discard(TRIPLE_RELATION, row)
                    if FAULTS.enabled:
                        FAULTS.hit("store.flush.retract")
                    gone = retract_fixpoint_into(
                        self._program,
                        self._closure_store,
                        self._base_store,
                        [(TRIPLE_RELATION, row) for row in removed_rows],
                    )
                    if gone:
                        changed = True
                        delta_rows.update(gone.get(TRIPLE_RELATION, ()))
                    self._count("store.maintenance.incremental_delete")
                if adds:
                    added_rows = {sk(row) for row in adds}
                    for row in added_rows:
                        self._base_store.add(TRIPLE_RELATION, row)
                    if FAULTS.enabled:
                        FAULTS.hit("store.flush.extend")
                    grown = extend_fixpoint_into(
                        self._program,
                        self._closure_store,
                        [(TRIPLE_RELATION, row) for row in added_rows],
                    )
                    if grown:
                        changed = True
                        delta_rows.update(grown.get(TRIPLE_RELATION, ()))
                    self._count("store.maintenance.incremental_insert")
        except BaseException:
            # A failure mid-DRed/extend (injected fault, budget trip,
            # interrupt) leaves the fixpoint store and its EDB half
            # updated.  The data itself — graphs and dataset cache — is
            # already consistent, so recovery just drops the derived
            # state; the next closure-dependent read rebuilds it from
            # scratch.
            self._recover_derived()
            raise
        self.metrics.set_gauge("store.term_dict.size", len(self._terms))
        if OBS.enabled:
            if timer.elapsed_ms is not None:
                OBS.registry.observe("store.flush_ms", timer.elapsed_ms)
            OBS.registry.set_gauge("store.term_dict.size", len(self._terms))
        if changed:
            # The closure delta is non-empty: derived caches are stale.
            self._closure_graph = None
            self._normal_form = None
            self._version += 1
            self._notify_query_cache(delta_rows)
        if self.validate_maintenance:
            self._assert_maintenance_agrees()

    def _assert_maintenance_agrees(self) -> None:
        """Debug cross-check: incremental result == from-scratch fixpoint."""
        maintained = frozenset(self._closure_store.rows(TRIPLE_RELATION))
        reference = evaluate_program(
            self._program,
            [
                (TRIPLE_RELATION, row)
                for row in self._base_store.rows(TRIPLE_RELATION)
            ],
        ).get(TRIPLE_RELATION, frozenset())
        assert maintained == reference, (
            "incremental closure maintenance diverged from the "
            "from-scratch fixpoint "
            f"(missing={sorted(map(str, reference - maintained))[:5]}, "
            f"extra={sorted(map(str, maintained - reference))[:5]})"
        )

    def _invalidate_closure(self) -> None:
        self._closure_store = None
        self._base_store = None
        self._closure_graph = None
        self._normal_form = None
        self._version += 1
        if self._query_cache is not None:
            self._query_cache.invalidate_all()

    def _notify_query_cache(self, delta_rows: Set[Row]) -> None:
        """Route one flushed delta's net closure-row changes to the cache.

        The selective (pattern-overlap) path is exactly sound only for
        ground datasets, where ``nf = cl`` — a ground graph is its own
        core, so a cached valuation set can change only via a closure
        row matching one of the entry's body patterns.  Blank nodes let
        core folding propagate a delta across predicates, so any blank
        in the dataset (or a skolem/blank ID in the delta, belt and
        braces) falls back to a full flush.
        """
        cache = self._query_cache
        if cache is None:
            return
        unsk = self._terms.unskolemize_id
        ground = not self._dataset.has_bnodes() and all(
            not (BNODE_BASE <= i < LITERAL_BASE) and unsk(i) == i
            for row in delta_rows
            for i in row
        )
        if ground:
            cache.invalidate_delta(delta_rows, self._terms.lookup, self._version)
        else:
            cache.invalidate_all()

    # ------------------------------------------------------------------
    # Failure recovery
    # ------------------------------------------------------------------

    def _recover_derived(self) -> None:
        """Drop all derived state after a failed maintenance step.

        The named graphs and dataset cache are authoritative and
        untouched by maintenance, so consistency is restored by
        throwing away the (possibly half-updated) materialized closure
        and buffered delta; the next closure-dependent read recomputes
        from scratch.
        """
        self._pending_adds = set()
        self._pending_removes = set()
        self._invalidate_closure()
        self._count("store.recovered_ops")

    def _recover(self) -> None:
        """Rebuild every derived structure from the named graphs.

        Called after a failure in the *apply* phase of a write, once the
        caller has restored ``_graphs`` to the pre-op triples: the
        dataset cache may have been mid-mutation, so it is rebuilt from
        scratch (reproducing refcounts and indexes exactly), and the
        materialized closure is dropped like :meth:`_recover_derived`.
        """
        dataset = DatasetCache(terms=self._terms)
        for triples in self._graphs.values():
            for t in triples:
                dataset.add(t)
        self._dataset = dataset
        self._recover_derived()

    def _materialized_closure_facts(self) -> Set[Tuple]:
        """The maintained closure's row set (flushing any buffered delta).

        Returns the live row set of the persistent fixpoint store — a
        read-only view for membership tests and iteration, never copied.
        """
        self._flush_delta()
        if self._closure_store is None:
            if OBS.enabled:
                OBS.registry.inc("store.closure_cache.miss")
            try:
                with OBS.span("store.materialize", triples=len(self)):
                    sk = self._terms.skolemize_row
                    base_rows = {sk(row) for row in self._dataset.rows()}
                    facts = [(TRIPLE_RELATION, row) for row in base_rows]
                    self._closure_store = materialize_fixpoint(
                        self._program, facts
                    )
                if FAULTS.enabled:
                    # Window between the fixpoint store and its EDB
                    # being installed: exactly the inconsistency
                    # recovery must repair.
                    FAULTS.hit("store.materialize")
                base = FactStore()
                for row in base_rows:
                    base.add(TRIPLE_RELATION, row)
                self._base_store = base
            except BaseException:
                self._recover_derived()
                raise
            self._count("store.maintenance.recomputed")
            self.metrics.set_gauge("store.term_dict.size", len(self._terms))
            if OBS.enabled:
                OBS.registry.set_gauge(
                    "store.term_dict.size", len(self._terms)
                )
        elif OBS.enabled:
            OBS.registry.inc("store.closure_cache.hit")
        return self._closure_store.rows(TRIPLE_RELATION)

    # ------------------------------------------------------------------
    # Reasoning
    # ------------------------------------------------------------------

    def closure(self) -> RDFGraph:
        """The materialized ``cl(dataset)`` (maintained incrementally)."""
        if self._closure_graph is not None and not (
            self._pending_adds or self._pending_removes
        ):
            if OBS.enabled:
                OBS.registry.inc("store.closure_cache.hit")
            return self._closure_graph
        facts = self._materialized_closure_facts()
        if self._closure_graph is not None:
            return self._closure_graph  # flush left the closure unchanged
        # Decode boundary: un-Skolemize in ID space (an O(1) remap per
        # position), drop rows the ``(·)_*`` step makes ill-formed
        # (literal subjects, non-URI predicates — pure range checks),
        # and only then materialize terms.
        unsk = self._terms.unskolemize_id
        dec = self._terms.decode_triple
        ground = []
        for s, p, o in facts:
            s, p, o = unsk(s), unsk(p), unsk(o)
            if s >= LITERAL_BASE or p >= BNODE_BASE:
                continue
            ground.append(dec((s, p, o)))
        self._closure_graph = RDFGraph(ground)
        return self._closure_graph

    def closure_delta(self) -> RDFGraph:
        """``cl(dataset) − dataset``: the derived-only triples."""
        from ..semantics.closure import closure_delta

        return closure_delta(self.dataset(), closed=self.closure())

    def entails(self, t: Triple) -> bool:
        """Does the store's dataset RDFS-entail the (possibly blank) triple?"""
        if not isinstance(t, Triple):
            t = Triple(*t)
        if not t.bnodes():
            facts = self._materialized_closure_facts()
            row = self._terms.lookup_triple(t)
            return row is not None and row in facts
        return graph_entails(self.dataset(), RDFGraph([t]))

    def normal_form(self) -> RDFGraph:
        """``nf(dataset)``, cached; the matching target for queries.

        Derived as the core of the (incrementally maintained) closure.
        A write whose maintenance step leaves the closure unchanged —
        an empty closure delta — keeps the cached normal form too, so
        redundant writes cost no core computation.
        """
        self._flush_delta()
        if self._normal_form is None:
            from ..minimize.core_graph import core

            if OBS.enabled:
                OBS.registry.inc("store.nf_cache.miss")
            with OBS.span("store.normal_form"):
                self._normal_form = core(self.closure())
        elif OBS.enabled:
            OBS.registry.inc("store.nf_cache.hit")
        return self._normal_form

    @property
    def version(self) -> int:
        """Monotonic derived-state version (bumps on effective deltas)."""
        return self._version

    @property
    def query_cache(self):
        """The active :class:`~repro.query.cache.QueryCache`, or None."""
        return self._query_cache

    def enable_query_cache(
        self,
        max_bytes: int = 32 << 20,
        max_entries: int = 256,
        max_plans: int = 128,
        answer_cache: bool = True,
    ):
        """Attach the two-tier query cache to :meth:`query`.

        Off by default — enabling it changes no answer (cached serving
        is byte-identical, property-tested), only the work done per
        request.  Counters land in ``self.metrics`` (and the obs
        registry when instrumentation is on) as ``query.cache.*``.
        ``answer_cache=False`` keeps only the prepared-plan tier.
        """
        from ..query.cache import QueryCache

        self._query_cache = QueryCache(
            max_bytes=max_bytes,
            max_entries=max_entries,
            max_plans=max_plans,
            answer_cache=answer_cache,
            count=self._count,
        )
        return self._query_cache

    def disable_query_cache(self) -> None:
        self._query_cache = None

    def query(self, q: Query, semantics: str = "union") -> RDFGraph:
        """Answer a tableau query against the dataset (paper semantics).

        Premise-free queries reuse the cached normal form — and, when
        :meth:`enable_query_cache` has been called, the two-tier query
        cache; queries with premises must renormalize against ``D + P``
        per Definition 4.3 (their target is not the store's normal
        form, so they always bypass the cache).
        """
        from ..query.answers import answers

        if q.premise:
            return answers(q, self.dataset(), semantics=semantics, target=None)
        target = self.normal_form()
        if self._query_cache is not None:
            return self._query_cache.answer(q, semantics, target, self._version)
        return answers(q, self.dataset(), semantics=semantics, target=target)

    def describe(self, node: Term) -> RDFGraph:
        """The concise bounded description of *node*.

        All triples with *node* as subject, plus, recursively, the
        descriptions of blank nodes appearing as objects — the standard
        "tell me about X" store operation, blank-closure included so
        the result is a self-contained graph.  Reads the live dataset
        cache; no snapshot is rebuilt.
        """
        out: Set[Triple] = set()
        frontier = [node]
        seen: Set[Term] = set()
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            for t in self._dataset.match(s=current):
                out.add(t)
                if isinstance(t.o, BNode):
                    frontier.append(t.o)
        return RDFGraph(out)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    @classmethod
    def open(cls, path, **backend_opts) -> "TripleStore":
        """Open (or create) a durable store directory.

        Attaches a :class:`~repro.store.durable.DurableBackend` at
        *path* and recovers its committed state: replayed term pools
        (IDs bit-identical to the writing process), checkpoint
        segments, and every WAL batch whose commit record survived.
        Keyword options are forwarded to the backend
        (``wal_checkpoint_bytes``, ``fsync``).
        """
        from .durable import DurableBackend

        return cls(backend=DurableBackend(path, **backend_opts))

    @property
    def backend(self) -> StorageBackend:
        """The attached storage backend (memory by default)."""
        return self._backend

    @property
    def durable(self) -> bool:
        """True when writes are persisted through a durable backend."""
        return self._durable

    def checkpoint(self) -> None:
        """Compact the durable log into segment files (no-op in memory).

        Writes every graph's committed rows as a new segment
        generation, swaps the manifest atomically, and starts a fresh
        WAL.  Runs automatically when the WAL outgrows the backend's
        threshold; callable explicitly before :meth:`close` to make
        reopening cheapest.
        """
        if not self._durable:
            return
        if self._in_transaction:
            raise TransactionError(
                "checkpoint() is not allowed inside a transaction"
            )
        lookup = self._terms.lookup_triple
        graphs_rows = {
            name: sorted(lookup(t) for t in triples)
            for name, triples in self._graphs.items()
        }
        self._backend.checkpoint(graphs_rows)

    def close(self) -> None:
        """Release the backend's file handles.

        Committed data is already durable (every commit point is
        fsynced), so closing without a final :meth:`checkpoint` loses
        nothing — reopening just replays more WAL.
        """
        self._backend.close()

    def save(self, directory) -> None:
        """Serialize every named graph as ``<name>.nt`` under *directory*."""
        from pathlib import Path

        from ..rdfio.ntriples import serialize_ntriples

        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        for name in self.graph_names():
            (path / f"{name}.nt").write_text(serialize_ntriples(self.graph(name)))

    @classmethod
    def load(cls, directory) -> "TripleStore":
        """Rebuild a store from :meth:`save` output."""
        from pathlib import Path

        from ..rdfio.ntriples import parse_ntriples

        store = cls()
        for file in sorted(Path(directory).glob("*.nt")):
            graph = parse_ntriples(file.read_text())
            store.add_all(graph, graph=file.stem)
        return store


class _Transaction:
    def __init__(self, store: TripleStore):
        self._store = store

    def __enter__(self) -> TripleStore:
        self._store.begin()
        return self._store

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        if exc_type is None:
            self._store.commit()
        else:
            self._store.rollback()
        return False
