"""A transactional RDF store with incremental closure maintenance.

This is the "database" a downstream user of the paper's theory would
actually run: named graphs, ACID-ish transactions (all-or-nothing
batches with rollback), a materialized RDFS closure maintained
*incrementally* on insertion (semi-naive delta propagation through the
Datalog rendition of rules (2)–(13); deletions trigger recomputation —
the classic trade-off, measured in ``benchmarks/bench_store.py``), and
query answering with the paper's semantics.

The store works over the Skolemized image of its data (Section 3.1), so
the materialized closure is a plain ground fact set; blank nodes are
restored on the way out.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..core.graph import RDFGraph
from ..core.terms import BNode, Term, Triple, URI
from ..datalog.engine import evaluate_program, extend_fixpoint
from ..datalog.rdfs_program import TRIPLE_RELATION, rdfs_datalog_program
from ..query.tableau import Query
from ..semantics.entailment import entails as graph_entails

__all__ = ["TripleStore", "TransactionError"]

#: Default graph name.
DEFAULT_GRAPH = "default"


class TransactionError(RuntimeError):
    """Raised on invalid transaction usage (nested begin, stray commit)."""


class TripleStore:
    """An updatable collection of named RDF graphs with RDFS reasoning.

    Example::

        store = TripleStore()
        store.add(triple("painter", SC, "artist"))
        with store.transaction():
            store.add(triple("frida", TYPE, "painter"))
        assert store.entails(triple("frida", TYPE, "artist"))
    """

    def __init__(self):
        self._graphs: Dict[str, Set[Triple]] = {DEFAULT_GRAPH: set()}
        self._program = rdfs_datalog_program()
        self._closure_facts: Optional[FrozenSet[Tuple]] = None
        #: Inverse Skolem map of the dataset the closure was built from;
        #: cached with ``_closure_facts`` and invalidated together, so
        #: :meth:`closure` never re-Skolemizes the whole dataset just to
        #: recover it.  Skolemization is deterministic per blank label,
        #: so incremental inserts extend it consistently.
        self._skolem_inverse: Optional[Dict[URI, BNode]] = None
        self._normal_form: Optional[RDFGraph] = None
        self._in_transaction = False
        self._txn_log: List[Tuple[str, str, Triple]] = []  # (op, graph, triple)
        #: How many closure maintenance operations ran incrementally vs
        #: from scratch (exposed for the benchmarks).
        self.stats = {"incremental": 0, "recomputed": 0}

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def graph_names(self) -> List[str]:
        return sorted(self._graphs)

    def graph(self, name: str = DEFAULT_GRAPH) -> RDFGraph:
        """A snapshot of one named graph."""
        return RDFGraph(self._graphs.get(name, ()))

    def dataset(self) -> RDFGraph:
        """The union of all named graphs (shared blank labels merge).

        Sources that must keep their blanks apart should be loaded via
        :meth:`load_graph`, which renames on the way in.
        """
        everything: Set[Triple] = set()
        for triples in self._graphs.values():
            everything |= triples
        return RDFGraph(everything)

    def __len__(self) -> int:
        return sum(len(ts) for ts in self._graphs.values())

    def __contains__(self, t: Triple) -> bool:
        return any(t in ts for ts in self._graphs.values())

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def add(self, t: Triple, graph: str = DEFAULT_GRAPH) -> bool:
        """Insert one triple; returns True when it was new."""
        if not isinstance(t, Triple):
            t = Triple(*t)
        if not t.is_valid_rdf():
            raise ValueError(f"not a well-formed RDF triple: {t}")
        triples = self._graphs.setdefault(graph, set())
        if t in triples:
            return False
        triples.add(t)
        if self._in_transaction:
            self._txn_log.append(("add", graph, t))
        self._on_insert([t])
        return True

    def add_all(self, triples: Iterable[Triple], graph: str = DEFAULT_GRAPH) -> int:
        """Insert a batch; returns the number of new triples."""
        new: List[Triple] = []
        target = self._graphs.setdefault(graph, set())
        for t in triples:
            if not isinstance(t, Triple):
                t = Triple(*t)
            if not t.is_valid_rdf():
                raise ValueError(f"not a well-formed RDF triple: {t}")
            if t not in target:
                target.add(t)
                new.append(t)
                if self._in_transaction:
                    self._txn_log.append(("add", graph, t))
        if new:
            self._on_insert(new)
        return len(new)

    def load_graph(self, source: RDFGraph, graph: str = DEFAULT_GRAPH) -> int:
        """Merge a source graph in (blank nodes renamed apart, §2.1)."""
        current = self.dataset()
        merged = current + source
        fresh_part = merged - current
        return self.add_all(fresh_part, graph=graph)

    def remove(self, t: Triple, graph: str = DEFAULT_GRAPH) -> bool:
        """Delete one triple; returns True when it was present."""
        if not isinstance(t, Triple):
            t = Triple(*t)
        triples = self._graphs.get(graph, set())
        if t not in triples:
            return False
        triples.remove(t)
        if self._in_transaction:
            self._txn_log.append(("remove", graph, t))
        self._invalidate_closure()
        return True

    def clear(self, graph: Optional[str] = None) -> None:
        """Drop one named graph (or everything)."""
        if self._in_transaction:
            raise TransactionError("clear() is not allowed inside a transaction")
        if graph is None:
            self._graphs = {DEFAULT_GRAPH: set()}
        else:
            self._graphs.pop(graph, None)
        self._invalidate_closure()

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def begin(self) -> None:
        if self._in_transaction:
            raise TransactionError("transaction already in progress")
        self._in_transaction = True
        self._txn_log = []

    def commit(self) -> None:
        if not self._in_transaction:
            raise TransactionError("no transaction in progress")
        self._in_transaction = False
        self._txn_log = []

    def rollback(self) -> None:
        if not self._in_transaction:
            raise TransactionError("no transaction in progress")
        for op, graph, t in reversed(self._txn_log):
            if op == "add":
                self._graphs.get(graph, set()).discard(t)
            else:
                self._graphs.setdefault(graph, set()).add(t)
        self._in_transaction = False
        self._txn_log = []
        self._invalidate_closure()

    def transaction(self) -> "_Transaction":
        """Context manager: commits on success, rolls back on exception."""
        return _Transaction(self)

    # ------------------------------------------------------------------
    # Reasoning
    # ------------------------------------------------------------------

    def _skolemized_dataset(self) -> Tuple[RDFGraph, Dict[URI, BNode]]:
        return self.dataset().skolemize()

    def _invalidate_closure(self) -> None:
        self._closure_facts = None
        self._skolem_inverse = None
        self._normal_form = None

    def _on_insert(self, new_triples: List[Triple]) -> None:
        self._normal_form = None  # nf must be re-derived (cheaply, from cl)
        if self._closure_facts is None:
            return  # nothing materialized yet; computed lazily later
        skolemized, inverse = RDFGraph(new_triples).skolemize()
        if self._skolem_inverse is None:
            self._skolem_inverse = dict(inverse)
        else:
            self._skolem_inverse.update(inverse)
        new_facts = [(TRIPLE_RELATION, (t.s, t.p, t.o)) for t in skolemized]
        result = extend_fixpoint(
            self._program,
            ((TRIPLE_RELATION, row) for row in self._closure_facts),
            new_facts,
        )
        self._closure_facts = result.get(TRIPLE_RELATION, frozenset())
        self.stats["incremental"] += 1

    def _materialized_closure_facts(self) -> FrozenSet[Tuple]:
        if self._closure_facts is None:
            skolemized, inverse = self._skolemized_dataset()
            facts = [(TRIPLE_RELATION, (t.s, t.p, t.o)) for t in skolemized]
            result = evaluate_program(self._program, facts)
            self._closure_facts = result.get(TRIPLE_RELATION, frozenset())
            self._skolem_inverse = dict(inverse)
            self.stats["recomputed"] += 1
        return self._closure_facts

    def closure(self) -> RDFGraph:
        """The materialized ``cl(dataset)`` (maintained incrementally)."""
        facts = self._materialized_closure_facts()
        inverse = self._skolem_inverse
        if inverse is None:  # defensive: facts restored without inverse
            _, inverse = self._skolemized_dataset()
            self._skolem_inverse = dict(inverse)
        ground = RDFGraph(
            Triple(s, p, o)
            for s, p, o in facts
            if Triple(s, p, o).is_valid_rdf()
        )
        return RDFGraph.unskolemize(ground, inverse)

    def entails(self, t: Triple) -> bool:
        """Does the store's dataset RDFS-entail the (possibly blank) triple?"""
        if not isinstance(t, Triple):
            t = Triple(*t)
        if not t.bnodes():
            facts = self._materialized_closure_facts()
            return (t.s, t.p, t.o) in facts
        return graph_entails(self.dataset(), RDFGraph([t]))

    def normal_form(self) -> RDFGraph:
        """``nf(dataset)``, cached; the matching target for queries.

        Derived as the core of the (incrementally maintained) closure,
        so repeated premise-free queries skip both steps.
        """
        if self._normal_form is None:
            from ..minimize.core_graph import core

            self._normal_form = core(self.closure())
        return self._normal_form

    def query(self, q: Query, semantics: str = "union") -> RDFGraph:
        """Answer a tableau query against the dataset (paper semantics).

        Premise-free queries reuse the cached normal form; queries with
        premises must renormalize against ``D + P`` per Definition 4.3.
        """
        from ..query.answers import answers

        target = self.normal_form() if not q.premise else None
        return answers(q, self.dataset(), semantics=semantics, target=target)

    def describe(self, node: Term) -> RDFGraph:
        """The concise bounded description of *node*.

        All triples with *node* as subject, plus, recursively, the
        descriptions of blank nodes appearing as objects — the standard
        "tell me about X" store operation, blank-closure included so
        the result is a self-contained graph.
        """
        dataset = self.dataset()
        out: Set[Triple] = set()
        frontier = [node]
        seen: Set[Term] = set()
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            for t in dataset.match(s=current):
                out.add(t)
                if isinstance(t.o, BNode):
                    frontier.append(t.o)
        return RDFGraph(out)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, directory) -> None:
        """Serialize every named graph as ``<name>.nt`` under *directory*."""
        from pathlib import Path

        from ..rdfio.ntriples import serialize_ntriples

        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        for name in self.graph_names():
            (path / f"{name}.nt").write_text(serialize_ntriples(self.graph(name)))

    @classmethod
    def load(cls, directory) -> "TripleStore":
        """Rebuild a store from :meth:`save` output."""
        from pathlib import Path

        from ..rdfio.ntriples import parse_ntriples

        store = cls()
        for file in sorted(Path(directory).glob("*.nt")):
            graph = parse_ntriples(file.read_text())
            store.add_all(graph, graph=file.stem)
        return store


class _Transaction:
    def __init__(self, store: TripleStore):
        self._store = store

    def __enter__(self) -> TripleStore:
        self._store.begin()
        return self._store

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        if exc_type is None:
            self._store.commit()
        else:
            self._store.rollback()
        return False
