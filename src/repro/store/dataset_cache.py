"""A live, mutable view of the store's dataset (union of named graphs).

:class:`~repro.core.graph.RDFGraph` is immutable: every union the store
used to serve (``dataset()``, ``describe()``, the blank-entailment
path) rebuilt the triple set and all six positional indexes from
scratch.  :class:`DatasetCache` keeps one union snapshot *alive*
instead — per-position indexes updated in place on every add/remove,
with reference counts so the same triple asserted in two named graphs
stays in the union until its last occurrence goes.

Since the dictionary-encoding PR the cache lives in **ID space**: every
triple is interned once through the store's shared
:class:`~repro.core.interning.TermDict` at insert, reference counts and
index keys are ``(int, int, int)`` rows, and the maintained-closure
machinery reads those rows directly (:meth:`rows`) — no re-encoding per
write or per fixpoint.  Reads stay term-level without decoding either:
each live row memoizes its original :class:`Triple`, and index buckets
hold those triples under int keys, so ``match``/``count`` probe with a
non-interning lookup and hand back triples.

The cache exposes the same ``match``/``count`` lookup interface as
``RDFGraph`` (the primitive the matching planner and ``describe``
consume), plus a lazily cached immutable :meth:`snapshot` for callers
that need a real ``RDFGraph`` value: after a burst of writes the first
``snapshot()`` rebuilds once, every later call is O(1) until the next
mutation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Set, Tuple

from ..core.graph import RDFGraph
from ..core.interning import BNODE_BASE, LITERAL_BASE, Row, TermDict
from ..core.terms import BNode, Term, Triple
from ..obs import OBS

__all__ = ["DatasetCache"]


class DatasetCache:
    """Refcounted union of triple sets with in-place positional indexes."""

    __slots__ = (
        "terms",
        "_counts",
        "_triple_of",
        "_by_subject",
        "_by_predicate",
        "_by_object",
        "_by_sp",
        "_by_po",
        "_by_so",
        "_bnode_counts",
        "_snapshot",
    )

    def __init__(
        self,
        triples: Iterable[Triple] = (),
        terms: Optional[TermDict] = None,
    ):
        #: The (usually store-owned, shared) term dictionary.
        self.terms = terms if terms is not None else TermDict()
        self._counts: Dict[Row, int] = {}
        #: Live row → the triple it encodes (the decode-free read path).
        self._triple_of: Dict[Row, Triple] = {}
        self._by_subject: Dict[int, Set[Triple]] = {}
        self._by_predicate: Dict[int, Set[Triple]] = {}
        self._by_object: Dict[int, Set[Triple]] = {}
        self._by_sp: Dict[Tuple[int, int], Set[Triple]] = {}
        self._by_po: Dict[Tuple[int, int], Set[Triple]] = {}
        self._by_so: Dict[Tuple[int, int], Set[Triple]] = {}
        self._bnode_counts: Dict[int, int] = {}
        self._snapshot: Optional[RDFGraph] = None
        for t in triples:
            self.add(t)

    # ------------------------------------------------------------------
    # Mutation (O(1) per call)
    # ------------------------------------------------------------------

    def add(self, t: Triple) -> Optional[Row]:
        """Count one occurrence; the new row iff the union gained it.

        Returns the encoded row when the triple is new to the union
        (callers buffer exactly that row for closure maintenance) and
        ``None`` when only the reference count moved.
        """
        row = self.terms.encode_triple(t)
        count = self._counts.get(row, 0)
        self._counts[row] = count + 1
        if count:
            return None
        s, p, o = row
        self._triple_of[row] = t
        self._by_subject.setdefault(s, set()).add(t)
        self._by_predicate.setdefault(p, set()).add(t)
        self._by_object.setdefault(o, set()).add(t)
        self._by_sp.setdefault((s, p), set()).add(t)
        self._by_po.setdefault((p, o), set()).add(t)
        self._by_so.setdefault((s, o), set()).add(t)
        for i in row:
            if BNODE_BASE <= i < LITERAL_BASE:
                self._bnode_counts[i] = self._bnode_counts.get(i, 0) + 1
        self._snapshot = None
        return row

    def discard(self, t: Triple) -> Optional[Row]:
        """Drop one occurrence; the dead row iff the union lost it."""
        row = self.terms.lookup_triple(t)
        if row is None:
            return None
        count = self._counts.get(row, 0)
        if not count:
            return None
        if count > 1:
            self._counts[row] = count - 1
            return None
        del self._counts[row]
        triple = self._triple_of.pop(row)
        s, p, o = row
        for index, key in (
            (self._by_subject, s),
            (self._by_predicate, p),
            (self._by_object, o),
            (self._by_sp, (s, p)),
            (self._by_po, (p, o)),
            (self._by_so, (s, o)),
        ):
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(triple)
                if not bucket:
                    del index[key]
        for i in row:
            if BNODE_BASE <= i < LITERAL_BASE:
                remaining = self._bnode_counts.get(i, 0) - 1
                if remaining > 0:
                    self._bnode_counts[i] = remaining
                else:
                    self._bnode_counts.pop(i, None)
        self._snapshot = None
        return row

    # ------------------------------------------------------------------
    # Lookup — same contract as RDFGraph.match/count
    # ------------------------------------------------------------------

    def match(
        self,
        s: Optional[Term] = None,
        p: Optional[Term] = None,
        o: Optional[Term] = None,
    ) -> Iterable[Triple]:
        """Triples matching the given fixed positions (None = wildcard).

        Probe terms resolve through a *non-interning* lookup — a term
        the dataset has never seen simply matches nothing and does not
        grow the dictionary.
        """
        lookup = self.terms.lookup
        if s is not None:
            s = lookup(s)
            if s is None:
                return ()
        if p is not None:
            p = lookup(p)
            if p is None:
                return ()
        if o is not None:
            o = lookup(o)
            if o is None:
                return ()
        if s is not None and p is not None and o is not None:
            t = self._triple_of.get((s, p, o))
            return (t,) if t is not None else ()
        if s is not None and p is not None:
            return self._by_sp.get((s, p), ())
        if p is not None and o is not None:
            return self._by_po.get((p, o), ())
        if s is not None and o is not None:
            return self._by_so.get((s, o), ())
        if s is not None:
            return self._by_subject.get(s, ())
        if p is not None:
            return self._by_predicate.get(p, ())
        if o is not None:
            return self._by_object.get(o, ())
        return self._triple_of.values()

    def count(
        self,
        s: Optional[Term] = None,
        p: Optional[Term] = None,
        o: Optional[Term] = None,
    ) -> int:
        """Number of matching triples, read straight off the index sizes."""
        matched = self.match(s, p, o)
        if matched is self._triple_of.values():
            return len(self._counts)
        return len(matched)

    # ------------------------------------------------------------------
    # Set-like protocol over the union
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._counts)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triple_of.values())

    def __contains__(self, t) -> bool:
        if not isinstance(t, Triple):
            t = Triple(*t)
        row = self.terms.lookup_triple(t)
        return row is not None and row in self._counts

    def rows(self) -> Iterable[Row]:
        """The union's encoded rows (the closure machinery's EDB feed)."""
        return self._counts.keys()

    def bnodes(self) -> FrozenSet[BNode]:
        decode = self.terms.decode
        return frozenset(decode(i) for i in self._bnode_counts)

    def has_bnodes(self) -> bool:
        """O(1): does any live triple mention a blank node?

        Gates the query cache's exact-invalidation path — for a ground
        dataset ``nf = cl`` and delta overlap testing is sound.
        """
        return bool(self._bnode_counts)

    def snapshot(self) -> RDFGraph:
        """The union as an immutable ``RDFGraph``; cached between writes."""
        if self._snapshot is None:
            if OBS.enabled:
                OBS.registry.inc("store.dataset_cache.miss")
            self._snapshot = RDFGraph(self._triple_of.values())
        elif OBS.enabled:
            OBS.registry.inc("store.dataset_cache.hit")
        return self._snapshot

    @property
    def snapshot_is_cached(self) -> bool:
        """True when the next :meth:`snapshot` call is O(1) (no rebuild)."""
        return self._snapshot is not None
