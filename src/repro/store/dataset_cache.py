"""A live, mutable view of the store's dataset (union of named graphs).

:class:`~repro.core.graph.RDFGraph` is immutable: every union the store
used to serve (``dataset()``, ``describe()``, the blank-entailment
path) rebuilt the triple set and all six positional indexes from
scratch.  :class:`DatasetCache` keeps one union snapshot *alive*
instead — per-position indexes updated in place on every add/remove,
with reference counts so the same triple asserted in two named graphs
stays in the union until its last occurrence goes.

The cache exposes the same ``match``/``count`` lookup interface as
``RDFGraph`` (the primitive the matching planner and ``describe``
consume), plus a lazily cached immutable :meth:`snapshot` for callers
that need a real ``RDFGraph`` value: after a burst of writes the first
``snapshot()`` rebuilds once, every later call is O(1) until the next
mutation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Set, Tuple

from ..core.graph import RDFGraph
from ..core.terms import BNode, Term, Triple
from ..obs import OBS

__all__ = ["DatasetCache"]


class DatasetCache:
    """Refcounted union of triple sets with in-place positional indexes."""

    __slots__ = (
        "_counts",
        "_by_subject",
        "_by_predicate",
        "_by_object",
        "_by_sp",
        "_by_po",
        "_by_so",
        "_bnode_counts",
        "_snapshot",
    )

    def __init__(self, triples: Iterable[Triple] = ()):
        self._counts: Dict[Triple, int] = {}
        self._by_subject: Dict[Term, Set[Triple]] = {}
        self._by_predicate: Dict[Term, Set[Triple]] = {}
        self._by_object: Dict[Term, Set[Triple]] = {}
        self._by_sp: Dict[Tuple[Term, Term], Set[Triple]] = {}
        self._by_po: Dict[Tuple[Term, Term], Set[Triple]] = {}
        self._by_so: Dict[Tuple[Term, Term], Set[Triple]] = {}
        self._bnode_counts: Dict[BNode, int] = {}
        self._snapshot: Optional[RDFGraph] = None
        for t in triples:
            self.add(t)

    # ------------------------------------------------------------------
    # Mutation (O(1) per call)
    # ------------------------------------------------------------------

    def add(self, t: Triple) -> bool:
        """Count one occurrence; True iff the union gained the triple."""
        count = self._counts.get(t, 0)
        self._counts[t] = count + 1
        if count:
            return False
        self._by_subject.setdefault(t.s, set()).add(t)
        self._by_predicate.setdefault(t.p, set()).add(t)
        self._by_object.setdefault(t.o, set()).add(t)
        self._by_sp.setdefault((t.s, t.p), set()).add(t)
        self._by_po.setdefault((t.p, t.o), set()).add(t)
        self._by_so.setdefault((t.s, t.o), set()).add(t)
        for term in t:
            if isinstance(term, BNode):
                self._bnode_counts[term] = self._bnode_counts.get(term, 0) + 1
        self._snapshot = None
        return True

    def discard(self, t: Triple) -> bool:
        """Drop one occurrence; True iff the union lost the triple."""
        count = self._counts.get(t, 0)
        if not count:
            return False
        if count > 1:
            self._counts[t] = count - 1
            return False
        del self._counts[t]
        for index, key in (
            (self._by_subject, t.s),
            (self._by_predicate, t.p),
            (self._by_object, t.o),
            (self._by_sp, (t.s, t.p)),
            (self._by_po, (t.p, t.o)),
            (self._by_so, (t.s, t.o)),
        ):
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(t)
                if not bucket:
                    del index[key]
        for term in t:
            if isinstance(term, BNode):
                remaining = self._bnode_counts.get(term, 0) - 1
                if remaining > 0:
                    self._bnode_counts[term] = remaining
                else:
                    self._bnode_counts.pop(term, None)
        self._snapshot = None
        return True

    # ------------------------------------------------------------------
    # Lookup — same contract as RDFGraph.match/count
    # ------------------------------------------------------------------

    def match(
        self,
        s: Optional[Term] = None,
        p: Optional[Term] = None,
        o: Optional[Term] = None,
    ) -> Iterable[Triple]:
        """Triples matching the given fixed positions (None = wildcard)."""
        if s is not None and p is not None and o is not None:
            t = Triple(s, p, o)
            return (t,) if t in self._counts else ()
        if s is not None and p is not None:
            return self._by_sp.get((s, p), ())
        if p is not None and o is not None:
            return self._by_po.get((p, o), ())
        if s is not None and o is not None:
            return self._by_so.get((s, o), ())
        if s is not None:
            return self._by_subject.get(s, ())
        if p is not None:
            return self._by_predicate.get(p, ())
        if o is not None:
            return self._by_object.get(o, ())
        return self._counts.keys()

    def count(
        self,
        s: Optional[Term] = None,
        p: Optional[Term] = None,
        o: Optional[Term] = None,
    ) -> int:
        """Number of matching triples, read straight off the index sizes."""
        if s is not None and p is not None and o is not None:
            return 1 if Triple(s, p, o) in self._counts else 0
        if s is not None and p is not None:
            return len(self._by_sp.get((s, p), ()))
        if p is not None and o is not None:
            return len(self._by_po.get((p, o), ()))
        if s is not None and o is not None:
            return len(self._by_so.get((s, o), ()))
        if s is not None:
            return len(self._by_subject.get(s, ()))
        if p is not None:
            return len(self._by_predicate.get(p, ()))
        if o is not None:
            return len(self._by_object.get(o, ()))
        return len(self._counts)

    # ------------------------------------------------------------------
    # Set-like protocol over the union
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._counts)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._counts)

    def __contains__(self, t) -> bool:
        if not isinstance(t, Triple):
            t = Triple(*t)
        return t in self._counts

    def bnodes(self) -> FrozenSet[BNode]:
        return frozenset(self._bnode_counts)

    def snapshot(self) -> RDFGraph:
        """The union as an immutable ``RDFGraph``; cached between writes."""
        if self._snapshot is None:
            if OBS.enabled:
                OBS.registry.inc("store.dataset_cache.miss")
            self._snapshot = RDFGraph(self._counts)
        elif OBS.enabled:
            OBS.registry.inc("store.dataset_cache.hit")
        return self._snapshot

    @property
    def snapshot_is_cached(self) -> bool:
        """True when the next :meth:`snapshot` call is O(1) (no rebuild)."""
        return self._snapshot is not None
