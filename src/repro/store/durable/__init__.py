"""Durable storage backend: WAL + term log + checkpoint segments."""

from .backend import DEFAULT_CHECKPOINT_BYTES, MANIFEST_NAME, DurableBackend
from .recordlog import MAGIC, RecordLog, scan_records
from .segments import SEGMENT_ORDERINGS, read_segment, write_segment

__all__ = [
    "DurableBackend",
    "MANIFEST_NAME",
    "DEFAULT_CHECKPOINT_BYTES",
    "RecordLog",
    "scan_records",
    "MAGIC",
    "write_segment",
    "read_segment",
    "SEGMENT_ORDERINGS",
]
