"""Length-prefixed, CRC-checksummed append-only record logs.

Both durable logs — the write-ahead log of committed batches and the
term-dictionary string-pool log — share one file format:

.. code-block:: text

    file   := MAGIC record*
    MAGIC  := b"RPRLOG1\\n"                       (8 bytes)
    record := len:u32le  crc:u32le  payload       (crc = crc32(payload))

The framing makes torn tails *detectable*: a crash can leave a short
final record (length header promises more bytes than exist) or a
corrupt one (CRC mismatch), and :func:`scan_records` stops at the
first such record, reporting the byte offset of the last intact one so
the caller can truncate the tail away.  What the intact records *mean*
— which are committed, which are an abandoned batch — is the caller's
semantics (:mod:`repro.store.durable.backend`), not the log's.

Fsync discipline: :meth:`RecordLog.append` only buffers;
:meth:`RecordLog.sync` flushes and ``os.fsync``\\ s, advancing
:attr:`RecordLog.synced_bytes` — the prefix guaranteed to survive a
crash.  The crash–reopen tests simulate power loss by copying the
store directory with each log truncated to (or torn just past) its
synced prefix.

Fault sites (:data:`repro.robustness.faultinject.FAULTS`):
``durable.<name>.post_write`` fires after a record's bytes are
buffered, ``durable.<name>.pre_fsync`` after the flush but before the
fsync — the two windows where acknowledged-but-volatile data can be
lost.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Callable, List, Tuple

from ...robustness.faultinject import FAULTS

__all__ = ["MAGIC", "RecordLog", "scan_records", "frame_record"]

#: File-format magic, 8 bytes, shared by both logs.
MAGIC = b"RPRLOG1\n"

_FRAME = struct.Struct("<II")  # payload length, crc32(payload)


def _noop_count(name: str, amount: int = 1) -> None:
    pass


def frame_record(payload: bytes) -> bytes:
    """One framed record: length + CRC header followed by the payload."""
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def scan_records(path) -> Tuple[List[bytes], int, int]:
    """Scan a record log, stopping at the first torn/corrupt record.

    Returns ``(payloads, valid_end, file_size)``: the intact payloads
    in order, the byte offset just past the last intact record (the
    truncation point for tail repair), and the current file size.  A
    missing, empty, or header-torn file yields ``([], 0, size)`` — the
    caller recreates the header.
    """
    try:
        with open(path, "rb") as f:
            data = f.read()
    except FileNotFoundError:
        return [], 0, 0
    size = len(data)
    if size < len(MAGIC) or data[: len(MAGIC)] != MAGIC:
        return [], 0, size
    payloads: List[bytes] = []
    off = len(MAGIC)
    header = _FRAME.size
    while off + header <= size:
        length, crc = _FRAME.unpack_from(data, off)
        end = off + header + length
        if end > size:
            break  # short payload: torn tail
        payload = data[off + header : end]
        if zlib.crc32(payload) != crc:
            break  # corrupt record: stop, truncate here
        payloads.append(payload)
        off = end
    return payloads, off, size


def fsync_dir(directory) -> None:
    """Best-effort fsync of a directory entry (no-op where unsupported)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class RecordLog:
    """An append handle over one recovered (tail-repaired) record log.

    The caller runs :func:`scan_records` first and passes the
    truncation point; the constructor repairs the tail (``ftruncate``)
    before appending resumes, so a torn record can never end up in the
    *middle* of the log.
    """

    __slots__ = (
        "path",
        "name",
        "_f",
        "_size",
        "synced_bytes",
        "_count",
        "_counter_prefix",
    )

    def __init__(
        self,
        path,
        valid_end: int,
        file_size: int,
        name: str = "wal",
        counter_prefix: str = "wal",
        count: Callable[..., None] = _noop_count,
    ):
        self.path = os.fspath(path)
        self.name = name
        self._count = count
        self._counter_prefix = counter_prefix
        created = valid_end == 0
        # 'ab' keeps every write at EOF even after an ftruncate repair.
        self._f = open(self.path, "ab")
        if file_size > valid_end or (created and file_size > 0):
            # Torn or header-less tail left by a crash: cut it off
            # before anything is appended after it.
            os.ftruncate(self._f.fileno(), valid_end)
        if created:
            self._f.write(MAGIC)
            self._f.flush()
            os.fsync(self._f.fileno())
            self._size = len(MAGIC)
        else:
            self._size = valid_end
        #: Bytes guaranteed durable (advanced by :meth:`sync`).
        self.synced_bytes = self._size

    @property
    def size(self) -> int:
        """Current log size in bytes (including unsynced appends)."""
        return self._size

    def append(self, payload: bytes) -> None:
        """Buffer one framed record (durable only after :meth:`sync`)."""
        rec = frame_record(payload)
        self._f.write(rec)
        self._size += len(rec)
        self._count(f"{self._counter_prefix}.appends")
        if FAULTS.enabled:
            FAULTS.hit(f"durable.{self.name}.post_write")

    def sync(self) -> None:
        """Flush and fsync; everything appended so far becomes durable."""
        self._f.flush()
        if FAULTS.enabled:
            FAULTS.hit(f"durable.{self.name}.pre_fsync")
        os.fsync(self._f.fileno())
        self.synced_bytes = self._size
        self._count(f"{self._counter_prefix}.fsyncs")

    def truncate_to(self, offset: int) -> None:
        """Tail repair after a failed commit: drop bytes past *offset*."""
        self._f.flush()
        os.ftruncate(self._f.fileno(), offset)
        self._size = offset
        if self.synced_bytes > offset:
            self.synced_bytes = offset

    def close(self) -> None:
        try:
            self._f.close()
        except OSError:
            pass

    def __repr__(self) -> str:
        return (
            f"RecordLog({self.path!r}, {self._size} bytes, "
            f"{self.synced_bytes} synced)"
        )
