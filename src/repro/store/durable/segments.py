"""Checkpoint segment files: one graph as SPO/POS/OSP sorted runs.

A checkpoint parks each named graph's committed rows in three flat
``array('q')`` files — the exact spill layout of
:meth:`repro.core.columns.SortedRuns.tofile` /
:meth:`~repro.core.columns.SortedRuns.fromfile` (3·n interleaved
values per ordering), one file per key ordering:

.. code-block:: text

    <base>.spo.bin   rows as (s, p, o), sorted  — the canonical run
    <base>.pos.bin   rows as (p, o, s), sorted  — predicate-prefix scans
    <base>.osp.bin   rows as (o, s, p), sorted  — object-prefix scans

Reloading therefore costs one ``frombytes`` pass per ordering: the SPO
file rebuilds the :class:`~repro.core.columns.SortedRuns` row list
without a re-sort, and the POS/OSP files are de-interleaved straight
into that relation's lazy :class:`~repro.core.columns.OrderView`
caches, so a reopened store's columnar reads start warm.

Each file's CRC32 and row count live in the store manifest (segments
are immutable once the manifest naming them is committed, so the
checksum is computed once at write time); :func:`read_segment`
verifies them and raises :class:`~repro.store.backend.StorageError` on
mismatch rather than serving silently corrupt rows.
"""

from __future__ import annotations

import os
import zlib
from array import array
from typing import Dict, List

from ...core.columns import OrderView, SortedRuns, rows_from_array, rows_to_array
from ...robustness.faultinject import FAULTS
from ..backend import StorageError

__all__ = ["write_segment", "read_segment", "SEGMENT_ORDERINGS"]

#: The three key orderings, in write order.
SEGMENT_ORDERINGS = ("spo", "pos", "osp")


def _permuted(rows: List, ordering: str) -> List:
    if ordering == "spo":
        return rows
    if ordering == "pos":
        return sorted((p, o, s) for s, p, o in rows)
    return sorted((o, s, p) for s, p, o in rows)


def write_segment(base, rows: List) -> Dict[str, int]:
    """Write one graph's sorted unique rows as three ordering files.

    Returns the manifest metadata: row count plus per-ordering CRC32.
    Files are fsynced before return; the caller commits them by
    renaming the manifest that names them.  The
    ``durable.checkpoint.mid_compaction`` fault site fires between
    files — the window where a crash leaves a half-written segment
    generation that recovery must ignore.
    """
    base = os.fspath(base)
    meta: Dict[str, int] = {"rows": len(rows)}
    for ordering in SEGMENT_ORDERINGS:
        data = rows_to_array(_permuted(rows, ordering)).tobytes()
        meta[f"crc_{ordering}"] = zlib.crc32(data)
        with open(f"{base}.{ordering}.bin", "wb") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())
        if FAULTS.enabled:
            FAULTS.hit("durable.checkpoint.mid_compaction")
    return meta


def _read_ordering(base: str, ordering: str, meta: Dict[str, int]) -> array:
    path = f"{base}.{ordering}.bin"
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError as err:
        raise StorageError(f"segment file missing/unreadable: {path} ({err})")
    expected = meta.get(f"crc_{ordering}")
    if expected is not None and zlib.crc32(data) != expected:
        raise StorageError(f"segment file corrupt (CRC mismatch): {path}")
    if len(data) != 24 * meta["rows"]:
        raise StorageError(
            f"segment file truncated: {path} "
            f"({len(data)} bytes for {meta['rows']} rows)"
        )
    flat = array("q")
    flat.frombytes(data)
    return flat


def read_segment(base, meta: Dict[str, int]) -> SortedRuns:
    """Reload one segment into a :class:`SortedRuns` with warm views.

    The SPO file is the canonical row list (already sorted and
    duplicate-free, exactly :meth:`SortedRuns.fromfile`'s trust
    contract); the POS/OSP files are installed as pre-built order
    views so no reopened-store read pays a re-sort.
    """
    base = os.fspath(base)
    if meta["rows"] == 0:
        return SortedRuns([])
    spo = _read_ordering(base, "spo", meta)
    runs = SortedRuns(rows_from_array(spo))
    pos = _read_ordering(base, "pos", meta)
    osp = _read_ordering(base, "osp", meta)
    runs._pos = OrderView(pos[0::3], pos[1::3], pos[2::3])
    runs._osp = OrderView(osp[0::3], osp[1::3], osp[2::3])
    return runs
