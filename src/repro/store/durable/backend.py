"""The pure-python durable storage backend.

On-disk layout of a store directory::

    MANIFEST.json        atomically-replaced root pointer (generation,
                         active WAL file, segment metadata + CRCs)
    terms.log            append-only string-pool log: one record per
                         interned term, replayed in order at open so
                         term IDs are bit-identical across restarts
    wal-<gen>.log        write-ahead log of committed batches
    segments-<gen>/      per-graph SPO/POS/OSP segment files written
                         by the last checkpoint

Commit protocol (one durable batch = one engine commit point):

1. append the term-pool records interned since the last commit to
   ``terms.log``; fsync it — a WAL row may only reference terms that
   are already durable;
2. append the batch's ``A`` (add) / ``R`` (remove) / ``D`` (drop a
   graph name) / ``X`` (clear everything) records to the WAL, then one
   ``C`` (commit, sequence-numbered) record; fsync.

Recovery replays records in three steps: the term log's intact records
rebuild the term pools (extra terms from an un-committed batch are
harmless — they occupy IDs nothing references); the manifest's segment
files rebuild each graph's committed rows; the WAL's batches are
applied **only up to the last intact ``C`` record** — add/remove
application is idempotent set algebra, so replaying a batch that the
segments already contain is safe.  Everything after the last commit
record (a torn record, a corrupt record, or intact records of a batch
whose ``C`` never hit the disk) is truncated away, counted in
``wal.torn_tail_bytes``.

A commit that fails mid-append (I/O error, injected fault) repairs the
tail in-process by truncating both logs back to their pre-batch
offsets and re-raises; if even the repair fails the backend is
*poisoned* — every later commit raises :class:`StorageError` until the
store is reopened, because the on-disk tail state is unknown.

Checkpoints write a new segment generation and a fresh WAL, then
commit both with one atomic manifest replace (``os.replace``); a crash
anywhere before the replace leaves the old generation authoritative
and the half-built one as stray files that the next open removes.
"""

from __future__ import annotations

import json
import os
import shutil
import struct
from array import array
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ...core.columns import rows_from_array, rows_to_array
from ...robustness.faultinject import FAULTS
from ..backend import (
    DEFAULT_GRAPH,
    BackendState,
    DurableOp,
    StorageBackend,
    StorageError,
    TermRecord,
)
from .recordlog import MAGIC, RecordLog, fsync_dir, scan_records

__all__ = ["DurableBackend", "MANIFEST_NAME", "DEFAULT_CHECKPOINT_BYTES"]

MANIFEST_NAME = "MANIFEST.json"
TERMS_LOG_NAME = "terms.log"

#: WAL size beyond which :meth:`DurableBackend.should_checkpoint`
#: suggests folding the log into segments (8 MiB ≈ a few hundred
#: thousand buffered row operations).
DEFAULT_CHECKPOINT_BYTES = 8 << 20

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

_FRAME_OVERHEAD = 8  # u32 length + u32 crc per record


def _noop_count(name: str, amount: int = 1) -> None:
    pass


# -- WAL payload (de)coding --------------------------------------------

def _encode_ops_record(op: str, graph: str, rows: List[Tuple[int, int, int]]) -> bytes:
    tag = b"A" if op == "add" else b"R"
    name = graph.encode("utf-8")
    return (
        tag
        + _U32.pack(len(name))
        + name
        + _U32.pack(len(rows))
        + rows_to_array(rows).tobytes()
    )


def _decode_record(payload: bytes):
    """-> ("commit", seq) | ("clear",) | ("drop", graph) | (op, graph, rows)."""
    tag = payload[:1]
    if tag == b"C":
        return ("commit", _U64.unpack_from(payload, 1)[0])
    if tag == b"X":
        return ("clear",)
    if tag == b"D":
        (name_len,) = _U32.unpack_from(payload, 1)
        return ("drop", payload[5 : 5 + name_len].decode("utf-8"))
    if tag not in (b"A", b"R"):
        raise StorageError(f"unknown WAL record tag {tag!r}")
    (name_len,) = _U32.unpack_from(payload, 1)
    name = payload[5 : 5 + name_len].decode("utf-8")
    (n_rows,) = _U32.unpack_from(payload, 5 + name_len)
    flat = array("q")
    flat.frombytes(payload[9 + name_len : 9 + name_len + 24 * n_rows])
    return ("add" if tag == b"A" else "del", name, rows_from_array(flat))


class DurableBackend(StorageBackend):
    """WAL + segment-file persistence for :class:`TripleStore`.

    ``fsync=False`` trades the crash-durability guarantee for speed
    (flush-only commits) — for tests and bulk loads that end in an
    explicit checkpoint, never for serving.
    """

    durable = True

    def __init__(
        self,
        path,
        wal_checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
        fsync: bool = True,
    ):
        self.path = Path(path)
        self.wal_checkpoint_bytes = wal_checkpoint_bytes
        self.fsync = fsync
        self._count: Callable[..., None] = _noop_count
        self._manifest: Optional[dict] = None
        self._generation = 0
        self._seq = 1
        self._wal: Optional[RecordLog] = None
        self._terms_log: Optional[RecordLog] = None
        self._poisoned: Optional[str] = None
        self._closed = False

    # -- attach protocol -------------------------------------------------

    def bind_counter(self, count: Callable[..., None]) -> None:
        self._count = count

    def load(self) -> BackendState:
        """Open-or-create the store directory and recover its state."""
        self.path.mkdir(parents=True, exist_ok=True)
        manifest = self._read_manifest()
        if manifest is None:
            manifest = {
                "format": 1,
                "generation": 0,
                "next_seq": 1,
                "wal": "wal-0.log",
                "graphs": [],
            }
            self._write_manifest(manifest)
        self._manifest = manifest
        self._generation = int(manifest["generation"])
        self._seq = int(manifest["next_seq"])
        self._remove_strays(manifest)

        # 1. Term-pool log: every intact record survives (un-committed
        #    extras are harmless); only a torn tail is repaired.
        terms_path = self.path / TERMS_LOG_NAME
        term_payloads, terms_end, terms_size = scan_records(terms_path)
        terms: List[TermRecord] = [
            (p[:1].decode("ascii"), p[1:].decode("utf-8"))
            for p in term_payloads
        ]
        if terms_size > terms_end:
            self._count("wal.torn_tail_bytes", terms_size - terms_end)
        self._terms_log = RecordLog(
            terms_path,
            terms_end,
            terms_size,
            name="terms",
            counter_prefix="wal.terms",
            count=self._count,
        )

        # 2. Segment generation named by the manifest.
        from .segments import read_segment

        graphs: Dict[str, Set[Tuple[int, int, int]]] = {}
        for entry in manifest["graphs"]:
            if entry["rows"]:
                runs = read_segment(self.path / entry["base"], entry)
                graphs[entry["name"]] = set(runs.rows())
            else:
                graphs[entry["name"]] = set()

        # 3. WAL replay up to the last intact commit record.
        wal_path = self.path / manifest["wal"]
        payloads, _, wal_size = scan_records(wal_path)
        committed_end = len(MAGIC) if wal_size else 0
        offset = committed_end
        pending = []
        last_seq = 0
        for payload in payloads:
            offset += _FRAME_OVERHEAD + len(payload)
            decoded = _decode_record(payload)
            if decoded[0] == "commit":
                for change in pending:
                    self._apply(graphs, change)
                pending = []
                committed_end = offset
                last_seq = max(last_seq, decoded[1])
                self._count("wal.recovered_batches")
            else:
                pending.append(decoded)
        if wal_size > committed_end:
            # Torn tail *or* intact records of an uncommitted batch:
            # both must go before new batches are appended after them.
            self._count("wal.torn_tail_bytes", wal_size - committed_end)
        self._wal = RecordLog(
            wal_path,
            committed_end,
            wal_size,
            name="wal",
            counter_prefix="wal",
            count=self._count,
        )
        self._seq = max(self._seq, last_seq + 1)
        return BackendState(
            terms=terms,
            graphs={name: sorted(rows) for name, rows in graphs.items()},
        )

    @staticmethod
    def _apply(graphs: Dict[str, Set], change) -> None:
        if change[0] == "clear":
            graphs.clear()
            graphs[DEFAULT_GRAPH] = set()
            return
        if change[0] == "drop":
            graphs.pop(change[1], None)
            return
        op, name, rows = change
        target = graphs.setdefault(name, set())
        if op == "add":
            target.update(rows)
        else:
            target.difference_update(rows)

    # -- manifest ----------------------------------------------------------

    def _read_manifest(self) -> Optional[dict]:
        try:
            return json.loads((self.path / MANIFEST_NAME).read_text())
        except FileNotFoundError:
            return None
        except ValueError as err:
            # os.replace is atomic, so a syntactically broken manifest
            # is real corruption, not a crash artefact.
            raise StorageError(f"corrupt manifest in {self.path}: {err}")

    def _write_manifest(self, manifest: dict) -> None:
        tmp = self.path / (MANIFEST_NAME + ".tmp")
        with open(tmp, "w") as f:
            json.dump(manifest, f, indent=2, sort_keys=True)
            f.write("\n")
            f.flush()
            os.fsync(f.fileno())
        if FAULTS.enabled:
            FAULTS.hit("durable.checkpoint.pre_rename")
        os.replace(tmp, self.path / MANIFEST_NAME)
        fsync_dir(self.path)

    def _remove_strays(self, manifest: dict) -> None:
        """Drop files a crashed checkpoint left outside the manifest."""
        keep_wal = manifest["wal"]
        keep_dirs = {
            entry["base"].split("/", 1)[0] for entry in manifest["graphs"]
        }
        for child in self.path.iterdir():
            name = child.name
            if name.startswith("wal-") and name != keep_wal:
                child.unlink(missing_ok=True)
            elif name.startswith("segments-") and name not in keep_dirs:
                shutil.rmtree(child, ignore_errors=True)
            elif name == MANIFEST_NAME + ".tmp":
                child.unlink(missing_ok=True)

    # -- the write path ----------------------------------------------------

    def _check_writable(self) -> None:
        if self._closed:
            raise StorageError("backend is closed")
        if self._wal is None:
            raise StorageError("backend was never loaded")
        if self._poisoned is not None:
            raise StorageError(
                f"backend poisoned by an earlier failure ({self._poisoned}); "
                "reopen the store to recover"
            )

    def commit_batch(
        self, new_terms: Sequence[TermRecord], ops: Sequence[DurableOp]
    ) -> None:
        self._check_writable()
        terms_start = self._terms_log.size
        wal_start = self._wal.size
        try:
            if new_terms:
                append = self._terms_log.append
                for kind, value in new_terms:
                    append(kind.encode("ascii") + value.encode("utf-8"))
                self._sync(self._terms_log)
            if ops:
                i, n = 0, len(ops)
                while i < n:
                    op, graph, _ = ops[i]
                    if op == "clear":
                        self._wal.append(b"X")
                        i += 1
                        continue
                    if op == "drop":
                        name = graph.encode("utf-8")
                        self._wal.append(b"D" + _U32.pack(len(name)) + name)
                        i += 1
                        continue
                    j = i
                    rows = []
                    while j < n and ops[j][0] == op and ops[j][1] == graph:
                        rows.append(ops[j][2])
                        j += 1
                    self._wal.append(
                        _encode_ops_record(op, graph, sorted(set(rows)))
                    )
                    i = j
                self._wal.append(b"C" + _U64.pack(self._seq))
                self._sync(self._wal)
                self._seq += 1
        except BaseException:
            self._repair(terms_start, wal_start)
            raise

    def _sync(self, log: RecordLog) -> None:
        if self.fsync:
            log.sync()
        else:
            log._f.flush()

    def _repair(self, terms_start: int, wal_start: int) -> None:
        """Cut a failed batch's partial records back off the logs."""
        try:
            self._terms_log.truncate_to(terms_start)
            self._wal.truncate_to(wal_start)
            self._count("wal.repaired_commits")
        except OSError as err:
            self._poisoned = f"tail repair failed: {err}"

    # -- checkpoint ----------------------------------------------------------

    def should_checkpoint(self) -> bool:
        return (
            self._wal is not None
            and self._poisoned is None
            and self._wal.size >= self.wal_checkpoint_bytes
        )

    def checkpoint(self, graphs_rows: Dict[str, List]) -> None:
        """Fold *graphs_rows* (the committed state) into a new generation."""
        self._check_writable()
        from .segments import write_segment

        gen = self._generation + 1
        seg_dirname = f"segments-{gen}"
        wal_name = f"wal-{gen}.log"
        seg_dir = self.path / seg_dirname
        new_wal: Optional[RecordLog] = None
        try:
            seg_dir.mkdir(exist_ok=True)
            entries = []
            for i, name in enumerate(sorted(graphs_rows)):
                rows = graphs_rows[name]
                entry = {"name": name, "base": f"{seg_dirname}/g{i:04d}"}
                if rows:
                    entry.update(write_segment(self.path / entry["base"], rows))
                else:
                    entry["rows"] = 0
                entries.append(entry)
            fsync_dir(seg_dir)
            # The new WAL must exist (and be durable) before the
            # manifest that names it is committed.
            new_wal = RecordLog(
                self.path / wal_name,
                0,
                0,
                name="wal",
                counter_prefix="wal",
                count=self._count,
            )
            fsync_dir(self.path)
            manifest = {
                "format": 1,
                "generation": gen,
                "next_seq": self._seq,
                "wal": wal_name,
                "graphs": entries,
            }
            self._write_manifest(manifest)
        except BaseException:
            # The old generation is still the manifest's; remove the
            # half-built one and keep serving.
            if new_wal is not None:
                new_wal.close()
            try:
                (self.path / wal_name).unlink(missing_ok=True)
            except OSError:
                pass
            shutil.rmtree(seg_dir, ignore_errors=True)
            raise
        old_wal, self._wal = self._wal, new_wal
        old_manifest, self._manifest = self._manifest, manifest
        self._generation = gen
        old_wal.close()
        try:
            (self.path / old_manifest["wal"]).unlink(missing_ok=True)
        except OSError:
            pass
        for base_dir in {
            e["base"].split("/", 1)[0] for e in old_manifest["graphs"]
        }:
            if base_dir != seg_dirname:
                shutil.rmtree(self.path / base_dir, ignore_errors=True)
        self._count("durable.checkpoints")

    # -- introspection / lifecycle -----------------------------------------

    def sync_points(self) -> Dict[str, int]:
        """{file name: durable byte count} — the crash-simulation hook.

        A power loss preserves each log only up to its last fsync; the
        crash–reopen tests copy the directory truncating (or tearing)
        each log at these offsets to reproduce exactly that state.
        """
        out: Dict[str, int] = {}
        if self._terms_log is not None:
            out[TERMS_LOG_NAME] = self._terms_log.synced_bytes
        if self._wal is not None and self._manifest is not None:
            out[self._manifest["wal"]] = self._wal.synced_bytes
        return out

    def info(self) -> Dict[str, object]:
        """Operator-facing summary for ``repro open``."""
        return {
            "path": str(self.path),
            "generation": self._generation,
            "wal_file": self._manifest["wal"] if self._manifest else None,
            "wal_bytes": self._wal.size if self._wal else 0,
            "terms_log_bytes": self._terms_log.size if self._terms_log else 0,
            "next_seq": self._seq,
            "poisoned": self._poisoned,
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._wal is not None:
            self._wal.close()
        if self._terms_log is not None:
            self._terms_log.close()

    def __repr__(self) -> str:
        return f"DurableBackend({str(self.path)!r}, gen={self._generation})"
