"""Streaming bulk ingest: chunked parse → encode → sorted runs.

The scale path for loading large N-Triples files (ROADMAP item 3):
:func:`load_ntriples` streams a file in chunks, optionally parses them
in parallel worker processes, dictionary-encodes with a deterministic
ID-remap merge, and lands rows as sorted runs in a memory-bounded
:class:`RunPool` — ready for the array-native and partitioned closure
kernels without ever materializing a boxed graph.
"""

from .loader import (
    DEFAULT_CHUNK_LINES,
    DEFAULT_MAX_MEMORY_MB,
    IngestResult,
    load_ntriples,
)
from .spill import ROW_BYTES, SPILL_BLOCK_ROWS, RunPool, SpilledRun

__all__ = [
    "load_ntriples",
    "IngestResult",
    "RunPool",
    "SpilledRun",
    "DEFAULT_CHUNK_LINES",
    "DEFAULT_MAX_MEMORY_MB",
    "ROW_BYTES",
    "SPILL_BLOCK_ROWS",
]
