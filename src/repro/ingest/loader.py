"""Streaming, optionally parallel, N-Triples bulk loader.

The one-shot :func:`repro.rdfio.parse_ntriples` path materializes the
whole text, the whole triple list and a fully indexed
:class:`~repro.core.graph.RDFGraph` — three copies of the data, none of
them the representation the closure kernels want.  This loader is the
scale path (ROADMAP item 3): it reads the file in chunks of lines,
parses and dictionary-encodes each chunk, and lands the result directly
as sorted runs of ``(int, int, int)`` rows in a budgeted
:class:`~repro.ingest.spill.RunPool` — the exact substrate of the
``arrays`` and partitioned closure kernels.  Boxed terms exist only
transiently inside a chunk.

Parallel mode (``workers > 1``) fans chunks out over a
``multiprocessing`` pool.  Each worker parses with a **local**
:class:`~repro.core.interning.TermDict` and returns its three string
pools plus locally-encoded rows; the parent then replays each pool into
the shared dict **in chunk-index order** (the ID-remap step).  Because
a local pool lists values in first-appearance order and chunks are
remapped in file order, the shared dict's within-kind ID order equals
the file's first-appearance order — *independent of the worker count
and the chunk size*.  Loading the same file with any ``workers`` /
``chunk_lines`` therefore yields bit-identical encoded rows, which the
parity suite (``tests/test_partitioned.py``) pins down.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from itertools import islice
from typing import IO, Iterable, Iterator, List, Optional, Tuple, Union

from ..core.columns import Row, SortedRuns
from ..core.graph import RDFGraph
from ..core.interning import BNODE_BASE, LITERAL_BASE, TermDict
from ..core.terms import BNode, Literal, URI
from ..obs import OBS, MetricsRegistry, Tracer
from ..obs.progress import ProgressReporter, current_progress
from ..rdfio.ntriples import ParseIssue, iter_ntriples
from .spill import RunPool

__all__ = [
    "IngestResult",
    "load_ntriples",
    "DEFAULT_CHUNK_LINES",
    "DEFAULT_MAX_MEMORY_MB",
]

#: Lines per parse chunk.  Large enough that per-chunk overhead (local
#: dict, remap, sort) amortizes; small enough that a chunk's boxed
#: terms are a bounded transient.
DEFAULT_CHUNK_LINES = 50_000

#: Default budget for the pending-run pool before runs spill to disk.
DEFAULT_MAX_MEMORY_MB = 512


@dataclass(frozen=True)
class IngestResult:
    """What a bulk load produced, still in encoded form.

    ``runs`` is the loaded relation (sorted, duplicate-free) over
    ``terms``; decode lazily via :meth:`graph` only when a term-level
    view is actually needed — at 10⁶ triples the boxed graph costs more
    than the load did.
    """

    terms: TermDict
    runs: SortedRuns
    lines: int
    chunks: int
    issues: Tuple[ParseIssue, ...]
    spilled_runs: int

    @property
    def triples(self) -> int:
        """Distinct triples loaded."""
        return len(self.runs)

    @property
    def ok(self) -> bool:
        """True when no line was skipped."""
        return not self.issues

    def graph(self) -> RDFGraph:
        """Decode to a term-level graph (boundary use only)."""
        return RDFGraph._from_trusted(self.terms.decode_rows(self.runs.rows()))

    def __repr__(self) -> str:
        return (
            f"IngestResult({len(self.runs)} triples, {self.lines} lines, "
            f"{self.chunks} chunks, {len(self.issues)} skipped, "
            f"{self.spilled_runs} spilled runs)"
        )


# -- chunking ----------------------------------------------------------

#: (index, lines, start_line, strict, collect_obs)
_Chunk = Tuple[int, List[str], int, bool, bool]


def _chunks(
    lines: Iterator[str], chunk_lines: int, strict: bool, collect_obs: bool
) -> Iterator[_Chunk]:
    index = 0
    start = 1
    while True:
        chunk = list(islice(lines, chunk_lines))
        if not chunk:
            return
        yield (index, chunk, start, strict, collect_obs)
        index += 1
        start += len(chunk)


# -- the worker half (runs in child processes) -------------------------

def _parse_chunk(task: _Chunk):
    """Parse one chunk against a fresh local dict (child-process body).

    Returns ``(index, uris, bnodes, literals, rows, issues, n_lines,
    obs_payload)`` where the pools are raw string values in local
    interning order and *rows* are sorted unique local-ID rows.
    Everything is primitives, so the pickle across the process boundary
    is cheap; a strict-mode :class:`~repro.rdfio.ntriples.ParseError`
    propagates to the parent (it pickles by its three original fields).

    With ``collect_obs`` set (the parent had instrumentation on), the
    chunk is measured against a **private** registry/tracer pair —
    counters incremented in a forked worker would otherwise die with
    the worker — and their plain-dict snapshots ride home on the same
    result tuple, where the parent merges them loss-free
    (:meth:`MetricsRegistry.merge` / :meth:`Tracer.merge`).
    """
    index, lines, start, strict, collect_obs = task
    issues: List[ParseIssue] = []
    local = TermDict()
    obs_payload = None
    if collect_obs:
        registry = MetricsRegistry()
        tracer = Tracer()
        with tracer.span("ingest.chunk", chunk=index, pid=os.getpid()):
            with registry.timer("ingest.chunk_parse_ms"):
                rows = local.encode_rows(
                    iter_ntriples(
                        lines, strict=strict, issues=issues, start=start
                    )
                )
                rows = sorted(set(rows))
        registry.inc("ingest.lines", len(lines))
        registry.inc("ingest.chunks")
        registry.inc("ingest.skipped_lines", len(issues))
        obs_payload = (registry.snapshot(), tracer.snapshot(), os.getpid())
    else:
        rows = sorted(set(local.encode_rows(
            iter_ntriples(lines, strict=strict, issues=issues, start=start)
        )))
    uris, bnodes, literals = local.pool_values()
    return (
        index,
        uris,
        bnodes,
        literals,
        rows,
        tuple(issues),
        len(lines),
        obs_payload,
    )


# -- the parent half: deterministic ID remap ---------------------------

def _remap_rows(
    terms: TermDict,
    uris: List[str],
    bnodes: List[str],
    literals: List[str],
    rows: List[Row],
) -> List[Row]:
    """Replay a worker's local pools into the shared dict and rewrite
    its rows, re-sorted (the remap is injective but not monotonic)."""
    intern = terms._intern
    u = [intern(URI(v)) for v in uris]
    b = [intern(BNode(v)) for v in bnodes]
    lit = [intern(Literal(v)) for v in literals]
    terms.encodes += len(u) + len(b) + len(lit)
    out: List[Row] = []
    push = out.append
    for s, p, o in rows:
        push((
            u[s] if s < BNODE_BASE
            else b[s - BNODE_BASE] if s < LITERAL_BASE
            else lit[s - LITERAL_BASE],
            u[p] if p < BNODE_BASE
            else b[p - BNODE_BASE] if p < LITERAL_BASE
            else lit[p - LITERAL_BASE],
            u[o] if o < BNODE_BASE
            else b[o - BNODE_BASE] if o < LITERAL_BASE
            else lit[o - LITERAL_BASE],
        ))
    out.sort()
    return out


def _line_iter(source) -> Tuple[Iterator[str], Optional[IO]]:
    """An iterator of lines from a path, file object or line iterable.

    Strings and path-likes are opened as files (closed by the caller
    via the returned handle); any other iterable is consumed as lines.
    """
    if isinstance(source, (str, os.PathLike)):
        f = open(source, "r", encoding="utf-8")
        return iter(f), f
    return iter(source), None


def load_ntriples(
    source: Union[str, os.PathLike, IO[str], Iterable[str]],
    workers: int = 1,
    chunk_lines: int = DEFAULT_CHUNK_LINES,
    strict: bool = True,
    max_memory_mb: Optional[int] = DEFAULT_MAX_MEMORY_MB,
    term_dict: Optional[TermDict] = None,
    tmp_dir: Optional[str] = None,
    progress: Optional[ProgressReporter] = None,
) -> IngestResult:
    """Bulk-load N-Triples-style input into encoded sorted runs.

    *source* is a filesystem path, an open text file, or any iterable
    of lines.  ``workers=1`` (the default) parses in-process, encoding
    straight into the shared dict; ``workers > 1`` fans chunks out over
    a process pool with the deterministic ID-remap merge (see module
    docstring).  ``strict=False`` skips malformed lines and reports
    them in ``result.issues``.  ``max_memory_mb`` bounds the
    pending-run pool (``None`` disables spilling); *term_dict* lets a
    caller accumulate several files into one shared dict.

    *progress* (or the ambient reporter from
    :func:`repro.obs.progress.progress_scope`) receives one
    rate-limited heartbeat per chunk: lines, chunks, pending rows,
    spills, lines/s.  With instrumentation on, multi-worker runs merge
    each worker's registry/tracer snapshot back into the global pair as
    results arrive, so the ``ingest.*`` counters are loss-free and
    equal to a single-process run's over the same input — the
    per-chunk accounting below and in :func:`_parse_chunk` is
    deliberately identical.
    """
    terms = term_dict if term_dict is not None else TermDict()
    encodes_before = terms.encodes
    lines, handle = _line_iter(source)
    issues: List[ParseIssue] = []
    total_lines = 0
    chunks = 0
    max_bytes = None if max_memory_mb is None else max_memory_mb * (1 << 20)
    pool = RunPool(max_bytes=max_bytes, tmp_dir=tmp_dir)
    if progress is None:
        progress = current_progress()
    t0 = time.perf_counter()

    def heartbeat(force: bool = False) -> None:
        if progress is None:
            return
        elapsed = time.perf_counter() - t0
        progress.report(
            "ingest",
            force=force,
            lines=total_lines,
            chunks=chunks,
            rows=pool.in_memory_rows + pool.spilled_rows,
            spills=pool.spills,
            lines_per_s=round(total_lines / elapsed) if elapsed > 0 else 0,
            workers=workers,
        )

    try:
        with OBS.span("ingest.load", workers=workers) as span:
            if workers <= 1:
                registry = OBS.registry
                for _, chunk, start, _, _ in _chunks(
                    lines, chunk_lines, strict, False
                ):
                    chunks += 1
                    total_lines += len(chunk)
                    skipped_before = len(issues)
                    with registry.timer("ingest.chunk_parse_ms"):
                        rows = terms.encode_rows(
                            iter_ntriples(
                                chunk, strict=strict,
                                issues=issues, start=start,
                            )
                        )
                        rows = sorted(set(rows))
                    pool.add(rows)
                    if OBS.enabled:
                        registry.inc("ingest.lines", len(chunk))
                        registry.inc("ingest.chunks")
                        registry.inc(
                            "ingest.skipped_lines",
                            len(issues) - skipped_before,
                        )
                    heartbeat()
            else:
                ctx = multiprocessing.get_context("fork")
                task_iter = _chunks(
                    lines, chunk_lines, strict, OBS.enabled
                )
                with ctx.Pool(processes=workers) as procs:
                    while True:
                        # Waves of 2x the worker count keep every child
                        # busy without buffering the whole file the way
                        # an eager imap feeder thread would.
                        wave = list(islice(task_iter, 2 * workers))
                        if not wave:
                            break
                        for result in procs.map(_parse_chunk, wave):
                            (_, uris, bnodes, lits, rows,
                             chunk_issues, n_lines, obs_payload) = result
                            chunks += 1
                            total_lines += n_lines
                            issues.extend(chunk_issues)
                            pool.add(
                                _remap_rows(terms, uris, bnodes, lits, rows)
                            )
                            if obs_payload is not None and OBS.enabled:
                                reg_snap, trace_snap, pid = obs_payload
                                OBS.registry.merge(reg_snap)
                                OBS.registry.inc("ingest.worker_snapshots")
                                OBS.tracer.merge(
                                    trace_snap, label=f"worker-{pid}"
                                )
                            heartbeat()
            merged = pool.merge()
            spills = pool.spills
            span.annotate(lines=total_lines, rows=len(merged), spills=spills)
    finally:
        pool.close()
        if handle is not None:
            handle.close()
    heartbeat(force=True)
    if OBS.enabled:
        registry = OBS.registry
        registry.inc("ingest.rows", len(merged))
        registry.inc("ingest.spilled_runs", spills)
        registry.inc("interning.encode_calls", terms.encodes - encodes_before)
    return IngestResult(
        terms=terms,
        runs=SortedRuns(merged),
        lines=total_lines,
        chunks=chunks,
        issues=tuple(issues),
        spilled_runs=spills,
    )
