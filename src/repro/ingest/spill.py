"""Memory-bounded sorted-run pooling with temp-file spill.

The streaming loader (:mod:`repro.ingest.loader`) lands each parsed
chunk as one sorted duplicate-free run of encoded rows.  At the
million-triple scale the pool of pending runs is the dominant resident
cost, so :class:`RunPool` enforces a byte budget: when the estimated
in-memory footprint exceeds it, the largest pending run is serialized
to a temp file as one flat ``array('q')`` (the
:func:`repro.core.columns.rows_to_array` layout, written with
``array.tofile``) and dropped from memory.  The final
:meth:`RunPool.merge` is a k-way ``heapq.merge`` with
adjacent-duplicate suppression that *streams* spilled runs back in
fixed-size blocks, so peak memory during the merge is one output list
plus one block per spilled file — never the full spilled volume.

The same flat-array format backs :meth:`SortedRuns.tofile` /
:meth:`SortedRuns.fromfile`, which the partitioned closure kernel uses
to park cold shards on disk between rounds.
"""

from __future__ import annotations

import heapq
import os
import shutil
import tempfile
from array import array
from typing import Iterator, List, Optional

from ..core.columns import Row, merge_union_many, rows_to_array
from ..robustness.faultinject import FAULTS

__all__ = ["RunPool", "SpilledRun", "ROW_BYTES", "SPILL_BLOCK_ROWS"]

#: Conservative estimate of the resident cost of one in-memory row: a
#: 3-tuple of ints is ~120 bytes on CPython (tuple header, three object
#: pointers, and the amortized share of non-cached int objects).  The
#: budget math only needs to be right within a small constant factor.
ROW_BYTES = 120

#: Rows per block when streaming a spilled run back during the merge.
SPILL_BLOCK_ROWS = 65536


class SpilledRun:
    """One sorted duplicate-free run parked on disk as a flat array."""

    __slots__ = ("path", "n_rows")

    def __init__(self, path: str, n_rows: int):
        self.path = path
        self.n_rows = n_rows

    def iter_rows(self, block_rows: int = SPILL_BLOCK_ROWS) -> Iterator[Row]:
        """Stream the run back in *block_rows*-sized reads."""
        with open(self.path, "rb") as f:
            remaining = self.n_rows
            while remaining:
                take = min(block_rows, remaining)
                flat = array("q")
                flat.fromfile(f, 3 * take)
                it = iter(flat)
                yield from zip(it, it, it)
                remaining -= take

    def load(self) -> List[Row]:
        """The whole run as a row list (tests and small runs)."""
        return list(self.iter_rows())

    def __repr__(self) -> str:
        return f"SpilledRun({self.n_rows} rows, {self.path!r})"


class RunPool:
    """A budgeted pool of sorted duplicate-free runs awaiting merge.

    ``max_bytes=None`` disables spilling (everything stays in memory).
    The pool owns its spill directory and removes it on :meth:`close`
    (also available as a context manager).
    """

    def __init__(
        self,
        max_bytes: Optional[int] = None,
        tmp_dir: Optional[str] = None,
    ):
        self._runs: List[List[Row]] = []
        self._spilled: List[SpilledRun] = []
        self._in_memory_rows = 0
        self._max_bytes = max_bytes
        self._tmp_parent = tmp_dir
        self._dir: Optional[str] = None
        #: Number of runs spilled to disk (obs: ``ingest.spilled_runs``).
        self.spills = 0
        self.spilled_rows = 0

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "RunPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Remove the spill directory and all spilled files."""
        if self._dir is not None:
            shutil.rmtree(self._dir, ignore_errors=True)
            self._dir = None
        self._spilled = []

    def _spill_dir(self) -> str:
        if self._dir is None:
            self._dir = tempfile.mkdtemp(
                prefix="repro-spill-", dir=self._tmp_parent
            )
        return self._dir

    # -- the pool protocol ----------------------------------------------

    @property
    def in_memory_rows(self) -> int:
        return self._in_memory_rows

    @property
    def pending_runs(self) -> int:
        return len(self._runs) + len(self._spilled)

    def add(self, sorted_rows: List[Row]) -> None:
        """Add one sorted duplicate-free run, spilling if over budget."""
        if not sorted_rows:
            return
        self._runs.append(sorted_rows)
        self._in_memory_rows += len(sorted_rows)
        if self._max_bytes is None:
            return
        while self._runs and self._in_memory_rows * ROW_BYTES > self._max_bytes:
            self._spill_largest()

    def _spill_largest(self) -> None:
        # The largest run buys the most relief per file handle and per
        # eventual streamed re-read.
        i = max(range(len(self._runs)), key=lambda k: len(self._runs[k]))
        run = self._runs.pop(i)
        self._in_memory_rows -= len(run)
        path = os.path.join(self._spill_dir(), f"run-{self.spills:05d}.bin")
        try:
            with open(path, "wb") as f:
                if FAULTS.enabled:
                    FAULTS.hit("ingest.spill.write")
                rows_to_array(run).tofile(f)
        except BaseException:
            # A failed spill (disk full, interrupt, injected fault) must
            # not lose the run *or* leave a partial file for the merge
            # to trip over: put the run back in memory, delete the
            # half-written file, and let the caller see the error.
            self._runs.append(run)
            self._in_memory_rows += len(run)
            try:
                os.unlink(path)
            except OSError:
                pass
            raise
        self._spilled.append(SpilledRun(path, len(run)))
        self.spills += 1
        self.spilled_rows += len(run)

    def merge(self) -> List[Row]:
        """K-way merge of every pending run into one sorted unique list.

        Spilled runs are streamed block-wise, so the transient cost is
        the output list plus one block per spilled file.
        """
        if not self._spilled:
            return merge_union_many(self._runs)
        iters = [iter(r) for r in self._runs]
        iters.extend(s.iter_rows() for s in self._spilled)
        out: List[Row] = []
        push = out.append
        prev = None
        for row in heapq.merge(*iters):
            if row != prev:
                push(row)
                prev = row
        return out

    def __repr__(self) -> str:
        return (
            f"RunPool({len(self._runs)} in-memory runs "
            f"({self._in_memory_rows} rows), {len(self._spilled)} spilled)"
        )
