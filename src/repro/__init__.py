"""repro — a reproduction of "Foundations of Semantic Web Databases".

Gutierrez, Hurtado, Mendelzon, Pérez (PODS 2004; JCSS 77 (2011) 520–541).

The package implements the paper's abstract RDF model, its RDFS
semantics and deductive system, closures / cores / normal forms, the
tableau query language with premises and constraints, the two query
containment notions, and the complexity apparatus (reductions,
relational substrate) supporting every theorem.

Quickstart::

    from repro import RDFGraph, triple, entails, normal_form
    from repro.core import BNode, SC, TYPE

    g = RDFGraph([
        triple("sculptor", SC, "artist"),
        triple("rodin", TYPE, "sculptor"),
    ])
    h = RDFGraph([triple("rodin", TYPE, "artist")])
    assert entails(g, h)
"""

from .core import (
    BNode,
    Literal,
    Map,
    RDFGraph,
    Triple,
    URI,
    Variable,
    graph_from_triples,
    isomorphic,
    triple,
)
from .core.vocabulary import DOM, RANGE, SC, SP, TYPE
from .minimize import core, is_lean, minimal_representation, normal_form
from .navigation import evaluate_path, parse_path, reachable_from
from .semantics import (
    ClosureOracle,
    closure,
    construct_proof,
    entails,
    equivalent,
    rdfs_closure,
    simple_entails,
)
from .store import TripleStore

__version__ = "1.0.0"

__all__ = [
    "BNode",
    "ClosureOracle",
    "DOM",
    "Literal",
    "Map",
    "RANGE",
    "RDFGraph",
    "SC",
    "SP",
    "TYPE",
    "Triple",
    "TripleStore",
    "URI",
    "Variable",
    "closure",
    "evaluate_path",
    "parse_path",
    "reachable_from",
    "construct_proof",
    "core",
    "entails",
    "equivalent",
    "graph_from_triples",
    "is_lean",
    "isomorphic",
    "minimal_representation",
    "normal_form",
    "rdfs_closure",
    "simple_entails",
    "triple",
    "__version__",
]
