"""Unit tests for RDF graph isomorphism and canonical forms."""

from repro.core import (
    BNode,
    RDFGraph,
    URI,
    canonical_form,
    find_isomorphism,
    isomorphic,
    triple,
)


def g(*tuples):
    return RDFGraph.from_tuples(tuples)


class TestIsomorphic:
    def test_identical_graphs(self):
        graph = g(("a", "p", "b"))
        assert isomorphic(graph, graph)

    def test_blank_renaming(self):
        g1 = RDFGraph([triple("a", "p", BNode("X"))])
        g2 = RDFGraph([triple("a", "p", BNode("Y"))])
        assert isomorphic(g1, g2)

    def test_ground_graphs_iso_iff_equal(self):
        g1 = g(("a", "p", "b"))
        g2 = g(("a", "p", "c"))
        assert not isomorphic(g1, g2)
        assert isomorphic(g1, g(("a", "p", "b")))

    def test_different_sizes(self):
        g1 = RDFGraph([triple("a", "p", BNode("X"))])
        g2 = RDFGraph([triple("a", "p", BNode("X")), triple("a", "p", "b")])
        assert not isomorphic(g1, g2)

    def test_different_blank_counts(self):
        X, Y = BNode("X"), BNode("Y")
        g1 = RDFGraph([triple(X, "p", X)])
        g2 = RDFGraph([triple(X, "p", Y)])
        assert not isomorphic(g1, g2)

    def test_hom_equivalent_but_not_isomorphic(self):
        # (a,p,X),(a,p,b) maps onto (a,p,b) and back, but sizes differ.
        X = BNode("X")
        g1 = RDFGraph([triple("a", "p", X), triple("a", "p", "b")])
        g2 = g(("a", "p", "b"))
        assert not isomorphic(g1, g2)

    def test_structure_matters(self):
        X, Y = BNode("X"), BNode("Y")
        chain = RDFGraph([triple(X, "p", Y)])
        loop = RDFGraph([triple(X, "p", X)])
        assert not isomorphic(chain, loop)

    def test_swap_two_blanks(self):
        X, Y = BNode("X"), BNode("Y")
        g1 = RDFGraph([triple(X, "p", Y), triple(Y, "q", X)])
        A, B = BNode("A"), BNode("B")
        g2 = RDFGraph([triple(B, "p", A), triple(A, "q", B)])
        assert isomorphic(g1, g2)

    def test_witness_map_is_exact(self):
        X = BNode("X")
        g1 = RDFGraph([triple("a", "p", X)])
        g2 = RDFGraph([triple("a", "p", BNode("Y"))])
        m = find_isomorphism(g1, g2)
        assert m is not None
        assert m.apply_graph(g1) == g2

    def test_symmetric_blanks(self):
        # Two interchangeable blanks: iso must still be found.
        X, Y = BNode("X"), BNode("Y")
        g1 = RDFGraph([triple("a", "p", X), triple("a", "p", Y)])
        A, B = BNode("A"), BNode("B")
        g2 = RDFGraph([triple("a", "p", A), triple("a", "p", B)])
        assert isomorphic(g1, g2)

    def test_non_iso_same_signature(self):
        # 6-cycle vs two 3-cycles of blanks: same local degrees.
        def cycle(names):
            n = len(names)
            return [
                triple(BNode(names[i]), "e", BNode(names[(i + 1) % n]))
                for i in range(n)
            ]

        six = RDFGraph(cycle(["a", "b", "c", "d", "e", "f"]))
        two_threes = RDFGraph(cycle(["u", "v", "w"]) + cycle(["x", "y", "z"]))
        assert not isomorphic(six, two_threes)


class TestCanonicalForm:
    def test_invariant_under_renaming(self):
        X, Y = BNode("X"), BNode("Y")
        g1 = RDFGraph([triple(X, "p", Y), triple(Y, "q", "b")])
        g2 = g1.rename_bnodes({X: BNode("M"), Y: BNode("N")})
        assert canonical_form(g1) == canonical_form(g2)

    def test_ground_graph_unchanged(self):
        graph = g(("a", "p", "b"))
        assert canonical_form(graph) == graph

    def test_canonical_iff_isomorphic(self):
        X, Y = BNode("X"), BNode("Y")
        g1 = RDFGraph([triple("a", "p", X), triple("a", "p", Y), triple(X, "q", Y)])
        g2 = g1.rename_bnodes({X: BNode("Q"), Y: BNode("R")})
        g3 = RDFGraph([triple("a", "p", X), triple("a", "p", Y), triple(Y, "q", X)])
        assert canonical_form(g1) == canonical_form(g2)
        # g3 is actually isomorphic to g1 via the swap X↔Y.
        assert canonical_form(g1) == canonical_form(g3)

    def test_non_isomorphic_get_different_forms(self):
        X, Y = BNode("X"), BNode("Y")
        g1 = RDFGraph([triple(X, "p", Y)])
        g2 = RDFGraph([triple(X, "p", X)])
        assert canonical_form(g1) != canonical_form(g2)

    def test_symmetric_blanks_canonicalize(self):
        X, Y, Z = BNode("X"), BNode("Y"), BNode("Z")
        g1 = RDFGraph([triple("a", "p", X), triple("a", "p", Y), triple("a", "p", Z)])
        g2 = RDFGraph([triple("a", "p", BNode("u")), triple("a", "p", BNode("v")),
                       triple("a", "p", BNode("w"))])
        assert canonical_form(g1) == canonical_form(g2)
