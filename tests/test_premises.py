"""Tests for queries with premises (Section 4.2)."""

import pytest

from repro.core import BNode, RDFGraph, Variable, triple
from repro.core.vocabulary import SC, SP, TYPE
from repro.query import answer_union, head_body_query, pre_answers


class TestPremiseQueries:
    def test_relatives_example(self):
        # The paper's query: all relatives of Peter, knowing son ⊑ relative.
        q = head_body_query(
            head=[("?X", "relative", "Peter")],
            body=[("?X", "relative", "Peter")],
            premise=RDFGraph([triple("son", SP, "relative")]),
        )
        d = RDFGraph(
            [
                triple("john", "son", "Peter"),
                triple("mary", "relative", "Peter"),
                triple("ana", "daughter", "Peter"),
            ]
        )
        found = answer_union(q, d)
        assert triple("john", "relative", "Peter") in found
        assert triple("mary", "relative", "Peter") in found
        assert triple("ana", "relative", "Peter") not in found

    def test_premise_supplies_schema_knowledge(self):
        # Hypothetical schema: if sculptor were a subclass of artist...
        q = head_body_query(
            head=[("?X", TYPE, "artist")],
            body=[("?X", TYPE, "artist")],
            premise=RDFGraph([triple("sculptor", SC, "artist")]),
        )
        d = RDFGraph([triple("rodin", TYPE, "sculptor")])
        assert triple("rodin", TYPE, "artist") in answer_union(q, d)
        # Without the premise, nothing.
        q_no_premise = head_body_query(
            head=[("?X", TYPE, "artist")], body=[("?X", TYPE, "artist")]
        )
        assert len(answer_union(q_no_premise, d)) == 0

    def test_premise_can_contain_blank_nodes(self):
        X = BNode("X")
        q = head_body_query(
            head=[("?Y", "seen_with", "someone")],
            body=[("?Y", "knows", "?Z"), ("?Z", "knows", "?Y")],
            premise=RDFGraph([triple(X, "knows", "bob")]),
        )
        d = RDFGraph([triple("bob", "knows", X)])
        # D + P merges apart the two X's: bob knows D's X, and P's X
        # knows bob — no mutual pair arises from the shared label.
        # But P's X and the chain bob→X(D) don't close a cycle.
        found = pre_answers(q, d)
        assert found == []

    def test_premise_data_supplies_facts(self):
        # Premises may add plain data (hypothetical facts).
        q = head_body_query(
            head=[("?X", "reaches", "c")],
            body=[("?X", "edge", "?Y"), ("?Y", "edge", "c")],
            premise=RDFGraph([triple("b", "edge", "c")]),
        )
        d = RDFGraph([triple("a", "edge", "b")])
        assert triple("a", "reaches", "c") in answer_union(q, d)

    def test_indirect_sp_linking_not_datalog_expressible(self):
        # Section 4.2's point: with premise {(son, sp, descendant)}, a
        # database triple (descendant, sp, relative) composes through
        # the *transitive* sp to link son with relative — the premise
        # interacts with unknown schema triples in the data.
        q = head_body_query(
            head=[("?X", "relative", "Mary")],
            body=[("?X", "relative", "Mary")],
            premise=RDFGraph([triple("son", SP, "descendant")]),
        )
        d = RDFGraph(
            [
                triple("descendant", SP, "relative"),
                triple("tom", "son", "Mary"),
            ]
        )
        assert triple("tom", "relative", "Mary") in answer_union(q, d)
        # Without the premise the chain is broken.
        q_plain = head_body_query(
            head=[("?X", "relative", "Mary")], body=[("?X", "relative", "Mary")]
        )
        assert len(answer_union(q_plain, d)) == 0

    def test_if_then_reading(self):
        # "If a wrote b, would b be a book?" — premise as hypothesis.
        q = head_body_query(
            head=[("b", TYPE, "book")],
            body=[("b", TYPE, "book")],
            premise=RDFGraph(
                [triple("a", "wrote", "b"), triple("wrote", "range", "book")]
            ),
        )
        d = RDFGraph([triple("x", "unrelated", "y")])
        assert triple("b", TYPE, "book") in answer_union(q, d)

    def test_premise_does_not_leak_into_other_queries(self):
        d = RDFGraph([triple("john", "son", "Peter")])
        q1 = head_body_query(
            head=[("?X", "relative", "Peter")],
            body=[("?X", "relative", "Peter")],
            premise=RDFGraph([triple("son", SP, "relative")]),
        )
        q2 = head_body_query(
            head=[("?X", "relative", "Peter")], body=[("?X", "relative", "Peter")]
        )
        assert len(answer_union(q1, d)) == 1
        assert len(answer_union(q2, d)) == 0
