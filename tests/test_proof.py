"""Tests for proof objects (Definition 2.5, Theorems 2.6 and 2.10)."""

import pytest
from hypothesis import given, settings

from repro.core import BNode, Map, RDFGraph, URI, triple
from repro.core.vocabulary import SC, SP, TYPE
from repro.generators import art_schema
from repro.semantics import construct_proof, entails
from repro.semantics.proof import ExistentialStep, Proof, RuleStep
from repro.semantics.rules import RULE_2, RuleInstantiation
from repro.core.terms import Variable

from .strategies import rdfs_graphs


class TestProofConstruction:
    def test_valid_entailment_yields_proof(self, fig1):
        h = RDFGraph([triple("Picasso", TYPE, "artist")])
        proof = construct_proof(fig1, h)
        assert proof is not None
        assert proof.verify()
        assert proof.premise == fig1
        assert proof.conclusion == h

    def test_non_entailment_yields_none(self, fig1):
        h = RDFGraph([triple("Picasso", TYPE, "sculptor")])
        assert construct_proof(fig1, h) is None

    def test_subgraph_proof(self):
        g = RDFGraph([triple("a", "p", "b"), triple("c", "q", "d")])
        h = RDFGraph([triple("a", "p", "b")])
        proof = construct_proof(g, h)
        assert proof is not None and proof.verify()

    def test_existential_conclusion(self):
        g = RDFGraph([triple("a", "p", "b")])
        h = RDFGraph([triple("a", "p", BNode("X"))])
        proof = construct_proof(g, h)
        assert proof is not None and proof.verify()
        # The last step must be existential (rule 1).
        assert isinstance(proof.steps[-1], ExistentialStep)

    def test_proof_with_blank_premise(self):
        X = BNode("X")
        g = RDFGraph([triple("a", SC, X), triple(X, SC, "c"), triple("i", TYPE, "a")])
        h = RDFGraph([triple("i", TYPE, "c")])
        proof = construct_proof(g, h)
        assert proof is not None and proof.verify()

    def test_polynomial_step_count(self):
        # Theorem 2.10: the witness is polynomial — closure ≤ cubic.
        g = art_schema()
        h = RDFGraph([triple("Guernica", TYPE, "artifact")])
        proof = construct_proof(g, h)
        assert proof is not None
        assert len(proof) <= len(g) ** 3

    @settings(max_examples=20, deadline=None)
    @given(rdfs_graphs(max_size=3), rdfs_graphs(max_size=2))
    def test_proof_exists_iff_entails(self, g, h):
        proof = construct_proof(g, h)
        assert (proof is not None) == entails(g, h)
        if proof is not None:
            assert proof.verify()


class TestProofVerification:
    def test_rejects_wrong_conclusion(self):
        g = RDFGraph([triple("a", "p", "b")])
        proof = Proof(premise=g, conclusion=RDFGraph([triple("x", "y", "z")]), steps=())
        assert not proof.verify()

    def test_empty_proof_of_self(self):
        g = RDFGraph([triple("a", "p", "b")])
        assert Proof(premise=g, conclusion=g, steps=()).verify()

    def test_rejects_rule_step_with_missing_premise(self):
        g = RDFGraph([triple("a", SP, "b")])
        # Rule (2) instantiation needing (b, sp, c), absent from g.
        inst = RuleInstantiation(
            rule=RULE_2,
            assignment=(
                (Variable("A"), URI("a")),
                (Variable("B"), URI("b")),
                (Variable("C"), URI("c")),
            ),
        )
        target = g.union(RDFGraph([triple("a", SP, "c")]))
        proof = Proof(premise=g, conclusion=target, steps=(RuleStep(inst),))
        assert not proof.verify()

    def test_accepts_correct_rule_step(self):
        g = RDFGraph([triple("a", SP, "b"), triple("b", SP, "c")])
        inst = RuleInstantiation(
            rule=RULE_2,
            assignment=(
                (Variable("A"), URI("a")),
                (Variable("B"), URI("b")),
                (Variable("C"), URI("c")),
            ),
        )
        target = g.union(RDFGraph([triple("a", SP, "c")]))
        proof = Proof(premise=g, conclusion=target, steps=(RuleStep(inst),))
        assert proof.verify()

    def test_rejects_bad_existential_witness(self):
        g = RDFGraph([triple("a", "p", "b")])
        h = RDFGraph([triple("a", "p", BNode("X"))])
        bad = Map({BNode("X"): URI("zzz")})  # image not in g
        proof = Proof(
            premise=g, conclusion=h, steps=(ExistentialStep(result=h, witness=bad),)
        )
        assert not proof.verify()

    def test_accepts_good_existential_witness(self):
        g = RDFGraph([triple("a", "p", "b")])
        h = RDFGraph([triple("a", "p", BNode("X"))])
        good = Map({BNode("X"): URI("b")})
        proof = Proof(
            premise=g, conclusion=h, steps=(ExistentialStep(result=h, witness=good),)
        )
        assert proof.verify()

    def test_str_rendering(self):
        g = RDFGraph([triple("a", "p", "b")])
        proof = Proof(premise=g, conclusion=g, steps=())
        assert "proof of" in str(proof)
