"""Tests for the pD*-style OWL property extension (ter Horst [26])."""

import pytest

from repro.core import BNode, Literal, RDFGraph, Triple, URI, triple
from repro.core.vocabulary import SC, SP, TYPE
from repro.semantics import entails, rdfs_closure
from repro.semantics.owl_horst import (
    FUNCTIONAL,
    INVERSE_FUNCTIONAL,
    INVERSE_OF,
    SAME_AS,
    SYMMETRIC,
    TRANSITIVE,
    owl_closure,
    owl_entails,
    same_as_classes,
)


class TestInverseOf:
    def test_forward(self):
        g = RDFGraph(
            [triple("hasParent", INVERSE_OF, "hasChild"),
             triple("ana", "hasParent", "bob")]
        )
        assert triple("bob", "hasChild", "ana") in owl_closure(g)

    def test_inverse_is_symmetric(self):
        # Also fires from a use of the *other* property.
        g = RDFGraph(
            [triple("hasParent", INVERSE_OF, "hasChild"),
             triple("bob", "hasChild", "ana")]
        )
        assert triple("ana", "hasParent", "bob") in owl_closure(g)

    def test_literal_objects_skipped(self):
        g = RDFGraph(
            [triple("name", INVERSE_OF, "namedBy"),
             Triple(URI("x"), URI("name"), Literal("Bob"))]
        )
        closed = owl_closure(g)
        assert all(t.is_valid_rdf() for t in closed)


class TestSymmetricTransitive:
    def test_symmetric(self):
        g = RDFGraph(
            [triple("marriedTo", TYPE, SYMMETRIC),
             triple("bob", "marriedTo", "carla")]
        )
        assert triple("carla", "marriedTo", "bob") in owl_closure(g)

    def test_transitive(self):
        g = RDFGraph(
            [triple("ancestor", TYPE, TRANSITIVE)]
            + [triple(f"n{i}", "ancestor", f"n{i+1}") for i in range(4)]
        )
        assert triple("n0", "ancestor", "n4") in owl_closure(g)

    def test_symmetric_plus_transitive_gives_cluster(self):
        g = RDFGraph(
            [
                triple("connected", TYPE, SYMMETRIC),
                triple("connected", TYPE, TRANSITIVE),
                triple("a", "connected", "b"),
                triple("b", "connected", "c"),
            ]
        )
        closed = owl_closure(g)
        assert triple("c", "connected", "a") in closed
        assert triple("a", "connected", "a") in closed  # via a↔b


class TestSameAs:
    def test_functional_produces_same_as(self):
        g = RDFGraph(
            [
                triple("hasMother", TYPE, FUNCTIONAL),
                triple("ana", "hasMother", "maria"),
                triple("ana", "hasMother", BNode("M")),
            ]
        )
        closed = owl_closure(g)
        assert (
            triple("maria", SAME_AS, BNode("M")) in closed
            or triple(BNode("M"), SAME_AS, "maria") in closed
        )

    def test_inverse_functional(self):
        g = RDFGraph(
            [
                triple("ssn", TYPE, INVERSE_FUNCTIONAL),
                triple("bob", "ssn", "123"),
                triple("robert", "ssn", "123"),
            ]
        )
        assert triple("bob", SAME_AS, "robert") in owl_closure(g)

    def test_substitution_in_subject_and_object(self):
        g = RDFGraph(
            [
                triple("bob", SAME_AS, "robert"),
                triple("bob", "likes", "tea"),
                triple("ana", "knows", "bob"),
            ]
        )
        closed = owl_closure(g)
        assert triple("robert", "likes", "tea") in closed
        assert triple("ana", "knows", "robert") in closed

    def test_equivalence_closure(self):
        g = RDFGraph(
            [triple("a", SAME_AS, "b"), triple("b", SAME_AS, "c")]
        )
        closed = owl_closure(g)
        assert triple("c", SAME_AS, "a") in closed

    def test_same_as_classes(self):
        g = RDFGraph(
            [triple("a", SAME_AS, "b"), triple("b", SAME_AS, "c"),
             triple("x", SAME_AS, "y")]
        )
        classes = [c for c in same_as_classes(g) if len(c) > 1]
        rendered = [[str(t) for t in c] for c in classes]
        assert ["a", "b", "c"] in rendered
        assert ["x", "y"] in rendered


class TestRDFSInterplay:
    def test_owl_closure_contains_rdfs_closure(self):
        g = RDFGraph(
            [triple("painter", SC, "artist"), triple("frida", TYPE, "painter")]
        )
        assert rdfs_closure(g).issubgraph(owl_closure(g))

    def test_inverse_then_subproperty(self):
        g = RDFGraph(
            [
                triple("hasParent", INVERSE_OF, "hasChild"),
                triple("hasChild", SP, "relatedTo"),
                triple("ana", "hasParent", "bob"),
            ]
        )
        assert triple("bob", "relatedTo", "ana") in owl_closure(g)

    def test_same_as_then_typing(self):
        g = RDFGraph(
            [
                triple("painter", SC, "artist"),
                triple("frida", TYPE, "painter"),
                triple("frida", SAME_AS, "fk"),
            ]
        )
        closed = owl_closure(g)
        assert triple("fk", TYPE, "artist") in closed

    def test_owl_entailment(self):
        g = RDFGraph(
            [
                triple("marriedTo", TYPE, SYMMETRIC),
                triple("bob", "marriedTo", "carla"),
            ]
        )
        assert owl_entails(g, RDFGraph([triple("carla", "marriedTo", BNode("W"))]))
        assert not owl_entails(g, RDFGraph([triple("carla", "knows", "bob")]))
        # Plain RDFS entailment cannot see the symmetric conclusion.
        assert not entails(g, RDFGraph([triple("carla", "marriedTo", "bob")]))

    def test_plain_graph_unchanged_modulo_rdfs(self):
        g = RDFGraph([triple("a", "p", "b")])
        assert owl_closure(g) == rdfs_closure(g)

    def test_closure_idempotent(self):
        g = RDFGraph(
            [
                triple("hasParent", INVERSE_OF, "hasChild"),
                triple("ana", "hasParent", "bob"),
                triple("bob", SAME_AS, "bobby"),
            ]
        )
        once = owl_closure(g)
        assert owl_closure(once) == once
