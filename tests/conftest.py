"""Shared fixtures: the paper's worked examples as pytest fixtures."""

from __future__ import annotations

import pytest

from repro.core import BNode, RDFGraph, Triple, URI, triple
from repro.core.vocabulary import DOM, SC, SP, TYPE
from repro.generators import art_schema


@pytest.fixture
def fig1():
    """The Fig. 1 art-schema graph."""
    return art_schema()


@pytest.fixture
def example_3_2():
    """Example 3.2: a graph with two non-isomorphic naive closures.

    Triples: (a, p, c), (a, p, X), (a, p, b), (c, r, d), (b, q, d) —
    drawn so that X can stand for either c (gaining (X, r, d)) or b
    (gaining (X, q, d)), but not both.
    """
    X = BNode("X")
    return RDFGraph(
        [
            triple("a", "p", "c"),
            triple("a", "p", X),
            triple("a", "p", "b"),
            triple("c", "r", "d"),
            triple("b", "q", "d"),
        ]
    )


@pytest.fixture
def example_3_8_g1():
    """Example 3.8's G1 — not lean."""
    return RDFGraph(
        [triple("a", "p", BNode("X")), triple("a", "p", BNode("Y"))]
    )


@pytest.fixture
def example_3_8_g2():
    """Example 3.8's G2 — lean (X has a q-edge, Y an r-edge to b)."""
    X, Y = BNode("X"), BNode("Y")
    return RDFGraph(
        [
            triple("a", "p", X),
            triple("a", "p", Y),
            triple(X, "q", Y),
            triple(Y, "r", "b"),
        ]
    )


@pytest.fixture
def example_3_14():
    """Example 3.14: the sp cycle b ↔ c, both below a.

    Deleting either (b, sp, a) or (c, sp, a) — but not both — yields a
    minimal representation; the two are non-isomorphic reductions.
    """
    return RDFGraph(
        [
            triple("b", SP, "a"),
            triple("c", SP, "a"),
            triple("b", SP, "c"),
            triple("c", SP, "b"),
        ]
    )


@pytest.fixture
def example_3_15():
    """Example 3.15: acyclic but two minimal representations."""
    return RDFGraph(
        [
            triple("a", SC, "b"),
            triple(TYPE, DOM, "a"),
            triple("x", TYPE, "a"),
            triple("x", TYPE, "b"),
        ]
    )


@pytest.fixture
def example_3_17_g():
    """Example 3.17's G: sc chain a→b→c with a blank shortcut via N."""
    N = BNode("N")
    return RDFGraph(
        [
            triple("a", SC, "b"),
            triple("b", SC, "c"),
            triple("a", SC, N),
            triple(N, SC, "c"),
        ]
    )


@pytest.fixture
def example_3_17_h():
    """Example 3.17's H: the chain with the ground shortcut (a, sc, c)."""
    return RDFGraph(
        [
            triple("a", SC, "b"),
            triple("b", SC, "c"),
            triple("a", SC, "c"),
        ]
    )
