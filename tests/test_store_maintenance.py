"""Property tests for delta-aware store maintenance.

Hypothesis replays random interleaved insert/delete/transaction streams
against a :class:`TripleStore` and, after every top-level step, checks
the three maintained structures against their from-scratch
counterparts:

* the materialized closure (semi-naive insertion deltas + DRed
  deletions) against ``rdfs_closure`` of the current dataset;
* the live dataset cache (union snapshot + positional indexes) against
  a model kept as plain per-graph sets;
* the cached normal form against ``normal_form`` of the dataset.

``validate_maintenance`` is switched on, so every flush additionally
cross-checks the incremental fixpoint against a from-scratch Datalog
evaluation inside the store itself.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import RDFGraph
from repro.minimize import normal_form as normal_form_fn
from repro.semantics import rdfs_closure
from repro.semantics.closure import closure_delta
from repro.store import TripleStore

from .strategies import rdfs_triples

_GRAPHS = ["default", "aux"]


def _ops():
    """One mutation stream: adds, removes, and transaction blocks."""
    simple = st.tuples(
        st.sampled_from(["add", "remove"]),
        rdfs_triples(),
        st.sampled_from(_GRAPHS),
    )
    txn = st.tuples(
        st.just("txn"),
        st.lists(
            st.tuples(
                st.sampled_from(["add", "remove"]), rdfs_triples()
            ),
            min_size=1,
            max_size=4,
        ),
        st.booleans(),  # True = commit, False = roll back
    )
    return st.lists(st.one_of(simple, txn), min_size=1, max_size=8)


def _apply(store, model, op):
    """Run one stream element on the store and mirror it in the model."""
    kind = op[0]
    if kind == "txn":
        _, body, should_commit = op
        backup = {name: set(ts) for name, ts in model.items()}
        store.begin()
        for action, t in body:
            if action == "add":
                store.add(t)
                model.setdefault("default", set()).add(t)
            else:
                store.remove(t)
                model.get("default", set()).discard(t)
        if should_commit:
            store.commit()
        else:
            store.rollback()
            model.clear()
            model.update(backup)
    else:
        kind, t, graph = op
        if kind == "add":
            store.add(t, graph=graph)
            model.setdefault(graph, set()).add(t)
        else:
            store.remove(t, graph=graph)
            model.get(graph, set()).discard(t)


def _union(model):
    out = set()
    for triples in model.values():
        out |= triples
    return out


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=_ops())
def test_maintained_state_matches_from_scratch(ops):
    store = TripleStore()
    store.validate_maintenance = True
    model = {"default": set()}
    store.closure()  # materialize up front so every step maintains
    for op in ops:
        _apply(store, model, op)
        union = RDFGraph(_union(model))
        # Dataset cache: snapshot, membership, and index-backed lookups.
        assert store.dataset() == union
        assert set(store.match()) == set(union.triples)
        assert store.count() == len(union)
        for t in list(union)[:3]:
            assert store.count(s=t.s) == union.count(s=t.s)
            assert store.count(p=t.p) == union.count(p=t.p)
            assert set(store.match(s=t.s, p=t.p)) == set(
                union.match(s=t.s, p=t.p)
            )
        # Maintained closure vs from-scratch closure.
        reference = rdfs_closure(union)
        assert store.closure() == reference
        # closure_delta reuse: the store's delta equals the definition.
        assert store.closure_delta() == closure_delta(union, closed=reference)
        # Maintained normal form vs from-scratch normal form.
        assert store.normal_form() == normal_form_fn(union)


@settings(max_examples=20, deadline=None)
@given(ops=_ops())
def test_lazy_store_agrees_without_materialization(ops):
    """The same streams, never forcing early materialization: the final
    lazily-computed closure must match the from-scratch one too."""
    store = TripleStore()
    model = {"default": set()}
    for op in ops:
        _apply(store, model, op)
    union = RDFGraph(_union(model))
    assert store.dataset() == union
    assert store.closure() == rdfs_closure(union)


def test_closure_unchanged_keeps_normal_form_cache():
    """A write whose closure delta is empty must not drop the cached nf."""
    from repro.core import triple
    from repro.core.vocabulary import SC, TYPE

    store = TripleStore()
    store.add(triple("painter", SC, "artist"))
    store.add(triple("frida", TYPE, "painter"))
    nf1 = store.normal_form()
    # Already entailed: (frida, type, artist) is in the closure, so the
    # maintenance step finds an empty closure delta.
    store.add(triple("frida", TYPE, "artist"))
    assert store.normal_form() is nf1
    # A genuinely new fact invalidates it.
    store.add(triple("diego", TYPE, "painter"))
    assert store.normal_form() is not nf1


def test_deletion_takes_incremental_path():
    from repro.core import triple
    from repro.core.vocabulary import SC, TYPE

    store = TripleStore()
    store.validate_maintenance = True
    store.add(triple("a", SC, "b"))
    store.add(triple("b", SC, "c"))
    store.add(triple("x", TYPE, "a"))
    store.closure()
    recomputes = store.stats["recomputed"]
    assert store.remove(triple("b", SC, "c"))
    assert store.stats["incremental_delete"] == 1
    assert store.stats["recomputed"] == recomputes
    assert not store.entails(triple("x", TYPE, "c"))
    assert store.entails(triple("x", TYPE, "b"))


def test_clear_graph_maintains_closure():
    from repro.core import triple
    from repro.core.vocabulary import SC, TYPE

    store = TripleStore()
    store.validate_maintenance = True
    store.add(triple("a", SC, "b"))
    store.add(triple("x", TYPE, "a"), graph="facts")
    store.closure()
    store.clear("facts")
    assert store.stats["incremental_delete"] == 1
    assert store.closure() == rdfs_closure(store.dataset())
    assert not store.entails(triple("x", TYPE, "b"))


def test_duplicate_across_graphs_is_refcounted():
    """A triple asserted in two graphs leaves the union (and closure)
    only when its last occurrence is removed."""
    from repro.core import triple
    from repro.core.vocabulary import SC, TYPE

    store = TripleStore()
    store.validate_maintenance = True
    store.add(triple("a", SC, "b"))
    store.add(triple("x", TYPE, "a"))
    store.add(triple("x", TYPE, "a"), graph="aux")
    store.closure()
    stats_before = dict(store.stats)
    store.remove(triple("x", TYPE, "a"), graph="aux")
    # Still present via the default graph: no maintenance step ran.
    assert store.stats == stats_before
    assert store.entails(triple("x", TYPE, "b"))
    store.remove(triple("x", TYPE, "a"))
    assert not store.entails(triple("x", TYPE, "b"))


def test_dataset_snapshot_amortized():
    from repro.core import triple

    store = TripleStore()
    store.add(triple("a", "p", "b"))
    d1 = store.dataset()
    assert store.dataset() is d1  # O(1): cached between writes
    store.add(triple("c", "p", "d"))
    d2 = store.dataset()
    assert d2 is not d1
    assert store.dataset() is d2
