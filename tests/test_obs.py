"""The observability subsystem: registry, tracer, and the off switch.

Three layers of assertions:

* unit — counters/gauges/histograms/timers and span bookkeeping behave;
* disabled — the ``MetricsRegistry.disabled()`` / ``Tracer.disabled()``
  singletons record *nothing*, and the global switch restores cleanly;
* integration — running real workloads under ``obs.instrumentation()``
  populates every instrumented layer (planner, Datalog engine, staged
  closure, store) from the one shared registry, and the instrumented
  closure stays within budget of the uninstrumented one on the E1
  workload (the Fig. 1 art schema).
"""

import time

import pytest

from repro import obs
from repro.core import BNode, RDFGraph, Triple, URI
from repro.core.vocabulary import TYPE
from repro.generators import art_schema
from repro.obs import MetricsRegistry, Tracer
from repro.semantics import rdfs_closure, simple_entails
from repro.store import TripleStore


@pytest.fixture(autouse=True)
def _instrumentation_off():
    """Every test starts and ends with global instrumentation off."""
    obs.disable()
    yield
    obs.disable()


# ----------------------------------------------------------------------
# Registry units
# ----------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        reg.inc("b.x")
        assert reg.counter("a") == 5
        assert reg.counters("b.") == {"b.x": 1}
        assert reg.counter("missing") == 0

    def test_declare_creates_zeros(self):
        reg = MetricsRegistry()
        reg.declare(["p.one", "p.two"])
        assert reg.counters("p.") == {"p.one": 0, "p.two": 0}

    def test_gauges_overwrite(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 2)
        reg.set_gauge("g", 7)
        assert reg.gauges()["g"] == 7

    def test_histogram_buckets_and_stats(self):
        reg = MetricsRegistry()
        for v in (0.05, 3, 20000):
            reg.observe("h", v)
        h = reg.histogram("h").to_dict()
        assert h["count"] == 3
        assert h["min"] == 0.05 and h["max"] == 20000
        # 20000 exceeds every boundary: it lands in the +Inf overflow,
        # so the finite buckets hold exactly two observations.
        assert h["buckets"]["+Inf"] == 1
        finite = sum(n for b, n in h["buckets"].items() if b != "+Inf")
        assert finite == 2

    def test_timer_observes_elapsed_ms(self):
        reg = MetricsRegistry()
        with reg.timer("t"):
            time.sleep(0.002)
        h = reg.histogram("t").to_dict()
        assert h["count"] == 1
        assert h["min"] >= 1.0  # slept 2ms; allow scheduler slop

    def test_snapshot_and_describe(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.set_gauge("g", 1)
        reg.observe("h", 0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": 1}
        assert snap["histograms"]["h"]["count"] == 1
        assert "c" in reg.describe()

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.reset()
        assert len(reg) == 0


class TestTracer:
    def test_parent_links_and_attrs(self):
        tr = Tracer()
        with tr.span("outer", depth=0):
            with tr.span("inner") as span:
                span.annotate(hits=3)
        events = tr.events()
        assert [e.name for e in events] == ["outer", "inner"]
        outer, inner = events
        assert outer.parent is None
        assert inner.parent == outer.index
        assert inner.attrs["hits"] == 3
        assert outer.duration_ms >= inner.duration_ms >= 0

    def test_aggregate_rolls_up_by_name(self):
        tr = Tracer()
        for _ in range(3):
            with tr.span("work"):
                pass
        agg = tr.aggregate()
        assert agg["work"]["count"] == 3
        assert agg["work"]["total_ms"] >= agg["work"]["max_ms"]


# ----------------------------------------------------------------------
# The off switch
# ----------------------------------------------------------------------


class TestDisabled:
    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry.disabled()
        reg.inc("c", 10)
        reg.set_gauge("g", 1)
        reg.observe("h", 0.5)
        reg.declare(["d"])
        with reg.timer("t"):
            pass
        assert len(reg) == 0
        assert reg.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_disabled_tracer_records_nothing(self):
        tr = Tracer.disabled()
        with tr.span("s", k=1) as span:
            span.annotate(more=2)
        assert len(tr) == 0
        assert tr.events() == []

    def test_disabled_spans_share_one_noop(self):
        tr = Tracer.disabled()
        assert tr.span("a") is tr.span("b") is obs.OBS.span("c")

    def test_global_default_is_off(self):
        assert not obs.is_enabled()
        obs.OBS.registry.inc("planner.backtracks")
        with obs.OBS.span("x"):
            pass
        assert len(obs.get_registry()) == 0
        assert len(obs.get_tracer()) == 0

    def test_instrumentation_restores_previous_state(self):
        with obs.instrumentation() as (registry, tracer):
            assert obs.is_enabled()
            assert obs.get_registry() is registry
            # Nested regions restore the *outer* pair, not "off".
            with obs.instrumentation() as (inner_reg, _):
                assert obs.get_registry() is inner_reg
            assert obs.get_registry() is registry
            assert obs.get_tracer() is tracer
        assert not obs.is_enabled()
        assert len(obs.get_registry()) == 0

    def test_enable_declares_standard_counters(self):
        registry, _ = obs.enable()
        counters = registry.counters()
        for name in obs.STANDARD_COUNTERS:
            assert counters[name] == 0


# ----------------------------------------------------------------------
# Integration: one shared registry across every layer
# ----------------------------------------------------------------------


def _store_workload():
    store = TripleStore()
    store.add_all(art_schema())
    store.closure()  # materialize
    added = Triple(URI("newbie"), TYPE, URI("painter"))
    store.add(added)  # incremental insert
    store.remove(added)  # DRed delete
    store.dataset()
    store.dataset()  # second read hits the snapshot cache
    return store


class TestIntegration:
    def test_planner_reports(self):
        g = art_schema()
        # A blank subject forces an actual homomorphism search (a fully
        # ground pattern short-circuits to containment).
        pattern = RDFGraph([Triple(BNode("who"), URI("paints"), URI("Guernica"))])
        with obs.instrumentation() as (registry, tracer):
            assert simple_entails(g, pattern)
        assert registry.counter("planner.prepared") >= 1
        assert registry.counter("planner.solutions") >= 1
        strategies = registry.counters("planner.strategy.")
        assert sum(strategies.values()) >= 1
        assert "planner.prepare" in tracer.aggregate()

    def test_closure_reports(self):
        with obs.instrumentation() as (registry, tracer):
            rdfs_closure(art_schema())
        assert registry.counter("closure.rounds") >= 1
        assert registry.counter("closure.derived_triples") > 0
        emitted = registry.counters("closure.emitted.")
        assert sum(emitted.values()) > 0
        assert "closure.round" in tracer.aggregate()

    def test_datalog_and_store_report(self):
        with obs.instrumentation() as (registry, tracer):
            store = _store_workload()
        assert registry.counter("datalog.derived") > 0
        assert registry.counter("datalog.rounds") >= 1
        per_rule = registry.counters("datalog.derived.r")
        assert sum(per_rule.values()) == registry.counter("datalog.derived")
        assert registry.counter("store.maintenance.incremental_insert") == 1
        assert registry.counter("store.maintenance.incremental_delete") == 1
        assert registry.counter("store.maintenance.recomputed") == 1
        assert registry.counter("store.dataset_cache.hit") >= 1
        assert registry.counter("store.dataset_cache.miss") >= 1
        spans = tracer.aggregate()
        assert "store.flush" in spans
        assert "datalog.fixpoint" in spans
        # The per-store view agrees with the global registry.
        assert store.stats == {
            "incremental_insert": 1,
            "incremental_delete": 1,
            "recomputed": 1,
        }

    def test_stats_view_works_without_instrumentation(self):
        store = _store_workload()  # global OBS is off here
        assert dict(store.stats) == {
            "incremental_insert": 1,
            "incremental_delete": 1,
            "recomputed": 1,
        }
        assert store.stats["recomputed"] == 1
        assert len(obs.get_registry()) == 0


# ----------------------------------------------------------------------
# Overhead: instrumentation must be near-free while off
# ----------------------------------------------------------------------


def _best_of(fn, reps=7):
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_disabled_overhead_smoke():
    """Instrumented closure ≤ 1.5× uninstrumented on the E1 workload.

    Both sides run with instrumentation *off* — the claim under test is
    that merely having the guards compiled into the hot paths costs
    (almost) nothing.  Best-of-N timing keeps OS jitter out; the 1.5×
    budget is deliberately loose for CI machines.
    """
    g = art_schema()
    rdfs_closure(g)  # warm-up: imports, caches

    baseline = _best_of(lambda: rdfs_closure(g))

    # The "instrumented" side exercises the exact same guarded code —
    # the guards are always compiled in — so this measures the steady
    # disabled path after an enable/disable cycle has come and gone.
    with obs.instrumentation():
        rdfs_closure(g)
    obs.disable()
    instrumented = _best_of(lambda: rdfs_closure(g))

    assert instrumented <= 1.5 * baseline + 1e-3
