"""The telemetry pipeline: snapshot merge, progress, exporters, CLI.

Four layers of assertions:

* merge protocol — folding N partial registry snapshots into one equals
  recording everything in a single registry (the Hypothesis property
  behind the cross-process aggregation guarantee), histogram bucket
  boundaries are checked, prefixes keep per-source series distinct, and
  ``Tracer.merge`` rebases foreign events onto one monotonic timeline;
* exception safety — spans unwound by exceptions finish with an
  ``error`` attr, hand-abandoned spans still appear in snapshots and
  rollups (flagged ``unfinished``) instead of vanishing;
* progress — heartbeats rate-limit against an injectable clock, JSON
  mode emits one valid object per line, disabled reporters are silent;
* end to end — multi-worker ingest and the partitioned closure produce
  merged counters equal to their single-source runs, and the CLI's
  ``--progress-json`` / ``--trace-out`` / ``metrics`` surface works.
"""

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.cli import main
from repro.ingest import load_ntriples
from repro.obs import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    prometheus_text,
)
from repro.obs.progress import (
    ProgressReporter,
    current_progress,
    peak_rss_bytes,
    progress_scope,
)


@pytest.fixture(autouse=True)
def _instrumentation_off():
    """Every test starts and ends with global instrumentation off."""
    obs.disable()
    yield
    obs.disable()


def _ontology_lines(n: int):
    from repro.generators import synthetic_ontology_lines

    return list(synthetic_ontology_lines(n))


# ----------------------------------------------------------------------
# The snapshot-merge protocol (registry side)
# ----------------------------------------------------------------------

_NAMES = st.sampled_from(["a", "b.x", "b.y", "c"])
_EVENTS = st.lists(
    st.tuples(_NAMES, st.integers(min_value=1, max_value=50)), max_size=60
)


class TestRegistryMerge:
    @given(events=_EVENTS, parts=st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_merge_of_n_partitions_equals_single_registry(
        self, events, parts
    ):
        """The loss-free guarantee: however increments are scattered
        over N worker registries, merging their snapshots reproduces
        the single-process counters exactly."""
        single = MetricsRegistry()
        workers = [MetricsRegistry() for _ in range(parts)]
        for i, (name, amount) in enumerate(events):
            single.inc(name, amount)
            workers[i % parts].inc(name, amount)
        merged = MetricsRegistry()
        for w in workers:
            merged.merge(w.snapshot())
        assert merged.counters() == single.counters()

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=20000.0), max_size=40
        ),
        parts=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_histogram_merge_is_loss_free(self, values, parts):
        single = MetricsRegistry()
        workers = [MetricsRegistry() for _ in range(parts)]
        for i, v in enumerate(values):
            single.observe("h", v)
            workers[i % parts].observe("h", v)
        merged = MetricsRegistry()
        for w in workers:
            merged.merge(w.snapshot())
        if not values:
            assert merged.histogram("h") is None
            return
        got = merged.histogram("h").to_dict()
        want = single.histogram("h").to_dict()
        # Sums accumulate in a different order; compare with tolerance.
        assert got["buckets"] == want["buckets"]
        assert got["count"] == want["count"]
        assert got["min"] == want["min"] and got["max"] == want["max"]
        assert got["sum"] == pytest.approx(want["sum"], abs=1e-3)

    def test_mismatched_bucket_bounds_raise(self):
        ours = Histogram()
        theirs = Histogram(buckets=(1.0, 2.0))
        theirs.observe(1.5)
        with pytest.raises(ValueError):
            ours.merge_dict(theirs.to_dict())

    def test_prefix_keeps_sources_distinct(self):
        parent = MetricsRegistry()
        parent.inc("rounds", 10)
        w = MetricsRegistry()
        w.inc("rounds", 3)
        w.set_gauge("rss", 42)
        parent.merge(w.snapshot(), prefix="shard.1.")
        assert parent.counter("rounds") == 10
        assert parent.counter("shard.1.rounds") == 3
        assert parent.gauges()["shard.1.rss"] == 42

    def test_gauges_take_incoming_value(self):
        parent = MetricsRegistry()
        parent.set_gauge("g", 1)
        w = MetricsRegistry()
        w.set_gauge("g", 2)
        parent.merge(w.snapshot())
        assert parent.gauges()["g"] == 2

    def test_disabled_registry_ignores_merge(self):
        parent = MetricsRegistry.disabled()
        w = MetricsRegistry()
        w.inc("a", 5)
        parent.merge(w.snapshot())
        assert len(parent) == 0


# ----------------------------------------------------------------------
# The snapshot-merge protocol (tracer side)
# ----------------------------------------------------------------------


class TestTracerMerge:
    def test_foreign_events_rebase_and_anchor(self):
        worker = Tracer()
        with worker.span("chunk", chunk=0):
            with worker.span("parse"):
                pass
        foreign = worker.snapshot()

        parent = Tracer()
        with parent.span("load") as _:
            parent.merge(foreign, label="worker-1")
        events = parent.snapshot()
        assert [e["name"] for e in events] == ["load", "chunk", "parse"]
        chunk, parse = events[1], events[2]
        # Top-level foreign spans nest under the open parent span;
        # internal parent links shift by the insertion base.
        assert chunk["parent"] == 0
        assert parse["parent"] == chunk["index"]
        assert chunk["attrs"]["track"] == "worker-1"
        # Rebased onto our timeline: nothing ends in the future.
        now = parent.now_ms()
        for e in events[1:]:
            assert e["start_ms"] + (e["duration_ms"] or 0) <= now + 1e-6

    def test_merge_into_disabled_tracer_is_noop(self):
        worker = Tracer()
        with worker.span("x"):
            pass
        parent = Tracer.disabled()
        parent.merge(worker.snapshot(), label="w")
        assert len(parent) == 0


# ----------------------------------------------------------------------
# Exception-safe spans
# ----------------------------------------------------------------------


class TestSpanExceptionSafety:
    def test_exception_finishes_span_with_error_attr(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("work"):
                raise RuntimeError("boom")
        (event,) = tracer.snapshot()
        assert event["duration_ms"] is not None
        assert event["attrs"]["error"] == "RuntimeError"
        assert tracer.aggregate()["work"]["count"] == 1

    def test_budget_trip_mid_dred_keeps_span_in_rollup(self):
        """A BudgetExceeded unwinding out of the DRed overdelete loop
        must leave a finished, error-flagged span — the PR 8 fix for
        the hand-opened span in ``retract_fixpoint_into``."""
        from repro.datalog.engine import (
            DatalogAtom,
            DatalogProgram,
            DatalogRule,
            DVar,
            FactStore,
            materialize_fixpoint,
            retract_fixpoint_into,
        )
        from repro.robustness import Budget, BudgetExceeded, guarded

        X, Y, Z = DVar("X"), DVar("Y"), DVar("Z")
        program = DatalogProgram(
            [
                DatalogRule(
                    DatalogAtom("path", (X, Y)),
                    (DatalogAtom("edge", (X, Y)),),
                ),
                DatalogRule(
                    DatalogAtom("path", (X, Z)),
                    (
                        DatalogAtom("edge", (X, Y)),
                        DatalogAtom("path", (Y, Z)),
                    ),
                ),
            ]
        )
        facts = [("edge", (i, i + 1)) for i in range(12)]
        store = materialize_fixpoint(program, facts)
        base = FactStore()
        for relation, row in facts:
            base.add(relation, row)
        with obs.instrumentation() as (_registry, tracer):
            with pytest.raises(BudgetExceeded):
                with guarded(Budget(max_steps=3)):
                    retract_fixpoint_into(
                        program, store, base, [("edge", (0, 1))]
                    )
        agg = tracer.aggregate()
        assert "datalog.dred.overdelete" in agg
        events = tracer.snapshot()
        span = next(
            e for e in events if e["name"] == "datalog.dred.overdelete"
        )
        assert span["duration_ms"] is not None
        assert span["attrs"].get("error", "").endswith("BudgetExceeded")

    def test_abandoned_span_is_flagged_unfinished(self):
        tracer = Tracer()
        tracer.span("leaked").__enter__()  # never exited
        (event,) = tracer.snapshot()
        assert event["attrs"]["unfinished"] is True
        assert event["duration_ms"] is not None
        assert tracer.aggregate()["leaked"]["count"] == 1


# ----------------------------------------------------------------------
# Progress heartbeats
# ----------------------------------------------------------------------


class _FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestProgressReporter:
    def test_rate_limiting_against_injected_clock(self):
        clock = _FakeClock()
        buf = io.StringIO()
        p = ProgressReporter(stream=buf, interval_s=1.0, clock=clock)
        assert p.report("s", n=1)  # first report always lands
        clock.t = 0.5
        assert not p.report("s", n=2)  # inside the interval: dropped
        clock.t = 1.5
        assert p.report("s", n=3)
        clock.t = 1.6
        assert p.report("s", force=True, n=4)  # force bypasses the limit
        assert p.heartbeats == 3
        assert len(buf.getvalue().splitlines()) == 3

    def test_json_lines_are_valid_and_carry_fields(self):
        buf = io.StringIO()
        p = ProgressReporter(stream=buf, interval_s=0.0, json_lines=True)
        p.report("ingest", lines=5, rate=2.5)
        (line,) = buf.getvalue().splitlines()
        payload = json.loads(line)
        assert payload["stage"] == "ingest"
        assert payload["lines"] == 5
        assert payload["elapsed_s"] >= 0
        if peak_rss_bytes() is not None:
            assert payload["peak_rss_mb"] > 0

    def test_disabled_reporter_is_silent(self):
        buf = io.StringIO()
        p = ProgressReporter(stream=buf, enabled=False, interval_s=0.0)
        assert not p.report("s", force=True, n=1)
        assert buf.getvalue() == ""
        assert p.heartbeats == 0

    def test_scope_installs_and_restores(self):
        assert current_progress() is None
        p = ProgressReporter(stream=io.StringIO())
        with progress_scope(p):
            assert current_progress() is p
        assert current_progress() is None


# ----------------------------------------------------------------------
# End to end: multi-worker ingest and partitioned closure
# ----------------------------------------------------------------------


class TestCrossProcessAggregation:
    def test_worker_merge_equals_single_process(self):
        """Acceptance criterion (a): merged N-worker ingest counters
        equal the 1-worker totals over the same input."""
        lines = _ontology_lines(1200)
        baselines = {}
        for workers in (1, 2, 4):
            with obs.instrumentation() as (registry, _tracer):
                result = load_ntriples(
                    lines, workers=workers, chunk_lines=200
                )
            baselines[workers] = {
                name: value
                for name, value in registry.counters("ingest.").items()
                if name != "ingest.worker_snapshots"
            }
            hist = registry.histogram("ingest.chunk_parse_ms")
            assert hist is not None and hist.count == 6
            assert result.triples > 0
        assert baselines[2] == baselines[1]
        assert baselines[4] == baselines[1]

    def test_parallel_load_merges_worker_traces(self):
        lines = _ontology_lines(800)
        with obs.instrumentation() as (registry, tracer):
            load_ntriples(lines, workers=2, chunk_lines=200)
        assert registry.counter("ingest.worker_snapshots") == 4
        chunk_spans = [
            e for e in tracer.snapshot() if e["name"] == "ingest.chunk"
        ]
        assert len(chunk_spans) == 4
        assert all("track" in e["attrs"] for e in chunk_spans)

    def test_partitioned_closure_reports_per_shard_series(self):
        from repro.core.graph import RDFGraph
        from repro.core.terms import Triple, URI
        from repro.core.vocabulary import SC, TYPE
        from repro.semantics.closure import rdfs_closure_partitioned

        graph = RDFGraph(
            [
                Triple(URI(f"http://c{i}"), SC, URI(f"http://c{i + 1}"))
                for i in range(15)
            ]
            + [Triple(URI("http://x"), TYPE, URI("http://c0"))]
        )
        with obs.instrumentation() as (registry, _tracer):
            rdfs_closure_partitioned(graph, shards=3)
        per_shard = registry.counters("closure.partitioned.shard.")
        assert {
            f"closure.partitioned.shard.{i}.rounds" for i in range(3)
        } <= set(per_shard)
        total_derived = sum(
            v for k, v in per_shard.items() if k.endswith(".derived_rows")
        )
        assert total_derived > 0

    def test_loader_heartbeats_fire_per_chunk(self):
        lines = _ontology_lines(600)
        buf = io.StringIO()
        reporter = ProgressReporter(
            stream=buf, interval_s=0.0, json_lines=True
        )
        load_ntriples(lines, chunk_lines=200, progress=reporter)
        payloads = [
            json.loads(line) for line in buf.getvalue().splitlines()
        ]
        assert len(payloads) >= 3  # one per chunk + forced final
        assert payloads[-1]["lines"] == 600
        assert all(p["stage"] == "ingest" for p in payloads)

    def test_datalog_rounds_report_ambient_progress(self):
        from repro.datalog.engine import (
            DatalogAtom,
            DatalogProgram,
            DatalogRule,
            DVar,
            materialize_fixpoint,
        )

        X, Y, Z = DVar("X"), DVar("Y"), DVar("Z")
        program = DatalogProgram(
            [
                DatalogRule(
                    DatalogAtom("path", (X, Y)),
                    (DatalogAtom("edge", (X, Y)),),
                ),
                DatalogRule(
                    DatalogAtom("path", (X, Z)),
                    (
                        DatalogAtom("edge", (X, Y)),
                        DatalogAtom("path", (Y, Z)),
                    ),
                ),
            ]
        )
        facts = [("edge", (i, i + 1)) for i in range(6)]
        buf = io.StringIO()
        reporter = ProgressReporter(
            stream=buf, interval_s=0.0, json_lines=True
        )
        with progress_scope(reporter):
            materialize_fixpoint(program, facts)
        payloads = [
            json.loads(line) for line in buf.getvalue().splitlines()
        ]
        assert payloads, "expected per-round datalog heartbeats"
        assert all(p["stage"] == "datalog" for p in payloads)
        assert payloads[-1]["round"] == len(payloads)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


class TestExporters:
    def test_prometheus_text_shape(self):
        registry = MetricsRegistry()
        registry.inc("planner.backtracks", 7)
        registry.set_gauge("store.size", 3)
        registry.observe("load_ms", 0.2)
        registry.observe("load_ms", 3.0)
        text = prometheus_text(registry)
        assert "# TYPE repro_planner_backtracks_total counter" in text
        assert "repro_planner_backtracks_total 7" in text
        assert "repro_store_size 3" in text
        # Cumulative buckets: le=0.25 holds the 0.2 observation, +Inf
        # everything.
        assert 'repro_load_ms_bucket{le="0.25"} 1' in text
        assert 'repro_load_ms_bucket{le="+Inf"} 2' in text
        assert "repro_load_ms_count 2" in text
        # Same output from the plain snapshot dict.
        assert prometheus_text(registry.snapshot()) == text

    def test_prometheus_cumulative_buckets_monotone(self):
        registry = MetricsRegistry()
        for v in (0.05, 0.3, 4.0, 99.0, 12345.0):
            registry.observe("h", v)
        counts = []
        for line in prometheus_text(registry).splitlines():
            if line.startswith("repro_h_bucket"):
                counts.append(int(line.rsplit(" ", 1)[1]))
        assert counts == sorted(counts)
        assert counts[-1] == 5

    def test_chrome_trace_structure(self):
        tracer = Tracer()
        with tracer.span("outer", size=3):
            with tracer.span("inner"):
                pass
        worker = Tracer()
        with worker.span("chunk"):
            pass
        with tracer.span("merge-window"):
            tracer.merge(worker.snapshot(), label="worker-9")
        doc = chrome_trace(tracer)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in spans} == {
            "outer",
            "inner",
            "chunk",
            "merge-window",
        }
        # The merged chunk span sits on its own named track.
        chunk = next(e for e in spans if e["name"] == "chunk")
        assert chunk["tid"] != 0
        names = {
            m["args"]["name"] for m in meta if m["name"] == "thread_name"
        }
        assert {"main", "worker-9"} <= names
        # ts/dur are numbers (microseconds), JSON-serializable.
        json.dumps(doc)
        for e in spans:
            assert e["ts"] >= 0 and e["dur"] >= 0

    def test_histogram_default_buckets_used_everywhere(self):
        # The merge protocol relies on a single bucket scheme.
        assert Histogram().buckets == DEFAULT_BUCKETS


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


class TestCli:
    def test_load_progress_json_and_trace_out(self, tmp_path, capsys):
        data = tmp_path / "g.nt"
        data.write_text("\n".join(_ontology_lines(400)) + "\n")
        trace_path = tmp_path / "trace.json"
        out = io.StringIO()
        code = main(
            [
                "load",
                str(data),
                "--parallel",
                "2",
                "--chunk-lines",
                "100",
                "--close",
                "--shards",
                "2",
                "--progress-json",
                "--trace-out",
                str(trace_path),
            ],
            out=out,
        )
        assert code == 0
        assert "closure rows:" in out.getvalue()
        stderr = capsys.readouterr().err
        heartbeats = [json.loads(line) for line in stderr.splitlines()]
        assert heartbeats, "expected at least one heartbeat line"
        assert {p["stage"] for p in heartbeats} >= {
            "ingest",
            "closure.partitioned",
        }
        doc = json.loads(trace_path.read_text())
        assert doc["traceEvents"]
        span_names = {
            e["name"] for e in doc["traceEvents"] if e["ph"] == "X"
        }
        assert "ingest.load" in span_names
        assert "closure.partitioned" in span_names

    def test_metrics_subcommand_roundtrip(self, tmp_path):
        data = tmp_path / "g.nt"
        data.write_text("\n".join(_ontology_lines(400)) + "\n")
        snap_path = tmp_path / "prof.json"
        out = io.StringIO()
        assert (
            main(
                [
                    "--profile",
                    "--profile-json",
                    str(snap_path),
                    "load",
                    str(data),
                ],
                out=out,
            )
            == 0
        )
        prom = io.StringIO()
        assert main(["metrics", str(snap_path)], out=prom) == 0
        text = prom.getvalue()
        assert "# TYPE repro_ingest_lines_total counter" in text
        assert "repro_ingest_lines_total 400" in text
        as_json = io.StringIO()
        assert (
            main(["metrics", str(snap_path), "--format", "json"], out=as_json)
            == 0
        )
        snapshot = json.loads(as_json.getvalue())
        assert snapshot["counters"]["ingest.lines"] == 400

    def test_metrics_subcommand_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"bogus": 1}')
        assert main(["metrics", str(bad)], out=io.StringIO()) == 2

    def test_trace_out_on_entails(self, tmp_path):
        premise = tmp_path / "g1.nt"
        premise.write_text("<http://a> <http://p> <http://b> .\n")
        conclusion = tmp_path / "g2.nt"
        conclusion.write_text("_:x <http://p> <http://b> .\n")
        trace_path = tmp_path / "t.json"
        out = io.StringIO()
        code = main(
            [
                "entails",
                str(premise),
                str(conclusion),
                "--trace-out",
                str(trace_path),
            ],
            out=out,
        )
        assert code == 0
        doc = json.loads(trace_path.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "planner.prepare" in names
