"""Parity and determinism tests for the scale path (ROADMAP item 3).

Three claims are pinned down here:

* **Partitioned closure parity** — ``rdfs_closure_partitioned`` at 1,
  2 and 7 shards (and with spill forced) equals the single-shard
  arrays kernel and the boxed baseline, on wild graphs (reserved
  vocabulary in subject/object positions, literal objects) and on tame
  RDFS graphs.
* **Spill-format identity** — ``SortedRuns.tofile``/``fromfile`` and
  the flat-array helpers round-trip exactly; a ``RunPool`` forced to
  spill merges to the same rows as an unbounded one.
* **Loader determinism** — loading the same file with any worker count
  and chunk size yields an identical term dictionary and identical
  encoded rows (the deterministic ID-remap argument), and the decoded
  graph equals the one-shot parser's.
"""

import io
from array import array

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.core import BNode, Literal, RDFGraph, Triple, URI
from repro.core.columns import (
    SortedRuns,
    merge_union_many,
    rows_from_array,
    rows_to_array,
)
from repro.core.interning import BNODE_BASE, LITERAL_BASE, TermDict
from repro.core.vocabulary import DOM, RANGE, SC, SP, TYPE
from repro.generators import (
    synthetic_ontology_graph,
    synthetic_ontology_lines,
    write_synthetic_ontology,
)
from repro.ingest import RunPool, load_ntriples
from repro.ingest.spill import SpilledRun
from repro.rdfio.ntriples import ParseError, iter_ntriples, parse_ntriples
from repro.semantics.closure import (
    rdfs_closure_arrays,
    rdfs_closure_boxed,
    rdfs_closure_partitioned,
    rdfs_closure_partitioned_rows,
)
from repro.store import TripleStore

from .strategies import rdfs_graphs

COMMON = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_SUBJECTS = [URI("a"), URI("b"), URI("p"), BNode("X"), BNode("Y"), SP, SC, TYPE]
_PREDICATES = [URI("p"), URI("q"), URI("a"), SP, SC, TYPE, DOM, RANGE]
_OBJECTS = [URI("a"), URI("c"), BNode("Y"), BNode("Z"), Literal("v"), SC, DOM]


def wild_graphs(max_size: int = 6):
    triples = st.builds(
        Triple,
        st.sampled_from(_SUBJECTS),
        st.sampled_from(_PREDICATES),
        st.sampled_from(_OBJECTS),
    )
    return st.lists(triples, min_size=0, max_size=max_size).map(RDFGraph)


_IDS = st.sampled_from(
    [0, 1, 2, 3, 4, 5, 9, 17, BNODE_BASE, BNODE_BASE + 3,
     LITERAL_BASE, LITERAL_BASE + 7]
)


def encoded_rows(max_size: int = 12):
    return st.lists(st.tuples(_IDS, _IDS, _IDS), max_size=max_size)


# ----------------------------------------------------------------------
# Partitioned closure parity
# ----------------------------------------------------------------------


class TestPartitionedClosureParity:
    @settings(**COMMON)
    @given(wild_graphs())
    def test_shard_counts_agree_on_wild_graphs(self, g):
        reference = set(rdfs_closure_arrays(g))
        assert reference == set(rdfs_closure_boxed(g))
        for shards in (1, 2, 7):
            assert set(rdfs_closure_partitioned(g, shards=shards)) == reference

    @settings(**COMMON)
    @given(rdfs_graphs())
    def test_shard_counts_agree_on_tame_graphs(self, g):
        reference = set(rdfs_closure_arrays(g))
        for shards in (1, 2, 7):
            assert set(rdfs_closure_partitioned(g, shards=shards)) == reference

    @settings(**COMMON)
    @given(g=wild_graphs())
    def test_spill_mode_agrees(self, g, tmp_path_factory):
        # max_memory_mb=0 forces every enforceable spill opportunity.
        reference = rdfs_closure_arrays(g)
        got = rdfs_closure_partitioned(
            g, shards=3, max_memory_mb=0,
            tmp_dir=str(tmp_path_factory.mktemp("shards")),
        )
        assert got == reference

    def test_synthetic_ontology_partitioned(self):
        g = synthetic_ontology_graph(2000)
        reference = rdfs_closure_arrays(g)
        for shards in (1, 4):
            assert rdfs_closure_partitioned(g, shards=shards) == reference

    def test_rows_entrypoint_matches_graph_entrypoint(self):
        g = synthetic_ontology_graph(600)
        terms = TermDict()
        rows = sorted(set(terms.encode_rows(g.triples)))
        acc = rdfs_closure_partitioned_rows(rows, shards=5)
        decoded = RDFGraph._from_trusted(terms.decode_rows(acc.rows()))
        assert decoded == rdfs_closure_arrays(g)

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            rdfs_closure_partitioned_rows([], shards=0)

    def test_variables_raise_type_error(self):
        from repro.core.terms import Variable

        g = RDFGraph._from_trusted(
            [Triple(URI("a"), URI("p"), Variable("x"))]
        )
        with pytest.raises(TypeError):
            rdfs_closure_partitioned(g)


# ----------------------------------------------------------------------
# Spill format
# ----------------------------------------------------------------------


class TestSpillRoundTrip:
    @settings(**COMMON)
    @given(encoded_rows())
    def test_flat_array_round_trip(self, rows):
        assert rows_from_array(rows_to_array(rows)) == [
            tuple(r) for r in rows
        ]

    def test_flat_array_rejects_ragged(self):
        with pytest.raises(ValueError):
            rows_from_array(array("q", [1, 2, 3, 4]))

    @settings(**COMMON)
    @given(rows=encoded_rows())
    def test_sorted_runs_tofile_fromfile_identity(self, rows, tmp_path_factory):
        rel = SortedRuns.from_rows(rows)
        path = tmp_path_factory.mktemp("spill") / "rel.bin"
        with open(path, "wb") as f:
            n = rel.tofile(f)
        assert n == len(rel)
        with open(path, "rb") as f:
            back = SortedRuns.fromfile(f, n)
        assert back == rel
        assert back.rows() == rel.rows()

    @settings(**COMMON)
    @given(st.lists(encoded_rows(max_size=6), max_size=5))
    def test_merge_union_many_vs_sets(self, row_lists):
        sorted_lists = [sorted(rows) for rows in row_lists]
        expected = sorted(set().union(*map(set, sorted_lists)) if sorted_lists else set())
        assert merge_union_many(sorted_lists) == [
            tuple(r) for r in expected
        ]

    def test_run_pool_tiny_budget_merges_identically(self, tmp_path):
        runs = [
            sorted({(i * 7 + j, 1, j) for j in range(50)})
            for i in range(8)
        ]
        unbounded = RunPool(max_bytes=None)
        for run in runs:
            unbounded.add(list(run))
        with RunPool(max_bytes=1, tmp_dir=str(tmp_path)) as bounded:
            for run in runs:
                bounded.add(list(run))
            assert bounded.spills > 0
            assert bounded.merge() == unbounded.merge()

    def test_spilled_run_streams_in_blocks(self, tmp_path):
        rows = sorted({(i, i % 5, i * 3) for i in range(1000)})
        path = tmp_path / "run.bin"
        with open(path, "wb") as f:
            rows_to_array(rows).tofile(f)
        spilled = SpilledRun(str(path), len(rows))
        assert list(spilled.iter_rows(block_rows=7)) == rows
        assert spilled.load() == rows


# ----------------------------------------------------------------------
# Loader determinism and parity
# ----------------------------------------------------------------------

_SAMPLE = """\
a p b .
b p c .
_:x p "lit with \\n escape" .
# a comment line

c sp p .
p dom klass .
a type klass .
"""

_SAMPLE_BAD = _SAMPLE + 'broken "line\nd p e .\n'


class TestLoaderDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    @pytest.mark.parametrize("chunk_lines", [3, 7, 1000])
    def test_any_worker_and_chunk_config_is_identical(
        self, workers, chunk_lines
    ):
        baseline = load_ntriples(io.StringIO(_SAMPLE), workers=1)
        result = load_ntriples(
            io.StringIO(_SAMPLE), workers=workers, chunk_lines=chunk_lines
        )
        assert result.runs.rows() == baseline.runs.rows()
        assert result.terms.pool_values() == baseline.terms.pool_values()
        assert result.graph() == baseline.graph()

    def test_matches_one_shot_parser(self):
        assert load_ntriples(io.StringIO(_SAMPLE)).graph() == parse_ntriples(
            _SAMPLE
        )

    def test_strict_parse_error_propagates_from_workers(self):
        with pytest.raises(ParseError) as err:
            load_ntriples(
                io.StringIO(_SAMPLE_BAD), workers=2, chunk_lines=2
            )
        assert err.value.line_number == 9

    @pytest.mark.parametrize("workers", [1, 2])
    def test_tolerant_mode_reports_issues_with_file_line_numbers(
        self, workers
    ):
        result = load_ntriples(
            io.StringIO(_SAMPLE_BAD),
            workers=workers,
            chunk_lines=3,
            strict=False,
        )
        report = parse_ntriples(_SAMPLE_BAD, strict=False)
        assert result.graph() == report.graph
        assert [i.line_number for i in result.issues] == [
            i.line_number for i in report.errors
        ] == [9]

    def test_memory_bounded_load_spills_and_agrees(self, tmp_path):
        lines = list(synthetic_ontology_lines(3000))
        bounded = load_ntriples(
            iter(lines),
            chunk_lines=200,
            max_memory_mb=0,
            tmp_dir=str(tmp_path),
        )
        unbounded = load_ntriples(iter(lines), max_memory_mb=None)
        assert bounded.spilled_runs > 0
        assert bounded.runs.rows() == unbounded.runs.rows()

    def test_load_then_partitioned_close_matches_boxed_pipeline(self):
        lines = list(synthetic_ontology_lines(500))
        result = load_ntriples(iter(lines), workers=2, chunk_lines=100)
        acc = rdfs_closure_partitioned_rows(result.runs.rows(), shards=3)
        decoded = RDFGraph._from_trusted(
            result.terms.decode_rows(acc.rows())
        )
        assert decoded == rdfs_closure_boxed(parse_ntriples("\n".join(lines)))

    def test_shared_term_dict_accumulates(self):
        terms = TermDict()
        first = load_ntriples(io.StringIO("a p b .\n"), term_dict=terms)
        second = load_ntriples(io.StringIO("b p c .\n"), term_dict=terms)
        assert first.terms is second.terms is terms
        combined = SortedRuns.from_rows(
            first.runs.rows() + second.runs.rows()
        )
        assert terms.decode_rows(combined.rows())  # all IDs resolve


# ----------------------------------------------------------------------
# Streaming parser and bulk-encode parity
# ----------------------------------------------------------------------


class TestStreamingPrimitives:
    def test_iter_ntriples_matches_parse_ntriples(self):
        streamed = RDFGraph(iter_ntriples(_SAMPLE))
        assert streamed == parse_ntriples(_SAMPLE)

    def test_iter_ntriples_start_offsets_line_numbers(self):
        with pytest.raises(ParseError) as err:
            list(iter_ntriples(["ok p o .", "broken ."], start=100))
        assert err.value.line_number == 101

    def test_iter_ntriples_tolerant_collects_issues(self):
        issues = []
        triples = list(
            iter_ntriples(_SAMPLE_BAD, strict=False, issues=issues)
        )
        assert len(triples) == 7
        assert [i.line_number for i in issues] == [9]

    @settings(**COMMON)
    @given(rdfs_graphs())
    def test_encode_rows_matches_encode_triple(self, g):
        triples = list(g.sorted_triples())
        bulk = TermDict()
        single = TermDict()
        assert bulk.encode_rows(triples) == [
            single.encode_triple(t) for t in triples
        ]
        assert bulk.pool_values() == single.pool_values()
        assert bulk.encodes == single.encodes

    def test_store_bulk_load(self):
        store = TripleStore()
        added = store.bulk_load(io.StringIO(_SAMPLE), workers=1)
        assert added == 6
        assert store.dataset() == parse_ntriples(_SAMPLE)


# ----------------------------------------------------------------------
# CLI smoke
# ----------------------------------------------------------------------


class TestLoadCommand:
    def test_load_reports_and_closes(self, tmp_path, capsys):
        path = tmp_path / "onto.nt"
        write_synthetic_ontology(str(path), 800)
        out = io.StringIO()
        code = cli_main(
            ["load", str(path), "--parallel", "2", "--chunk-lines", "200",
             "--close", "--shards", "2"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "triples:            800" in text
        assert "closure rows:" in text

    def test_load_out_writes_closure(self, tmp_path):
        path = tmp_path / "g.nt"
        path.write_text(_SAMPLE)
        target = tmp_path / "closed.nt"
        out = io.StringIO()
        code = cli_main(
            ["load", str(path), "--close", "--out", str(target)], out=out
        )
        assert code == 0
        closed = parse_ntriples(target.read_text())
        assert closed == rdfs_closure_boxed(parse_ntriples(_SAMPLE))

    def test_load_tolerant_counts_skips(self, tmp_path):
        path = tmp_path / "g.nt"
        path.write_text(_SAMPLE_BAD)
        out = io.StringIO()
        code = cli_main(["load", str(path), "--tolerant"], out=out)
        assert code == 0
        assert "skipped lines:      1" in out.getvalue()
