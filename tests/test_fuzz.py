"""Fuzz / failure-injection tests: malformed inputs must fail cleanly.

Every parser and engine entry point is fed adversarial input; the
contract is "raise the documented exception type or succeed" — never
crash with an unrelated error, never hang, never silently mis-parse.
"""

import random
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RDFGraph, Triple, URI, triple
from repro.navigation import PathSyntaxError, parse_path
from repro.rdfio import ParseError, parse_ntriples, serialize_ntriples
from repro.rdfio.query_syntax import QuerySyntaxError, parse_query
from repro.util.fixpoint import fixpoint


class TestNTriplesFuzz:
    @settings(max_examples=100, deadline=None)
    @given(st.text(max_size=80))
    def test_never_crashes(self, text):
        try:
            parse_ntriples(text)
        except ParseError:
            pass  # the documented failure mode

    @settings(max_examples=60, deadline=None)
    @given(st.text(alphabet="abc_:<>\"\\. \n?", max_size=60))
    def test_structured_noise(self, text):
        try:
            parse_ntriples(text)
        except ParseError:
            pass

    @settings(max_examples=60, deadline=None)
    @given(st.text(max_size=40))
    def test_parse_of_serialized_literal_roundtrips(self, value):
        if not value:
            return
        from repro.core import Literal

        g = RDFGraph([Triple(URI("a"), URI("p"), Literal(value))])
        assert parse_ntriples(serialize_ntriples(g)) == g

    def test_truncated_inputs(self):
        full = 'a p "literal with spaces" .'
        for cut in range(1, len(full)):
            try:
                parse_ntriples(full[:cut])
            except ParseError:
                pass


class TestPathFuzz:
    @settings(max_examples=100, deadline=None)
    @given(st.text(alphabet="abp/|*+?^()< >", max_size=30))
    def test_never_crashes(self, text):
        try:
            parse_path(text)
        except PathSyntaxError:
            pass

    @settings(max_examples=50, deadline=None)
    @given(st.text(max_size=30))
    def test_arbitrary_text(self, text):
        try:
            parse_path(text)
        except PathSyntaxError:
            pass


class TestQuerySyntaxFuzz:
    @settings(max_examples=80, deadline=None)
    @given(st.text(max_size=120))
    def test_never_crashes(self, text):
        try:
            parse_query(text)
        except QuerySyntaxError:
            pass

    @settings(max_examples=50, deadline=None)
    @given(
        st.text(
            alphabet="CONSTRUCTWHEREPREMISEBOUND {}?abp. \n", max_size=100
        )
    )
    def test_keyword_noise(self, text):
        try:
            parse_query(text)
        except QuerySyntaxError:
            pass


class TestEngineGuards:
    def test_fixpoint_nonmonotone_detected(self):
        # A "step" that keeps inventing fresh elements must hit the
        # safety bound instead of spinning forever.
        counter = iter(range(1, 10**9))  # never returns the seed

        def bad_step(_all, _delta):
            return {next(counter)}

        with pytest.raises(RuntimeError):
            fixpoint({0}, bad_step, max_rounds=50)

    def test_graph_rejects_garbage_rows(self):
        with pytest.raises((ValueError, TypeError)):
            RDFGraph([("only-two", "items")])

    def test_store_rejects_malformed(self):
        from repro.core import BNode, Literal
        from repro.store import TripleStore

        store = TripleStore()
        with pytest.raises(ValueError):
            store.add(Triple(Literal("l"), URI("p"), URI("o")))
        with pytest.raises(ValueError):
            store.add(Triple(URI("s"), BNode("X"), URI("o")))

    def test_query_answers_on_empty_database(self):
        from repro.query import answer_union, head_body_query, identity_query
        from repro.semantics import equivalent

        # The identity query over ∅ returns nf(∅) — the five axiomatic
        # rule-(9) triples — which is *equivalent* to ∅ (they are valid).
        identity_result = answer_union(identity_query(), RDFGraph())
        assert equivalent(identity_result, RDFGraph())
        q = head_body_query(head=[("?X", "p", "b")], body=[("?X", "p", "b")])
        assert len(answer_union(q, RDFGraph())) == 0

    def test_closure_oracle_on_empty_graph(self):
        from repro.semantics import ClosureOracle
        from repro.core.vocabulary import SP

        oracle = ClosureOracle(RDFGraph())
        assert oracle.contains(triple(SP, SP, SP))
        assert not oracle.contains(triple("a", "p", "b"))

    def test_deeply_nested_path_expressions(self):
        text = "(" * 30 + "p" + ")" * 30
        expr = parse_path(text)
        from repro.navigation import Pred

        assert expr == Pred(URI("p"))

    def test_long_chain_parse(self):
        text = "/".join(["p"] * 200)
        expr = parse_path(text)
        # Evaluates without recursion issues on a small graph.
        from repro.navigation import evaluate_path

        assert evaluate_path(expr, RDFGraph([triple("a", "p", "b")])) == frozenset()
