"""Tests for tableau/query construction (Definition 4.1, Note 4.2)."""

import pytest

from repro.core import BNode, Literal, RDFGraph, Triple, URI, Variable, triple
from repro.query import PatternGraph, Query, Tableau, head_body_query, pattern


class TestPattern:
    def test_question_mark_strings_become_variables(self):
        t = pattern("?X", "p", "?Y")
        assert t == Triple(Variable("X"), URI("p"), Variable("Y"))

    def test_plain_strings_become_uris(self):
        assert pattern("a", "p", "b") == Triple(URI("a"), URI("p"), URI("b"))

    def test_explicit_terms_kept(self):
        t = pattern(BNode("N"), "p", Literal("l"))
        assert t.s == BNode("N") and t.o == Literal("l")

    def test_invalid_pattern_rejected(self):
        with pytest.raises(ValueError):
            pattern(Literal("l"), "p", "b")
        with pytest.raises(ValueError):
            pattern("a", BNode("X"), "b")


class TestPatternGraph:
    def test_variables_collected(self):
        pg = PatternGraph([("?X", "p", "?Y"), ("?Y", "q", "b")])
        assert pg.variables() == {Variable("X"), Variable("Y")}

    def test_bnodes_collected(self):
        pg = PatternGraph([(BNode("N"), "p", "b")])
        assert pg.bnodes() == {BNode("N")}

    def test_deduplication(self):
        pg = PatternGraph([("?X", "p", "b"), ("?X", "p", "b")])
        assert len(pg) == 1

    def test_to_graph_requires_no_variables(self):
        pg = PatternGraph([("a", "p", "b")])
        assert pg.to_graph() == RDFGraph([triple("a", "p", "b")])
        with pytest.raises(ValueError):
            PatternGraph([("?X", "p", "b")]).to_graph()

    def test_equality_and_hash(self):
        pg1 = PatternGraph([("?X", "p", "b")])
        pg2 = PatternGraph([("?X", "p", "b")])
        assert pg1 == pg2
        assert hash(pg1) == hash(pg2)


class TestTableau:
    def test_head_variables_must_occur_in_body(self):
        with pytest.raises(ValueError):
            Tableau(
                head=PatternGraph([("?X", "p", "?Z")]),
                body=PatternGraph([("?X", "p", "?Y")]),
            )

    def test_body_rejects_blank_nodes(self):
        # Note 4.2: a variable plays the same role; bodies ban blanks.
        with pytest.raises(ValueError):
            Tableau(
                head=PatternGraph([("a", "p", "b")]),
                body=PatternGraph([(BNode("N"), "p", "b")]),
            )

    def test_head_may_have_blank_nodes(self):
        t = Tableau(
            head=PatternGraph([(BNode("N"), "creates", "?Y")]),
            body=PatternGraph([("?X", "paints", "?Y")]),
        )
        assert t.head.bnodes() == {BNode("N")}

    def test_str(self):
        t = Tableau(
            head=PatternGraph([("?X", "p", "b")]),
            body=PatternGraph([("?X", "p", "b")]),
        )
        assert "←" in str(t)


class TestQuery:
    def test_constraints_must_be_head_variables(self):
        with pytest.raises(ValueError):
            head_body_query(
                head=[("?X", "p", "b")],
                body=[("?X", "p", "b"), ("?Y", "q", "c")],
                constraints=[Variable("Y")],  # not in the head
            )

    def test_constraints_accepted(self):
        q = head_body_query(
            head=[("?X", "p", "b")],
            body=[("?X", "p", "b")],
            constraints=[Variable("X")],
        )
        assert q.constraints == {Variable("X")}

    def test_default_premise_empty(self):
        q = head_body_query(head=[("?X", "p", "b")], body=[("?X", "p", "b")])
        assert len(q.premise) == 0

    def test_is_simple(self):
        q = head_body_query(head=[("?X", "p", "b")], body=[("?X", "p", "b")])
        assert q.is_simple()
        q2 = head_body_query(head=[("?X", "sc", "b")], body=[("?X", "sc", "b")])
        assert not q2.is_simple()
        q3 = head_body_query(
            head=[("?X", "p", "b")],
            body=[("?X", "p", "b")],
            premise=RDFGraph([triple("son", "sp", "relative")]),
        )
        assert not q3.is_simple()

    def test_str_includes_parts(self):
        q = head_body_query(
            head=[("?X", "p", "b")],
            body=[("?X", "p", "b")],
            premise=RDFGraph([triple("a", "q", "c")]),
            constraints=[Variable("X")],
        )
        text = str(q)
        assert "premise" in text and "constraints" in text
