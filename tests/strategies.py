"""Hypothesis strategies for RDF terms, triples, graphs and queries.

Sizes are kept small: almost every interesting procedure in the library
is NP-hard, and hypothesis shrinking multiplies the number of runs.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core import BNode, Literal, RDFGraph, Triple, URI, Variable
from repro.core.vocabulary import DOM, RANGE, SC, SP, TYPE

_URI_NAMES = ["a", "b", "c", "d", "p", "q", "r"]
_BLANK_NAMES = ["X", "Y", "Z", "W"]


def uris(names=_URI_NAMES):
    return st.sampled_from([URI(n) for n in names])


def bnodes(names=_BLANK_NAMES):
    return st.sampled_from([BNode(n) for n in names])


def rdfs_predicates():
    return st.sampled_from([SP, SC, TYPE, DOM, RANGE])


def subjects():
    return st.one_of(uris(), bnodes())


def objects():
    return st.one_of(uris(), bnodes())


def simple_triples():
    """Triples with no RDFS vocabulary."""
    return st.builds(Triple, subjects(), uris(["p", "q", "r"]), objects())


def ground_simple_triples():
    return st.builds(Triple, uris(), uris(["p", "q", "r"]), uris())


def rdfs_triples():
    """Triples that may use the reserved vocabulary as predicate."""
    return st.builds(
        Triple,
        subjects(),
        st.one_of(uris(["p", "q", "r"]), rdfs_predicates()),
        objects(),
    )


def tame_rdfs_triples():
    """RDFS triples without reserved words in subject/object position.

    This is the well-behaved class most of the paper's positive results
    quantify over (cf. Theorem 3.16's preconditions).
    """
    return rdfs_triples()


def simple_graphs(max_size: int = 6):
    return st.lists(simple_triples(), min_size=0, max_size=max_size).map(RDFGraph)


def nonempty_simple_graphs(max_size: int = 6):
    return st.lists(simple_triples(), min_size=1, max_size=max_size).map(RDFGraph)


def ground_graphs(max_size: int = 6):
    return st.lists(ground_simple_triples(), min_size=0, max_size=max_size).map(
        RDFGraph
    )


def rdfs_graphs(max_size: int = 5):
    return st.lists(rdfs_triples(), min_size=0, max_size=max_size).map(RDFGraph)


def small_rdfs_graphs(max_size: int = 4):
    return st.lists(rdfs_triples(), min_size=0, max_size=max_size).map(RDFGraph)
