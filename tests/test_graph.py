"""Unit tests for :mod:`repro.core.graph` (Section 2.1 operations)."""

import pytest

from repro.core import BNode, Literal, RDFGraph, Triple, URI, graph_from_triples, triple
from repro.core.graph import SKOLEM_PREFIX
from repro.core.vocabulary import SC, SP


def g(*tuples):
    return graph_from_triples(*tuples)


class TestConstruction:
    def test_from_tuples_coerces_strings(self):
        graph = g(("a", "p", "b"))
        assert Triple(URI("a"), URI("p"), URI("b")) in graph

    def test_rejects_ill_formed(self):
        with pytest.raises(ValueError):
            RDFGraph([Triple(Literal("l"), URI("p"), URI("b"))])
        with pytest.raises(ValueError):
            RDFGraph([Triple(URI("a"), BNode("X"), URI("b"))])

    def test_deduplicates(self):
        graph = g(("a", "p", "b"), ("a", "p", "b"))
        assert len(graph) == 1

    def test_empty(self):
        graph = RDFGraph()
        assert len(graph) == 0
        assert not graph
        assert graph.is_ground()
        assert graph.is_simple()


class TestSection21Notions:
    def test_universe(self):
        X = BNode("X")
        graph = RDFGraph([triple("a", "p", X)])
        assert graph.universe() == {URI("a"), URI("p"), X}

    def test_voc_is_universe_cap_uris(self):
        X = BNode("X")
        graph = RDFGraph([triple("a", "p", X)])
        assert graph.voc() == {URI("a"), URI("p")}

    def test_ground(self):
        assert g(("a", "p", "b")).is_ground()
        assert not RDFGraph([triple("a", "p", BNode("X"))]).is_ground()

    def test_simple_definition_2_2(self):
        assert g(("a", "p", "b")).is_simple()
        assert not RDFGraph([triple("a", SC, "b")]).is_simple()
        assert not RDFGraph([triple("a", SP, "b")]).is_simple()
        # sc as a plain node (not predicate) still counts: voc ∩ rdfsV ≠ ∅.
        assert not g(("sc", "p", "b")).is_simple()

    def test_union_shares_blanks(self):
        X = BNode("X")
        g1 = RDFGraph([triple("a", "p", X)])
        g2 = RDFGraph([triple(X, "q", "b")])
        u = g1.union(g2)
        assert len(u) == 2
        assert u.bnodes() == {X}

    def test_merge_renames_clashing_blanks(self):
        X = BNode("X")
        g1 = RDFGraph([triple("a", "p", X)])
        g2 = RDFGraph([triple(X, "q", "b")])
        m = g1.merge(g2)
        assert len(m) == 2
        assert len(m.bnodes()) == 2  # X kept apart from renamed copy

    def test_merge_without_clash_is_union(self):
        g1 = RDFGraph([triple("a", "p", BNode("X"))])
        g2 = RDFGraph([triple(BNode("Y"), "q", "b")])
        assert g1.merge(g2) == g1.union(g2)

    def test_merge_operator(self):
        g1 = RDFGraph([triple("a", "p", BNode("X"))])
        g2 = RDFGraph([triple(BNode("X"), "q", "b")])
        assert (g1 + g2) == g1.merge(g2)
        assert (g1 | g2) == g1.union(g2)

    def test_merge_preserves_isomorphism_type(self):
        from repro.core import isomorphic

        X = BNode("X")
        g1 = RDFGraph([triple("a", "p", X)])
        g2 = RDFGraph([triple(X, "q", "b")])
        # G1 + G2 is the union with an isomorphic copy of G2.
        merged = g1 + g2
        renamed_part = merged - g1
        assert isomorphic(renamed_part, g2)

    def test_subtraction(self):
        graph = g(("a", "p", "b"), ("a", "p", "c"))
        assert len(graph - {triple("a", "p", "b")}) == 1


class TestMatch:
    def setup_method(self):
        self.X = BNode("X")
        self.graph = RDFGraph(
            [
                triple("a", "p", "b"),
                triple("a", "p", "c"),
                triple("a", "q", "b"),
                triple("d", "p", self.X),
            ]
        )

    def test_by_subject(self):
        assert len(list(self.graph.match(s=URI("a")))) == 3

    def test_by_predicate(self):
        assert len(list(self.graph.match(p=URI("p")))) == 3

    def test_by_object(self):
        assert len(list(self.graph.match(o=URI("b")))) == 2

    def test_by_sp(self):
        assert len(list(self.graph.match(s=URI("a"), p=URI("p")))) == 2

    def test_by_po(self):
        assert len(list(self.graph.match(p=URI("p"), o=URI("b")))) == 1

    def test_by_so(self):
        assert len(list(self.graph.match(s=URI("a"), o=URI("b")))) == 2

    def test_exact(self):
        assert len(list(self.graph.match(URI("a"), URI("p"), URI("b")))) == 1
        assert len(list(self.graph.match(URI("a"), URI("p"), URI("z")))) == 0

    def test_wildcard_all(self):
        assert len(list(self.graph.match())) == 4

    def test_count(self):
        assert self.graph.count(s=URI("a")) == 3
        assert self.graph.count(p=URI("q")) == 1
        assert self.graph.count() == 4

    def test_match_missing_term(self):
        assert list(self.graph.match(s=URI("zzz"))) == []


class TestLazyIndexInvalidation:
    """The lazy ``_by_object``/``_by_so`` builds must not serve stale
    answers after the triple set is mutated in place (regression: a
    snapshot built before the mutation used to survive it, because the
    cache slot was only checked for ``None``)."""

    def _mutate(self, graph, new_triples):
        object.__setattr__(graph, "_triples", frozenset(new_triples))

    def test_object_index_rebuilds_after_mutation(self):
        graph = g(("a", "p", "b"), ("c", "p", "b"))
        # Force the lazy object index into existence, then mutate.
        assert graph.count(o=URI("b")) == 2
        self._mutate(graph, set(graph.triples) | {triple("d", "q", "b")})
        assert graph.count(o=URI("b")) == 3
        assert {t.s for t in graph.match(o=URI("b"))} == {
            URI("a"), URI("c"), URI("d"),
        }

    def test_so_index_rebuilds_after_mutation(self):
        graph = g(("a", "p", "b"), ("a", "q", "b"))
        assert graph.count(s=URI("a"), o=URI("b")) == 2
        self._mutate(graph, set(graph.triples) - {triple("a", "q", "b")})
        assert graph.count(s=URI("a"), o=URI("b")) == 1
        assert [t.p for t in graph.match(s=URI("a"), o=URI("b"))] == [URI("p")]

    def test_core_indexes_rebuild_after_mutation(self):
        graph = g(("a", "p", "b"))
        assert graph.count(s=URI("a")) == 1
        assert graph.universe() == {URI("a"), URI("p"), URI("b")}
        self._mutate(graph, {triple("x", "y", "z")})
        assert graph.count(s=URI("a")) == 0
        assert graph.count(s=URI("x")) == 1
        assert graph.universe() == {URI("x"), URI("y"), URI("z")}
        assert graph.predicates() == {URI("y")}


class TestSkolemization:
    def test_roundtrip(self):
        X = BNode("X")
        graph = RDFGraph([triple("a", "p", X), triple(X, "q", "b")])
        sk, inverse = graph.skolemize()
        assert sk.is_ground()
        assert RDFGraph.unskolemize(sk, inverse) == graph

    def test_skolem_constants_have_prefix(self):
        graph = RDFGraph([triple("a", "p", BNode("X"))])
        sk, _ = graph.skolemize()
        objs = [t.o for t in sk]
        assert objs[0].value == SKOLEM_PREFIX + "X"

    def test_unskolemize_drops_blank_predicates(self):
        # A triple whose predicate is a Skolem constant must be dropped,
        # as Section 3.1 prescribes.
        sk_p = URI(SKOLEM_PREFIX + "X")
        graph = RDFGraph([Triple(URI("a"), sk_p, URI("b"))])
        restored = RDFGraph.unskolemize(graph, {sk_p: BNode("X")})
        assert len(restored) == 0

    def test_ground_graph_unchanged(self):
        graph = g(("a", "p", "b"))
        sk, inverse = graph.skolemize()
        assert sk == graph
        assert inverse == {}


class TestBlankCycles:
    def test_no_blanks_no_cycle(self):
        assert not g(("a", "p", "b"), ("b", "p", "a")).has_blank_cycle()

    def test_ground_cycle_not_blank_cycle(self):
        # Cycle through URIs only: not induced by blank nodes.
        assert not g(("a", "p", "b"), ("b", "p", "c"), ("c", "p", "a")).has_blank_cycle()

    def test_blank_triangle(self):
        X, Y, Z = BNode("X"), BNode("Y"), BNode("Z")
        graph = RDFGraph(
            [triple(X, "p", Y), triple(Y, "p", Z), triple(Z, "p", X)]
        )
        assert graph.has_blank_cycle()

    def test_blank_chain_acyclic(self):
        X, Y, Z = BNode("X"), BNode("Y"), BNode("Z")
        graph = RDFGraph([triple(X, "p", Y), triple(Y, "p", Z)])
        assert not graph.has_blank_cycle()

    def test_cycle_broken_by_uri(self):
        # A cycle whose path passes through a URI is not blank-induced.
        X, Y = BNode("X"), BNode("Y")
        graph = RDFGraph(
            [triple(X, "p", Y), triple(Y, "p", "u"), triple("u", "p", X)]
        )
        assert not graph.has_blank_cycle()

    def test_self_loop_on_blank(self):
        X = BNode("X")
        assert RDFGraph([triple(X, "p", X)]).has_blank_cycle()

    def test_parallel_blank_edges_count_as_cycle(self):
        X, Y = BNode("X"), BNode("Y")
        graph = RDFGraph([triple(X, "p", Y), triple(X, "q", Y)])
        assert graph.has_blank_cycle()

    def test_undirected_reading(self):
        # Opposite orientations between the same pair: still a cycle.
        X, Y = BNode("X"), BNode("Y")
        graph = RDFGraph([triple(X, "p", Y), triple(Y, "q", X)])
        assert graph.has_blank_cycle()


class TestMisc:
    def test_sorted_triples_deterministic(self):
        graph = g(("b", "p", "c"), ("a", "p", "c"))
        assert [str(t.s) for t in graph.sorted_triples()] == ["a", "b"]

    def test_str(self):
        assert str(g(("a", "p", "b"))) == "{(a, p, b)}"

    def test_rename_bnodes(self):
        X, Y = BNode("X"), BNode("Y")
        graph = RDFGraph([triple("a", "p", X)])
        renamed = graph.rename_bnodes({X: Y})
        assert renamed == RDFGraph([triple("a", "p", Y)])

    def test_map_terms_drops_invalid(self):
        graph = g(("a", "p", "b"))

        def to_literal(term):
            return Literal(term.value) if term == URI("a") else term

        assert len(graph.map_terms(to_literal)) == 0

    def test_subjects_predicates_objects(self):
        graph = g(("a", "p", "b"))
        assert graph.subjects() == {URI("a")}
        assert graph.predicates() == {URI("p")}
        assert graph.objects() == {URI("b")}

    def test_hash_equality(self):
        assert hash(g(("a", "p", "b"))) == hash(g(("a", "p", "b")))
        assert g(("a", "p", "b")) == g(("a", "p", "b"))
