"""The matching planner: agreement with the naive solver, routing, determinism.

The planner (:mod:`repro.core.planner`) replaced the single backtracking
solver behind every decision procedure; these tests pin that the rewrite
changed performance, not semantics:

* full enumeration agreement with the retained naive solver on random
  simple and RDFS graphs, including blank-cyclic patterns that must fall
  back to backtracking;
* the decisions built on top — entailment, leanness, cores — agree with
  their naive-solver counterparts;
* strategy routing: tree-shaped blank components go to ``semijoin``,
  cyclic ones to ``backtrack``;
* enumeration order is deterministic in-process, across runs (different
  ``PYTHONHASHSEED``), and independent of pattern input order.
"""

import os
import subprocess
import sys
from pathlib import Path

from hypothesis import HealthCheck, given, settings

from repro.core import BNode, RDFGraph, Triple, URI, explain, isomorphic
from repro.core.homomorphism import (
    find_map_into_subgraph,
    find_proper_endomorphism,
    find_proper_endomorphism_naive,
    iter_assignments,
    iter_assignments_naive,
)
from repro.core.planner import (
    BACKTRACK,
    SEMIJOIN,
    boolean_match_acyclic,
)
from repro.minimize import core, is_lean
from repro.semantics import closure, simple_entails

from .strategies import nonempty_simple_graphs, rdfs_graphs, simple_graphs

COMMON = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _assignment_set(iterator):
    return {frozenset(a.items()) for a in iterator}


def _blank_triangle():
    x, y, z = BNode("tx"), BNode("ty"), BNode("tz")
    p = URI("p")
    return [Triple(x, p, y), Triple(y, p, z), Triple(z, p, x)]


def _blank_chain(n):
    p = URI("p")
    nodes = [BNode(f"c{i}") for i in range(n + 1)]
    return [Triple(nodes[i], p, nodes[i + 1]) for i in range(n)]


def _naive_core(graph):
    current = graph
    while True:
        mu = find_proper_endomorphism_naive(current)
        if mu is None:
            return current
        current = mu.apply_graph(current)


class TestEnumerationAgreesWithNaive:
    @settings(**COMMON)
    @given(simple_graphs(max_size=4), simple_graphs(max_size=6))
    def test_simple_patterns(self, pattern, target):
        planner = _assignment_set(iter_assignments(list(pattern), target))
        naive = _assignment_set(iter_assignments_naive(list(pattern), target))
        assert planner == naive

    @settings(**COMMON)
    @given(rdfs_graphs(max_size=4), rdfs_graphs(max_size=5))
    def test_rdfs_patterns(self, pattern, target):
        planner = _assignment_set(iter_assignments(list(pattern), target))
        naive = _assignment_set(iter_assignments_naive(list(pattern), target))
        assert planner == naive

    @settings(**COMMON)
    @given(simple_graphs(max_size=6))
    def test_blank_cyclic_pattern_falls_back_and_agrees(self, target):
        pattern = _blank_triangle()
        strategies = explain(pattern, target).strategies()
        assert all(s == BACKTRACK for s in strategies if s != "ground")
        planner = _assignment_set(iter_assignments(pattern, target))
        naive = _assignment_set(iter_assignments_naive(pattern, target))
        assert planner == naive

    @settings(**COMMON)
    @given(nonempty_simple_graphs(max_size=5))
    def test_excluded_triple_search_agrees(self, graph):
        for t in graph.sorted_triples():
            if t.is_ground():
                continue
            via_planner = find_map_into_subgraph(graph, t)
            naive_any = any(
                True
                for _ in iter_assignments_naive(list(graph), graph - {t})
            )
            assert (via_planner is not None) == naive_any
            if via_planner is not None:
                assert t not in via_planner.apply_graph(graph)


class TestDecisionsAgreeWithNaive:
    @settings(**COMMON)
    @given(simple_graphs(max_size=4), simple_graphs(max_size=5))
    def test_simple_entailment(self, g2, g1):
        naive = any(True for _ in iter_assignments_naive(list(g2), g1))
        assert simple_entails(g1, g2) == naive

    @settings(**COMMON)
    @given(rdfs_graphs(max_size=3), rdfs_graphs(max_size=3))
    def test_rdfs_entailment(self, g2, g1):
        target = closure(g1)
        naive = any(True for _ in iter_assignments_naive(list(g2), target))
        planner = any(True for _ in iter_assignments(list(g2), target))
        assert planner == naive

    @settings(**COMMON)
    @given(simple_graphs(max_size=5))
    def test_leanness(self, graph):
        naive = find_proper_endomorphism_naive(graph) is None
        assert is_lean(graph) == naive
        witness = find_proper_endomorphism(graph)
        if witness is not None:
            image = witness.apply_graph(graph)
            assert image.issubgraph(graph) and image != graph

    @settings(**COMMON)
    @given(simple_graphs(max_size=5))
    def test_core(self, graph):
        assert isomorphic(core(graph), _naive_core(graph))


class TestStrategyRouting:
    def test_chain_routes_to_semijoin(self):
        target = RDFGraph(
            Triple(URI(f"n{i}"), URI("p"), URI(f"n{i+1}")) for i in range(6)
        )
        plan = explain(_blank_chain(4), target)
        assert plan.strategies() == (SEMIJOIN,)
        assert "semijoin" in plan.describe()

    def test_triangle_routes_to_backtrack(self):
        target = RDFGraph(
            Triple(URI(f"n{i}"), URI("p"), URI(f"n{(i+1) % 3}"))
            for i in range(3)
        )
        plan = explain(_blank_triangle(), target)
        assert plan.strategies() == (BACKTRACK,)

    def test_parallel_edges_route_to_backtrack(self):
        # Two triples over the same blank pair: a length-2 blank cycle.
        x, y = BNode("x"), BNode("y")
        pattern = [Triple(x, URI("p"), y), Triple(x, URI("q"), y)]
        assert RDFGraph(pattern).has_blank_cycle()
        target = RDFGraph(
            [Triple(URI("a"), URI("p"), URI("b")),
             Triple(URI("a"), URI("q"), URI("b"))]
        )
        plan = explain(pattern, target)
        assert plan.strategies() == (BACKTRACK,)
        assert boolean_match_acyclic(pattern, target) is None

    def test_components_split_on_shared_blanks(self):
        x, y = BNode("x"), BNode("y")
        pattern = [
            Triple(x, URI("p"), URI("a")),
            Triple(y, URI("p"), URI("b")),
        ]
        target = RDFGraph(
            [Triple(URI("s"), URI("p"), URI("a")),
             Triple(URI("s"), URI("p"), URI("b"))]
        )
        plan = explain(pattern, target)
        assert len(plan.components) == 2

    @settings(**COMMON)
    @given(simple_graphs(max_size=4), simple_graphs(max_size=5))
    def test_boolean_acyclic_matches_entailment_when_it_answers(
        self, g2, g1
    ):
        verdict = boolean_match_acyclic(list(g2), g1)
        if verdict is not None:
            assert verdict == simple_entails(g1, g2)


class TestDeterministicEnumeration:
    def test_same_order_within_process(self):
        target = RDFGraph(
            Triple(URI(f"s{i}"), URI("p"), URI(f"o{i % 3}")) for i in range(9)
        )
        pattern = [Triple(BNode("x"), URI("p"), BNode("y"))]
        first = list(iter_assignments(pattern, target))
        second = list(iter_assignments(pattern, target))
        assert first == second

    def test_order_independent_of_pattern_order(self):
        target = RDFGraph(
            Triple(URI(f"s{i}"), URI("p"), URI(f"o{i % 3}")) for i in range(9)
        )
        pattern = _blank_chain(3)
        forward = list(iter_assignments(pattern, target))
        backward = list(iter_assignments(list(reversed(pattern)), target))
        assert forward == backward

    def test_same_order_across_runs_with_different_hash_seeds(self):
        # String hash randomization shuffles set/dict iteration between
        # interpreter runs; the planner must not let that leak into the
        # enumeration order (sort_key ordering, never hash ordering).
        script = (
            "from repro.core import BNode, RDFGraph, Triple, URI\n"
            "from repro.core.homomorphism import iter_assignments\n"
            "target = RDFGraph(Triple(URI('s%d' % i), URI('p'),"
            " URI('o%d' % (i % 4))) for i in range(12))\n"
            "x, y, z = BNode('x'), BNode('y'), BNode('z')\n"
            "pattern = [Triple(x, URI('p'), y), Triple(z, URI('p'), y)]\n"
            "for a in iter_assignments(pattern, target):\n"
            "    print(sorted((k.value, v.value) for k, v in a.items()))\n"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        outputs = []
        for seed in ("0", "1", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=src)
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1] == outputs[2]
        assert outputs[0].strip()  # the enumeration is non-empty
