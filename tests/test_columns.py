"""Property tests for the sorted-run columnar layer (repro.core.columns).

The arrays kernel is only admissible if the columnar substrate is
*observationally a set*: every range lookup, merge and join over the
flat columns must agree with the naive nested-loop/set-algebra answer
over the same tuples.  Hypothesis drives random row sets — including
IDs in the reserved-vocabulary band and the BNode/Literal high bands —
through every operation, and random wild graphs (vocabulary in
subject/object positions, literal objects) through the three closure
kernels, which must agree triple-for-triple.
"""

from bisect import bisect_left, bisect_right
from importlib import import_module

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import BNode, Literal, RDFGraph, Triple, URI
from repro.core.columns import (
    SortedRuns,
    dedup_sorted,
    gallop_left,
    gallop_right,
    merge_diff_sorted,
    merge_join_pairs,
    merge_union_sorted,
)
from repro.core.interning import BNODE_BASE, LITERAL_BASE
from repro.core.vocabulary import DOM, RANGE, SC, SP, TYPE
from repro.semantics.closure import (
    rdfs_closure_arrays,
    rdfs_closure_boxed,
    rdfs_closure_encoded,
)

from .strategies import rdfs_graphs

COMMON = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: ID pool straddling all three kind bands (URI / BNode / Literal) plus
#: the pinned vocabulary range [0, 5) — the regions whose boundaries the
#: kernels' range checks dispatch on.
_IDS = st.sampled_from(
    [0, 1, 2, 3, 4, 5, 6, 9, 17, BNODE_BASE, BNODE_BASE + 3,
     LITERAL_BASE, LITERAL_BASE + 7]
)


def encoded_rows(max_size: int = 12):
    return st.lists(st.tuples(_IDS, _IDS, _IDS), min_size=0, max_size=max_size)


def sorted_unique(max_size: int = 12):
    return st.lists(
        st.integers(min_value=0, max_value=30), max_size=max_size
    ).map(lambda xs: sorted(set(xs)))


# Wild term pools (same shape as tests/test_interning.py): reserved
# vocabulary in subject/object position, literal objects.
_SUBJECTS = [URI("a"), URI("b"), URI("p"), BNode("X"), BNode("Y"), SP, SC, TYPE]
_PREDICATES = [URI("p"), URI("q"), URI("a"), SP, SC, TYPE, DOM, RANGE]
_OBJECTS = [URI("a"), URI("c"), BNode("Y"), BNode("Z"), Literal("v"), SC, DOM]


def wild_graphs(max_size: int = 5):
    triples = st.builds(
        Triple,
        st.sampled_from(_SUBJECTS),
        st.sampled_from(_PREDICATES),
        st.sampled_from(_OBJECTS),
    )
    return st.lists(triples, min_size=0, max_size=max_size).map(RDFGraph)


class TestGallop:
    @settings(**COMMON)
    @given(sorted_unique(max_size=20), st.integers(min_value=-2, max_value=35))
    def test_agrees_with_bisect(self, col, key):
        n = len(col)
        assert gallop_left(col, key, 0, n) == bisect_left(col, key)
        assert gallop_right(col, key, 0, n) == bisect_right(col, key)

    @settings(**COMMON)
    @given(
        st.lists(st.integers(min_value=0, max_value=20), min_size=1,
                 max_size=20).map(sorted),
        st.integers(min_value=0, max_value=20),
    )
    def test_windowed_search(self, col, key):
        # Sub-window [lo, hi) searches must match bisect on the slice.
        n = len(col)
        lo, hi = n // 3, n - n // 4
        assert gallop_left(col, key, lo, hi) == lo + bisect_left(col[lo:hi], key)
        assert gallop_right(col, key, lo, hi) == lo + bisect_right(col[lo:hi], key)


class TestMergeAlgebra:
    @settings(**COMMON)
    @given(st.lists(st.integers(0, 15)).map(sorted))
    def test_dedup_sorted(self, xs):
        assert dedup_sorted(xs) == sorted(set(xs))

    @settings(**COMMON)
    @given(
        st.sets(st.integers(0, 15)).map(sorted),
        st.sets(st.integers(0, 15)).map(sorted),
    )
    def test_union_and_diff_agree_with_sets(self, a, b):
        assert merge_union_sorted(a, b) == sorted(set(a) | set(b))
        assert merge_diff_sorted(a, b) == sorted(set(a) - set(b))

    @settings(**COMMON)
    @given(
        st.lists(st.integers(0, 10)).map(sorted),  # duplicates allowed
        st.sets(st.integers(0, 10)).map(sorted),
    )
    def test_diff_drops_duplicates_in_left(self, a, b):
        assert merge_diff_sorted(a, b) == sorted(set(a) - set(b))

    @settings(**COMMON)
    @given(
        st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6))).map(sorted),
        st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6))).map(sorted),
    )
    def test_merge_join_agrees_with_nested_loop(self, left, right):
        out = []
        tallies = {}
        merge_join_pairs(left, right, out, tallies)
        naive = [
            (x, y) for k, x in left for k2, y in right if k == k2
        ]
        assert sorted(out) == sorted(naive)
        assert tallies.get("emits", 0) == len(naive)


class TestSortedRuns:
    @settings(**COMMON)
    @given(encoded_rows())
    def test_round_trip_vs_set(self, rows):
        rel = SortedRuns.from_rows(rows)
        assert rel.rows() == sorted(set(rows))
        assert len(rel) == len(set(rows))
        assert list(rel) == sorted(set(rows))
        for r in rows:
            assert r in rel
        assert (99, 99, 99) not in rel

    @settings(**COMMON)
    @given(encoded_rows(), encoded_rows())
    def test_set_algebra_vs_sets(self, a, b):
        ra, rb = SortedRuns.from_rows(a), SortedRuns.from_rows(b)
        sa, sb = set(a), set(b)
        assert ra.union(rb).rows() == sorted(sa | sb)
        assert ra.difference(rb).rows() == sorted(sa - sb)
        # new_rows: batch − self, batch may repeat rows.
        batch = sorted(b + b)
        assert ra.new_rows(batch) == sorted(sb - sa)

    @settings(**COMMON)
    @given(encoded_rows(), st.tuples(_IDS, _IDS, _IDS))
    def test_match_range_vs_nested_loop(self, rows, probe):
        rel = SortedRuns.from_rows(rows)
        uniq = set(map(tuple, rows))
        s, p, o = probe
        for pattern in [
            (None, None, None),
            (s, None, None),
            (None, p, None),
            (None, None, o),
            (s, p, None),
            (None, p, o),
            (s, None, o),
            (s, p, o),
        ]:
            expect = {
                r for r in uniq
                if all(k is None or r[i] == k for i, k in enumerate(pattern))
            }
            assert set(rel.match_range(*pattern)) == expect

    @settings(**COMMON)
    @given(encoded_rows())
    def test_order_views_agree(self, rows):
        rel = SortedRuns.from_rows(rows)
        uniq = set(map(tuple, rows))
        spo = {(a, b, c) for a, b, c in zip(rel.spo.c0, rel.spo.c1, rel.spo.c2)}
        pos = {(c, a, b) for a, b, c in zip(rel.pos.c0, rel.pos.c1, rel.pos.c2)}
        osp = {(b, c, a) for a, b, c in zip(rel.osp.c0, rel.osp.c1, rel.osp.c2)}
        assert spo == pos == osp == uniq
        # groups() tiles each view into maximal constant-key runs.
        for view in (rel.spo, rel.pos, rel.osp):
            tiles = list(view.groups())
            assert [k for k, _, _ in tiles] == sorted(set(view.c0))
            assert all(
                set(view.c0[lo:hi]) == {k} for k, lo, hi in tiles
            )


class TestClosureKernelParity:
    @settings(**COMMON)
    @given(wild_graphs())
    def test_three_way_equality_on_wild_graphs(self, g):
        arrays = set(rdfs_closure_arrays(g))
        assert arrays == set(rdfs_closure_encoded(g))
        assert arrays == set(rdfs_closure_boxed(g))

    @settings(**COMMON)
    @given(rdfs_graphs())
    def test_three_way_equality_on_tame_graphs(self, g):
        arrays = set(rdfs_closure_arrays(g))
        assert arrays == set(rdfs_closure_encoded(g))
        assert arrays == set(rdfs_closure_boxed(g))

    @settings(**COMMON)
    @given(wild_graphs())
    def test_arrays_result_is_well_formed(self, g):
        closed = rdfs_closure_arrays(g)
        # _from_trusted skips validation; every row must still be a
        # well-formed Triple (no literal subjects, URI predicates).
        for t in closed:
            assert not isinstance(t.s, Literal)
            assert isinstance(t.p, URI)

    def test_env_switch_selects_kernel(self, monkeypatch):
        mod = import_module("repro.semantics.closure")

        for name in ("arrays", "encoded", "boxed", "bogus"):
            monkeypatch.setenv("REPRO_CLOSURE_KERNEL", name)
            expected = name if name in mod.KERNEL_DISPATCH else "arrays"
            assert mod.active_closure_kernel() == expected
        monkeypatch.delenv("REPRO_CLOSURE_KERNEL")
        assert mod.active_closure_kernel() == "arrays"

    def test_dispatch_counts_increment(self, monkeypatch):
        mod = import_module("repro.semantics.closure")

        g = RDFGraph([Triple(URI("a"), SP, URI("b"))])
        for name in ("arrays", "encoded", "boxed"):
            monkeypatch.setenv("REPRO_CLOSURE_KERNEL", name)
            before = mod.KERNEL_DISPATCH[name]
            mod.rdfs_closure(g)
            assert mod.KERNEL_DISPATCH[name] == before + 1
