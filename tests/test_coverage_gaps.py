"""Targeted tests for branches the main suites touch only lightly."""

import pytest

from repro.core import BNode, Literal, RDFGraph, Triple, URI, Variable, triple
from repro.core.vocabulary import DOM, RANGE, SC, SP, TYPE


class TestClosureOracleGenericPredicates:
    def test_lifted_ordinary_triple_membership(self):
        from repro.semantics import ClosureOracle

        g = RDFGraph(
            [
                triple("narrow", SP, "mid"),
                triple("mid", SP, "wide"),
                triple("x", "narrow", "y"),
            ]
        )
        oracle = ClosureOracle(g)
        assert oracle.contains(triple("x", "mid", "y"))
        assert oracle.contains(triple("x", "wide", "y"))
        assert not oracle.contains(triple("y", "wide", "x"))
        assert not oracle.contains(triple("x", "narrow2", "y"))

    def test_dom_range_triples_never_derived(self):
        from repro.semantics import ClosureOracle

        g = RDFGraph([triple("p", DOM, "c"), triple("q", SP, "p")])
        oracle = ClosureOracle(g)
        assert not oracle.contains(triple("q", DOM, "c"))  # dom not inherited


class TestProofEdgeCases:
    def test_multi_step_existential_sequence(self):
        """A hand-built proof with an existential step in the middle."""
        from repro.core import Map
        from repro.semantics.proof import ExistentialStep, Proof, RuleStep
        from repro.semantics.rules import RULE_4, RuleInstantiation

        g = RDFGraph([triple("a", SC, "b"), triple("b", SC, "c")])
        inst = RuleInstantiation(
            rule=RULE_4,
            assignment=(
                (Variable("A"), URI("a")),
                (Variable("B"), URI("b")),
                (Variable("C"), URI("c")),
            ),
        )
        after_rule = g.union(RDFGraph([triple("a", SC, "c")]))
        X = BNode("X")
        weaker = RDFGraph([triple("a", SC, X)])
        proof = Proof(
            premise=g,
            conclusion=weaker,
            steps=(
                RuleStep(inst),
                ExistentialStep(result=weaker, witness=Map({X: URI("c")})),
            ),
        )
        assert proof.verify()

    def test_existential_step_with_invalid_image_graph(self):
        from repro.core import Map
        from repro.semantics.proof import ExistentialStep

        g = RDFGraph([triple("a", "p", "b")])
        target = RDFGraph([triple(BNode("X"), "p", "b")])
        step = ExistentialStep(result=target, witness=Map({BNode("X"): URI("zzz")}))
        assert step.apply(g) is None


class TestStoreCornerCases:
    def test_query_with_merge_semantics(self):
        from repro.query import head_body_query
        from repro.store import TripleStore

        store = TripleStore()
        X = BNode("X")
        store.add(triple(X, "p", "a"))
        store.add(triple(X, "p", "b"))
        q = head_body_query(head=[("?N", "f", "?V")], body=[("?N", "p", "?V")])
        union = store.query(q, semantics="union")
        merge = store.query(q, semantics="merge")
        assert len(union.bnodes()) == 1
        assert len(merge.bnodes()) == 2

    def test_save_empty_store(self, tmp_path):
        from repro.store import TripleStore

        TripleStore().save(tmp_path)
        loaded = TripleStore.load(tmp_path)
        assert len(loaded) == 0

    def test_entails_before_any_materialization(self):
        from repro.store import TripleStore

        store = TripleStore()
        store.add(triple("a", SC, "b"))
        # First entails() call must materialize lazily.
        assert store.entails(triple("a", SC, "b"))
        assert store.stats["recomputed"] == 1

    def test_incremental_path_used_after_lazy_materialization(self):
        from repro.store import TripleStore

        store = TripleStore()
        store.add(triple("a", SC, "b"))
        store.entails(triple("a", SC, "b"))
        store.add(triple("b", SC, "c"))
        assert store.stats["incremental_insert"] == 1
        assert store.entails(triple("a", SC, "c"))


class TestUnionEdgeCases:
    def test_right_union_member_with_premise_rejected(self):
        from repro.query import UnionQuery, head_body_query, union_contained_entailment

        with_premise = head_body_query(
            head=[("?X", "sel", "?X")],
            body=[("?X", "p", "?Y")],
            premise=RDFGraph([triple("a", "t", "s")]),
        )
        plain = head_body_query(head=[("?X", "sel", "?X")], body=[("?X", "p", "?Y")])
        union = UnionQuery.of(with_premise, plain)
        with pytest.raises(NotImplementedError):
            union_contained_entailment(plain, union)

    def test_left_premise_expands_before_union_test(self):
        from repro.query import UnionQuery, head_body_query, union_contained_entailment

        q = head_body_query(
            head=[("?X", "sel", "?X")],
            body=[("?X", "q", "?Y"), ("?Y", "t", "s")],
            premise=RDFGraph([triple("a", "t", "s")]),
        )
        wide = head_body_query(head=[("?X", "sel", "?X")], body=[("?X", "q", "?Y")])
        union = UnionQuery.of(wide)
        assert union_contained_entailment(q, union)


class TestPremiseEliminationWithConstraints:
    def test_constraint_discharged_by_ground_binding(self):
        from repro.query import answer_union, head_body_query, premise_elimination

        q = head_body_query(
            head=[("?X", "sel", "?Y")],
            body=[("?X", "q", "?Y"), ("?Y", "t", "s")],
            premise=RDFGraph([triple("a", "t", "s")]),
            constraints=[Variable("Y")],
        )
        members = premise_elimination(q)
        # The member binding ?Y → a discharges the constraint.
        discharged = [m for m in members if not m.constraints]
        assert discharged
        # Answer equivalence still holds on a panel.
        for d in (
            RDFGraph([triple("u", "q", "a")]),
            RDFGraph([triple("u", "q", "v"), triple("v", "t", "s")]),
            RDFGraph([triple("u", "q", BNode("W")), triple(BNode("W"), "t", "s")]),
        ):
            expected = answer_union(q, d)
            combined = RDFGraph()
            for m in members:
                combined = combined.union(answer_union(m, d))
            assert combined == expected, str(d)

    def test_blank_binding_of_constrained_variable_drops_member(self):
        from repro.query import head_body_query, premise_elimination

        X = BNode("X")
        q = head_body_query(
            head=[("?Y", "sel", "c")],
            body=[("?Y", "t", "s")],
            premise=RDFGraph([triple(X, "t", "s")]),
            constraints=[Variable("Y")],
        )
        members = premise_elimination(q)
        # No member may have bound ?Y to the premise blank.
        for m in members:
            for t in m.head:
                assert not isinstance(t.s, BNode)


class TestViewsWithMergeSemantics:
    def test_extended_database_merge(self):
        from repro.query import View, ViewCatalog, head_body_query

        d = RDFGraph([triple("a", "p", "b")])
        catalog = ViewCatalog(
            [
                View(
                    name="ex",
                    query=head_body_query(
                        head=[(BNode("N"), "derived", "?X")],
                        body=[("?X", "p", "?Y")],
                    ),
                )
            ]
        )
        extended = catalog.extended_database(d, semantics="merge")
        assert d.issubgraph(extended)
        assert extended.bnodes()


class TestAnswersDeterminism:
    def test_merge_answers_deterministic(self):
        from repro.query import answer_merge, head_body_query

        X = BNode("X")
        d = RDFGraph([triple(X, "p", "a"), triple(X, "p", "b"), triple(X, "q", "c")])
        q = head_body_query(head=[("?N", "f", "?V")], body=[("?N", "?P", "?V")])
        assert answer_merge(q, d) == answer_merge(q, d)

    def test_pre_answers_sorted(self):
        from repro.query import head_body_query, pre_answers

        d = RDFGraph([triple("b", "p", "x"), triple("a", "p", "x")])
        q = head_body_query(head=[("?S", "sel", "x")], body=[("?S", "p", "x")])
        found = pre_answers(q, d)
        rendered = [str(a) for a in found]
        assert rendered == sorted(rendered)


class TestMinimalRepresentationBlankGraphs:
    def test_blank_graph_minimal_representation(self):
        from repro.minimize import minimal_representation
        from repro.semantics import equivalent

        X = BNode("X")
        g = RDFGraph(
            [triple("a", SC, X), triple(X, SC, "c"), triple("a", SC, "c")]
        )
        m = minimal_representation(g)
        assert equivalent(m, g)
        assert len(m) < len(g)


class TestLiteralHandling:
    def test_literals_in_closure(self):
        from repro.semantics import rdfs_closure

        g = RDFGraph(
            [
                triple("name", RANGE, "string-ish"),
                Triple(URI("x"), URI("name"), Literal("Pablo")),
            ]
        )
        closed = rdfs_closure(g)
        # Rule (7) would type the literal, but literals cannot be
        # subjects; no ill-formed triple may appear.
        assert all(t.is_valid_rdf() for t in closed)
        assert not any(
            isinstance(t.s, Literal) for t in closed
        )

    def test_literal_dom_typing_works_on_subject(self):
        from repro.semantics import rdfs_closure

        g = RDFGraph(
            [
                triple("name", DOM, "person"),
                Triple(URI("x"), URI("name"), Literal("Pablo")),
            ]
        )
        assert triple("x", TYPE, "person") in rdfs_closure(g)

    def test_empty_literal_roundtrip(self):
        from repro.rdfio import parse_ntriples, serialize_ntriples

        g = RDFGraph([Triple(URI("a"), URI("p"), Literal(""))])
        assert parse_ntriples(serialize_ntriples(g)) == g
