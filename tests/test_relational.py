"""Tests for the relational substrate (CQs, GYO, Yannakakis)."""

import pytest

from repro.relational import (
    Atom,
    CQVariable,
    ConjunctiveQuery,
    Database,
    Relation,
    Schema,
    build_join_tree,
    evaluate,
    evaluate_acyclic,
    evaluate_boolean,
    evaluate_boolean_acyclic,
    is_acyclic,
    iter_valuations,
    semijoin,
)


def V(name):
    return CQVariable(name)


def triangle_query():
    x, y, z = V("x"), V("y"), V("z")
    return ConjunctiveQuery(
        atoms=(
            Atom("E", (x, y)),
            Atom("E", (y, z)),
            Atom("E", (z, x)),
        )
    )


def chain_query(n):
    atoms = tuple(Atom("E", (V(f"v{i}"), V(f"v{i+1}"))) for i in range(n))
    return ConjunctiveQuery(atoms=atoms)


def path_db(n):
    db = Database()
    for i in range(n):
        db.add("E", (i, i + 1))
    return db


def cycle_db(n):
    db = Database()
    for i in range(n):
        db.add("E", (i, (i + 1) % n))
    return db


class TestSchemaDatabase:
    def test_schema_conflicting_arity_rejected(self):
        s = Schema([Relation("R", 2)])
        with pytest.raises(ValueError):
            s.add(Relation("R", 3))

    def test_relation_arity_positive(self):
        with pytest.raises(ValueError):
            Relation("R", 0)

    def test_database_registers_relations(self):
        db = Database()
        db.add("R", ("a", "b"))
        assert "R" in db.schema
        assert db.schema["R"].arity == 2

    def test_active_domain(self):
        db = Database()
        db.add("R", ("a", "b"))
        db.add("S", ("b", "c", "d"))
        assert db.active_domain() == {"a", "b", "c", "d"}

    def test_size(self):
        db = path_db(3)
        assert db.size() == 3 and len(db) == 3


class TestEvaluation:
    def test_boolean_triangle(self):
        assert evaluate_boolean(triangle_query(), cycle_db(3))
        assert not evaluate_boolean(triangle_query(), cycle_db(4))
        assert not evaluate_boolean(triangle_query(), path_db(5))

    def test_chain_on_path(self):
        assert evaluate_boolean(chain_query(3), path_db(3))
        assert not evaluate_boolean(chain_query(4), path_db(3))

    def test_head_projection(self):
        x, y, z = V("x"), V("y"), V("z")
        q = ConjunctiveQuery(
            atoms=(Atom("E", (x, y)), Atom("E", (y, z))), head=(x, z)
        )
        assert evaluate(q, path_db(2)) == {(0, 2)}

    def test_constants_in_atoms(self):
        x = V("x")
        q = ConjunctiveQuery(atoms=(Atom("E", (0, x)),), head=(x,))
        assert evaluate(q, path_db(3)) == {(1,)}

    def test_repeated_variable_in_atom(self):
        db = Database()
        db.add("E", ("a", "a"))
        db.add("E", ("a", "b"))
        x = V("x")
        q = ConjunctiveQuery(atoms=(Atom("E", (x, x)),), head=(x,))
        assert evaluate(q, db) == {("a",)}

    def test_head_var_must_be_in_body(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery(atoms=(Atom("E", (V("x"), V("y"))),), head=(V("z"),))

    def test_iter_valuations_count(self):
        q = chain_query(2)
        assert sum(1 for _ in iter_valuations(q, cycle_db(3))) == 3


class TestAcyclicity:
    def test_chain_acyclic(self):
        assert is_acyclic(chain_query(4))

    def test_triangle_cyclic(self):
        assert not is_acyclic(triangle_query())

    def test_star_acyclic(self):
        atoms = tuple(Atom("E", (V("c"), V(f"x{i}"))) for i in range(4))
        assert is_acyclic(ConjunctiveQuery(atoms=atoms))

    def test_parallel_edges_acyclic(self):
        x, y = V("x"), V("y")
        q = ConjunctiveQuery(atoms=(Atom("E", (x, y)), Atom("F", (x, y))))
        assert is_acyclic(q)

    def test_single_atom_acyclic(self):
        assert is_acyclic(ConjunctiveQuery(atoms=(Atom("E", (V("x"), V("y"))),)))

    def test_join_tree_verifies(self):
        tree = build_join_tree(chain_query(5))
        assert tree is not None
        assert tree.verify()
        assert len(tree.nodes()) == 5

    def test_join_tree_none_for_cyclic(self):
        assert build_join_tree(triangle_query()) is None

    def test_longer_cycle_detected(self):
        atoms = tuple(
            Atom("E", (V(f"v{i}"), V(f"v{(i+1) % 5}"))) for i in range(5)
        )
        assert not is_acyclic(ConjunctiveQuery(atoms=atoms))


class TestYannakakis:
    def test_matches_naive_boolean(self):
        for n in (2, 3, 5):
            q = chain_query(n)
            for db in (path_db(4), cycle_db(3), cycle_db(4)):
                assert evaluate_boolean_acyclic(q, db) == evaluate_boolean(q, db)

    def test_matches_naive_with_head(self):
        x, y, z = V("x"), V("y"), V("z")
        q = ConjunctiveQuery(
            atoms=(Atom("E", (x, y)), Atom("E", (y, z))), head=(x, z)
        )
        for db in (path_db(4), cycle_db(5)):
            assert evaluate_acyclic(q, db) == evaluate(q, db)

    def test_cyclic_query_rejected(self):
        with pytest.raises(ValueError):
            evaluate_boolean_acyclic(triangle_query(), cycle_db(3))

    def test_empty_relation_short_circuits(self):
        q = chain_query(3)
        db = Database()
        db.add("F", ("a", "b"))  # E is empty
        assert not evaluate_boolean_acyclic(q, db)

    def test_semijoin(self):
        left = {(1, 2), (3, 4)}
        right = {(2, "x"), (9, "y")}
        out = semijoin((V("a"), V("b")), left, (V("b"), V("c")), right)
        assert out == {(1, 2)}

    def test_semijoin_no_shared_columns(self):
        left = {(1,), (2,)}
        assert semijoin((V("a"),), left, (V("b"),), {(9,)}) == left
        assert semijoin((V("a"),), left, (V("b"),), set()) == set()

    def test_star_query_with_head(self):
        c = V("c")
        rays = tuple(Atom("E", (c, V(f"x{i}"))) for i in range(3))
        q = ConjunctiveQuery(atoms=rays, head=(c,))
        db = Database()
        for i in range(3):
            db.add("E", ("hub", f"leaf{i}"))
        db.add("E", ("other", "leaf0"))
        # Both centres qualify ("other" reuses leaf0 for every ray —
        # variables may coincide); the two evaluators must agree.
        assert evaluate_acyclic(q, db) == evaluate(q, db) == {("hub",), ("other",)}

    def test_random_agreement(self):
        import random

        rng = random.Random(7)
        for _trial in range(10):
            db = Database()
            for _ in range(12):
                db.add("E", (rng.randrange(4), rng.randrange(4)))
                db.add("F", (rng.randrange(4), rng.randrange(4)))
            # Random acyclic chain mixing E and F.
            atoms = []
            for i in range(3):
                rel = rng.choice(["E", "F"])
                atoms.append(Atom(rel, (V(f"v{i}"), V(f"v{i+1}"))))
            q = ConjunctiveQuery(atoms=tuple(atoms))
            assert evaluate_boolean_acyclic(q, db) == evaluate_boolean(q, db)
