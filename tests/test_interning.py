"""Property tests for the dictionary-encoding layer (repro.core.interning).

The encoded kernels must be *observationally invisible*: whatever runs
over ``(int, int, int)`` rows has to decode to exactly the term-level
result.  Hypothesis drives random graphs — including the wild class
with reserved vocabulary in subject/object positions and literal
objects, which exercises the multi-round closure path — through every
encode/compute/decode boundary.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import BNode, Literal, RDFGraph, Triple, URI, find_map
from repro.core.homomorphism import iter_assignments, iter_assignments_naive
from repro.core.interning import (
    BNODE_BASE,
    LITERAL_BASE,
    SKOLEM_PREFIX,
    VOCAB_SIZE,
    EncodedGraph,
    TermDict,
    is_bnode_id,
    is_literal_id,
    is_uri_id,
    is_vocab_id,
)
from repro.core.terms import Variable, sort_key
from repro.core.vocabulary import DOM, RANGE, SC, SP, TYPE
from repro.semantics import closure as semantic_closure
from repro.semantics.closure import (
    rdfs_closure_boxed,
    rdfs_closure_by_rules,
    rdfs_closure_encoded,
)
from repro.store import TripleStore

from .strategies import rdfs_graphs, simple_graphs

COMMON = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_VOCAB = [SP, SC, TYPE, DOM, RANGE]

#: Term pools that deliberately mix reserved words into subject/object
#: positions and literals into objects — the full RDF triple space.
_SUBJECTS = [URI("a"), URI("b"), URI("p"), BNode("X"), BNode("Y"), SP, SC, TYPE]
_PREDICATES = [URI("p"), URI("q"), URI("a")] + _VOCAB
_OBJECTS = [URI("a"), URI("c"), BNode("Y"), BNode("Z"), Literal("v"), SC, DOM]


def wild_triples():
    return st.builds(
        Triple,
        st.sampled_from(_SUBJECTS),
        st.sampled_from(_PREDICATES),
        st.sampled_from(_OBJECTS),
    )


def wild_graphs(max_size: int = 5):
    return st.lists(wild_triples(), min_size=0, max_size=max_size).map(RDFGraph)


def wild_graphs_without_literals(max_size: int = 5):
    """Wild graphs minus literal objects.

    Literal objects on reserved-vocabulary edges sit outside the class
    on which the repo's three closure engines were ever cross-validated
    (and they do diverge there, in ways that pre-date this layer: the
    rule engine applies (11)/(13) atomically where the staged and
    Datalog engines derive the well-formed half; the staged engines
    skip literal-valued ``dom``/``range`` conclusions).  Cross-engine
    equality is therefore only claimed on the literal-free class; the
    encoded-vs-boxed invariant — what this PR is answerable for — is
    asserted on the full wild class.
    """
    literal_free = st.builds(
        Triple,
        st.sampled_from(_SUBJECTS),
        st.sampled_from(_PREDICATES),
        st.sampled_from([o for o in _OBJECTS if not isinstance(o, Literal)]),
    )
    return st.lists(literal_free, min_size=0, max_size=max_size).map(RDFGraph)


def all_terms():
    return st.sampled_from(_SUBJECTS + _PREDICATES + _OBJECTS)


class TestTermDict:
    @settings(**COMMON)
    @given(wild_graphs())
    def test_round_trip_identity(self, g):
        d = TermDict()
        for t in g:
            assert d.decode_triple(d.encode_triple(t)) == t
        # Decoding is stable across re-encoding (IDs are append-only).
        for t in g:
            row = d.encode_triple(t)
            assert d.lookup_triple(t) == row
            assert d.decode_triple(row) == t

    @settings(**COMMON)
    @given(st.lists(all_terms(), min_size=1, max_size=10))
    def test_kind_ranges_agree_with_isinstance(self, terms):
        d = TermDict()
        for term in terms:
            i = d.encode(term)
            assert is_uri_id(i) == isinstance(term, URI)
            assert is_bnode_id(i) == isinstance(term, BNode)
            assert is_literal_id(i) == isinstance(term, Literal)
            assert is_vocab_id(i) == (term in _VOCAB)
            assert d.decode(i) == term

    def test_vocabulary_is_pinned(self):
        d = TermDict()
        for expected, keyword in enumerate(_VOCAB):
            assert d.encode(keyword) == expected
        assert len(d) == VOCAB_SIZE

    def test_lookup_never_interns(self):
        d = TermDict()
        before = len(d)
        assert d.lookup(URI("never-seen")) is None
        assert d.lookup_triple(Triple(URI("x"), URI("y"), URI("z"))) is None
        assert len(d) == before

    def test_variables_are_rejected(self):
        d = TermDict()
        try:
            d.encode(Variable("v"))
        except TypeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected TypeError for a Variable")

    @settings(**COMMON)
    @given(st.sets(all_terms(), min_size=1, max_size=12))
    def test_sorted_interning_is_order_isomorphic(self, terms):
        ordered = sorted(terms, key=sort_key)
        d = TermDict.from_sorted_terms(ordered)
        ids = [d.lookup(t) for t in ordered]
        assert all(a < b for a, b in zip(ids, ids[1:]))

    @settings(**COMMON)
    @given(wild_graphs(max_size=4))
    def test_skolemize_round_trip(self, g):
        d = TermDict()
        for t in g:
            row = d.encode_triple(t)
            sk = d.skolemize_row(row)
            # Skolem constants are URIs carrying the blank's label.
            for orig, skol in zip(row, sk):
                assert d.unskolemize_id(skol) == orig
                if is_bnode_id(orig):
                    assert is_uri_id(skol)
                    assert d.decode(skol) == URI(
                        SKOLEM_PREFIX + d.decode(orig).value
                    )
                else:
                    assert skol == orig


class TestEncodedGraph:
    @settings(**COMMON)
    @given(wild_graphs())
    def test_decode_round_trip(self, g):
        enc = EncodedGraph.from_graph(g)
        assert set(enc.decode()) == set(g)
        assert enc.count() == len(g)

    @settings(**COMMON)
    @given(wild_graphs(), all_terms(), all_terms(), all_terms())
    def test_match_agrees_with_graph(self, g, s, p, o):
        enc = EncodedGraph.from_graph(g)
        dec = enc.terms.decode_triple
        for pattern in [
            (None, None, None),
            (s, None, None),
            (None, p, None),
            (None, None, o),
            (s, p, None),
            (None, p, o),
            (s, None, o),
            (s, p, o),
        ]:
            expected = set(g.match(*pattern))
            ids = tuple(
                None if term is None else enc.terms.lookup(term)
                for term in pattern
            )
            if any(t is not None and i is None for t, i in zip(pattern, ids)):
                got = set()  # probe term absent from the graph
            else:
                got = {dec(row) for row in enc.match(*ids)}
            assert got == expected


class TestEncodedClosure:
    @settings(**COMMON)
    @given(wild_graphs())
    def test_encoded_equals_boxed(self, g):
        assert set(rdfs_closure_encoded(g)) == set(rdfs_closure_boxed(g))

    @settings(**COMMON)
    @given(wild_graphs_without_literals())
    def test_encoded_equals_boxed_equals_rules(self, g):
        encoded = rdfs_closure_encoded(g)
        assert set(encoded) == set(rdfs_closure_boxed(g))
        assert set(encoded) == set(rdfs_closure_by_rules(g))

    @settings(**COMMON)
    @given(rdfs_graphs())
    def test_encoded_equals_boxed_on_tame_graphs(self, g):
        assert set(rdfs_closure_encoded(g)) == set(rdfs_closure_boxed(g))


class TestEncodedPlanner:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(simple_graphs(max_size=4), simple_graphs(max_size=4))
    def test_assignments_agree_with_naive(self, pattern, target):
        fast = list(iter_assignments(list(pattern), target))
        slow = list(iter_assignments_naive(list(pattern), target))
        key = lambda a: sorted((str(k), str(v)) for k, v in a.items())
        assert sorted(map(key, fast)) == sorted(map(key, slow))

    @settings(**COMMON)
    @given(simple_graphs(max_size=5))
    def test_identity_map_found(self, g):
        assert find_map(g, g) is not None

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(simple_graphs(max_size=4), simple_graphs(max_size=3))
    def test_simple_entailment_agrees_with_naive(self, g1, g2):
        from repro.semantics import simple_entails

        naive = next(iter_assignments_naive(list(g2), g1), None)
        assert simple_entails(g1, g2) == (naive is not None)

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(simple_graphs(max_size=4))
    def test_core_is_lean_retract(self, g):
        from repro.minimize import core, is_lean

        c = core(g)
        assert set(c) <= set(g)
        assert is_lean(c)
        assert find_map(g, c) is not None


class TestStoreAgreement:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(wild_graphs_without_literals(max_size=4))
    def test_store_closure_matches_semantic_closure(self, g):
        store = TripleStore()
        store.add_all(g)
        assert store.closure() == semantic_closure(store.dataset())

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(wild_graphs(max_size=4), wild_triples())
    def test_store_entails_matches_closure_membership(self, g, t):
        store = TripleStore()
        store.add_all(g)
        if not t.bnodes():
            assert store.entails(t) == (t in set(store.closure()))
