"""Tests for path expressions (the paper's future-work extensions)."""

import pytest

from repro.core import BNode, RDFGraph, URI, triple
from repro.core.vocabulary import SC, TYPE
from repro.generators import art_schema
from repro.navigation import (
    Alt,
    Inv,
    Opt,
    PathSyntaxError,
    Plus,
    Pred,
    Seq,
    Star,
    evaluate_path,
    parse_path,
    path_exists,
    reachable_from,
)


def chain_graph(n, predicate="p"):
    return RDFGraph(
        [triple(f"n{i}", predicate, f"n{i+1}") for i in range(n)]
    )


class TestEvaluation:
    def test_single_predicate(self):
        g = chain_graph(2)
        assert evaluate_path(Pred(URI("p")), g) == {
            (URI("n0"), URI("n1")),
            (URI("n1"), URI("n2")),
        }

    def test_sequence(self):
        g = chain_graph(3)
        pairs = evaluate_path(Pred(URI("p")) / Pred(URI("p")), g)
        assert pairs == {(URI("n0"), URI("n2")), (URI("n1"), URI("n3"))}

    def test_alternation(self):
        g = RDFGraph([triple("a", "p", "b"), triple("a", "q", "c")])
        pairs = evaluate_path(Pred(URI("p")) | Pred(URI("q")), g)
        assert pairs == {(URI("a"), URI("b")), (URI("a"), URI("c"))}

    def test_inverse(self):
        g = RDFGraph([triple("a", "p", "b")])
        assert evaluate_path(~Pred(URI("p")), g) == {(URI("b"), URI("a"))}

    def test_plus_transitive(self):
        g = chain_graph(4)
        pairs = evaluate_path(Pred(URI("p")).plus(), g)
        assert (URI("n0"), URI("n4")) in pairs
        assert (URI("n0"), URI("n0")) not in pairs
        assert len(pairs) == 10  # all i < j pairs

    def test_star_reflexive(self):
        g = chain_graph(2)
        pairs = evaluate_path(Pred(URI("p")).star(), g)
        assert (URI("n0"), URI("n0")) in pairs
        assert (URI("p"), URI("p")) in pairs  # every universe node

    def test_opt(self):
        g = RDFGraph([triple("a", "p", "b")])
        pairs = evaluate_path(Pred(URI("p")).opt(), g)
        assert (URI("a"), URI("b")) in pairs
        assert (URI("a"), URI("a")) in pairs

    def test_over_blank_nodes(self):
        X = BNode("X")
        g = RDFGraph([triple("a", "p", X), triple(X, "p", "c")])
        pairs = evaluate_path(Pred(URI("p")).plus(), g)
        assert (URI("a"), URI("c")) in pairs

    def test_rdfs_semantics(self):
        g = art_schema()
        # type/sc* under RDFS: all classes of Picasso.
        expr = Pred(TYPE) / Pred(SC).star()
        with_rdfs = {
            y for x, y in evaluate_path(expr, g, rdfs=True) if x == URI("Picasso")
        }
        assert URI("painter") in with_rdfs
        assert URI("artist") in with_rdfs
        without = {
            y for x, y in evaluate_path(expr, g, rdfs=False) if x == URI("Picasso")
        }
        assert URI("painter") not in without  # no explicit type triple


class TestReachability:
    def test_single_source(self):
        g = chain_graph(5)
        out = reachable_from(Pred(URI("p")).plus(), g, URI("n0"))
        assert out == {URI(f"n{i}") for i in range(1, 6)}

    def test_star_includes_start(self):
        g = chain_graph(3)
        out = reachable_from(Pred(URI("p")).star(), g, URI("n1"))
        assert URI("n1") in out

    def test_matches_pair_semantics(self):
        g = RDFGraph(
            [
                triple("a", "p", "b"),
                triple("b", "q", "c"),
                triple("c", "p", "a"),
                triple("b", "p", "d"),
            ]
        )
        expr = (Pred(URI("p")) | Pred(URI("q"))).plus()
        pairs = evaluate_path(expr, g)
        for start in (URI("a"), URI("b")):
            expected = {y for x, y in pairs if x == start}
            assert reachable_from(expr, g, start) == expected

    def test_inverse_single_source(self):
        g = RDFGraph([triple("a", "p", "b"), triple("c", "p", "b")])
        out = reachable_from(~Pred(URI("p")), g, URI("b"))
        assert out == {URI("a"), URI("c")}

    def test_path_exists(self):
        g = chain_graph(4)
        assert path_exists(Pred(URI("p")).plus(), g, URI("n0"), URI("n4"))
        assert not path_exists(Pred(URI("p")).plus(), g, URI("n4"), URI("n0"))

    def test_general_inverse_fallback(self):
        g = RDFGraph([triple("a", "p", "b"), triple("b", "q", "c")])
        # Inverse of a sequence: needs the pair-semantics fallback.
        expr = Inv(Pred(URI("p")) / Pred(URI("q")))
        assert reachable_from(expr, g, URI("c")) == {URI("a")}


class TestParser:
    def test_simple(self):
        assert parse_path("paints") == Pred(URI("paints"))

    def test_sequence_and_alt_precedence(self):
        # '/' binds tighter than '|'.
        expr = parse_path("a/b|c")
        assert isinstance(expr, Alt)
        assert isinstance(expr.left, Seq)

    def test_postfix(self):
        assert parse_path("p+") == Plus(Pred(URI("p")))
        assert parse_path("p*") == Star(Pred(URI("p")))
        assert parse_path("p?") == Opt(Pred(URI("p")))

    def test_inverse(self):
        assert parse_path("^p") == Inv(Pred(URI("p")))

    def test_parentheses(self):
        expr = parse_path("(a|b)/c")
        assert isinstance(expr, Seq)
        assert isinstance(expr.left, Alt)

    def test_angle_uris(self):
        expr = parse_path("<http://x.org/p>+")
        assert expr == Plus(Pred(URI("http://x.org/p")))

    def test_nested_postfix(self):
        expr = parse_path("(knows|^knows)*")
        assert isinstance(expr, Star)

    def test_errors(self):
        for bad in ("", "a/", "(a", "a)", "|a", "*"):
            with pytest.raises(PathSyntaxError):
                parse_path(bad)

    def test_roundtrip_through_str(self):
        for text in ("a/b", "a|b", "(a/b)+", "^x", "p*"):
            expr = parse_path(text)
            again = parse_path(str(expr))
            assert again == expr


class TestArtSchemaNavigation:
    def test_hierarchy_walk(self):
        g = art_schema()
        out = reachable_from(parse_path("sc+"), g, URI("sculptor"))
        assert out == {URI("artist")}

    def test_creations_of_any_artist_kind(self):
        g = art_schema()
        expr = parse_path("paints|sculpts|creates")
        pairs = evaluate_path(expr, g, rdfs=True)
        assert (URI("Picasso"), URI("Guernica")) in pairs
