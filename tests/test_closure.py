"""Tests for closures (Definitions 2.7/3.5, Lemmas 3.3/3.4, Theorem 3.6)."""

import pytest
from hypothesis import given, settings

from repro.core import BNode, RDFGraph, Triple, URI, isomorphic, triple
from repro.core.vocabulary import DOM, RANGE, RDFS_VOCABULARY, SC, SP, TYPE
from repro.generators import (
    art_schema,
    dom_range_ladder,
    property_fanout,
    random_schema_with_instances,
    sc_chain_with_instance,
    sp_chain,
)
from repro.minimize.naive_closure import naive_closures
from repro.semantics import (
    ClosureOracle,
    closure,
    closure_delta,
    rdfs_closure,
    rdfs_closure_by_rules,
)

from .strategies import rdfs_graphs


class TestFastVsRules:
    """The staged algorithm must agree with the literal rule engine."""

    def test_empty_graph(self):
        assert rdfs_closure(RDFGraph()) == rdfs_closure_by_rules(RDFGraph())
        # Rule (9): the five reserved reflexive sp triples.
        assert rdfs_closure(RDFGraph()) == RDFGraph(
            [triple(p, SP, p) for p in RDFS_VOCABULARY]
        )

    def test_art_schema(self):
        g = art_schema()
        assert rdfs_closure(g) == rdfs_closure_by_rules(g)

    def test_dom_range_ladder(self):
        g = dom_range_ladder(3)
        assert rdfs_closure(g) == rdfs_closure_by_rules(g)

    def test_property_fanout(self):
        g = property_fanout(3, 2)
        assert rdfs_closure(g) == rdfs_closure_by_rules(g)

    def test_reserved_vocabulary_in_object_position(self):
        # A subproperty of sp itself: the pathological case needing a
        # second staging round.
        g = RDFGraph(
            [
                triple("meta", SP, SP),
                triple("a", "meta", "b"),
                triple("b", "meta", "c"),
            ]
        )
        fast = rdfs_closure(g)
        slow = rdfs_closure_by_rules(g)
        assert fast == slow
        # (a, meta, b) lifts to (a, sp, b); with (b, sp, c) transitivity
        # gives (a, sp, c).
        assert triple("a", SP, "b") in fast
        assert triple("a", SP, "c") in fast

    def test_subproperty_of_sc(self):
        g = RDFGraph(
            [
                triple("isa", SP, SC),
                triple("cat", "isa", "animal"),
                triple("x", TYPE, "cat"),
            ]
        )
        fast = rdfs_closure(g)
        assert fast == rdfs_closure_by_rules(g)
        assert triple("cat", SC, "animal") in fast
        assert triple("x", TYPE, "animal") in fast

    def test_subproperty_of_type(self):
        g = RDFGraph(
            [
                triple("instanceof", SP, TYPE),
                triple("x", "instanceof", "c"),
                triple("c", SC, "d"),
            ]
        )
        fast = rdfs_closure(g)
        assert fast == rdfs_closure_by_rules(g)
        assert triple("x", TYPE, "d") in fast

    def test_blank_property_via_dom(self):
        X = BNode("X")
        g = RDFGraph(
            [triple(X, DOM, "c"), triple("q", SP, X), triple("s", "q", "o")]
        )
        fast = rdfs_closure(g)
        assert fast == rdfs_closure_by_rules(g)
        assert triple("s", TYPE, "c") in fast

    @settings(max_examples=40, deadline=None)
    @given(rdfs_graphs(max_size=4))
    def test_random_agreement(self, g):
        assert rdfs_closure(g) == rdfs_closure_by_rules(g)

    def test_random_schemas_agreement(self):
        for seed in range(5):
            g = random_schema_with_instances(4, 3, 4, 6, seed=seed)
            assert rdfs_closure(g) == rdfs_closure_by_rules(g)


class TestClosureProperties:
    def test_contains_original(self):
        g = art_schema()
        assert g.issubgraph(rdfs_closure(g))

    def test_idempotent(self):
        g = art_schema()
        once = rdfs_closure(g)
        assert rdfs_closure(once) == once

    def test_monotone(self):
        g1 = RDFGraph([triple("a", SC, "b")])
        g2 = g1.union(RDFGraph([triple("b", SC, "c")]))
        assert rdfs_closure(g1).issubgraph(rdfs_closure(g2))

    def test_cl_equals_rdfs_cl_theorem_3_6_2(self):
        # cl (Skolemize-close-unskolemize) = RDFS-cl, on blank graphs.
        X = BNode("X")
        g = RDFGraph(
            [triple("a", SC, X), triple(X, SC, "c"), triple("i", TYPE, "a")]
        )
        assert closure(g) == rdfs_closure(g)

    @settings(max_examples=30, deadline=None)
    @given(rdfs_graphs(max_size=4))
    def test_cl_equals_rdfs_cl_random(self, g):
        assert closure(g) == rdfs_closure(g)

    def test_lemma_3_4(self):
        # RDFS-cl(G) = (RDFS-cl(G*))_*.
        X = BNode("X")
        g = RDFGraph([triple("a", SP, X), triple("s", "a", "o")])
        sk, inverse = g.skolemize()
        via_skolem = RDFGraph.unskolemize(rdfs_closure(sk), inverse)
        assert via_skolem == rdfs_closure(g)

    def test_closure_delta(self):
        g = RDFGraph([triple("a", SC, "b"), triple("x", TYPE, "a")])
        delta = closure_delta(g)
        assert triple("x", TYPE, "b") in delta
        assert triple("x", TYPE, "a") not in delta

    def test_quadratic_size_shape(self):
        # |cl(chain of n sp triples)| grows ~ n²/2 (the transitive pairs).
        sizes = {}
        for n in (4, 8, 16):
            sizes[n] = len(rdfs_closure(sp_chain(n)))
        # Doubling n should roughly quadruple the derived part.
        growth1 = sizes[8] / sizes[4]
        growth2 = sizes[16] / sizes[8]
        assert growth1 > 2.0
        assert growth2 > 2.5

    def test_entailment_equivalence_with_closure(self):
        from repro.semantics import equivalent

        g = art_schema()
        assert equivalent(g, rdfs_closure(g))


class TestNaiveClosure:
    def test_example_3_2_two_closures(self, example_3_2):
        closures = naive_closures(example_3_2)
        assert len(closures) >= 2
        # The two closures differ on which of (X,r,d)/(X,q,d) they add.
        X = BNode("X")
        has_r = any(triple(X, "r", "d") in c for c in closures)
        has_q = any(triple(X, "q", "d") in c for c in closures)
        assert has_r and has_q
        assert not any(
            triple(X, "r", "d") in c and triple(X, "q", "d") in c for c in closures
        )

    def test_lemma_3_3_rdfs_cl_contained_in_naive_closures(self, example_3_2):
        cl = rdfs_closure(example_3_2)
        for naive in naive_closures(example_3_2):
            assert cl.issubgraph(naive)

    def test_ground_graph_unique_naive_closure(self):
        g = RDFGraph([triple("a", SC, "b"), triple("x", TYPE, "a")])
        closures = naive_closures(g)
        assert len(closures) == 1
        # For ground graphs the naive closure is exactly RDFS-cl.
        assert closures[0] == rdfs_closure(g)

    def test_naive_closures_equivalent_to_original(self, example_3_2):
        from repro.semantics import equivalent

        for naive in naive_closures(example_3_2):
            assert equivalent(naive, example_3_2)


class TestClosureOracle:
    def test_matches_materialized_closure(self):
        g = art_schema()
        oracle = ClosureOracle(g)
        materialized = rdfs_closure(g)
        for t in materialized:
            assert oracle.contains(t), f"oracle misses {t}"

    def test_rejects_non_members(self):
        g = art_schema()
        oracle = ClosureOracle(g)
        assert not oracle.contains(triple("Guernica", TYPE, "artist"))
        assert not oracle.contains(triple("Picasso", "sculpts", "Guernica"))
        assert not oracle.contains(triple("artist", SC, "sculptor"))

    def test_in_operator(self):
        g = art_schema()
        oracle = ClosureOracle(g)
        assert triple("Picasso", TYPE, "artist") in oracle

    def test_complete_on_random_graphs(self):
        for seed in range(5):
            g = random_schema_with_instances(4, 3, 4, 6, seed=seed)
            oracle = ClosureOracle(g)
            materialized = rdfs_closure(g)
            for t in materialized:
                assert oracle.contains(t)

    def test_sound_on_random_graphs(self):
        import itertools

        for seed in range(3):
            g = random_schema_with_instances(3, 2, 3, 4, seed=seed)
            oracle = ClosureOracle(g)
            materialized = rdfs_closure(g)
            universe = sorted(materialized.universe(), key=str)[:6]
            predicates = sorted(
                set(materialized.predicates()) | {SP, SC, TYPE}, key=str
            )
            for s, p, o in itertools.product(universe, predicates, universe):
                t = Triple(s, p, o)
                if not t.is_valid_rdf():
                    continue
                assert oracle.contains(t) == (t in materialized), t

    def test_pathological_vocabulary_falls_back(self):
        g = RDFGraph(
            [triple("meta", SP, SP), triple("a", "meta", "b"), triple("b", "meta", "c")]
        )
        oracle = ClosureOracle(g)
        materialized = rdfs_closure(g)
        for t in materialized:
            assert oracle.contains(t)
        assert oracle.contains(triple("a", SP, "c"))

    @settings(max_examples=25, deadline=None)
    @given(rdfs_graphs(max_size=4))
    def test_oracle_agrees_with_closure_random(self, g):
        oracle = ClosureOracle(g)
        for t in rdfs_closure(g):
            assert oracle.contains(t)
