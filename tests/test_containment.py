"""Tests for query containment (Section 5, Theorems 5.5–5.8)."""

import pytest

from repro.core import BNode, RDFGraph, Variable, triple
from repro.core.vocabulary import SC, SP, TYPE
from repro.query import (
    answer_union,
    contained_entailment,
    contained_standard,
    head_body_query,
    pre_answers,
)
from repro.semantics import entails


def simple_query(head, body, **kw):
    return head_body_query(head=head, body=body, **kw)


class TestBasicContainment:
    def test_identical_queries_contained_both_ways(self):
        q = simple_query([("?X", "p", "?Y")], [("?X", "p", "?Y")])
        assert contained_standard(q, q)
        assert contained_entailment(q, q)

    def test_body_specialization(self):
        # q asks for p-edges into b; q2 asks for any p-edge. q ⊑ q2
        # requires matching heads, so keep heads aligned via θ.
        q = simple_query([("?X", "e", "?X")], [("?X", "p", "b")])
        q2 = simple_query([("?X", "e", "?X")], [("?X", "p", "?Y")])
        assert contained_standard(q, q2)
        assert not contained_standard(q2, q)

    def test_conjunctive_query_classic(self):
        # Classic CQ containment: longer chains are contained in
        # shorter ones with the same head.
        q_long = simple_query(
            [("?X", "sel", "?X")],
            [("?X", "p", "?Y"), ("?Y", "p", "?Z")],
        )
        q_short = simple_query([("?X", "sel", "?X")], [("?X", "p", "?Y")])
        assert contained_standard(q_long, q_short)
        assert not contained_standard(q_short, q_long)

    def test_proposition_5_2_p_implies_m(self):
        q = simple_query([("?X", "sel", "?X")], [("?X", "p", "?Y"), ("?Y", "q", "b")])
        q2 = simple_query([("?X", "sel", "?X")], [("?X", "p", "?Y")])
        assert contained_standard(q, q2)
        assert contained_entailment(q, q2)

    def test_disjoint_queries_not_contained(self):
        q = simple_query([("?X", "sel", "a")], [("?X", "p", "a")])
        q2 = simple_query([("?X", "sel", "b")], [("?X", "q", "b")])
        assert not contained_standard(q, q2)
        assert not contained_entailment(q, q2)


class TestExample53:
    """The three witnesses that ⊑m is strictly weaker than ⊑p."""

    def make_sc_queries(self):
        chain = [("?X", SC, "?Y"), ("?Y", SC, "?Z")]
        chain_with_shortcut = chain + [("?X", SC, "?Z")]
        q = simple_query(chain, chain)
        q2 = simple_query(chain_with_shortcut, chain_with_shortcut)
        return q, q2

    def test_rdfs_heads_mutually_m_contained(self):
        q, q2 = self.make_sc_queries()
        assert contained_entailment(q, q2)
        assert contained_entailment(q2, q)

    def test_rdfs_heads_not_p_contained(self):
        q, q2 = self.make_sc_queries()
        assert not contained_standard(q, q2)
        assert not contained_standard(q2, q)

    def test_blank_head_example(self):
        body = [("?X", "p", "?W")]
        q = simple_query([("?X", "q", "c")], body)
        q2 = simple_query([("?X", "q", BNode("Y"))], body)
        # q′ ⊑m q but q′ ⋢p q (paper's middle example).
        assert contained_entailment(q2, q)
        assert not contained_standard(q2, q)
        # The reverse fails in both senses: a blank object does not
        # entail the constant c.
        assert not contained_standard(q, q2)
        assert not contained_entailment(q, q2)

    def test_projected_head_example(self):
        body = [("?X", "q", "?Y"), ("?Z", "p", "?Y")]
        q = simple_query(body, body)
        q2 = simple_query([("?Z", "p", "?Y")], body)
        # q′ ⊑m q but q′ ⋢p q (paper's last example).
        assert contained_entailment(q2, q)
        assert not contained_standard(q2, q)


class TestSemanticJustification:
    """Containment verdicts must match the answer-level definitions."""

    DATABASES = [
        RDFGraph([triple("a", "p", "b")]),
        RDFGraph([triple("a", "p", "b"), triple("b", "p", "c")]),
        RDFGraph([triple("a", "p", "b"), triple("b", "q", "b")]),
        RDFGraph([triple("a", "p", BNode("X")), triple(BNode("X"), "p", "c")]),
    ]

    def check_m_containment_on(self, q, q2):
        return all(
            entails(answer_union(q2, d), answer_union(q, d)) for d in self.DATABASES
        )

    def test_m_verdict_matches_answers(self):
        q_long = simple_query(
            [("?X", "sel", "?X")], [("?X", "p", "?Y"), ("?Y", "p", "?Z")]
        )
        q_short = simple_query([("?X", "sel", "?X")], [("?X", "p", "?Y")])
        assert contained_entailment(q_long, q_short)
        assert self.check_m_containment_on(q_long, q_short)
        # The reverse containment fails, witnessed on some database.
        assert not contained_entailment(q_short, q_long)
        assert not self.check_m_containment_on(q_short, q_long)

    def test_p_verdict_matches_preanswers(self):
        from repro.core import isomorphic

        q = simple_query([("?X", "sel", "?X")], [("?X", "p", "?Y"), ("?Y", "q", "b")])
        q2 = simple_query([("?X", "sel", "?X")], [("?X", "p", "?Y")])
        assert contained_standard(q, q2)
        for d in self.DATABASES:
            for answer in pre_answers(q, d):
                assert any(
                    isomorphic(answer, other) for other in pre_answers(q2, d)
                )


class TestConstraints:
    def test_constrained_contained_in_unconstrained(self):
        body = [("?X", "p", "?Y")]
        q = simple_query([("?Y", "sel", "c")], body, constraints=[Variable("Y")])
        q2 = simple_query([("?Y", "sel", "c")], body)
        # Fewer answers ⊆ more answers.
        assert contained_standard(q, q2)

    def test_unconstrained_not_contained_in_constrained(self):
        body = [("?X", "p", "?Y")]
        q = simple_query([("?Y", "sel", "c")], body)
        q2 = simple_query([("?Y", "sel", "c")], body, constraints=[Variable("Y")])
        assert not contained_standard(q, q2)
        assert not contained_entailment(q, q2)

    def test_matching_constraints_contained(self):
        body = [("?X", "p", "?Y")]
        q = simple_query([("?Y", "sel", "c")], body, constraints=[Variable("Y")])
        assert contained_standard(q, q)

    def test_constrained_variable_to_constant_non_strict(self):
        # q binds the head position to the constant b (never blank), so
        # mapping q2's constrained variable onto it is semantically safe.
        q = simple_query([("b", "sel", "c")], [("?X", "p", "b")])
        q2 = simple_query(
            [("?Y", "sel", "c")], [("?X", "p", "?Y")], constraints=[Variable("Y")]
        )
        assert contained_standard(q, q2)  # default: non-strict
        assert not contained_standard(q, q2, strict_constraints=True)

    def test_strict_reading_still_accepts_variable_images(self):
        body = [("?X", "p", "?Y")]
        q = simple_query([("?Y", "sel", "c")], body, constraints=[Variable("Y")])
        q2 = simple_query([("?Y", "sel", "c")], body, constraints=[Variable("Y")])
        assert contained_standard(q, q2, strict_constraints=True)


class TestPremiseContainment:
    """Theorem 5.8: premise on the containing side, simple queries."""

    def test_premise_widens_the_container(self):
        # q2 with premise knows (a, t, s); q's body requires it of data.
        q = simple_query(
            [("?X", "sel", "?X")], [("?X", "q", "a")]
        )
        q2 = head_body_query(
            head=[("?X", "sel", "?X")],
            body=[("?X", "q", "?Y"), ("?Y", "t", "s")],
            premise=RDFGraph([triple("a", "t", "s")]),
        )
        # Every answer of q is an answer of q2 (θ: Y→a uses the premise).
        assert contained_standard(q, q2)
        assert contained_entailment(q, q2)

    def test_without_premise_not_contained(self):
        q = simple_query([("?X", "sel", "?X")], [("?X", "q", "a")])
        q2_no_premise = simple_query(
            [("?X", "sel", "?X")], [("?X", "q", "?Y"), ("?Y", "t", "s")]
        )
        assert not contained_standard(q, q2_no_premise)

    def test_premise_on_left_via_omega(self):
        # q has a premise; its Ω-expansion must each be contained in q2.
        q = head_body_query(
            head=[("?X", "sel", "?X")],
            body=[("?X", "q", "?Y"), ("?Y", "t", "s")],
            premise=RDFGraph([triple("a", "t", "s")]),
        )
        q2 = simple_query([("?X", "sel", "?X")], [("?X", "q", "?Y")])
        assert contained_standard(q, q2)
        assert contained_entailment(q, q2)

    def test_premise_left_not_contained_when_omega_escapes(self):
        q = head_body_query(
            head=[("?X", "sel", "?X")],
            body=[("?X", "q", "?Y"), ("?Y", "t", "s")],
            premise=RDFGraph([triple("a", "t", "s")]),
        )
        # q2 requires r-edges; the Ω-expansion members don't have them.
        q2 = simple_query([("?X", "sel", "?X")], [("?X", "r", "?Y")])
        assert not contained_standard(q, q2)

    def test_rdfs_premise_rejected(self):
        q = head_body_query(
            head=[("?X", "sel", "?X")],
            body=[("?X", "q", "?Y")],
            premise=RDFGraph([triple("son", SP, "relative")]),
        )
        q2 = simple_query([("?X", "sel", "?X")], [("?X", "q", "?Y")])
        with pytest.raises(NotImplementedError):
            contained_standard(q, q2)

    def test_left_premise_with_constraints_supported(self):
        q = head_body_query(
            head=[("?X", "sel", "?X")],
            body=[("?X", "q", "?Y")],
            premise=RDFGraph([triple("a", "t", "s")]),
            constraints=[Variable("X")],
        )
        q2 = simple_query([("?X", "sel", "?X")], [("?X", "q", "?Y")])
        # Ω_q carries the constraints through; the plain wide query
        # (no constraints) contains the constrained one.
        assert contained_standard(q, q2)

    def test_right_premise_with_constraints_rejected(self):
        q = simple_query([("?X", "sel", "?X")], [("?X", "q", "?Y")],
                         constraints=[Variable("X")])
        q2 = head_body_query(
            head=[("?X", "sel", "?X")],
            body=[("?X", "q", "?Y")],
            premise=RDFGraph([triple("a", "t", "s")]),
        )
        with pytest.raises(NotImplementedError):
            contained_standard(q, q2)


class TestRDFSBodies:
    def test_transitive_body_matching_through_nf(self):
        # q2's body with the explicit shortcut is contained in the chain
        # query under ⊑m because nf(B) closes the chain.
        chain = [("?X", SC, "?Y"), ("?Y", SC, "?Z")]
        shortcut_head = [("?X", SC, "?Z")]
        q = simple_query(shortcut_head, chain)
        q2 = simple_query(shortcut_head, shortcut_head)
        # Every q-match yields an X sc Z (derived); q2 finds it directly
        # in nf(D) too: q ⊑p q2 via θ mapping q2's body into nf(chain).
        assert contained_standard(q, q2)

    def test_dom_reasoning_in_containment(self):
        q = simple_query(
            [("?X", TYPE, "c")],
            [("p", "dom", "c"), ("?X", "p", "?Y")],
        )
        q2 = simple_query([("?X", TYPE, "c")], [("?X", TYPE, "c")])
        # nf(B) of q contains (?X, type, c) by rule (6), so q2's body
        # maps into it with matching head.
        assert contained_standard(q, q2)


class TestFrozenNamespaceCollisions:
    """User URIs inside the reserved ``urn:frozen-var:`` namespace must
    not be conflated with frozen query variables: the decision procedure
    escapes them apart before matching (the guard in
    :mod:`repro.query.containment`)."""

    def test_reflexive_with_colliding_constant(self):
        from repro.core import URI

        c = URI("urn:frozen-var:X")
        q = simple_query([("?X", "q", c)], [("?X", "p", c)])
        assert contained_standard(q, q)
        assert contained_entailment(q, q)

    def test_variable_and_colliding_constant_kept_apart(self):
        from repro.core import URI

        c = URI("urn:frozen-var:X")
        # q's body freezes to {(frozen ?X, p, escaped c)} — two distinct
        # URIs.  Unescaped, both positions would collapse to the same
        # ``urn:frozen-var:X`` node and the merged-variable container
        # below would (wrongly) find a matching.
        q = simple_query([("?X", "q", c)], [("?X", "p", c)])
        distinct = simple_query([("?Y", "q", "?Z")], [("?Y", "p", "?Z")])
        merged = simple_query([("?Y", "q", "?Y")], [("?Y", "p", "?Y")])
        assert contained_standard(q, distinct)  # θ: ?Y → ?X, ?Z → c
        # Witness against q ⊑ merged: D = {(s, p, c)} gives q the answer
        # (s, q, c), which merged (needing subject = object) never has.
        assert not contained_standard(q, merged)

    def test_premise_constants_in_reserved_namespace(self):
        from repro.core import URI

        u = URI("urn:frozen-var:Q")
        contained = simple_query([(u, "q", u)], [(u, "p", u)])
        container = simple_query(
            [("?Y", "q", "?Y")],
            [("?Y", "p", "?Y")],
            premise=RDFGraph([triple(u, URI("p"), u)]),
        )
        # Theorem 5.8 target = nf(freeze(B) + P'); the premise constant
        # is escaped too, so ?Y binds to it and thaws back to the URI.
        assert contained_standard(contained, container)
