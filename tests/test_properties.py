"""Cross-cutting property-based tests (hypothesis) on core invariants.

Each class targets one algebraic law the paper states or implies; these
run on small random graphs where even the NP-hard procedures are fast.
"""

from hypothesis import HealthCheck, given, settings

from repro.core import (
    BNode,
    RDFGraph,
    canonical_form,
    find_map,
    isomorphic,
    triple,
)
from repro.minimize import core, is_lean, normal_form
from repro.semantics import (
    closure,
    entails,
    equivalent,
    rdfs_closure,
    simple_entails,
)

from .strategies import ground_graphs, rdfs_graphs, simple_graphs

COMMON = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestEntailmentIsPreorder:
    @settings(**COMMON)
    @given(rdfs_graphs(max_size=4))
    def test_reflexive(self, g):
        assert entails(g, g)

    @settings(**COMMON)
    @given(rdfs_graphs(max_size=3), rdfs_graphs(max_size=3), rdfs_graphs(max_size=3))
    def test_transitive(self, g1, g2, g3):
        if entails(g1, g2) and entails(g2, g3):
            assert entails(g1, g3)

    @settings(**COMMON)
    @given(rdfs_graphs(max_size=3), rdfs_graphs(max_size=3))
    def test_monotone_left(self, g1, g2):
        # Adding triples to the left graph preserves entailment.
        if entails(g1, g2):
            extended = g1.union(RDFGraph([triple("zzz", "zzz", "zzz")]))
            assert entails(extended, g2)

    @settings(**COMMON)
    @given(rdfs_graphs(max_size=4))
    def test_subgraphs_entailed(self, g):
        for t in g:
            assert entails(g, RDFGraph([t]))


class TestClosureIsClosureOperator:
    @settings(**COMMON)
    @given(rdfs_graphs(max_size=4))
    def test_extensive(self, g):
        assert g.issubgraph(rdfs_closure(g))

    @settings(**COMMON)
    @given(rdfs_graphs(max_size=4))
    def test_idempotent(self, g):
        once = rdfs_closure(g)
        assert rdfs_closure(once) == once

    @settings(**COMMON)
    @given(rdfs_graphs(max_size=3), rdfs_graphs(max_size=3))
    def test_monotone(self, g1, g2):
        u = g1.union(g2)
        assert rdfs_closure(g1).issubgraph(rdfs_closure(u))

    @settings(**COMMON)
    @given(rdfs_graphs(max_size=4))
    def test_closure_equivalent(self, g):
        assert equivalent(g, closure(g))

    @settings(**COMMON)
    @given(rdfs_graphs(max_size=4))
    def test_every_closure_triple_entailed(self, g):
        for t in closure(g):
            assert entails(g, RDFGraph([t]))


class TestCoreLaws:
    @settings(**COMMON)
    @given(simple_graphs(max_size=5))
    def test_core_lean(self, g):
        assert is_lean(core(g))

    @settings(**COMMON)
    @given(simple_graphs(max_size=5))
    def test_core_no_larger(self, g):
        assert len(core(g)) <= len(g)

    @settings(**COMMON)
    @given(simple_graphs(max_size=5))
    def test_core_equivalent(self, g):
        assert simple_entails(core(g), g) and simple_entails(g, core(g))

    @settings(**COMMON)
    @given(simple_graphs(max_size=4))
    def test_core_fixed_point_on_lean(self, g):
        if is_lean(g):
            assert core(g) == g

    @settings(**COMMON)
    @given(simple_graphs(max_size=4))
    def test_union_with_core_equivalent(self, g):
        assert equivalent(g.union(core(g)), g)


class TestNormalFormLaws:
    @settings(**COMMON)
    @given(rdfs_graphs(max_size=3))
    def test_nf_of_nf(self, g):
        nf = normal_form(g)
        assert isomorphic(normal_form(nf), nf)

    @settings(**COMMON)
    @given(rdfs_graphs(max_size=3))
    def test_union_with_closure_preserves_nf(self, g):
        # Any graph between G and cl(G) has the same normal form.
        partial = RDFGraph(list(closure(g).triples)[: len(g) + 2])
        between = g.union(partial)
        assert isomorphic(normal_form(g), normal_form(between))


class TestMapsAndIsomorphism:
    @settings(**COMMON)
    @given(simple_graphs(max_size=5))
    def test_identity_is_endomorphism(self, g):
        m = find_map(g, g)
        assert m is not None

    @settings(**COMMON)
    @given(simple_graphs(max_size=4))
    def test_canonical_form_isomorphic_to_graph(self, g):
        assert isomorphic(canonical_form(g), g)

    @settings(**COMMON)
    @given(simple_graphs(max_size=4))
    def test_renaming_preserves_canonical_form(self, g):
        blanks = sorted(g.bnodes(), key=lambda n: n.value)
        renaming = {n: BNode(f"rn{i}") for i, n in enumerate(blanks)}
        assert canonical_form(g) == canonical_form(g.rename_bnodes(renaming))

    @settings(**COMMON)
    @given(simple_graphs(max_size=4), simple_graphs(max_size=4))
    def test_iso_implies_equivalent(self, g1, g2):
        if isomorphic(g1, g2):
            assert equivalent(g1, g2)


class TestGroundGraphSpecialCases:
    @settings(**COMMON)
    @given(ground_graphs(max_size=5), ground_graphs(max_size=5))
    def test_simple_entailment_is_containment(self, g1, g2):
        # For ground simple graphs, entailment is subset inclusion.
        assert simple_entails(g1, g2) == g2.issubgraph(g1)

    @settings(**COMMON)
    @given(ground_graphs(max_size=5))
    def test_ground_graphs_lean_and_core_free(self, g):
        assert is_lean(g)
        assert core(g) == g

    @settings(**COMMON)
    @given(ground_graphs(max_size=4), ground_graphs(max_size=4))
    def test_iso_is_equality(self, g1, g2):
        assert isomorphic(g1, g2) == (g1 == g2)


class TestMergeAndUnion:
    @settings(**COMMON)
    @given(simple_graphs(max_size=4), simple_graphs(max_size=4))
    def test_union_entails_merge(self, g1, g2):
        # G1 ∪ G2 ⊨ G1 + G2 (the fact used by Proposition 4.5.2).
        assert entails(g1.union(g2), g1 + g2)

    @settings(**COMMON)
    @given(simple_graphs(max_size=4), simple_graphs(max_size=4))
    def test_merge_entails_components(self, g1, g2):
        merged = g1 + g2
        assert entails(merged, g1)
        assert entails(merged, g2)

    @settings(**COMMON)
    @given(simple_graphs(max_size=4))
    def test_merge_with_self_equivalent(self, g):
        # G + G ≡ G (the copy maps back onto the original).
        assert equivalent(g + g, g)
