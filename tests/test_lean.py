"""Tests for lean graphs (Definition 3.7, Example 3.8, Theorem 3.12.1)."""

from hypothesis import given, settings

from repro.core import BNode, RDFGraph, triple
from repro.minimize import is_lean, non_lean_witness
from repro.reductions import DiGraph, encode_graph, has_proper_retract_via_rdf

from .strategies import simple_graphs


class TestExamples:
    def test_example_3_8_g1_not_lean(self, example_3_8_g1):
        assert not is_lean(example_3_8_g1)

    def test_example_3_8_g2_lean(self, example_3_8_g2):
        assert is_lean(example_3_8_g2)

    def test_witness_is_proper(self, example_3_8_g1):
        witness = non_lean_witness(example_3_8_g1)
        assert witness is not None
        image = witness.apply_graph(example_3_8_g1)
        assert image < example_3_8_g1

    def test_lean_graph_has_no_witness(self, example_3_8_g2):
        assert non_lean_witness(example_3_8_g2) is None


class TestBasicCases:
    def test_ground_graphs_are_lean(self):
        g = RDFGraph([triple("a", "p", "b"), triple("b", "p", "c")])
        assert is_lean(g)

    def test_empty_graph_is_lean(self):
        assert is_lean(RDFGraph())

    def test_single_blank_triple_lean(self):
        # (a, p, X) alone: no proper subgraph to map onto.
        assert is_lean(RDFGraph([triple("a", "p", BNode("X"))]))

    def test_blank_subsumed_by_ground(self):
        g = RDFGraph([triple("a", "p", "b"), triple("a", "p", BNode("X"))])
        assert not is_lean(g)

    def test_blank_with_extra_property_not_subsumed(self):
        X = BNode("X")
        g = RDFGraph(
            [triple("a", "p", "b"), triple("a", "p", X), triple(X, "q", "c")]
        )
        # X cannot map to b: b has no q-edge to c.
        assert is_lean(g)

    def test_blank_with_matching_extra_property_subsumed(self):
        X = BNode("X")
        g = RDFGraph(
            [
                triple("a", "p", "b"),
                triple("b", "q", "c"),
                triple("a", "p", X),
                triple(X, "q", "c"),
            ]
        )
        assert not is_lean(g)

    def test_two_interlocked_blanks(self):
        X, Y = BNode("X"), BNode("Y")
        # X→Y and Y→X through p: maps collapse both onto one loop only
        # if one exists; here there is none, so lean.
        g = RDFGraph([triple(X, "p", Y), triple(Y, "p", X)])
        assert is_lean(g)

    def test_blank_loop_absorbs_blank_cycle(self):
        X, Y, Z = BNode("X"), BNode("Y"), BNode("Z")
        g = RDFGraph([triple(X, "p", Y), triple(Y, "p", X), triple(Z, "p", Z)])
        # X, Y can both map onto the loop Z.
        assert not is_lean(g)

    def test_rdfs_graph_leanness_is_syntactic(self):
        from repro.core.vocabulary import SC

        # Leanness looks only at maps, not at rdfs semantics: the chain
        # with a redundant-in-semantics shortcut is still lean.
        g = RDFGraph(
            [triple("a", SC, "b"), triple("b", SC, "c"), triple("a", SC, "c")]
        )
        assert is_lean(g)


class TestGraphCoreCorrespondence:
    """Theorem 3.12.1's encoding: Core(H) ⟺ enc(H) not lean."""

    def test_even_cycles_have_retracts(self):
        assert has_proper_retract_via_rdf(DiGraph.cycle(6))
        assert not is_lean(encode_graph(DiGraph.cycle(4)))

    def test_odd_cycles_are_cores(self):
        assert not has_proper_retract_via_rdf(DiGraph.cycle(5))
        assert is_lean(encode_graph(DiGraph.cycle(3)))

    def test_cliques_are_cores(self):
        assert is_lean(encode_graph(DiGraph.complete(3)))

    def test_path_retracts(self):
        # A symmetric path of length ≥ 2 retracts onto one edge.
        assert has_proper_retract_via_rdf(DiGraph.path(4, directed=False))


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(simple_graphs(max_size=5))
    def test_witness_iff_not_lean(self, g):
        witness = non_lean_witness(g)
        assert (witness is None) == is_lean(g)
        if witness is not None:
            assert witness.apply_graph(g) < g

    @settings(max_examples=40, deadline=None)
    @given(simple_graphs(max_size=5))
    def test_ground_graphs_always_lean(self, g):
        if g.is_ground():
            assert is_lean(g)
