"""Tests for query answers (Definition 4.3, Notes 4.4/4.7)."""

import pytest

from repro.core import BNode, Literal, RDFGraph, Triple, URI, Variable, isomorphic, triple
from repro.core.vocabulary import SC, SP, TYPE
from repro.query import (
    answer_merge,
    answer_union,
    answers,
    head_body_query,
    identity_query,
    iter_matchings,
    pre_answers,
    single_answer,
)
from repro.semantics import equivalent


def db(*tuples):
    return RDFGraph.from_tuples(tuples)


class TestMatching:
    def test_simple_matching(self):
        q = head_body_query(head=[("?X", "p", "b")], body=[("?X", "p", "b")])
        d = db(("a", "p", "b"), ("c", "p", "b"), ("a", "q", "b"))
        images = {v[Variable("X")] for v in iter_matchings(q, d)}
        assert images == {URI("a"), URI("c")}

    def test_matching_against_normal_form(self):
        # The body matches derived triples, not just stored ones.
        q = head_body_query(head=[("?X", TYPE, "artist")], body=[("?X", TYPE, "artist")])
        d = db(("painter", SC, "artist"), ("vangogh", TYPE, "painter"))
        images = {v[Variable("X")] for v in iter_matchings(q, d)}
        assert URI("vangogh") in images

    def test_constraints_filter_blank_bindings(self):
        # X carries an extra q-edge so nf(D) keeps it (it is not
        # subsumed by b).
        X = BNode("X")
        d = RDFGraph(
            [triple("a", "p", X), triple(X, "q", "c"), triple("a", "p", "b")]
        )
        unconstrained = head_body_query(
            head=[("?Y", "p2", "c")], body=[("a", "p", "?Y")]
        )
        constrained = head_body_query(
            head=[("?Y", "p2", "c")],
            body=[("a", "p", "?Y")],
            constraints=[Variable("Y")],
        )
        all_images = {v[Variable("Y")] for v in iter_matchings(unconstrained, d)}
        ground_images = {v[Variable("Y")] for v in iter_matchings(constrained, d)}
        assert X in all_images
        assert ground_images == {URI("b")}

    def test_matching_nf_collapses_redundant_blanks(self):
        # nf(D) is the core of the closure: a blank subsumed by a ground
        # triple disappears from the matching target (Note 4.4).
        X = BNode("X")
        d = RDFGraph([triple("a", "p", X), triple("a", "p", "b")])
        q = head_body_query(head=[("a", "p", "?Y")], body=[("a", "p", "?Y")])
        images = {v[Variable("Y")] for v in iter_matchings(q, d)}
        assert images == {URI("b")}


class TestPreAnswers:
    def test_definition_4_3(self):
        q = head_body_query(
            head=[("?A", "creates", "?Y")],
            body=[("?A", TYPE, "Flemish"), ("?A", "paints", "?Y")],
        )
        d = db(
            ("rubens", TYPE, "Flemish"),
            ("rubens", "paints", "venus"),
            ("picasso", "paints", "guernica"),
        )
        answers_found = pre_answers(q, d)
        assert [str(a) for a in answers_found] == ["{(rubens, creates, venus)}"]

    def test_ill_formed_instantiations_dropped(self):
        # ?X bound to a literal cannot occupy a subject position in the head.
        d = RDFGraph([triple("a", "p", Literal("text"))])
        q = head_body_query(head=[("?Y", "q", "c")], body=[("a", "p", "?Y")])
        assert pre_answers(q, d) == []

    def test_skolem_head_blanks_deterministic(self):
        N = BNode("N")
        q = head_body_query(head=[(N, "knows", "?X")], body=[("?X", "p", "b")])
        d = db(("a", "p", "b"))
        first = pre_answers(q, d)
        second = pre_answers(q, d)
        assert first == second
        assert len(first) == 1
        blank = next(iter(first[0].bnodes()))
        assert blank.value.startswith("sk!")

    def test_skolem_blanks_differ_per_valuation(self):
        N = BNode("N")
        q = head_body_query(head=[(N, "knows", "?X")], body=[("?X", "p", "b")])
        d = db(("a", "p", "b"), ("c", "p", "b"))
        found = pre_answers(q, d)
        assert len(found) == 2
        blanks = {next(iter(a.bnodes())) for a in found}
        assert len(blanks) == 2  # different valuations → different blanks

    def test_premise_extends_database(self):
        q = head_body_query(
            head=[("?X", "relative", "Peter")],
            body=[("?X", "relative", "Peter")],
            premise=RDFGraph([triple("son", SP, "relative")]),
        )
        d = db(("john", "son", "Peter"))
        assert [str(a) for a in pre_answers(q, d)] == ["{(john, relative, Peter)}"]

    def test_premise_blanks_kept_apart_from_database(self):
        X = BNode("X")
        q = head_body_query(
            head=[("?Y", "q2", "c")],
            body=[("hub", "p", "?Y"), ("?Y", "r", "?Z")],
            premise=RDFGraph([triple(X, "r", "s")]),
        )
        # The database uses the same blank label X for a different node;
        # merge semantics of D + P must rename, so the premise's X never
        # unifies with the database's X through the label.
        d = RDFGraph([triple("hub", "p", X)])
        found = pre_answers(q, d)
        assert found == []


class TestAnswerSemantics:
    def test_union_keeps_bridging_blanks(self):
        X = BNode("X")
        d = RDFGraph([triple(X, "p1", "a"), triple(X, "p2", "b")])
        q = head_body_query(
            head=[("?N", "feature", "?V")], body=[("?N", "?P", "?V")]
        )
        union = answer_union(q, d)
        # The same blank X bridges the two single answers.
        assert len(union.bnodes()) == 1

    def test_merge_renames_blanks_apart(self):
        X = BNode("X")
        d = RDFGraph([triple(X, "p1", "a"), triple(X, "p2", "b")])
        q = head_body_query(
            head=[("?N", "feature", "?V")], body=[("?N", "?P", "?V")]
        )
        merged = answer_merge(q, d)
        assert len(merged.bnodes()) == 2

    def test_note_4_7_identity_query_union(self):
        X = BNode("X")
        d = RDFGraph([triple(X, "b", "c"), triple(X, "b", "d")])
        iq = identity_query()
        assert equivalent(answer_union(iq, d), d)

    def test_note_4_7_merge_is_weaker(self):
        X = BNode("X")
        d = RDFGraph([triple(X, "b", "c"), triple(X, "b", "d")])
        iq = identity_query()
        merged = answer_merge(iq, d)
        # The merge {(X,b,c), (Y,b,d)} (plus nf reflexivity padding) is
        # entailed by D but not equivalent: no map from D into it
        # identifies the two now-distinct blanks.
        assert equivalent(merged, d) is False
        from repro.semantics import entails

        assert entails(d, merged)
        blank_triples = [t for t in merged if not t.is_ground()]
        assert len(blank_triples) == 2
        assert len({t.s for t in blank_triples}) == 2  # blanks split apart

    def test_semantics_dispatch(self):
        d = db(("a", "p", "b"))
        q = identity_query()
        assert answers(q, d, semantics="union") == answer_union(q, d)
        assert answers(q, d, semantics="merge") == answer_merge(q, d)
        with pytest.raises(ValueError):
            answers(q, d, semantics="nope")

    def test_semantics_agree_on_ground_databases(self):
        d = db(("a", "p", "b"), ("b", "p", "c"))
        q = head_body_query(head=[("?X", "p", "?Y")], body=[("?X", "p", "?Y")])
        assert answer_union(q, d) == answer_merge(q, d)

    def test_union_of_example_from_section_6_2(self):
        # Query (?Z, p, ?U) ← (?Z, p, ?U) over the lean G2 of Example 3.8
        # produces the non-lean G1-like answer.
        from repro.minimize import is_lean

        X, Y = BNode("X"), BNode("Y")
        d = RDFGraph(
            [
                triple("a", "p", X),
                triple("a", "p", Y),
                triple(X, "q", Y),
                triple(Y, "r", "b"),
            ]
        )
        q = head_body_query(head=[("?Z", "p", "?U")], body=[("?Z", "p", "?U")])
        assert is_lean(d)
        result = answer_union(q, d)
        assert not is_lean(result)
