"""Tests for tableau queries with path atoms (nSPARQL direction)."""

import pytest

from repro.core import BNode, RDFGraph, URI, Variable, triple
from repro.core.vocabulary import SC, TYPE
from repro.generators import art_schema
from repro.query import PathQuery, build_path_query, head_body_query, path_atom


class TestConstruction:
    def test_path_atom_coercion(self):
        atom = path_atom("?X", "type/sc*", "?C")
        assert atom.s == Variable("X")
        assert atom.o == Variable("C")

    def test_blank_endpoints_rejected(self):
        with pytest.raises(ValueError):
            path_atom(BNode("N"), "p", "?X")

    def test_head_vars_must_be_bound(self):
        with pytest.raises(ValueError):
            build_path_query(
                head=[("?Z", "sel", "?Z")],
                path_atoms=[path_atom("?X", "p+", "?Y")],
            )

    def test_constraints_must_be_head_vars(self):
        with pytest.raises(ValueError):
            build_path_query(
                head=[("?X", "sel", "?X")],
                path_atoms=[path_atom("?X", "p+", "?Y")],
                constraints=[Variable("Y")],
            )


class TestEvaluation:
    def chain(self, n):
        return RDFGraph([triple(f"n{i}", "p", f"n{i+1}") for i in range(n)])

    def test_transitive_reach(self):
        q = build_path_query(
            head=[("n0", "reaches", "?Y")],
            path_atoms=[path_atom("n0", "p+", "?Y")],
        )
        result = q.answer_union(self.chain(3))
        assert result == RDFGraph(
            [triple("n0", "reaches", f"n{i}") for i in (1, 2, 3)]
        )

    def test_mixed_plain_and_path_atoms(self):
        d = self.chain(3).union(RDFGraph([triple("n2", "mark", "special")]))
        q = build_path_query(
            head=[("?Y", "reachable-special", "yes")],
            plain_body=[("?Y", "mark", "special")],
            path_atoms=[path_atom("n0", "p+", "?Y")],
        )
        assert q.answer_union(d) == RDFGraph(
            [triple("n2", "reachable-special", "yes")]
        )

    def test_join_between_two_path_atoms(self):
        d = RDFGraph(
            [
                triple("a", "p", "b"),
                triple("b", "p", "c"),
                triple("c", "q", "d"),
            ]
        )
        q = build_path_query(
            head=[("?X", "bridge", "?Z")],
            path_atoms=[
                path_atom("?X", "p+", "?Y"),
                path_atom("?Y", "q", "?Z"),
            ],
        )
        result = q.answer_union(d)
        assert triple("a", "bridge", "d") in result
        assert triple("b", "bridge", "d") in result

    def test_rdfs_classification(self):
        g = art_schema()
        q = build_path_query(
            head=[("?X", "classified", "?C")],
            plain_body=[("?X", "creates", "?W")],
            path_atoms=[path_atom("?X", "type/sc*", "?C")],
        )
        result = q.answer_union(g)
        assert triple("Picasso", "classified", "painter") in result
        assert triple("Picasso", "classified", "artist") in result

    def test_constraints_apply(self):
        X = BNode("X")
        d = RDFGraph([triple("hub", "p", X), triple(X, "p", "g"), triple(X, "r", "k")])
        unconstrained = build_path_query(
            head=[("hub", "reaches", "?Y")],
            path_atoms=[path_atom("hub", "p+", "?Y")],
        )
        constrained = build_path_query(
            head=[("hub", "reaches", "?Y")],
            path_atoms=[path_atom("hub", "p+", "?Y")],
            constraints=[Variable("Y")],
        )
        all_targets = unconstrained.answer_union(d)
        ground_targets = constrained.answer_union(d)
        assert len(all_targets) == 2
        assert ground_targets == RDFGraph([triple("hub", "reaches", "g")])

    def test_skolem_head_blanks(self):
        d = self.chain(2)
        q = build_path_query(
            head=[(BNode("N"), "witnesses", "?Y")],
            path_atoms=[path_atom("n0", "p+", "?Y")],
        )
        result = q.answer_union(d)
        assert result.bnodes()
        assert len(result) == 2

    def test_premise_participates(self):
        q = build_path_query(
            head=[("n0", "reaches", "?Y")],
            path_atoms=[path_atom("n0", "p+", "?Y")],
            premise=RDFGraph([triple("n1", "p", "bonus")]),
        )
        result = q.answer_union(self.chain(1))
        assert triple("n0", "reaches", "bonus") in result

    def test_matches_plain_query_on_simple_predicates(self):
        d = self.chain(3)
        via_path = build_path_query(
            head=[("?X", "sel", "?Y")],
            path_atoms=[path_atom("?X", "p", "?Y")],
        )
        from repro.query import answer_union

        plain = head_body_query(head=[("?X", "sel", "?Y")], body=[("?X", "p", "?Y")])
        assert via_path.answer_union(d) == answer_union(plain, d)

    def test_str(self):
        q = build_path_query(
            head=[("?X", "sel", "?Y")],
            path_atoms=[path_atom("?X", "p+", "?Y")],
        )
        assert "←" in str(q)
