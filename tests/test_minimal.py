"""Tests for minimal representations (Section 3.2, Theorem 3.16)."""

import pytest

from repro.core import BNode, RDFGraph, URI, triple
from repro.core.vocabulary import DOM, SC, SP, TYPE
from repro.minimize import (
    all_minimal_representations,
    count_minimal_representations,
    has_unique_minimal_representation,
    is_acyclic_for,
    minimal_representation,
    satisfies_theorem_316_preconditions,
    transitive_reduction,
)
from repro.semantics import equivalent


class TestTransitiveReduction:
    def test_chain_with_shortcut(self):
        edges = {("a", "b"), ("b", "c"), ("a", "c")}
        assert transitive_reduction(edges) == {("a", "b"), ("b", "c")}

    def test_already_reduced(self):
        edges = {("a", "b"), ("b", "c")}
        assert transitive_reduction(edges) == edges

    def test_diamond(self):
        edges = {("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"), ("a", "d")}
        assert transitive_reduction(edges) == {
            ("a", "b"),
            ("a", "c"),
            ("b", "d"),
            ("c", "d"),
        }

    def test_self_loops_dropped(self):
        assert transitive_reduction({("a", "a"), ("a", "b")}) == {("a", "b")}

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            transitive_reduction({("a", "b"), ("b", "a")})

    def test_long_chain_with_all_shortcuts(self):
        n = 6
        edges = {(i, j) for i in range(n) for j in range(i + 1, n)}
        assert transitive_reduction(edges) == {(i, i + 1) for i in range(n - 1)}

    def test_empty(self):
        assert transitive_reduction(set()) == set()


class TestPreconditions:
    def test_acyclicity_check(self):
        g = RDFGraph([triple("a", SP, "b"), triple("b", SP, "a")])
        assert not is_acyclic_for(g, SP)
        assert is_acyclic_for(g, SC)

    def test_fig1_satisfies_preconditions(self, fig1):
        assert satisfies_theorem_316_preconditions(fig1)

    def test_reserved_vocabulary_in_object_fails(self, example_3_15):
        # (type, dom, a) has reserved vocabulary as subject.
        assert not satisfies_theorem_316_preconditions(example_3_15)

    def test_sp_cycle_fails(self):
        g = RDFGraph([triple("a", SP, "b"), triple("b", SP, "a")])
        assert not satisfies_theorem_316_preconditions(g)


class TestNonUniqueness:
    def test_example_3_14_two_reductions(self, example_3_14):
        reps = all_minimal_representations(example_3_14)
        assert len(reps) == 2
        # Each reduction drops exactly one of (b,sp,a) / (c,sp,a),
        # keeping the b ↔ c cycle.
        assert all(len(r) == 3 for r in reps)
        for r in reps:
            assert equivalent(r, example_3_14)

    def test_example_3_15_two_minimal_representations(self, example_3_15):
        reps = all_minimal_representations(example_3_15)
        assert len(reps) == 2
        g1 = RDFGraph(
            [triple("a", SC, "b"), triple(TYPE, DOM, "a"), triple("x", TYPE, "a")]
        )
        g2 = RDFGraph(
            [triple("a", SC, "b"), triple(TYPE, DOM, "a"), triple("x", TYPE, "b")]
        )
        assert {r.triples for r in reps} == {g1.triples, g2.triples}

    def test_example_3_15_is_acyclic_but_still_ambiguous(self, example_3_15):
        assert is_acyclic_for(example_3_15, SP)
        assert is_acyclic_for(example_3_15, SC)
        assert not has_unique_minimal_representation(example_3_15)


class TestTheorem316:
    def test_unique_for_restricted_class(self, fig1):
        assert satisfies_theorem_316_preconditions(fig1)
        assert has_unique_minimal_representation(fig1)

    def test_greedy_matches_exhaustive(self, fig1):
        greedy = minimal_representation(fig1)
        exhaustive = all_minimal_representations(fig1)
        assert len(exhaustive) == 1
        assert greedy == exhaustive[0]

    def test_sc_chain_with_shortcut(self):
        g = RDFGraph(
            [triple("a", SC, "b"), triple("b", SC, "c"), triple("a", SC, "c")]
        )
        m = minimal_representation(g)
        assert m == RDFGraph([triple("a", SC, "b"), triple("b", SC, "c")])
        assert has_unique_minimal_representation(g)

    def test_sp_inheritance_redundancy(self):
        # (x, super, y) is derivable from (x, sub, y) + (sub, sp, super).
        g = RDFGraph(
            [
                triple("sub", SP, "super"),
                triple("x", "sub", "y"),
                triple("x", "super", "y"),
            ]
        )
        m = minimal_representation(g)
        assert triple("x", "super", "y") not in m
        assert equivalent(m, g)

    def test_type_lifting_redundancy(self):
        g = RDFGraph(
            [
                triple("a", SC, "b"),
                triple("x", TYPE, "a"),
                triple("x", TYPE, "b"),
            ]
        )
        m = minimal_representation(g)
        assert m == RDFGraph([triple("a", SC, "b"), triple("x", TYPE, "a")])

    def test_dom_derived_type_redundancy(self):
        g = RDFGraph(
            [
                triple("p", DOM, "c"),
                triple("x", "p", "y"),
                triple("x", TYPE, "c"),
            ]
        )
        m = minimal_representation(g)
        assert triple("x", TYPE, "c") not in m
        assert equivalent(m, g)

    def test_order_independence_on_restricted_class(self):
        # Theorem 3.16: the result must not depend on elimination order.
        # We vary the order by renaming URIs (which changes sorting).
        g = RDFGraph(
            [
                triple("a", SC, "b"),
                triple("b", SC, "c"),
                triple("a", SC, "c"),
                triple("x", TYPE, "a"),
                triple("x", TYPE, "b"),
                triple("x", TYPE, "c"),
            ]
        )
        m = minimal_representation(g)
        assert m == RDFGraph(
            [triple("a", SC, "b"), triple("b", SC, "c"), triple("x", TYPE, "a")]
        )
        assert count_minimal_representations(g) == 1

    def test_irreducible_graph_unchanged(self):
        g = RDFGraph([triple("p", DOM, "c"), triple("q", SP, "p")])
        assert minimal_representation(g) == g

    def test_reflexive_triples_removed_when_derivable(self):
        # (p, sp, p) is derivable by rule (8) whenever p is used.
        g = RDFGraph([triple("x", "p", "y"), triple("p", SP, "p")])
        m = minimal_representation(g)
        assert m == RDFGraph([triple("x", "p", "y")])

    def test_reserved_reflexives_always_removable(self):
        g = RDFGraph([triple(SP, SP, SP)])
        assert minimal_representation(g) == RDFGraph()
