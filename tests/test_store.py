"""Tests for the transactional triple store."""

import pytest

from repro.core import BNode, RDFGraph, Triple, triple
from repro.core.vocabulary import DOM, SC, SP, TYPE
from repro.query import head_body_query
from repro.semantics import closure as semantic_closure
from repro.store import DEFAULT_GRAPH, TransactionError, TripleStore


def schema_store():
    store = TripleStore()
    store.add_all(
        [
            triple("painter", SC, "artist"),
            triple("paints", SP, "creates"),
            triple("paints", DOM, "painter"),
        ]
    )
    return store


class TestBasicOperations:
    def test_add_and_contains(self):
        store = TripleStore()
        assert store.add(triple("a", "p", "b"))
        assert triple("a", "p", "b") in store
        assert not store.add(triple("a", "p", "b"))  # duplicate
        assert len(store) == 1

    def test_invalid_triple_rejected(self):
        store = TripleStore()
        with pytest.raises(ValueError):
            store.add(Triple(triple("a", "p", "b").s, BNode("X"), triple("a", "p", "b").o))

    def test_remove(self):
        store = TripleStore()
        store.add(triple("a", "p", "b"))
        assert store.remove(triple("a", "p", "b"))
        assert not store.remove(triple("a", "p", "b"))
        assert len(store) == 0

    def test_named_graphs(self):
        store = TripleStore()
        store.add(triple("a", "p", "b"), graph="g1")
        store.add(triple("c", "q", "d"), graph="g2")
        assert store.graph("g1") == RDFGraph([triple("a", "p", "b")])
        assert len(store.dataset()) == 2
        assert set(store.graph_names()) == {DEFAULT_GRAPH, "g1", "g2"}

    def test_clear_one_graph(self):
        store = TripleStore()
        store.add(triple("a", "p", "b"), graph="g1")
        store.clear("g1")
        assert len(store) == 0

    def test_load_graph_renames_blanks(self):
        store = TripleStore()
        X = BNode("X")
        store.add(triple("a", "p", X))
        store.load_graph(RDFGraph([triple(X, "q", "c")]), graph="imported")
        # The imported X must not be identified with the existing one.
        dataset = store.dataset()
        assert len(dataset.bnodes()) == 2


class TestReasoning:
    def test_entailment_of_ground_triples(self):
        store = schema_store()
        store.add(triple("frida", "paints", "portrait"))
        assert store.entails(triple("frida", TYPE, "painter"))
        assert store.entails(triple("frida", TYPE, "artist"))
        assert store.entails(triple("frida", "creates", "portrait"))
        assert not store.entails(triple("portrait", TYPE, "artist"))

    def test_entailment_with_blank_conclusion(self):
        store = schema_store()
        store.add(triple("frida", "paints", "portrait"))
        assert store.entails(triple("frida", "creates", BNode("W")))

    def test_closure_matches_semantics_module(self):
        store = schema_store()
        store.add(triple("frida", "paints", "portrait"))
        assert store.closure() == semantic_closure(store.dataset())

    def test_incremental_maintenance_correct(self):
        store = schema_store()
        store.closure()  # materialize
        baseline = dict(store.stats)
        store.add(triple("frida", "paints", "portrait"))
        store.add(triple("artist", SC, "person"))
        assert (
            store.stats["incremental_insert"]
            == baseline["incremental_insert"] + 2
        )
        assert store.stats["recomputed"] == baseline["recomputed"]
        assert store.closure() == semantic_closure(store.dataset())
        assert store.entails(triple("frida", TYPE, "person"))

    def test_deletion_invalidates(self):
        store = schema_store()
        store.add(triple("frida", "paints", "portrait"))
        assert store.entails(triple("frida", TYPE, "artist"))
        store.remove(triple("painter", SC, "artist"))
        assert not store.entails(triple("frida", TYPE, "artist"))
        assert store.closure() == semantic_closure(store.dataset())

    def test_blank_data_closure(self):
        store = TripleStore()
        X = BNode("X")
        store.add(triple("a", SC, X))
        store.add(triple(X, SC, "c"))
        assert store.entails(triple("a", SC, "c"))

    def test_query_through_store(self):
        store = schema_store()
        store.add(triple("frida", "paints", "portrait"))
        q = head_body_query(
            head=[("?X", TYPE, "artist")], body=[("?X", TYPE, "artist")]
        )
        assert store.query(q) == RDFGraph([triple("frida", TYPE, "artist")])


class TestTransactions:
    def test_commit(self):
        store = TripleStore()
        with store.transaction():
            store.add(triple("a", "p", "b"))
        assert triple("a", "p", "b") in store

    def test_rollback_on_exception(self):
        store = TripleStore()
        store.add(triple("keep", "p", "me"))
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.add(triple("a", "p", "b"))
                store.remove(triple("keep", "p", "me"))
                raise RuntimeError("abort")
        assert triple("a", "p", "b") not in store
        assert triple("keep", "p", "me") in store

    def test_rollback_restores_reasoning(self):
        store = schema_store()
        assert not store.entails(triple("x", TYPE, "artist"))
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.add(triple("x", TYPE, "painter"))
                raise RuntimeError("abort")
        assert not store.entails(triple("x", TYPE, "artist"))

    def test_nested_begin_rejected(self):
        store = TripleStore()
        store.begin()
        with pytest.raises(TransactionError):
            store.begin()
        store.rollback()

    def test_stray_commit_rejected(self):
        store = TripleStore()
        with pytest.raises(TransactionError):
            store.commit()

    def test_clear_inside_transaction_rejected(self):
        store = TripleStore()
        store.begin()
        with pytest.raises(TransactionError):
            store.clear()
        store.rollback()

    def test_rollback_of_mixed_ops(self):
        store = TripleStore()
        store.add(triple("a", "p", "b"))
        store.begin()
        store.remove(triple("a", "p", "b"))
        store.add(triple("c", "q", "d"))
        store.rollback()
        assert triple("a", "p", "b") in store
        assert triple("c", "q", "d") not in store


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        store = schema_store()
        store.add(triple("frida", "paints", "portrait"), graph="facts")
        store.add(triple("x", "y", BNode("N")), graph="facts")
        store.save(tmp_path)
        loaded = TripleStore.load(tmp_path)
        assert loaded.dataset() == store.dataset()
        assert set(loaded.graph_names()) >= {"default", "facts"}

    def test_loaded_store_reasons(self, tmp_path):
        store = schema_store()
        store.add(triple("frida", "paints", "portrait"))
        store.save(tmp_path)
        loaded = TripleStore.load(tmp_path)
        assert loaded.entails(triple("frida", TYPE, "artist"))


class TestDescribe:
    def test_describe_follows_blank_objects(self):
        store = TripleStore()
        X = BNode("X")
        store.add(triple("monalisa", "donatedBy", X))
        store.add(triple(X, "memberOf", "patrons"))
        store.add(triple("other", "p", "q"))
        description = store.describe(triple("monalisa", "p", "q").s)
        assert triple("monalisa", "donatedBy", X) in description
        assert triple(X, "memberOf", "patrons") in description
        assert triple("other", "p", "q") not in description

    def test_describe_handles_blank_cycles(self):
        store = TripleStore()
        X, Y = BNode("X"), BNode("Y")
        store.add(triple("root", "p", X))
        store.add(triple(X, "p", Y))
        store.add(triple(Y, "p", X))  # cycle must not loop forever
        description = store.describe(triple("root", "p", "q").s)
        assert len(description) == 3

    def test_describe_unknown_node_empty(self):
        store = TripleStore()
        store.add(triple("a", "p", "b"))
        from repro.core import URI

        assert len(store.describe(URI("zzz"))) == 0

    def test_cached_normal_form_reused(self):
        store = schema_store()
        store.add(triple("frida", "paints", "portrait"))
        nf1 = store.normal_form()
        nf2 = store.normal_form()
        assert nf1 is nf2  # cached object identity
        store.add(triple("diego", "paints", "mural"))
        nf3 = store.normal_form()
        assert nf3 is not nf1
        from repro.minimize import normal_form as nf_fn

        assert nf3 == nf_fn(store.dataset())
