"""Unit tests for :mod:`repro.core.terms`."""

import pickle

import pytest

from repro.core.terms import (
    BNode,
    Literal,
    Triple,
    URI,
    Variable,
    fresh_bnode,
    fresh_bnode_factory,
    is_ground_term,
    sort_key,
)


class TestAtomBasics:
    def test_equality_within_kind(self):
        assert URI("a") == URI("a")
        assert URI("a") != URI("b")
        assert BNode("X") == BNode("X")

    def test_no_cross_kind_equality(self):
        assert URI("a") != BNode("a")
        assert URI("a") != Literal("a")
        assert BNode("a") != Literal("a")
        assert URI("a") != Variable("a")

    def test_hash_consistency(self):
        assert hash(URI("a")) == hash(URI("a"))
        assert len({URI("a"), URI("a"), BNode("a")}) == 2

    def test_immutability(self):
        u = URI("a")
        with pytest.raises(AttributeError):
            u.value = "b"

    def test_empty_value_rejected(self):
        for kind in (URI, BNode, Variable):
            with pytest.raises(ValueError):
                kind("")

    def test_empty_literal_allowed(self):
        # "" is a legitimate plain literal.
        assert Literal("").value == ""
        assert str(Literal("")) == '""'

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            URI(42)

    def test_ordering_within_kind(self):
        assert URI("a") < URI("b")
        assert BNode("X") < BNode("Y")

    def test_ordering_across_kinds(self):
        # URIs < blanks < literals < variables.
        assert URI("z") < BNode("a")
        assert BNode("z") < Literal("a")
        assert Literal("z") < Variable("a")

    def test_ordering_against_non_terms(self):
        with pytest.raises(TypeError):
            URI("a") < 3

    def test_repr_and_str(self):
        assert repr(URI("a")) == "URI('a')"
        assert str(BNode("X")) == "_:X"
        assert str(Literal("hi")) == '"hi"'
        assert str(Variable("X")) == "?X"

    def test_variable_question_mark_normalization(self):
        assert Variable("?X") == Variable("X")
        assert Variable("?X").value == "X"

    def test_pickle_roundtrip(self):
        for term in (URI("a"), BNode("X"), Literal("l"), Variable("v")):
            assert pickle.loads(pickle.dumps(term)) == term

    def test_sort_key_total_order(self):
        terms = [Variable("a"), Literal("a"), BNode("a"), URI("a")]
        assert sorted(terms, key=sort_key) == [
            URI("a"),
            BNode("a"),
            Literal("a"),
            Variable("a"),
        ]


class TestTriple:
    def test_valid_rdf(self):
        assert Triple(URI("a"), URI("p"), URI("b")).is_valid_rdf()
        assert Triple(BNode("X"), URI("p"), BNode("Y")).is_valid_rdf()
        assert Triple(URI("a"), URI("p"), Literal("l")).is_valid_rdf()

    def test_invalid_rdf(self):
        assert not Triple(Literal("l"), URI("p"), URI("a")).is_valid_rdf()
        assert not Triple(URI("a"), BNode("X"), URI("b")).is_valid_rdf()
        assert not Triple(URI("a"), Literal("p"), URI("b")).is_valid_rdf()
        assert not Triple(Variable("v"), URI("p"), URI("b")).is_valid_rdf()

    def test_valid_pattern(self):
        assert Triple(Variable("s"), Variable("p"), Variable("o")).is_valid_pattern()
        assert Triple(BNode("X"), URI("p"), Literal("l")).is_valid_pattern()

    def test_blank_predicate_invalid_even_as_pattern(self):
        assert not Triple(URI("a"), BNode("X"), URI("b")).is_valid_pattern()

    def test_literal_subject_invalid_as_pattern(self):
        assert not Triple(Literal("l"), URI("p"), URI("b")).is_valid_pattern()

    def test_is_ground(self):
        assert Triple(URI("a"), URI("p"), Literal("l")).is_ground()
        assert not Triple(BNode("X"), URI("p"), URI("b")).is_ground()
        assert not Triple(URI("a"), URI("p"), Variable("v")).is_ground()

    def test_variables_and_bnodes(self):
        t = Triple(BNode("X"), URI("p"), Variable("v"))
        assert t.variables() == {Variable("v")}
        assert t.bnodes() == {BNode("X")}

    def test_namedtuple_access(self):
        t = Triple(URI("a"), URI("p"), URI("b"))
        assert t.s == URI("a") and t.p == URI("p") and t.o == URI("b")
        assert tuple(t) == (URI("a"), URI("p"), URI("b"))

    def test_str(self):
        assert str(Triple(URI("a"), URI("p"), BNode("X"))) == "(a, p, _:X)"


class TestFreshBNodes:
    def test_fresh_bnode_unique(self):
        seen = {fresh_bnode() for _ in range(100)}
        assert len(seen) == 100

    def test_factory_avoids_collisions(self):
        avoid = {BNode("b0"), BNode("b2")}
        factory = fresh_bnode_factory(avoid)
        produced = [factory() for _ in range(3)]
        assert BNode("b0") not in produced
        assert BNode("b2") not in produced
        assert len(set(produced)) == 3

    def test_factory_deterministic(self):
        first = [fresh_bnode_factory([])() for _ in range(1)]
        second = [fresh_bnode_factory([])() for _ in range(1)]
        assert first == second

    def test_is_ground_term(self):
        assert is_ground_term(URI("a"))
        assert is_ground_term(Literal("l"))
        assert not is_ground_term(BNode("X"))
        assert not is_ground_term(Variable("v"))
